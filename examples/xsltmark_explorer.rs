//! Explore an XSLTMark case: show its stylesheet, the generated XQuery,
//! the rewrite mode and the equivalence check against the XSLTVM.
//!
//! Run with: `cargo run --example xsltmark_explorer [case-name]`
//! (default case: `dbonerow`; pass `--list` to see all forty).

use std::rc::Rc;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_xml::{parse_trimmed, to_string, NodeId};
use xsltdb_xquery::{evaluate_query, pretty_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::{compile_str, transform};
use xsltdb_xsltmark::{all_cases, case, db_struct_info, db_xml};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "dbonerow".to_string());
    if arg == "--list" {
        println!("The forty XSLTMark cases:\n");
        for c in all_cases() {
            println!("  {:<14} ({:?})", c.name, c.area);
        }
        return;
    }

    let c = case(&arg);
    println!("=== case `{}` ({:?}) ===\n", c.name, c.area);
    println!("--- stylesheet ---\n{}\n", c.stylesheet);

    let sheet = compile_str(&c.stylesheet).expect("case compiles");
    let info = db_struct_info();
    match rewrite(&sheet, &info, &RewriteOptions::default()) {
        Ok(outcome) => {
            println!(
                "--- generated XQuery (mode {:?}, fully inlined: {}, \
                 dead templates removed: {}) ---\n",
                outcome.mode,
                outcome.fully_inlined(),
                outcome.removed_templates
            );
            println!("{}\n", pretty_query(&outcome.query));

            let doc = parse_trimmed(&db_xml(8, 0xDB)).expect("doc parses");
            let expected = to_string(&transform(&sheet, &doc).expect("VM runs"));
            let input = NodeHandle::new(Rc::new(doc), NodeId::DOCUMENT);
            match evaluate_query(&outcome.query, Some(input)) {
                Ok(seq) => {
                    let got = to_string(&sequence_to_document(&seq));
                    println!("--- output over an 8-row db document ---\n{got}\n");
                    println!("matches the XSLTVM output: {}", got == expected);
                }
                Err(e) => println!("query evaluation failed: {e}"),
            }
        }
        Err(e) => {
            println!("--- the rewrite is not applicable ---\n{e}\n");
            println!("the case executes on the VM tier (functional evaluation).");
        }
    }
}
