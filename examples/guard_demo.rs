//! ExecGuard tour: resource governance and graceful degradation on the
//! worked example of §2.
//!
//! Runs the quickstart pipeline four ways: under server-default limits,
//! with budgets small enough to trip (fuel, depth, deadline), and with
//! injected faults that force the SQL→XQuery→VM fallback lattice to
//! exercise every edge.
//!
//! Run with: `cargo run --example guard_demo`

use xsltdb::pipeline::plan_bound;
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{DegradePolicy, FaultKind, FaultPoint, Guard, Limits, PipelineError};
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, Table, XmlView};
use std::time::Duration;

fn setup() -> (Catalog, XmlView) {
    let mut dept = Table::new(
        "dept",
        &[("deptno", ColType::Int), ("dname", ColType::Text), ("loc", ColType::Text)],
    );
    for (no, dn, loc) in [(10, "ACCOUNTING", "NEW YORK"), (40, "OPERATIONS", "BOSTON")] {
        dept.insert(vec![Datum::Int(no), Datum::Text(dn.into()), Datum::Text(loc.into())])
            .expect("row matches schema");
    }
    let mut emp = Table::new(
        "emp",
        &[("empno", ColType::Int), ("ename", ColType::Text), ("sal", ColType::Int), ("deptno", ColType::Int)],
    );
    for (no, en, sal, d) in
        [(7782, "CLARK", 2450, 10), (7934, "MILLER", 1300, 10), (7954, "SMITH", 4900, 40)]
    {
        emp.insert(vec![Datum::Int(no), Datum::Text(en.into()), Datum::Int(sal), Datum::Int(d)])
            .expect("row matches schema");
    }
    let mut catalog = Catalog::new();
    catalog.add_table(dept);
    catalog.add_table(emp);
    let view = XmlView::new(
        "dept_emp",
        SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "dept",
                vec![
                    PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                    PubExpr::elem(
                        "employees",
                        vec![PubExpr::Agg {
                            table: "emp".into(),
                            predicate: vec![AggPredTerm::Correlate {
                                inner_column: "deptno".into(),
                                outer_table: "dept".into(),
                                outer_column: "deptno".into(),
                            }],
                            order_by: Vec::new(),
                            body: Box::new(PubExpr::elem(
                                "emp",
                                vec![PubExpr::elem("ename", vec![PubExpr::col("emp", "ename")])],
                            )),
                        }],
                    ),
                ],
            ),
        },
    );
    catalog.add_view(view.clone());
    (catalog, view)
}

const SHEET: &str = r#"<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept"><out><xsl:apply-templates select="employees/emp"/></out></xsl:template>
<xsl:template match="emp"><e><xsl:value-of select="ename"/></e></xsl:template>
</xsl:stylesheet>"#;

const RUNAWAY: &str = r#"<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept"><xsl:apply-templates select="."/></xsl:template>
</xsl:stylesheet>"#;

fn main() {
    let (catalog, view) = setup();
    let stats = ExecStats::new();
    let opts = RewriteOptions::default();

    // 1. Normal work under the server-default budget.
    let plan = plan_bound(&catalog, &view, SHEET, &opts).expect("planning succeeds");
    let guard = Guard::new(Limits::server_default());
    let run = plan.execute_guarded(&catalog, &stats, &guard).expect("within budget");
    println!(
        "[1] server-default limits: tier={:?}, {} docs, {} fuel spent, fallbacks={}",
        run.tier,
        run.documents.len(),
        guard.fuel_spent(),
        run.fallbacks.len()
    );

    // 2. A runaway stylesheet trips the recursion ceiling, on every tier.
    let plan = plan_bound(&catalog, &view, RUNAWAY, &opts).expect("planning succeeds");
    let guard = Guard::new(Limits::UNLIMITED.with_max_depth(32));
    match plan.execute_guarded(&catalog, &stats, &guard) {
        Err(PipelineError::Guard(trip)) => println!("[2] runaway recursion: {trip}"),
        other => panic!("expected a guard trip, got {other:?}"),
    }

    // 3. An already-expired deadline stops the pipeline at the first charge.
    let plan = plan_bound(&catalog, &view, SHEET, &opts).expect("planning succeeds");
    let guard = Guard::new(Limits::UNLIMITED.with_deadline(Duration::ZERO));
    match plan.execute_guarded(&catalog, &stats, &guard) {
        Err(PipelineError::Guard(trip)) => println!("[3] expired deadline:  {trip}"),
        other => panic!("expected a guard trip, got {other:?}"),
    }

    // 4. An injected SQL-tier fault degrades to a lower tier; the chain of
    //    abandoned tiers rides along on the result.
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Error);
    let run = plan.execute_guarded(&catalog, &stats, &guard).expect("a lower tier answers");
    println!(
        "[4] injected SQL fault: answered by tier={:?} after {:?}",
        run.tier,
        run.fallbacks.iter().map(|f| f.tier).collect::<Vec<_>>()
    );

    // 5. Even a panicking tier is contained and degraded past.
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Panic);
    let run = plan.execute_guarded(&catalog, &stats, &guard).expect("a lower tier answers");
    let first = run.fallbacks.first().expect("one tier was abandoned");
    println!(
        "[5] injected SQL panic: contained (panicked={}), answered by tier={:?}",
        first.panicked, run.tier
    );

    // 6. Strict policy surfaces the first failure instead of degrading.
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Error);
    match plan.execute_with_policy(&catalog, &stats, &guard, DegradePolicy::Strict) {
        Err(e) => println!("[6] strict policy:     {e}"),
        Ok(run) => panic!("strict run should not degrade, got tier {:?}", run.tier),
    }

    // 7. A guard trip is terminal — the budget is shared, so no tier is
    //    retried even though lower tiers are healthy.
    let guard = Guard::new(Limits::UNLIMITED.with_fuel(1));
    match plan.execute_guarded(&catalog, &stats, &guard) {
        Err(PipelineError::Guard(trip)) => println!("[7] shared budget:     {trip} (no fallback)"),
        other => panic!("expected a terminal guard trip, got {other:?}"),
    }

    // 8. Hostile input at the front door: absurdly deep nesting is a parse
    //    error, not a stack overflow.
    let bomb = "<a>".repeat(5000) + &"</a>".repeat(5000);
    match xsltdb_xml::parse_xml(&bomb) {
        Err(e) => println!("[8] 5000-deep input:   {e}"),
        Ok(_) => panic!("deep nesting should be rejected"),
    }
}
