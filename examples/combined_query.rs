//! The paper's Example 2 (§2.2): cross-language combined optimisation.
//!
//! An XSLT view (`xslt_vu`, Table 9) is wrapped by a further XQuery
//! (Table 10). The composition of the two rewrites produces the optimal
//! SQL/XML query of Table 11 — a relational aggregate over `emp` with the
//! value predicate and correlation, with no XSLT processing and no
//! intermediate XML at all.
//!
//! Run with: `cargo run --example combined_query`

use xsltdb::combined::compose_over_xslt_view;
use xsltdb::sqlrewrite::rewrite_to_sql;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::{sql_text, Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_structinfo::struct_of_view;
use xsltdb_xml::to_string;
use xsltdb_xquery::{parse_query, pretty_query};
use xsltdb_xslt::compile_str;

fn main() {
    // Relational data and the dept_emp view (as in the quickstart).
    let mut dept = Table::new(
        "dept",
        &[("deptno", ColType::Int), ("dname", ColType::Text)],
    );
    dept.insert(vec![Datum::Int(10), Datum::Text("ACCOUNTING".into())])
        .expect("row matches schema");
    dept.insert(vec![Datum::Int(40), Datum::Text("OPERATIONS".into())])
        .expect("row matches schema");
    let mut emp = Table::new(
        "emp",
        &[
            ("empno", ColType::Int),
            ("ename", ColType::Text),
            ("sal", ColType::Int),
            ("deptno", ColType::Int),
        ],
    );
    for (no, en, sal, d) in [
        (7782, "CLARK", 2450, 10),
        (7934, "MILLER", 1300, 10),
        (7954, "SMITH", 4900, 40),
    ] {
        emp.insert(vec![Datum::Int(no), Datum::Text(en.into()), Datum::Int(sal), Datum::Int(d)])
            .expect("row matches schema");
    }
    let mut catalog = Catalog::new();
    catalog.add_table(dept);
    catalog.add_table(emp);
    catalog.create_index("emp", "sal").expect("column exists");
    catalog.create_index("emp", "deptno").expect("column exists");

    let view = XmlView::new(
        "dept_emp",
        SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "dept",
                vec![
                    PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                    PubExpr::elem(
                        "employees",
                        vec![PubExpr::Agg {
                            table: "emp".into(),
                            predicate: vec![AggPredTerm::Correlate {
                                inner_column: "deptno".into(),
                                outer_table: "dept".into(),
                                outer_column: "deptno".into(),
                            }],
                            order_by: Vec::new(),
                            body: Box::new(PubExpr::elem(
                                "emp",
                                vec![
                                    PubExpr::elem("empno", vec![PubExpr::col("emp", "empno")]),
                                    PubExpr::elem("ename", vec![PubExpr::col("emp", "ename")]),
                                    PubExpr::elem("sal", vec![PubExpr::col("emp", "sal")]),
                                ],
                            )),
                        }],
                    ),
                ],
            ),
        },
    );

    // Table 9: the XSLT view.
    let stylesheet = r#"<xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname"/>
<xsl:template match="employees">
<table border="2"><xsl:apply-templates select="emp[sal &gt; 2000]"/></table>
</xsl:template>
<xsl:template match="emp">
<tr><td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td></tr>
</xsl:template>
</xsl:stylesheet>"#;

    let info = struct_of_view(&view).expect("view-derived structure");
    let sheet = compile_str(stylesheet).expect("stylesheet compiles");
    let xslt_q = rewrite(&sheet, &info, &RewriteOptions::default()).expect("XSLT rewrites");

    // Table 10: the user query over the XSLT view.
    let user_src = "for $tr in ./table/tr return $tr";
    let user_q = parse_query(user_src).expect("user query parses");
    println!("=== Table 10: user XQuery over the XSLT view ===\n\n{user_src}\n");

    // The combined optimisation.
    let composed = compose_over_xslt_view(&user_q, &xslt_q.query).expect("composes");
    println!("=== Composed XQuery (XSLT view eliminated) ===\n");
    println!("{}\n", pretty_query(&composed));

    let sql = rewrite_to_sql(&composed, &info).expect("SQL rewrite succeeds");
    println!("=== Table 11: the optimal SQL/XML query ===\n");
    println!("{}\n", sql_text(&sql));

    let stats = ExecStats::new();
    let docs = sql.execute(&catalog, &stats).expect("query runs");
    println!("=== Results (one per dept row) ===\n");
    for d in docs {
        println!("{}", to_string(&d));
    }
    println!(
        "\nexecution: {} index probes, {} rows scanned — no XSLT ran, no XML was materialised",
        stats.snapshot().index_probes,
        stats.snapshot().rows_scanned
    );
}
