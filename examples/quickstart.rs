//! Quickstart: the paper's worked example (§2, Tables 1–8) end to end.
//!
//! Builds the dept/emp tables, publishes them as the `dept_emp` XMLType
//! view, compiles the HTML-generating stylesheet, and shows every artefact
//! of the rewrite chain: the materialised view rows (Table 4), the
//! generated XQuery (Table 8), the final SQL/XML query (Table 7), and the
//! execution statistics proving the B-tree index did the filtering.
//!
//! Run with: `cargo run --example quickstart`

use xsltdb::pipeline::{no_rewrite_transform, plan_bound, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::{sql_text, Catalog, ColType, Datum, ExecStats, Table, XmlView};
use xsltdb_xml::{to_pretty_string, to_string};

fn main() {
    // --- Tables 1 and 2: the relational data -------------------------------
    let mut dept = Table::new(
        "dept",
        &[("deptno", ColType::Int), ("dname", ColType::Text), ("loc", ColType::Text)],
    );
    for (no, dn, loc) in [(10, "ACCOUNTING", "NEW YORK"), (40, "OPERATIONS", "BOSTON")] {
        dept.insert(vec![Datum::Int(no), Datum::Text(dn.into()), Datum::Text(loc.into())])
            .expect("row matches schema");
    }
    let mut emp = Table::new(
        "emp",
        &[
            ("empno", ColType::Int),
            ("ename", ColType::Text),
            ("job", ColType::Text),
            ("sal", ColType::Int),
            ("deptno", ColType::Int),
        ],
    );
    for (no, en, job, sal, d) in [
        (7782, "CLARK", "MANAGER", 2450, 10),
        (7934, "MILLER", "CLERK", 1300, 10),
        (7954, "SMITH", "VP", 4900, 40),
    ] {
        emp.insert(vec![
            Datum::Int(no),
            Datum::Text(en.into()),
            Datum::Text(job.into()),
            Datum::Int(sal),
            Datum::Int(d),
        ])
        .expect("row matches schema");
    }
    let mut catalog = Catalog::new();
    catalog.add_table(dept);
    catalog.add_table(emp);
    catalog.create_index("emp", "sal").expect("column exists");
    catalog.create_index("emp", "deptno").expect("column exists");

    // --- Table 3: the dept_emp publishing view -----------------------------
    let view = XmlView::new(
        "dept_emp",
        SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "dept",
                vec![
                    PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                    PubExpr::elem("loc", vec![PubExpr::col("dept", "loc")]),
                    PubExpr::elem(
                        "employees",
                        vec![PubExpr::Agg {
                            table: "emp".into(),
                            predicate: vec![AggPredTerm::Correlate {
                                inner_column: "deptno".into(),
                                outer_table: "dept".into(),
                                outer_column: "deptno".into(),
                            }],
                            order_by: Vec::new(),
                            body: Box::new(PubExpr::elem(
                                "emp",
                                vec![
                                    PubExpr::elem("empno", vec![PubExpr::col("emp", "empno")]),
                                    PubExpr::elem("ename", vec![PubExpr::col("emp", "ename")]),
                                    PubExpr::elem("sal", vec![PubExpr::col("emp", "sal")]),
                                ],
                            )),
                        }],
                    ),
                ],
            ),
        },
    );
    catalog.add_view(view.clone());

    let stats = ExecStats::new();
    println!("=== Table 4: XMLType rows of the dept_emp view ===\n");
    for doc in view.materialize(&catalog, &stats).expect("view materialises") {
        println!("{}\n", to_pretty_string(&doc));
    }

    // --- Table 5: the stylesheet -------------------------------------------
    let stylesheet = r#"<?xml version="1.0"?><xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="dept">
<H1>HIGHLY PAID DEPT EMPLOYEES</H1>
<xsl:apply-templates/>
</xsl:template>
<xsl:template match="dname">
<H2>Department name: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="loc">
<H2>Department location: <xsl:value-of select="."/></H2>
</xsl:template>
<xsl:template match="employees">
<H2>Employees Table</H2>
<table border="2">
<td><b>EmpNo</b></td><td><b>Name</b></td><td><b>Weekly Salary</b></td>
<xsl:apply-templates select="emp[sal &gt; 2000]"/>
</table>
</xsl:template>
<xsl:template match="emp">
<tr><td><xsl:value-of select="empno"/></td>
<td><xsl:value-of select="ename"/></td>
<td><xsl:value-of select="sal"/></td></tr>
</xsl:template>
<xsl:template match="text()"><xsl:value-of select="."/></xsl:template>
</xsl:stylesheet>"#;

    // --- The rewrite chain ---------------------------------------------------
    let bound = plan_bound(&catalog, &view, stylesheet, &RewriteOptions::default())
        .expect("planning succeeds");
    let plan = &bound.plan;
    println!("=== Plan tier: {:?} ===\n", plan.tier);
    assert_eq!(plan.tier, Tier::Sql);

    let outcome = plan.rewrite.as_ref().expect("SQL tier has a rewrite");
    println!("=== Table 8: the XQuery generated from the stylesheet ===\n");
    println!("{}\n", xsltdb_xquery::pretty_query(&outcome.query));
    println!(
        "(mode: {:?}, fully inlined: {}, dead templates removed: {})\n",
        outcome.mode,
        outcome.fully_inlined(),
        outcome.removed_templates
    );

    let sql = plan.sql.as_ref().expect("SQL tier has a query");
    println!("=== Table 7: the final SQL/XML query ===\n");
    println!("{}\n", sql_text(sql));

    // --- Execute both paths and compare --------------------------------------
    stats.reset();
    let rewritten = bound.execute(&catalog, &stats).expect("plan executes");
    let rw_stats = stats.snapshot();
    stats.reset();
    let baseline =
        no_rewrite_transform(&catalog, &view, &plan.sheet, &stats).expect("baseline runs");

    println!("=== Table 6: transformation result (per dept row) ===\n");
    for doc in &rewritten {
        println!("{}\n", to_pretty_string(doc));
    }

    let same = rewritten
        .iter()
        .zip(&baseline.documents)
        .all(|(a, b)| to_string(a) == to_string(b));
    println!("rewrite output equals functional evaluation: {same}");
    println!(
        "rewrite execution: {} index probes, {} rows scanned \
         (baseline materialised {} XML nodes first)",
        rw_stats.index_probes, rw_stats.rows_scanned, baseline.materialized_nodes
    );
}
