//! Streaming tour: `execute_to_writer` against the materialising path.
//!
//! Drives the guarded emission path end-to-end on a full-table projection
//! (`dbtail` shape) over the relational view: byte identity with
//! materialise + serialize, zero DOM nodes on the SQL tier, a
//! `max_output_bytes` trip firing mid-stream with the partial output
//! bounded, and the fault-injected fallback streaming the same bytes from
//! the XQuery tier. Every numbered line is an assertion — the binary
//! panics if a behavior regresses.
//!
//! Run with: `cargo run --example streaming_demo`

use xsltdb::pipeline::plan_bound;
use xsltdb::{FaultKind, FaultPoint, Guard, Limits, Tier};
use xsltdb_relstore::ExecStats;
use xsltdb_xsltmark::db_catalog;

fn main() {
    let rows = 400;
    let (catalog, view) = db_catalog(rows, 0xDB);
    let src = r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
        <xsl:template match="table">
          <out><xsl:apply-templates select="row"/></out>
        </xsl:template>
        <xsl:template match="row">
          <r><xsl:value-of select="lastname"/>, <xsl:value-of select="firstname"/></r>
        </xsl:template>
        </xsl:stylesheet>"#;
    let bound = plan_bound(&catalog, &view, src, &Default::default()).expect("plans");
    assert_eq!(bound.tier(), Tier::Sql, "fallback: {:?}", bound.fallback_reason());

    // [1] The streaming path emits exactly the bytes the materialising
    // path would serialize.
    let mat_stats = ExecStats::new();
    let expected: String = bound
        .execute(&catalog, &mat_stats)
        .expect("DOM path runs")
        .iter()
        .map(xsltdb_xml::to_string)
        .collect();
    let stream_stats = ExecStats::new();
    let mut out = Vec::new();
    let run = bound
        .execute_to_writer(&catalog, &stream_stats, &Guard::unlimited(), &mut out)
        .expect("streaming path runs");
    assert_eq!(String::from_utf8(out).expect("UTF-8"), expected);
    assert_eq!(run.bytes_written as usize, expected.len());
    println!(
        "[1] {} rows stream to {} bytes on the {:?} tier, byte-identical to execute + to_string",
        rows, run.bytes_written, run.tier
    );

    // [2] The memory cliff: the DOM path built a tree per result document,
    // the stream built none at all.
    let mat_peak = mat_stats.snapshot().peak_materialized_nodes;
    let stream_snap = stream_stats.snapshot();
    assert!(mat_peak > 0);
    assert_eq!(stream_snap.peak_materialized_nodes, 0);
    assert_eq!(stream_snap.streamed_bytes, run.bytes_written);
    println!(
        "[2] peak materialized nodes: {} (DOM path) vs 0 (stream); streamed_bytes counter agrees",
        mat_peak
    );

    // [3] The guard sees bytes as they leave: a cap trips mid-stream and
    // the partial output on the wire never exceeds it.
    let cap = run.bytes_written / 3;
    let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(cap));
    let mut partial = Vec::new();
    let err = bound
        .execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut partial)
        .expect_err("cap must trip");
    assert!(err.is_guard_trip(), "got {err}");
    assert!(!partial.is_empty() && partial.len() as u64 <= cap);
    println!(
        "[3] max_output_bytes={} tripped mid-stream: {} of {} bytes reached the wire",
        cap,
        partial.len(),
        run.bytes_written
    );

    // [4] The degradation lattice holds while streaming: an injected SQL
    // fault falls back to the XQuery tier, which emits the same bytes.
    let guard = Guard::unlimited().with_fault(FaultPoint::SqlExec, FaultKind::Panic);
    let mut fell_back = Vec::new();
    let run = bound
        .execute_to_writer(&catalog, &ExecStats::new(), &guard, &mut fell_back)
        .expect("fallback streams");
    assert_eq!(run.tier, Tier::XQuery);
    assert_eq!(run.fallbacks.len(), 1);
    assert!(run.fallbacks[0].panicked);
    assert_eq!(String::from_utf8(fell_back).expect("UTF-8"), expected);
    println!(
        "[4] injected SQL panic contained; {:?} tier streamed the same bytes (1 recorded fallback)",
        run.tier
    );

    println!("streaming_demo: all assertions passed");
}
