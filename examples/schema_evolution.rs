//! Schema-driven recompilation (paper §6 and §7.3): the same stylesheet is
//! partially evaluated against *different* structural information, and each
//! schema version yields its own specialised XQuery — the recompilation
//! Oracle automates when a registered XML schema evolves.
//!
//! Version 1 of the schema has no `phone` element; version 2 adds it as an
//! optional child. The stylesheet has a `phone` template — dead code under
//! v1 (removed by §3.7), live under v2.
//!
//! Run with: `cargo run --example schema_evolution`

use std::rc::Rc;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_structinfo::{struct_of_dtd, struct_of_xsd};
use xsltdb_xml::{parse_trimmed, to_string, NodeId};
use xsltdb_xquery::{evaluate_query, pretty_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::compile_str;

const STYLESHEET: &str = r#"<xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="contact"><card><xsl:apply-templates/></card></xsl:template>
<xsl:template match="name"><n><xsl:value-of select="."/></n></xsl:template>
<xsl:template match="email"><e><xsl:value-of select="."/></e></xsl:template>
<xsl:template match="phone"><p><xsl:value-of select="."/></p></xsl:template>
</xsl:stylesheet>"#;

/// Schema version 1 as a DTD (no phone).
const DTD_V1: &str = r#"
    <!ELEMENT contact (name, email)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT email (#PCDATA)>
"#;

/// Schema version 2 as an XML Schema (optional phone added).
const XSD_V2: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="contact">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="name" type="xs:string"/>
        <xs:element name="email" type="xs:string"/>
        <xs:element name="phone" type="xs:string" minOccurs="0"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

fn main() {
    let sheet = compile_str(STYLESHEET).expect("stylesheet compiles");

    let v1 = struct_of_dtd(DTD_V1, "contact").expect("DTD parses");
    let v2 = struct_of_xsd(XSD_V2).expect("XSD parses");

    // The paper's §4.2 artifact: the annotated sample document the partial
    // evaluator runs the XSLTVM against (xdb:* attributes carry the model
    // group and cardinality information).
    println!("=== Annotated sample documents (paper §4.2) ===\n");
    println!("v1: {}", to_string(&xsltdb_structinfo::generate_annotated(&v1)));
    println!("v2: {}\n", to_string(&xsltdb_structinfo::generate_annotated(&v2)));

    let q1 = rewrite(&sheet, &v1, &RewriteOptions::default()).expect("v1 rewrite");
    let q2 = rewrite(&sheet, &v2, &RewriteOptions::default()).expect("v2 rewrite");

    println!("=== Query specialised for schema v1 (DTD, no phone) ===\n");
    println!("{}\n", pretty_query(&q1.query));
    println!(
        "dead templates removed: {} (the phone template is unreachable)\n",
        q1.removed_templates
    );

    println!("=== Query specialised for schema v2 (XSD, optional phone) ===\n");
    println!("{}\n", pretty_query(&q2.query));
    println!("dead templates removed: {}\n", q2.removed_templates);

    // Run each specialised query over a conforming document.
    for (label, query, doc_text) in [
        ("v1", &q1.query, "<contact><name>Ada</name><email>ada@ex.org</email></contact>"),
        (
            "v2",
            &q2.query,
            "<contact><name>Ada</name><email>ada@ex.org</email><phone>555-1234</phone></contact>",
        ),
        (
            "v2 (phone absent)",
            &q2.query,
            "<contact><name>Bob</name><email>bob@ex.org</email></contact>",
        ),
    ] {
        let doc = parse_trimmed(doc_text).expect("document parses");
        let input = NodeHandle::new(Rc::new(doc), NodeId::DOCUMENT);
        let seq = evaluate_query(query, Some(input)).expect("query runs");
        println!("{label}: {}", to_string(&sequence_to_document(&seq)));
    }
}
