//! PlanCache tour: prepared-transform caching with invalidation.
//!
//! Drives `plan_cached` end-to-end on the XSLTMark `dbonerow` workload:
//! cold miss, warm hit sharing the prepared plan, DDL-generation
//! invalidation after `create_index`, and guard-trip isolation (a tripped
//! execution never poisons the cached entry). Every numbered line is an
//! assertion — the binary panics if a behavior regresses.
//!
//! Run with: `cargo run --example plan_cache_demo`

use std::sync::Arc;
use xsltdb::pipeline::plan_cached;
use xsltdb::{Limits, PlanCache, Tier};
use xsltdb_relstore::ExecStats;
use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id};

fn main() {
    let rows = 300;
    let (mut catalog, view) = db_catalog(rows, 0xDB);
    let src = dbonerow_stylesheet(existing_id(rows));
    let opts = Default::default();
    let mut cache = PlanCache::default();

    // [1] Cold call: miss, plan from scratch, lands on the SQL tier.
    let p1 = plan_cached(&mut cache, &catalog, &view, &src, &opts).expect("plans");
    assert_eq!(p1.tier(), Tier::Sql, "fallback: {:?}", p1.fallback_reason());
    assert_eq!((cache.stats().hits, cache.stats().misses), (0, 1));
    println!("[1] cold call: 1 miss, planned to {:?} tier", p1.tier());

    // [2] Warm call: hit, the very same prepared plan is shared (the
    // binding wrapper is fresh, the identity-free plan behind it is not).
    let p2 = plan_cached(&mut cache, &catalog, &view, &src, &opts).expect("plans");
    assert!(Arc::ptr_eq(&p1.plan, &p2.plan));
    assert_eq!(cache.stats().hits, 1);
    println!("[2] warm call: hit, same Arc — planning pipeline skipped");

    // [3] Cached output is byte-identical to the VM baseline.
    let stats = ExecStats::new();
    let cached = p2.execute(&catalog, &stats).expect("runs");
    let baseline = xsltdb::pipeline::no_rewrite_transform(&catalog, &view, p2.sheet(), &stats)
        .expect("baseline runs")
        .documents;
    let render = |docs: &[xsltdb_xml::Document]| -> Vec<String> {
        docs.iter().map(xsltdb_xml::to_string).collect()
    };
    assert_eq!(render(&cached), render(&baseline));
    println!("[3] cached plan output == functional baseline, byte for byte");

    // [4] DDL bumps the catalog generation: the entry is invalidated and
    // the workload replans (to an identical answer).
    let g = catalog.generation();
    catalog.create_index("db_rows", "city").expect("index builds");
    assert!(catalog.generation() > g);
    let p3 = plan_cached(&mut cache, &catalog, &view, &src, &opts).expect("replans");
    assert!(!Arc::ptr_eq(&p2.plan, &p3.plan), "stale plan must not be served");
    assert_eq!(cache.stats().invalidations, 1);
    let replanned = p3.execute(&catalog, &ExecStats::new()).expect("runs");
    assert_eq!(render(&replanned), render(&baseline));
    println!("[4] create_index invalidated the entry; replan agrees byte for byte");

    // [5] A guard trip is per-execution: the cached entry stays reusable.
    let err = p3
        .execute_with_limits(&catalog, &ExecStats::new(), Limits::UNLIMITED.with_fuel(3))
        .expect_err("3 fuel cannot finish");
    assert!(err.is_guard_trip());
    let p4 = plan_cached(&mut cache, &catalog, &view, &src, &opts).expect("plans");
    assert!(Arc::ptr_eq(&p3.plan, &p4.plan), "trip must not poison the entry");
    let retried = p4
        .execute_with_limits(&catalog, &ExecStats::new(), Limits::UNLIMITED)
        .expect("full budget finishes");
    assert_eq!(render(&retried.documents), render(&baseline));
    println!("[5] guard trip contained; entry reused and full-budget retry agrees");

    let snap = cache.stats();
    println!(
        "[6] counters: {} hits / {} misses / {} invalidations over {} lookups ({:.0}% hit rate)",
        snap.hits,
        snap.misses,
        snap.invalidations,
        snap.lookups(),
        snap.hit_rate() * 100.0
    );
}
