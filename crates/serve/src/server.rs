//! Loopback TCP server: thread per connection, every request routed
//! through one shared [`FrontDoor`].

use crate::frontdoor::{FrontDoor, ServeError};
use crate::proto::{read_frame, write_frame, Response, Status};
use std::collections::HashMap;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::{Catalog, XmlView};

/// Shared server state: one front door, one catalog, a set of named views
/// requests may address.
pub struct Server {
    door: Arc<FrontDoor>,
    catalog: Arc<Catalog>,
    views: HashMap<String, XmlView>,
    opts: RewriteOptions,
}

impl Server {
    pub fn new(door: FrontDoor, catalog: Catalog) -> Server {
        Server {
            door: Arc::new(door),
            catalog: Arc::new(catalog),
            views: HashMap::new(),
            opts: RewriteOptions::default(),
        }
    }

    /// Register a view under the name requests address it by.
    pub fn register_view(&mut self, name: impl Into<String>, view: XmlView) -> &mut Server {
        self.views.insert(name.into(), view);
        self
    }

    pub fn door(&self) -> &Arc<FrontDoor> {
        &self.door
    }

    /// Bind `127.0.0.1:port` (0 picks an ephemeral port) and serve until
    /// the returned handle shuts the listener down. Connections get one
    /// OS thread each — the admission queue, not the thread count, is the
    /// concurrency bound that matters.
    pub fn serve(self, port: u16) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, port))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(self);
        let accept_stop = Arc::clone(&stop);
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("serve-accept".into())
            .spawn(move || {
                let mut workers = Vec::new();
                for conn in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            let shared = Arc::clone(&accept_shared);
                            // 64 MiB: recursive suite cases need deep stacks.
                            if let Ok(w) = std::thread::Builder::new()
                                .name("serve-conn".into())
                                .stack_size(64 * 1024 * 1024)
                                .spawn(move || shared.handle_connection(stream))
                            {
                                workers.push(w);
                            }
                        }
                        Err(_) => break,
                    }
                }
                for w in workers {
                    let _ = w.join();
                }
            })?;
        Ok(ServerHandle { addr, stop, accept: Some(accept) })
    }

    fn handle_connection(&self, mut stream: TcpStream) {
        loop {
            let req = match read_frame(&mut stream) {
                Ok(Some(r)) => r,
                Ok(None) | Err(_) => return,
            };
            let resp = self.respond(&req.view, &req.stylesheet);
            if write_frame(&mut stream, &resp).is_err() {
                return;
            }
        }
    }

    fn respond(&self, view_name: &str, stylesheet: &str) -> Response {
        let Some(view) = self.views.get(view_name) else {
            return Response {
                status: Status::Error,
                body: format!("no view named {view_name:?}").into_bytes(),
            };
        };
        match self.door.transform(&self.catalog, view, stylesheet, &self.opts) {
            Ok(out) => Response { status: Status::Ok, body: out.bytes },
            Err(ServeError::Rejected(r)) => {
                Response { status: Status::Rejected, body: r.to_string().into_bytes() }
            }
            Err(e @ ServeError::Pipeline { .. }) => {
                Response { status: Status::Error, body: e.to_string().into_bytes() }
            }
        }
    }
}

/// Keeps the server alive; [`ServerHandle::shutdown`] stops accepting and
/// joins the accept thread (in-flight connections drain first).
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and wait for the accept loop (and its connection
    /// threads) to finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontdoor::FrontDoorConfig;
    use crate::proto::{read_response, write_request, Request};
    use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id};

    fn demo_server() -> (ServerHandle, String) {
        let (catalog, view) = db_catalog(24, 7);
        let mut server = Server::new(FrontDoor::new(FrontDoorConfig::server_default()), catalog);
        server.register_view("db", view);
        let handle = server.serve(0).expect("bind loopback");
        let sheet = dbonerow_stylesheet(existing_id(24));
        (handle, sheet)
    }

    #[test]
    fn round_trips_a_transform_over_the_socket() {
        let (handle, sheet) = demo_server();
        let mut conn = TcpStream::connect(handle.addr()).expect("connect");
        let req = Request { view: "db".into(), stylesheet: sheet };
        write_request(&mut conn, &req).unwrap();
        let resp = read_response(&mut conn).unwrap();
        assert_eq!(resp.status, Status::Ok, "{}", String::from_utf8_lossy(&resp.body));
        assert!(!resp.body.is_empty());
        // Second request on the same connection.
        write_request(&mut conn, &req).unwrap();
        let again = read_response(&mut conn).unwrap();
        assert_eq!(again.body, resp.body, "same request, different bytes");
        drop(conn);
        handle.shutdown();
    }

    #[test]
    fn unknown_view_is_a_typed_error_not_a_hang() {
        let (handle, sheet) = demo_server();
        let mut conn = TcpStream::connect(handle.addr()).expect("connect");
        write_request(&mut conn, &Request { view: "nope".into(), stylesheet: sheet }).unwrap();
        let resp = read_response(&mut conn).unwrap();
        assert_eq!(resp.status, Status::Error);
        assert!(String::from_utf8_lossy(&resp.body).contains("no view"));
        drop(conn);
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_get_identical_bytes() {
        let (handle, sheet) = demo_server();
        let addr = handle.addr();
        let mut expected: Option<Vec<u8>> = None;
        std::thread::scope(|s| {
            let mut joins = Vec::new();
            for _ in 0..4 {
                let sheet = sheet.clone();
                joins.push(s.spawn(move || {
                    let mut conn = TcpStream::connect(addr).expect("connect");
                    let req = Request { view: "db".into(), stylesheet: sheet };
                    let mut outs = Vec::new();
                    for _ in 0..3 {
                        write_request(&mut conn, &req).unwrap();
                        let resp = read_response(&mut conn).unwrap();
                        assert_eq!(resp.status, Status::Ok);
                        outs.push(resp.body);
                    }
                    outs
                }));
            }
            for j in joins {
                for bytes in j.join().expect("client thread") {
                    match &expected {
                        None => expected = Some(bytes),
                        Some(want) => assert_eq!(&bytes, want, "divergent bytes across clients"),
                    }
                }
            }
        });
        handle.shutdown();
    }
}
