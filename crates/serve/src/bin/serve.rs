//! `serve` — run the admission-controlled front door over the demo
//! XSLTMark catalog on a loopback socket.
//!
//! ```text
//! serve [--port N] [--rows N] [--once]
//! ```
//!
//! Binds `127.0.0.1:PORT` (default 7747, `--port 0` picks an ephemeral
//! port and prints it), registers the 40-case benchmark view as `db`, and
//! serves until killed. `--once` accepts a short self-test: the process
//! sends itself one request through the socket, prints the result size,
//! and exits — used by CI to prove the binary actually serves.

use std::io::Write as _;
use std::net::TcpStream;
use xsltdb_serve::{
    read_response, write_request, FrontDoor, FrontDoorConfig, Request, Server, Status,
};
use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id};

fn fail(msg: &str) -> ! {
    eprintln!("serve: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut port: u16 = 7747;
    let mut rows: usize = 64;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => {
                let v = args.next().unwrap_or_else(|| fail("--port needs a value"));
                port = v.parse().unwrap_or_else(|_| fail("--port must be 0..=65535"));
            }
            "--rows" => {
                let v = args.next().unwrap_or_else(|| fail("--rows needs a value"));
                rows = v.parse().unwrap_or_else(|_| fail("--rows must be a number"));
            }
            "--once" => once = true,
            "--help" | "-h" => {
                println!("usage: serve [--port N] [--rows N] [--once]");
                return;
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }

    let (catalog, view) = db_catalog(rows, 7);
    let door = FrontDoor::new(FrontDoorConfig::server_default());
    let mut server = Server::new(door, catalog);
    server.register_view("db", view);
    let handle = match server.serve(port) {
        Ok(h) => h,
        Err(e) => fail(&format!("bind failed: {e}")),
    };
    println!("serving view \"db\" ({rows} rows) on {}", handle.addr());
    let _ = std::io::stdout().flush();

    if once {
        let mut conn =
            TcpStream::connect(handle.addr()).unwrap_or_else(|e| fail(&format!("connect: {e}")));
        let req = Request {
            view: "db".into(),
            stylesheet: dbonerow_stylesheet(existing_id(rows)),
        };
        write_request(&mut conn, &req).unwrap_or_else(|e| fail(&format!("send: {e}")));
        let resp = read_response(&mut conn).unwrap_or_else(|e| fail(&format!("recv: {e}")));
        if resp.status != Status::Ok {
            fail(&format!(
                "self-test got {:?}: {}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            ));
        }
        println!("self-test ok: {} result bytes", resp.body.len());
        drop(conn);
        handle.shutdown();
        return;
    }

    // Serve forever: park this thread; the accept loop owns the work.
    loop {
        std::thread::park();
    }
}
