//! The serving front door: admission-controlled, retrying, breaker-routed
//! XSLT transforms over a shared plan cache.
//!
//! The engine below this crate is overload-*correct* but overload-*blind*:
//! every transform carries its own [`Guard`] budget, yet N concurrent
//! callers can each stay within budget while collectively exhausting the
//! process. [`FrontDoor`] closes the gap by composing the pieces from
//! `xsltdb::admission`:
//!
//! 1. **Admit** — reserve the request's full guard budget (fuel + output
//!    bytes + one stream slot) against the global
//!    [`ResourceLedger`](xsltdb_xml::ResourceLedger) via the
//!    [`AdmissionQueue`]; shed with a typed [`Rejected`] when capacity
//!    does not free up within the deadline.
//! 2. **Execute** — route `BoundPlan::execute_to_writer_routed` through
//!    the per-tier [`CircuitBreakerSet`], with a **fresh guard and a
//!    fresh output buffer per attempt** so a retried request can never
//!    leak partial bytes from a failed attempt.
//! 3. **Retry** — bounded, jitter-backoff retries for transient failures
//!    only; guard trips and binding errors return immediately.
//!
//! [`Server`] puts a minimal length-prefixed TCP protocol in front of a
//! `FrontDoor` (thread per connection, loopback only) — see [`proto`].

pub mod frontdoor;
pub mod proto;
pub mod server;

pub use frontdoor::{FrontDoor, FrontDoorConfig, FrontDoorStats, ServeError, ServeOutcome};
pub use proto::{read_frame, read_response, write_frame, write_request, Request, Response, Status};
pub use server::{Server, ServerHandle};
