//! Wire protocol for the local serve socket.
//!
//! Minimal length-prefixed frames over a loopback TCP stream; one
//! connection carries any number of request/response pairs in order.
//!
//! ```text
//! request  := u32 view_len  | view bytes (UTF-8 view name)
//!           | u32 sheet_len | sheet bytes (UTF-8 stylesheet source)
//! response := u8 status | u32 body_len | body bytes
//! ```
//!
//! All integers are big-endian. `status` is [`Status`]: `Ok` bodies are
//! the complete transform output (never partial — a failed attempt's
//! bytes are discarded before the response is framed); `Rejected` and
//! `Error` bodies are UTF-8 diagnostics.

use std::io::{self, Read, Write};

/// Response status byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Admitted and executed; the body is the full result.
    Ok = 0,
    /// Shed at admission (overload or queue timeout); body is the typed
    /// rejection rendered as text.
    Rejected = 1,
    /// Admitted but failed terminally (or exhausted retries).
    Error = 2,
}

impl Status {
    pub fn from_byte(b: u8) -> Option<Status> {
        match b {
            0 => Some(Status::Ok),
            1 => Some(Status::Rejected),
            2 => Some(Status::Error),
            _ => None,
        }
    }
}

/// One transform request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Name of a view registered with the server.
    pub view: String,
    /// XSLT stylesheet source to apply.
    pub stylesheet: String,
}

/// One transform response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: Status,
    pub body: Vec<u8>,
}

/// Frames larger than this are refused — the door sheds oversized inputs
/// before they allocate.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

fn read_len(r: &mut dyn Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    let n = u32::from_be_bytes(b);
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte bound"),
        ));
    }
    Ok(n)
}

fn read_chunk(r: &mut dyn Read) -> io::Result<Vec<u8>> {
    let n = read_len(r)? as usize;
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

fn utf8(bytes: Vec<u8>, what: &str) -> io::Result<String> {
    String::from_utf8(bytes)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, format!("{what} is not UTF-8")))
}

/// Read one request frame. `Ok(None)` means the peer closed cleanly at a
/// frame boundary.
pub fn read_frame(r: &mut dyn Read) -> io::Result<Option<Request>> {
    let mut first = [0u8; 4];
    match r.read_exact(&mut first) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let view_len = u32::from_be_bytes(first);
    if view_len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "view name frame too large"));
    }
    let mut view = vec![0u8; view_len as usize];
    r.read_exact(&mut view)?;
    let sheet = read_chunk(r)?;
    Ok(Some(Request {
        view: utf8(view, "view name")?,
        stylesheet: utf8(sheet, "stylesheet")?,
    }))
}

/// Write one request frame.
pub fn write_request(w: &mut dyn Write, req: &Request) -> io::Result<()> {
    w.write_all(&(req.view.len() as u32).to_be_bytes())?;
    w.write_all(req.view.as_bytes())?;
    w.write_all(&(req.stylesheet.len() as u32).to_be_bytes())?;
    w.write_all(req.stylesheet.as_bytes())?;
    w.flush()
}

/// Write one response frame.
pub fn write_frame(w: &mut dyn Write, resp: &Response) -> io::Result<()> {
    w.write_all(&[resp.status as u8])?;
    w.write_all(&(resp.body.len() as u32).to_be_bytes())?;
    w.write_all(&resp.body)?;
    w.flush()
}

/// Read one response frame.
pub fn read_response(r: &mut dyn Read) -> io::Result<Response> {
    let mut status = [0u8; 1];
    r.read_exact(&mut status)?;
    let status = Status::from_byte(status[0]).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidData, format!("bad status byte {}", status[0]))
    })?;
    let body = read_chunk(r)?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request { view: "db_vu".into(), stylesheet: "<xsl/>".into() };
        let mut buf = Vec::new();
        write_request(&mut buf, &req).unwrap();
        let got = read_frame(&mut buf.as_slice()).unwrap().expect("one frame");
        assert_eq!(got, req);
    }

    #[test]
    fn response_round_trips() {
        for status in [Status::Ok, Status::Rejected, Status::Error] {
            let resp = Response { status, body: b"payload".to_vec() };
            let mut buf = Vec::new();
            write_frame(&mut buf, &resp).unwrap();
            let got = read_response(&mut buf.as_slice()).unwrap();
            assert_eq!(got, resp);
        }
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_error() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut { empty }).unwrap().is_none());
        let truncated = [0u8, 0, 0, 5, b'a'];
        assert!(read_frame(&mut truncated.as_slice()).is_err());
    }

    #[test]
    fn oversized_frame_is_refused() {
        let huge = (MAX_FRAME + 1).to_be_bytes();
        assert!(read_frame(&mut huge.as_slice()).is_err());
    }
}
