//! [`FrontDoor`]: admission + retry + breaker routing around the engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use xsltdb::admission::{
    AdmissionConfig, AdmissionQueue, AdmissionStats, BreakerConfig, CircuitBreakerSet,
    Rejected, RetryPolicy,
};
use xsltdb::pipeline::{plan_cached_shared, StreamRun, Tier};
use xsltdb::plancache::SharedPlanCache;
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{Guard, Limits, PipelineError};
use xsltdb_relstore::{Catalog, ExecStats};
use xsltdb_xml::LedgerLimits;
use xsltdb_relstore::XmlView;

/// Everything tunable about a [`FrontDoor`].
#[derive(Debug, Clone, Copy)]
pub struct FrontDoorConfig {
    /// Per-request guard budget; also the amount reserved on the ledger.
    pub limits: Limits,
    /// Fleet-wide ceilings.
    pub ledger: LedgerLimits,
    /// Queue depth and default admission deadline.
    pub admission: AdmissionConfig,
    /// Retry bound and backoff schedule.
    pub retry: RetryPolicy,
    /// Per-tier breaker tuning.
    pub breaker: BreakerConfig,
}

impl FrontDoorConfig {
    pub fn server_default() -> FrontDoorConfig {
        FrontDoorConfig {
            limits: Limits::server_default(),
            ledger: LedgerLimits::server_default(),
            admission: AdmissionConfig::server_default(),
            retry: RetryPolicy::server_default(),
            breaker: BreakerConfig::server_default(),
        }
    }
}

/// Why a request got no result bytes.
#[derive(Debug)]
pub enum ServeError {
    /// Shed at the door — never executed, no bytes produced.
    Rejected(Rejected),
    /// Admitted but failed (terminally, or transiently `attempts` times).
    Pipeline {
        error: PipelineError,
        /// Execution attempts made (≥ 1).
        attempts: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "{r}"),
            ServeError::Pipeline { error, attempts } => {
                write!(f, "{error} (after {attempts} attempt(s))")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful transform.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The serialized result, complete (never partial).
    pub bytes: Vec<u8>,
    /// The lattice tier that produced it.
    pub tier: Tier,
    /// Execution attempts it took (1 = first try).
    pub attempts: u32,
    /// Tiers that failed or were breaker-skipped before `tier` succeeded,
    /// on the winning attempt.
    pub fallbacks: usize,
}

/// Counters the front door exports for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontDoorStats {
    pub admitted: u64,
    pub shed_overloaded: u64,
    pub shed_timeout: u64,
    pub retries: u64,
    pub breaker_opened: u64,
}

/// The admission-controlled request path. Cheap to share behind an `Arc`;
/// every method takes `&self`.
pub struct FrontDoor {
    config: FrontDoorConfig,
    queue: AdmissionQueue,
    breakers: CircuitBreakerSet,
    cache: SharedPlanCache,
    retries: AtomicU64,
    seq: AtomicU64,
}

impl FrontDoor {
    pub fn new(config: FrontDoorConfig) -> FrontDoor {
        FrontDoor {
            config,
            queue: AdmissionQueue::with_limits(config.ledger, config.admission),
            breakers: CircuitBreakerSet::new(config.breaker),
            cache: SharedPlanCache::default(),
            retries: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &FrontDoorConfig {
        &self.config
    }

    /// The admission queue (exposed so harnesses can inspect the ledger).
    pub fn queue(&self) -> &AdmissionQueue {
        &self.queue
    }

    /// The shared plan cache behind the door.
    pub fn cache(&self) -> &SharedPlanCache {
        &self.cache
    }

    pub fn stats(&self) -> FrontDoorStats {
        let AdmissionStats { admitted, shed_overloaded, shed_timeout } = self.queue.stats();
        FrontDoorStats {
            admitted,
            shed_overloaded,
            shed_timeout,
            retries: self.retries.load(Ordering::Relaxed),
            breaker_opened: self.breakers.opened_total(),
        }
    }

    /// True when no request holds any ledger reservation.
    pub fn is_quiesced(&self) -> bool {
        self.queue.ledger().snapshot().is_quiesced()
    }

    /// Serve one transform with a plain per-attempt guard.
    pub fn transform(
        &self,
        catalog: &Catalog,
        view: &XmlView,
        stylesheet_src: &str,
        opts: &RewriteOptions,
    ) -> Result<ServeOutcome, ServeError> {
        self.transform_with(catalog, view, stylesheet_src, opts, &|limits, _attempt| {
            Guard::new(limits)
        })
    }

    /// Serve one transform, building each attempt's [`Guard`] through
    /// `make_guard` — the hook the chaos harness uses to arm
    /// [`Guard::with_fault`] injections per attempt. Every attempt gets a
    /// fresh guard **and a fresh buffer**: bytes from a failed attempt are
    /// discarded wholesale, so a retried request can never interleave or
    /// leak partial output.
    pub fn transform_with(
        &self,
        catalog: &Catalog,
        view: &XmlView,
        stylesheet_src: &str,
        opts: &RewriteOptions,
        make_guard: &dyn Fn(Limits, u32) -> Guard,
    ) -> Result<ServeOutcome, ServeError> {
        let limits = self.config.limits;
        let (fuel, bytes) = reservation_units(limits);
        let deadline = self.config.admission.default_deadline;
        let permit = self
            .queue
            .admit_within(fuel, bytes, deadline)
            .map_err(ServeError::Rejected)?;
        let seed = self.seq.fetch_add(1, Ordering::Relaxed);

        let stats = ExecStats::new();
        let mut attempt: u32 = 0;
        loop {
            let plan = match plan_cached_shared(&self.cache, catalog, view, stylesheet_src, opts)
            {
                Ok(p) => p,
                Err(e) => {
                    drop(permit);
                    return Err(ServeError::Pipeline { error: e, attempts: attempt + 1 });
                }
            };
            let guard = make_guard(limits, attempt);
            let mut buf: Vec<u8> = Vec::new();
            let result: Result<StreamRun, PipelineError> =
                plan.execute_to_writer_routed(catalog, &stats, &guard, &mut buf, &self.breakers);
            match result {
                Ok(run) => {
                    drop(permit);
                    return Ok(ServeOutcome {
                        bytes: buf,
                        tier: run.tier,
                        attempts: attempt + 1,
                        fallbacks: run.fallbacks.len(),
                    });
                }
                Err(error) => {
                    if self.config.retry.should_retry(attempt, &error) {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        attempt += 1;
                        let backoff = self.config.retry.backoff(attempt, seed);
                        if backoff > Duration::ZERO {
                            std::thread::sleep(backoff);
                        }
                        continue;
                    }
                    drop(permit);
                    return Err(ServeError::Pipeline { error, attempts: attempt + 1 });
                }
            }
        }
    }
}

/// How much a request with these per-call limits draws from the ledger.
/// Unlimited axes reserve nothing on that axis (the stream slot still
/// counts), so an unmetered dev config never overflows the counters.
fn reservation_units(limits: Limits) -> (u64, u64) {
    let fuel = if limits.fuel == u64::MAX { 0 } else { limits.fuel };
    let bytes = if limits.max_output_bytes == u64::MAX { 0 } else { limits.max_output_bytes };
    (fuel, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id};

    fn small_door(streams: u64) -> FrontDoor {
        let mut cfg = FrontDoorConfig::server_default();
        cfg.ledger = LedgerLimits::UNLIMITED.with_max_concurrent_streams(streams);
        cfg.admission.max_queue_depth = 2;
        cfg.admission.default_deadline = Duration::from_millis(20);
        FrontDoor::new(cfg)
    }

    #[test]
    fn serves_a_transform_and_quiesces() {
        let door = small_door(4);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let out = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .expect("serves");
        assert!(!out.bytes.is_empty());
        assert_eq!(out.attempts, 1);
        assert!(door.is_quiesced());
        assert_eq!(door.stats().admitted, 1);
    }

    #[test]
    fn repeated_requests_hit_the_plan_cache() {
        let door = small_door(4);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        for _ in 0..5 {
            door.transform(&catalog, &view, &sheet, &RewriteOptions::default())
                .expect("serves");
        }
        let snap = door.cache().stats();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 4);
    }

    #[test]
    fn guard_trip_is_terminal_not_retried() {
        let mut cfg = FrontDoorConfig::server_default();
        cfg.limits = Limits::UNLIMITED.with_max_output_bytes(8);
        let door = FrontDoor::new(cfg);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let err = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .unwrap_err();
        match err {
            ServeError::Pipeline { error, attempts } => {
                assert!(error.is_guard_trip(), "{error:?}");
                assert_eq!(attempts, 1, "a guard trip must never be retried");
            }
            other => panic!("expected pipeline error, got {other}"),
        }
        assert_eq!(door.stats().retries, 0);
        assert!(door.is_quiesced());
    }

    #[test]
    fn injected_panic_is_retried_and_succeeds() {
        use xsltdb::{FaultKind, FaultPoint};
        let door = small_door(4);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let clean = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .expect("baseline");
        // Attempt 0 panics at *every* lattice edge (so the whole lattice
        // fails); attempt 1 runs clean and must reproduce the bytes.
        let out = door
            .transform_with(
                &catalog,
                &view,
                &sheet,
                &RewriteOptions::default(),
                &|limits, attempt| {
                    let g = Guard::new(limits);
                    if attempt == 0 {
                        g.with_fault(FaultPoint::SqlExec, FaultKind::Panic)
                            .with_fault(FaultPoint::XQueryExec, FaultKind::Panic)
                            .with_fault(FaultPoint::VmExec, FaultKind::Panic)
                            .with_fault(FaultPoint::Materialize, FaultKind::Panic)
                    } else {
                        g
                    }
                },
            )
            .expect("second attempt succeeds");
        assert_eq!(out.attempts, 2);
        assert_eq!(out.bytes, clean.bytes, "retry produced different bytes");
        assert!(door.stats().retries >= 1);
        assert!(door.is_quiesced());
    }

    #[test]
    fn saturated_door_sheds_with_typed_rejection() {
        let door = std::sync::Arc::new(small_door(1));
        let (catalog, view) = db_catalog(24, 7);
        // Hold the only stream slot via a raw ledger reservation.
        let held = door.queue().ledger().try_reserve(0, 0).unwrap();
        let sheet = dbonerow_stylesheet(existing_id(24));
        let err = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, ServeError::Rejected(Rejected::QueueTimeout { .. })),
            "{err}"
        );
        drop(held);
        door.transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .expect("capacity returned");
        assert!(door.is_quiesced());
    }
}
