//! [`FrontDoor`]: admission + retry + breaker routing around the engine.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xsltdb::admission::{
    AdmissionConfig, AdmissionQueue, AdmissionStats, BreakerConfig, CircuitBreakerSet,
    Rejected, RetryPolicy,
};
use xsltdb::pipeline::{plan_cached_shared, StreamRun, Tier};
use xsltdb::plancache::SharedPlanCache;
use xsltdb::resultcache::{CachedResult, ResultKey, SharedResultCache};
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{Guard, Limits, PipelineError, DEFAULT_RESULT_CACHE_BYTES};
use xsltdb_relstore::{slot_name, Catalog, ExecStats};
use xsltdb_structinfo::ViewCanon;
use xsltdb_xml::LedgerLimits;
use xsltdb_relstore::XmlView;

/// Everything tunable about a [`FrontDoor`].
#[derive(Debug, Clone, Copy)]
pub struct FrontDoorConfig {
    /// Per-request guard budget; also the amount reserved on the ledger.
    pub limits: Limits,
    /// Fleet-wide ceilings.
    pub ledger: LedgerLimits,
    /// Queue depth and default admission deadline.
    pub admission: AdmissionConfig,
    /// Retry bound and backoff schedule.
    pub retry: RetryPolicy,
    /// Per-tier breaker tuning.
    pub breaker: BreakerConfig,
    /// Byte budget of the transform-result cache (0 disables it).
    pub result_cache_bytes: usize,
}

impl FrontDoorConfig {
    pub fn server_default() -> FrontDoorConfig {
        FrontDoorConfig {
            limits: Limits::server_default(),
            ledger: LedgerLimits::server_default(),
            admission: AdmissionConfig::server_default(),
            retry: RetryPolicy::server_default(),
            breaker: BreakerConfig::server_default(),
            result_cache_bytes: DEFAULT_RESULT_CACHE_BYTES,
        }
    }
}

/// Why a request got no result bytes.
#[derive(Debug)]
pub enum ServeError {
    /// Shed at the door — never executed, no bytes produced.
    Rejected(Rejected),
    /// Admitted but failed (terminally, or transiently `attempts` times).
    Pipeline {
        error: PipelineError,
        /// Execution attempts made (≥ 1).
        attempts: u32,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Rejected(r) => write!(f, "{r}"),
            ServeError::Pipeline { error, attempts } => {
                write!(f, "{error} (after {attempts} attempt(s))")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful transform.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The serialized result, complete (never partial).
    pub bytes: Vec<u8>,
    /// The lattice tier that produced it (for a cached serve, the tier
    /// that originally produced the memoised bytes).
    pub tier: Tier,
    /// Execution attempts it took (1 = first try).
    pub attempts: u32,
    /// Tiers that failed or were breaker-skipped before `tier` succeeded,
    /// on the winning attempt.
    pub fallbacks: usize,
    /// Served from the result cache — no tier executed at all.
    pub cached: bool,
}

/// Counters the front door exports for reporting.
#[derive(Debug, Clone, Copy, Default)]
pub struct FrontDoorStats {
    pub admitted: u64,
    pub shed_overloaded: u64,
    pub shed_timeout: u64,
    pub retries: u64,
    pub breaker_opened: u64,
    /// Result-cache hits (requests served from memoised bytes).
    pub result_hits: u64,
    /// Result-cache misses (including read-set invalidations).
    pub result_misses: u64,
    /// Result-cache entries dropped because a read table changed.
    pub result_invalidations: u64,
}

/// The admission-controlled request path. Cheap to share behind an `Arc`;
/// every method takes `&self`.
pub struct FrontDoor {
    config: FrontDoorConfig,
    queue: AdmissionQueue,
    breakers: CircuitBreakerSet,
    cache: SharedPlanCache,
    results: SharedResultCache,
    retries: AtomicU64,
    seq: AtomicU64,
}

impl FrontDoor {
    pub fn new(config: FrontDoorConfig) -> FrontDoor {
        FrontDoor {
            config,
            queue: AdmissionQueue::with_limits(config.ledger, config.admission),
            breakers: CircuitBreakerSet::new(config.breaker),
            cache: SharedPlanCache::default(),
            results: SharedResultCache::new(config.result_cache_bytes),
            retries: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &FrontDoorConfig {
        &self.config
    }

    /// The admission queue (exposed so harnesses can inspect the ledger).
    pub fn queue(&self) -> &AdmissionQueue {
        &self.queue
    }

    /// The shared plan cache behind the door.
    pub fn cache(&self) -> &SharedPlanCache {
        &self.cache
    }

    /// The transform-result cache behind the door (capacity 0 = disabled).
    pub fn results(&self) -> &SharedResultCache {
        &self.results
    }

    pub fn stats(&self) -> FrontDoorStats {
        let AdmissionStats { admitted, shed_overloaded, shed_timeout } = self.queue.stats();
        let results = self.results.stats();
        FrontDoorStats {
            admitted,
            shed_overloaded,
            shed_timeout,
            retries: self.retries.load(Ordering::Relaxed),
            breaker_opened: self.breakers.opened_total(),
            result_hits: results.hits,
            result_misses: results.misses,
            result_invalidations: results.invalidations,
        }
    }

    /// True when no request holds any ledger reservation.
    pub fn is_quiesced(&self) -> bool {
        self.queue.ledger().snapshot().is_quiesced()
    }

    /// Serve one transform with a plain per-attempt guard.
    pub fn transform(
        &self,
        catalog: &Catalog,
        view: &XmlView,
        stylesheet_src: &str,
        opts: &RewriteOptions,
    ) -> Result<ServeOutcome, ServeError> {
        self.transform_with(catalog, view, stylesheet_src, opts, &|limits, _attempt| {
            Guard::new(limits)
        })
    }

    /// Serve one transform, building each attempt's [`Guard`] through
    /// `make_guard` — the hook the chaos harness uses to arm
    /// [`Guard::with_fault`] injections per attempt. Every attempt gets a
    /// fresh guard **and a fresh buffer**: bytes from a failed attempt are
    /// discarded wholesale, so a retried request can never interleave or
    /// leak partial output.
    ///
    /// A result-cache hit short-circuits the lattice entirely, but a
    /// cached byte is never free: it is charged against the request's
    /// guard (so a starved byte budget trips exactly as it would on a
    /// fresh run — which also keeps trips out of the cache's blast radius)
    /// and reserved as `bytes_in_flight` on the global ledger for the
    /// duration of the serve. The freshness check runs against the same
    /// `catalog` borrow the execution would use, so a hit is byte-identical
    /// to what a fresh execution would produce at this instant.
    pub fn transform_with(
        &self,
        catalog: &Catalog,
        view: &XmlView,
        stylesheet_src: &str,
        opts: &RewriteOptions,
        make_guard: &dyn Fn(Limits, u32) -> Guard,
    ) -> Result<ServeOutcome, ServeError> {
        let limits = self.config.limits;
        let deadline = self.config.admission.default_deadline;

        // Probe the result cache before paying for admission at the full
        // request budget: a hit reserves exactly the bytes it puts in
        // flight instead of the worst-case output cap.
        let canon = self.cache.view_canon(view, catalog.view_stamp(&view.name));
        let key = ResultKey::new(
            canon.fingerprint,
            stylesheet_src,
            opts,
            result_key_tables(&canon, view),
        );
        if self.results.enabled() {
            if let Some(hit) = self.results.lookup(&key, catalog) {
                return self.serve_cached(hit, limits, deadline, make_guard);
            }
        }

        let (fuel, bytes) = reservation_units(limits);
        let permit = self
            .queue
            .admit_within(fuel, bytes, deadline)
            .map_err(ServeError::Rejected)?;
        let seed = self.seq.fetch_add(1, Ordering::Relaxed);

        let stats = ExecStats::new();
        let mut attempt: u32 = 0;
        loop {
            let plan = match plan_cached_shared(&self.cache, catalog, view, stylesheet_src, opts)
            {
                Ok(p) => p,
                Err(e) => {
                    drop(permit);
                    return Err(ServeError::Pipeline { error: e, attempts: attempt + 1 });
                }
            };
            let guard = make_guard(limits, attempt);
            let mut buf: Vec<u8> = Vec::new();
            let result: Result<StreamRun, PipelineError> =
                plan.execute_to_writer_routed(catalog, &stats, &guard, &mut buf, &self.breakers);
            match result {
                Ok(run) => {
                    // Only complete, successful output is memoised — an
                    // error or guard trip never reaches this point, so a
                    // trip can never be replayed from the cache. The
                    // read-set snapshot comes from the same immutable
                    // catalog borrow the execution ran against, so bytes
                    // and versions are mutually consistent.
                    if self.results.enabled() {
                        let reads =
                            catalog.versions_of(key.tables.iter().map(String::as_str));
                        self.results.insert(key, Arc::from(&buf[..]), run.tier, reads);
                    }
                    drop(permit);
                    return Ok(ServeOutcome {
                        bytes: buf,
                        tier: run.tier,
                        attempts: attempt + 1,
                        fallbacks: run.fallbacks.len(),
                        cached: false,
                    });
                }
                Err(error) => {
                    if self.config.retry.should_retry(attempt, &error) {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        attempt += 1;
                        let backoff = self.config.retry.backoff(attempt, seed);
                        if backoff > Duration::ZERO {
                            std::thread::sleep(backoff);
                        }
                        continue;
                    }
                    drop(permit);
                    return Err(ServeError::Pipeline { error, attempts: attempt + 1 });
                }
            }
        }
    }

    /// Serve memoised bytes: charge the request's guard, reserve the bytes
    /// on the ledger, copy out under the reservation.
    fn serve_cached(
        &self,
        hit: CachedResult,
        limits: Limits,
        deadline: Duration,
        make_guard: &dyn Fn(Limits, u32) -> Guard,
    ) -> Result<ServeOutcome, ServeError> {
        // The guard sees every byte exactly as a fresh execution's sink
        // would: a budget too small for the output trips terminally, with
        // no retry (the cached bytes are not going to shrink).
        let guard = make_guard(limits, 0);
        if let Err(trip) = guard.charge_output_bytes(hit.bytes.len() as u64) {
            return Err(ServeError::Pipeline { error: trip.into(), attempts: 1 });
        }
        // The hit's bytes are in flight until the outcome is handed back:
        // a hit storm is bounded by the ledger byte ceiling like any other
        // traffic (no fuel draw — nothing executes).
        let permit = self
            .queue
            .admit_within(0, hit.bytes.len() as u64, deadline)
            .map_err(ServeError::Rejected)?;
        let outcome = ServeOutcome {
            bytes: hit.bytes.to_vec(),
            tier: hit.tier,
            attempts: 1,
            fallbacks: 0,
            cached: true,
        };
        drop(permit);
        Ok(outcome)
    }
}

/// The concrete tables a result over `view` is a function of, in slot
/// order (deduplicated) — the identity component of a [`ResultKey`]. Plans
/// without slots (underivable structure) read whatever the view definition
/// references. Mirrors `BoundPlan::read_set`, computable before a plan
/// exists.
fn result_key_tables(canon: &ViewCanon, view: &XmlView) -> Vec<String> {
    if canon.slot_count > 0 {
        let mut out = Vec::with_capacity(canon.slot_count);
        for i in 0..canon.slot_count {
            if let Some(table) = canon.bindings.get(&slot_name(i)) {
                if !out.iter().any(|t: &String| t == table) {
                    out.push(table.to_string());
                }
            }
        }
        out
    } else {
        view.referenced_tables()
    }
}

/// How much a request with these per-call limits draws from the ledger.
/// Unlimited axes reserve nothing on that axis (the stream slot still
/// counts), so an unmetered dev config never overflows the counters.
fn reservation_units(limits: Limits) -> (u64, u64) {
    let fuel = if limits.fuel == u64::MAX { 0 } else { limits.fuel };
    let bytes = if limits.max_output_bytes == u64::MAX { 0 } else { limits.max_output_bytes };
    (fuel, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id};

    fn small_door(streams: u64) -> FrontDoor {
        let mut cfg = FrontDoorConfig::server_default();
        cfg.ledger = LedgerLimits::UNLIMITED.with_max_concurrent_streams(streams);
        cfg.admission.max_queue_depth = 2;
        cfg.admission.default_deadline = Duration::from_millis(20);
        FrontDoor::new(cfg)
    }

    #[test]
    fn serves_a_transform_and_quiesces() {
        let door = small_door(4);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let out = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .expect("serves");
        assert!(!out.bytes.is_empty());
        assert_eq!(out.attempts, 1);
        assert!(door.is_quiesced());
        assert_eq!(door.stats().admitted, 1);
    }

    #[test]
    fn repeated_requests_hit_the_plan_cache() {
        // Result cache off, so every request exercises the plan cache.
        let mut cfg = FrontDoorConfig::server_default();
        cfg.ledger = LedgerLimits::UNLIMITED.with_max_concurrent_streams(4);
        cfg.result_cache_bytes = 0;
        let door = FrontDoor::new(cfg);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        for _ in 0..5 {
            let out = door
                .transform(&catalog, &view, &sheet, &RewriteOptions::default())
                .expect("serves");
            assert!(!out.cached, "disabled result cache must never serve");
        }
        let snap = door.cache().stats();
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.hits, 4);
    }

    #[test]
    fn repeated_requests_hit_the_result_cache() {
        let door = small_door(4);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let first = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .expect("fills");
        assert!(!first.cached);
        for _ in 0..4 {
            let hit = door
                .transform(&catalog, &view, &sheet, &RewriteOptions::default())
                .expect("serves from memory");
            assert!(hit.cached, "warm identical request must be a result hit");
            assert_eq!(hit.bytes, first.bytes, "cached bytes differ from fresh");
            assert_eq!(hit.tier, first.tier);
            assert_eq!(hit.attempts, 1);
        }
        let stats = door.stats();
        assert_eq!(stats.result_hits, 4);
        assert_eq!(stats.result_misses, 1);
        // The lattice ran exactly once: one plan-cache lookup in total.
        assert_eq!(door.cache().stats().lookups(), 1);
        assert!(door.is_quiesced());
    }

    #[test]
    fn dml_on_a_read_table_forces_fresh_execution() {
        let door = small_door(4);
        let (mut catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let opts = RewriteOptions::default();
        door.transform(&catalog, &view, &sheet, &opts).expect("fills");
        // DML on a read table: the memoised bytes are stale and must not
        // be served; the request re-executes against the new data.
        use xsltdb_relstore::Datum;
        catalog
            .table_mut("db_rows")
            .unwrap()
            .insert(vec![
                Datum::Int(990_001),
                Datum::Text("Churn".into()),
                Datum::Text("Writer".into()),
                Datum::Text("1 Churn St".into()),
                Datum::Text("Churnville".into()),
                Datum::Text("CA".into()),
                Datum::Int(99_999),
            ])
            .unwrap();
        catalog.reindex("db_rows").unwrap();
        let after = door.transform(&catalog, &view, &sheet, &opts).expect("re-executes");
        assert!(!after.cached, "stale entry must not be served after DML");
        assert!(door.stats().result_invalidations >= 1);
    }

    #[test]
    fn guard_trip_is_terminal_not_retried() {
        let mut cfg = FrontDoorConfig::server_default();
        cfg.limits = Limits::UNLIMITED.with_max_output_bytes(8);
        let door = FrontDoor::new(cfg);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let err = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .unwrap_err();
        match err {
            ServeError::Pipeline { error, attempts } => {
                assert!(error.is_guard_trip(), "{error:?}");
                assert_eq!(attempts, 1, "a guard trip must never be retried");
            }
            other => panic!("expected pipeline error, got {other}"),
        }
        assert_eq!(door.stats().retries, 0);
        assert!(door.is_quiesced());
    }

    #[test]
    fn injected_panic_is_retried_and_succeeds() {
        use xsltdb::{FaultKind, FaultPoint};
        // Result cache off: the baseline call would otherwise memoise the
        // bytes and the faulty call would never reach the lattice.
        let mut cfg = FrontDoorConfig::server_default();
        cfg.ledger = LedgerLimits::UNLIMITED.with_max_concurrent_streams(4);
        cfg.admission.max_queue_depth = 2;
        cfg.admission.default_deadline = Duration::from_millis(20);
        cfg.result_cache_bytes = 0;
        let door = FrontDoor::new(cfg);
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let clean = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .expect("baseline");
        // Attempt 0 panics at *every* lattice edge (so the whole lattice
        // fails); attempt 1 runs clean and must reproduce the bytes.
        let out = door
            .transform_with(
                &catalog,
                &view,
                &sheet,
                &RewriteOptions::default(),
                &|limits, attempt| {
                    let g = Guard::new(limits);
                    if attempt == 0 {
                        g.with_fault(FaultPoint::SqlExec, FaultKind::Panic)
                            .with_fault(FaultPoint::XQueryExec, FaultKind::Panic)
                            .with_fault(FaultPoint::VmExec, FaultKind::Panic)
                            .with_fault(FaultPoint::Materialize, FaultKind::Panic)
                    } else {
                        g
                    }
                },
            )
            .expect("second attempt succeeds");
        assert_eq!(out.attempts, 2);
        assert_eq!(out.bytes, clean.bytes, "retry produced different bytes");
        assert!(door.stats().retries >= 1);
        assert!(door.is_quiesced());
    }

    #[test]
    fn cache_hit_reserves_bytes_on_the_ledger() {
        // A result-cache hit still moves bytes through the door, so it
        // must reserve them on the global ledger like any other response.
        // Ceiling below the output length: the warm hit must be shed, not
        // served outside the byte budget.
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let opts = RewriteOptions::default();
        let probe = small_door(4);
        let len = probe
            .transform(&catalog, &view, &sheet, &opts)
            .expect("probe")
            .bytes
            .len() as u64;
        assert!(len > 1);

        let mut cfg = FrontDoorConfig::server_default();
        cfg.limits = Limits::UNLIMITED;
        cfg.ledger = LedgerLimits::UNLIMITED
            .with_max_concurrent_streams(4)
            .with_max_bytes_in_flight(len - 1);
        cfg.admission.max_queue_depth = 2;
        cfg.admission.default_deadline = Duration::from_millis(20);
        let door = FrontDoor::new(cfg);
        // Miss path under UNLIMITED output limits reserves 0 bytes, so
        // the first call succeeds and fills the cache…
        let first = door.transform(&catalog, &view, &sheet, &opts).expect("fills");
        assert!(!first.cached);
        // …and the warm hit must now fail admission: its exact byte
        // length does not fit under the ledger ceiling.
        let err = door.transform(&catalog, &view, &sheet, &opts).unwrap_err();
        assert!(
            matches!(err, ServeError::Rejected(_)),
            "cache hit bypassed the byte ledger: {err}"
        );
        assert!(door.is_quiesced(), "hit path leaked a ledger reservation");
    }

    #[test]
    fn cache_hit_storm_stays_under_the_ledger_ceiling() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let (catalog, view) = db_catalog(24, 7);
        let sheet = dbonerow_stylesheet(existing_id(24));
        let opts = RewriteOptions::default();
        let probe = small_door(4);
        let expected = probe.transform(&catalog, &view, &sheet, &opts).expect("probe").bytes;
        let len = expected.len() as u64;

        // Room for exactly one response in flight.
        let mut cfg = FrontDoorConfig::server_default();
        cfg.limits = Limits::UNLIMITED;
        cfg.ledger = LedgerLimits::UNLIMITED
            .with_max_concurrent_streams(16)
            .with_max_bytes_in_flight(len);
        cfg.admission.max_queue_depth = 16;
        cfg.admission.default_deadline = Duration::from_millis(200);
        let door = std::sync::Arc::new(FrontDoor::new(cfg));
        door.transform(&catalog, &view, &sheet, &opts).expect("fills cache");

        let peak = std::sync::Arc::new(AtomicU64::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let door = std::sync::Arc::clone(&door);
                let peak = std::sync::Arc::clone(&peak);
                let (catalog, view, sheet, opts) = (&catalog, &view, &sheet, &opts);
                let expected = &expected;
                scope.spawn(move || {
                    for _ in 0..16 {
                        let seen = door.queue().ledger().snapshot().bytes_in_flight;
                        peak.fetch_max(seen, Ordering::Relaxed);
                        match door.transform(catalog, view, sheet, opts) {
                            Ok(out) => assert_eq!(&out.bytes, expected, "storm corrupted bytes"),
                            Err(ServeError::Rejected(_)) => {}
                            Err(other) => panic!("unexpected failure under storm: {other}"),
                        }
                    }
                });
            }
        });
        assert!(
            peak.load(Ordering::Relaxed) <= len,
            "bytes_in_flight exceeded the ceiling during a hit storm"
        );
        assert!(door.stats().result_hits >= 1, "storm never hit the cache");
        assert!(door.is_quiesced());
    }

    #[test]
    fn saturated_door_sheds_with_typed_rejection() {
        let door = std::sync::Arc::new(small_door(1));
        let (catalog, view) = db_catalog(24, 7);
        // Hold the only stream slot via a raw ledger reservation.
        let held = door.queue().ledger().try_reserve(0, 0).unwrap();
        let sheet = dbonerow_stylesheet(existing_id(24));
        let err = door
            .transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .unwrap_err();
        assert!(
            matches!(err, ServeError::Rejected(Rejected::QueueTimeout { .. })),
            "{err}"
        );
        drop(held);
        door.transform(&catalog, &view, &sheet, &RewriteOptions::default())
            .expect("capacity returned");
        assert!(door.is_quiesced());
    }
}
