//! The XML structural-information model (paper §3.2): element declarations
//! with model groups, cardinalities, and — when the structure comes from a
//! SQL/XML publishing view — bindings back to relational columns and row
//! sources, which are what the XQuery→SQL/XML rewrite consumes.

use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr};

/// Children model group (XML Schema terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelGroup {
    /// Children appear in declaration order.
    Sequence,
    /// Exactly one of the declared children appears.
    Choice,
    /// All children appear, in any order.
    All,
}

/// Cardinality of a child within its parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cardinality {
    /// Exactly one (`LET`-bindable, no iteration).
    One,
    /// Zero or one.
    Optional,
    /// Zero or more / one or more (`FOR`-iterated).
    Many,
}

impl Cardinality {
    pub fn is_many(self) -> bool {
        matches!(self, Cardinality::Many)
    }

    pub fn from_occurs(min: u32, max: Option<u32>) -> Cardinality {
        match (min, max) {
            (_, None) => Cardinality::Many,
            (_, Some(m)) if m > 1 => Cardinality::Many,
            (0, _) => Cardinality::Optional,
            _ => Cardinality::One,
        }
    }
}

/// How the rows that produce repeated instances of an element are obtained
/// (view-derived structures only).
#[derive(Debug, Clone, PartialEq)]
pub struct RowSource {
    /// The table iterated by the `XMLAgg` subquery.
    pub table: String,
    /// The subquery's predicate terms (correlation + constants).
    pub predicate: Vec<AggPredTerm>,
}

/// Where an element's text content comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum ContentBinding {
    /// No known binding (schema/DTD-derived, or complex content).
    Unbound,
    /// The text is produced by this publishing expression (usually a plain
    /// column reference) — the handle the SQL rewrite uses.
    Pub(PubExpr),
}

/// Declaration of one element.
#[derive(Debug, Clone, PartialEq)]
pub struct ElemDecl {
    pub name: String,
    pub group: ModelGroup,
    pub children: Vec<ChildDecl>,
    /// The element may contain character data.
    pub has_text: bool,
    pub attributes: Vec<String>,
    /// Binding of the text content to relational data, if known.
    pub content: ContentBinding,
    /// Set when instances of this element are produced per row of a table.
    pub row_source: Option<RowSource>,
}

/// A child declaration with its cardinality.
#[derive(Debug, Clone, PartialEq)]
pub struct ChildDecl {
    pub decl: ElemDecl,
    pub card: Cardinality,
}

impl ElemDecl {
    /// A text-only element declaration.
    pub fn leaf(name: &str) -> ElemDecl {
        ElemDecl {
            name: name.to_string(),
            group: ModelGroup::Sequence,
            children: Vec::new(),
            has_text: true,
            attributes: Vec::new(),
            content: ContentBinding::Unbound,
            row_source: None,
        }
    }

    /// An element with children (sequence group, no text).
    pub fn parent(name: &str, children: Vec<ChildDecl>) -> ElemDecl {
        ElemDecl {
            name: name.to_string(),
            group: ModelGroup::Sequence,
            children,
            has_text: false,
            attributes: Vec::new(),
            content: ContentBinding::Unbound,
            row_source: None,
        }
    }

    /// Find a direct child declaration by element name.
    pub fn child(&self, name: &str) -> Option<&ChildDecl> {
        self.children.iter().find(|c| c.decl.name == name)
    }

    /// Navigate a path of child element names.
    pub fn descend(&self, path: &[&str]) -> Option<&ElemDecl> {
        let mut cur = self;
        for p in path {
            cur = &cur.child(p)?.decl;
        }
        Some(cur)
    }

    /// Total number of element declarations in this subtree.
    pub fn decl_count(&self) -> usize {
        1 + self.children.iter().map(|c| c.decl.decl_count()).sum::<usize>()
    }
}

/// Where the structural information came from (§3.2's bullet list).
#[derive(Debug, Clone, PartialEq)]
pub enum Origin {
    /// XML Schema registered for the XMLType (bullet 1).
    Schema,
    /// DTD of the XMLType (bullet 1).
    Dtd,
    /// SQL/XML publishing view over relational data (bullet 2).
    View { base_table: String },
    /// Static typing of an upstream XQuery/XSLT (bullets 3–4).
    StaticTyping,
    /// Hand-constructed (tests, examples).
    Manual,
}

/// Structural information for one XMLType input.
#[derive(Debug, Clone, PartialEq)]
pub struct StructInfo {
    pub root: ElemDecl,
    pub origin: Origin,
}

impl StructInfo {
    pub fn manual(root: ElemDecl) -> StructInfo {
        StructInfo { root, origin: Origin::Manual }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept() -> ElemDecl {
        ElemDecl::parent(
            "dept",
            vec![
                ChildDecl { decl: ElemDecl::leaf("dname"), card: Cardinality::One },
                ChildDecl {
                    decl: ElemDecl::parent(
                        "employees",
                        vec![ChildDecl { decl: ElemDecl::leaf("emp"), card: Cardinality::Many }],
                    ),
                    card: Cardinality::One,
                },
            ],
        )
    }

    #[test]
    fn navigation() {
        let d = dept();
        assert!(d.child("dname").is_some());
        assert!(d.child("nope").is_none());
        assert_eq!(d.descend(&["employees", "emp"]).unwrap().name, "emp");
        assert!(d.descend(&["emp"]).is_none());
    }

    #[test]
    fn decl_count() {
        assert_eq!(dept().decl_count(), 4);
    }

    #[test]
    fn cardinality_from_occurs() {
        assert_eq!(Cardinality::from_occurs(1, Some(1)), Cardinality::One);
        assert_eq!(Cardinality::from_occurs(0, Some(1)), Cardinality::Optional);
        assert_eq!(Cardinality::from_occurs(0, None), Cardinality::Many);
        assert_eq!(Cardinality::from_occurs(1, Some(5)), Cardinality::Many);
    }
}
