//! Structural information from an XML Schema document (paper §3.2, bullet
//! 1). Supports the inline-complex-type subset: a single top-level
//! `xs:element` whose type is either a simple type (text leaf) or an inline
//! `xs:complexType` with one `xs:sequence` / `xs:choice` / `xs:all` group of
//! nested `xs:element`s (with `minOccurs`/`maxOccurs`) and `xs:attribute`s.

use crate::model::{Cardinality, ChildDecl, ContentBinding, ElemDecl, ModelGroup, Origin, StructInfo};
use xsltdb_xml::{Document, NodeId, NodeKind};

/// XSD parse/derivation error.
#[derive(Debug, Clone, PartialEq)]
pub struct XsdError(pub String);

impl std::fmt::Display for XsdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XSD error: {}", self.0)
    }
}

impl std::error::Error for XsdError {}

const XS_NS: &str = "http://www.w3.org/2001/XMLSchema";

/// Parse an XSD document text and derive the root element structure.
pub fn struct_of_xsd(xsd_text: &str) -> Result<StructInfo, XsdError> {
    let doc = xsltdb_xml::parse::parse_trimmed(xsd_text)
        .map_err(|e| XsdError(e.to_string()))?;
    struct_of_xsd_doc(&doc)
}

/// Derive from a parsed XSD document.
pub fn struct_of_xsd_doc(doc: &Document) -> Result<StructInfo, XsdError> {
    let schema = doc
        .root_element()
        .filter(|&r| is_xs(doc, r, "schema"))
        .ok_or_else(|| XsdError("expected <xs:schema> root".into()))?;
    let top = doc
        .children(schema)
        .find(|&c| is_xs(doc, c, "element"))
        .ok_or_else(|| XsdError("no top-level <xs:element>".into()))?;
    let root = element_decl(doc, top)?;
    Ok(StructInfo { root, origin: Origin::Schema })
}

fn is_xs(doc: &Document, node: NodeId, local: &str) -> bool {
    match doc.kind(node) {
        NodeKind::Element { name, .. } => {
            &*name.local == local && name.ns_uri.as_deref() == Some(XS_NS)
        }
        _ => false,
    }
}

fn element_decl(doc: &Document, el: NodeId) -> Result<ElemDecl, XsdError> {
    let name = doc
        .attribute(el, "name")
        .ok_or_else(|| XsdError("xs:element without name".into()))?
        .to_string();
    // Simple-typed element → text leaf.
    if doc.attribute(el, "type").is_some() {
        return Ok(ElemDecl::leaf(&name));
    }
    let ct = doc
        .children(el)
        .find(|&c| is_xs(doc, c, "complexType"));
    let Some(ct) = ct else {
        // No type information at all: treat as a text leaf.
        return Ok(ElemDecl::leaf(&name));
    };
    let mut decl = ElemDecl {
        name,
        group: ModelGroup::Sequence,
        children: Vec::new(),
        has_text: doc.attribute(ct, "mixed") == Some("true"),
        attributes: Vec::new(),
        content: ContentBinding::Unbound,
        row_source: None,
    };
    for c in doc.children(ct) {
        if is_xs(doc, c, "attribute") {
            if let Some(an) = doc.attribute(c, "name") {
                decl.attributes.push(an.to_string());
            }
            continue;
        }
        let group = if is_xs(doc, c, "sequence") {
            ModelGroup::Sequence
        } else if is_xs(doc, c, "choice") {
            ModelGroup::Choice
        } else if is_xs(doc, c, "all") {
            ModelGroup::All
        } else {
            continue;
        };
        decl.group = group;
        for child in doc.children(c) {
            if !is_xs(doc, child, "element") {
                continue;
            }
            let card = occurs(doc, child)?;
            decl.children.push(ChildDecl { decl: element_decl(doc, child)?, card });
        }
        // `xs:simpleContent`-free complex types with a group but also text
        // are only representable via mixed="true", handled above.
    }
    Ok(decl)
}

fn occurs(doc: &Document, el: NodeId) -> Result<Cardinality, XsdError> {
    let min: u32 = match doc.attribute(el, "minOccurs") {
        Some(s) => s.parse().map_err(|_| XsdError(format!("bad minOccurs `{s}`")))?,
        None => 1,
    };
    let max: Option<u32> = match doc.attribute(el, "maxOccurs") {
        Some("unbounded") => None,
        Some(s) => Some(s.parse().map_err(|_| XsdError(format!("bad maxOccurs `{s}`")))?),
        None => Some(1),
    };
    Ok(Cardinality::from_occurs(min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEPT_XSD: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="dept">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="dname" type="xs:string"/>
        <xs:element name="loc" type="xs:string" minOccurs="0"/>
        <xs:element name="employees">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="emp" minOccurs="0" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="empno" type="xs:integer"/>
                    <xs:element name="sal" type="xs:decimal"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="no"/>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

    #[test]
    fn parses_nested_schema() {
        let info = struct_of_xsd(DEPT_XSD).unwrap();
        assert_eq!(info.root.name, "dept");
        assert_eq!(info.origin, Origin::Schema);
        assert_eq!(info.root.group, ModelGroup::Sequence);
        assert_eq!(info.root.attributes, vec!["no"]);
        assert_eq!(info.root.child("loc").unwrap().card, Cardinality::Optional);
        let emp = info.root.child("employees").unwrap().decl.child("emp").unwrap();
        assert_eq!(emp.card, Cardinality::Many);
        assert!(info.root.descend(&["employees", "emp", "sal"]).unwrap().has_text);
    }

    #[test]
    fn choice_group() {
        let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="r">
    <xs:complexType>
      <xs:choice>
        <xs:element name="a" type="xs:string"/>
        <xs:element name="b" type="xs:string"/>
      </xs:choice>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;
        let info = struct_of_xsd(xsd).unwrap();
        assert_eq!(info.root.group, ModelGroup::Choice);
    }

    #[test]
    fn mixed_content_flag() {
        let xsd = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="p">
    <xs:complexType mixed="true">
      <xs:sequence>
        <xs:element name="b" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;
        let info = struct_of_xsd(xsd).unwrap();
        assert!(info.root.has_text);
    }

    #[test]
    fn untyped_element_is_leaf() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="x"/></xs:schema>"#;
        let info = struct_of_xsd(xsd).unwrap();
        assert!(info.root.has_text);
        assert!(info.root.children.is_empty());
    }

    #[test]
    fn non_schema_rejected() {
        assert!(struct_of_xsd("<foo/>").is_err());
        assert!(struct_of_xsd(
            r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>"#
        )
        .is_err());
    }
}
