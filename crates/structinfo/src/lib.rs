//! # xsltdb-structinfo
//!
//! XML structural information (paper §3.2): the model of element
//! declarations with model groups and cardinalities, derivations from every
//! source the paper lists — DTD, XML Schema, SQL/XML publishing views over
//! relational data, and static typing of upstream XQuery — and the
//! annotated *sample document* generator (§4.2) the partial evaluator runs
//! the XSLTVM against.
//!
//! View-derived structures additionally carry *bindings*: which relational
//! column produces each text node and which table's rows produce each
//! repeated element. Those bindings are what the XQuery→SQL/XML rewrite in
//! the `xsltdb` core crate consumes.
//!
//! ```
//! use xsltdb_structinfo::{struct_of_dtd, Cardinality};
//!
//! let dtd = r#"<!ELEMENT dept (emp*)> <!ELEMENT emp (#PCDATA)>"#;
//! let info = struct_of_dtd(dtd, "dept").unwrap();
//! assert_eq!(info.root.name, "dept");
//! let emp = &info.root.children[0];
//! assert_eq!((emp.decl.name.as_str(), emp.card), ("emp", Cardinality::Many));
//! ```

pub mod canonical;
pub mod dtd;
pub mod from_typing;
pub mod from_view;
pub mod model;
pub mod sample;
pub mod xsd;

pub use canonical::{
    canonicalize, canonicalize_view, struct_fingerprint, BindingTemplate, CanonicalStruct,
    ViewCanon,
};
pub use dtd::{struct_of_dtd, DtdError};
pub use from_typing::{struct_of_query_result, TypingError};
pub use from_view::{struct_of_view, DeriveError};
pub use model::{
    Cardinality, ChildDecl, ContentBinding, ElemDecl, ModelGroup, Origin, RowSource, StructInfo,
};
pub use sample::{generate_annotated, SampleDoc, SampleNode, SAMPLE_TEXT};
pub use xsd::{struct_of_xsd, struct_of_xsd_doc, XsdError};
