//! Structural information from SQL/XML publishing views (paper §3.2,
//! bullet 2): the view's construction expression *is* the structure, and it
//! also tells us which column produces each text node and which table's
//! rows produce each repeated element — exactly the bindings the
//! XQuery→SQL/XML rewrite needs.

use crate::model::{
    Cardinality, ChildDecl, ContentBinding, ElemDecl, ModelGroup, Origin, RowSource, StructInfo,
};
use xsltdb_relstore::pubexpr::PubExpr;
use xsltdb_relstore::XmlView;

/// Error deriving structure from a view.
#[derive(Debug, Clone, PartialEq)]
pub struct DeriveError(pub String);

impl std::fmt::Display for DeriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "structure derivation error: {}", self.0)
    }
}

impl std::error::Error for DeriveError {}

/// Derive [`StructInfo`] from an XMLType view definition.
pub fn struct_of_view(view: &XmlView) -> Result<StructInfo, DeriveError> {
    let root = elem_of_pub(&view.query.select)?.ok_or_else(|| {
        DeriveError(format!("view {} does not construct a root element", view.name))
    })?;
    Ok(StructInfo {
        root,
        origin: Origin::View { base_table: view.query.base_table.clone() },
    })
}

/// Derive the element declaration built by a publishing expression;
/// `Ok(None)` when the expression is pure text.
fn elem_of_pub(e: &PubExpr) -> Result<Option<ElemDecl>, DeriveError> {
    match e {
        PubExpr::Element { name, attrs, children } => {
            let mut decl = ElemDecl {
                name: name.clone(),
                group: ModelGroup::Sequence,
                children: Vec::new(),
                has_text: false,
                attributes: attrs.iter().map(|(n, _)| n.clone()).collect(),
                content: ContentBinding::Unbound,
                row_source: None,
            };
            let mut text_exprs: Vec<PubExpr> = Vec::new();
            collect_children(children, &mut decl, &mut text_exprs)?;
            if !text_exprs.is_empty() {
                decl.has_text = true;
                decl.content = ContentBinding::Pub(if text_exprs.len() == 1 {
                    text_exprs.pop().expect("non-empty")
                } else {
                    PubExpr::StrConcat(text_exprs)
                });
            }
            Ok(Some(decl))
        }
        _ => Ok(None),
    }
}

fn collect_children(
    children: &[PubExpr],
    decl: &mut ElemDecl,
    text_exprs: &mut Vec<PubExpr>,
) -> Result<(), DeriveError> {
    for c in children {
        match c {
            PubExpr::Element { .. } => {
                let child = elem_of_pub(c)?.expect("element case");
                decl.children.push(ChildDecl { decl: child, card: Cardinality::One });
            }
            PubExpr::Concat(inner) => collect_children(inner, decl, text_exprs)?,
            PubExpr::Literal(_) | PubExpr::ColumnRef { .. } | PubExpr::StrConcat(_)
            | PubExpr::ScalarAgg { .. } => {
                text_exprs.push(c.clone());
            }
            PubExpr::Case { .. } | PubExpr::Arith { .. } => {
                return Err(DeriveError(
                    "CASE/arithmetic expressions are not supported in view definitions".into(),
                ))
            }
            PubExpr::Comment(_) | PubExpr::Pi { .. } | PubExpr::RowNumber { .. } => {
                return Err(DeriveError(
                    "comment/PI/row-number expressions are not supported in view definitions"
                        .into(),
                ))
            }
            PubExpr::Agg { table, predicate, body, .. } => {
                let mut child = elem_of_pub(body)?.ok_or_else(|| {
                    DeriveError("XMLAgg body must construct an element".into())
                })?;
                child.row_source =
                    Some(RowSource { table: table.clone(), predicate: predicate.clone() });
                decl.children.push(ChildDecl { decl: child, card: Cardinality::Many });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_relstore::exec::Conjunction;
    use xsltdb_relstore::pubexpr::{AggPredTerm, SqlXmlQuery};

    fn dept_emp_view() -> XmlView {
        XmlView::new(
            "dept_emp",
            SqlXmlQuery {
                base_table: "dept".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem(
                    "dept",
                    vec![
                        PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                        PubExpr::elem("loc", vec![PubExpr::col("dept", "loc")]),
                        PubExpr::elem(
                            "employees",
                            vec![PubExpr::Agg {
                                table: "emp".into(),
                                predicate: vec![AggPredTerm::Correlate {
                                    inner_column: "deptno".into(),
                                    outer_table: "dept".into(),
                                    outer_column: "deptno".into(),
                                }],
                                order_by: Vec::new(),
                                body: Box::new(PubExpr::elem(
                                    "emp",
                                    vec![
                                        PubExpr::elem(
                                            "empno",
                                            vec![PubExpr::col("emp", "empno")],
                                        ),
                                        PubExpr::elem("sal", vec![PubExpr::col("emp", "sal")]),
                                    ],
                                )),
                            }],
                        ),
                    ],
                ),
            },
        )
    }

    #[test]
    fn derives_dept_structure() {
        let info = struct_of_view(&dept_emp_view()).unwrap();
        assert_eq!(info.root.name, "dept");
        assert_eq!(info.root.children.len(), 3);
        assert_eq!(info.origin, Origin::View { base_table: "dept".into() });
        let dname = info.root.child("dname").unwrap();
        assert_eq!(dname.card, Cardinality::One);
        assert!(dname.decl.has_text);
        assert!(matches!(
            dname.decl.content,
            ContentBinding::Pub(PubExpr::ColumnRef { .. })
        ));
    }

    #[test]
    fn agg_body_is_many_with_row_source() {
        let info = struct_of_view(&dept_emp_view()).unwrap();
        let emp = info.root.descend(&["employees", "emp"]).unwrap();
        let employees = info.root.child("employees").unwrap();
        let emp_child = employees.decl.child("emp").unwrap();
        assert_eq!(emp_child.card, Cardinality::Many);
        let rs = emp.row_source.as_ref().unwrap();
        assert_eq!(rs.table, "emp");
        assert_eq!(rs.predicate.len(), 1);
    }

    #[test]
    fn column_bindings_recorded() {
        let info = struct_of_view(&dept_emp_view()).unwrap();
        let sal = info.root.descend(&["employees", "emp", "sal"]).unwrap();
        match &sal.content {
            ContentBinding::Pub(PubExpr::ColumnRef { table, column }) => {
                assert_eq!(table, "emp");
                assert_eq!(column, "sal");
            }
            other => panic!("expected column binding, got {other:?}"),
        }
    }

    #[test]
    fn non_element_root_rejected() {
        let v = XmlView::new(
            "bad",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::lit("just text"),
            },
        );
        assert!(struct_of_view(&v).is_err());
    }

    #[test]
    fn mixed_literal_and_column_becomes_strconcat_binding() {
        let v = XmlView::new(
            "v",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem(
                    "x",
                    vec![PubExpr::lit("Name: "), PubExpr::col("t", "name")],
                ),
            },
        );
        let info = struct_of_view(&v).unwrap();
        assert!(matches!(info.root.content, ContentBinding::Pub(PubExpr::StrConcat(_))));
    }
}
