//! Canonicalisation of view-derived structures (ROADMAP: cross-document
//! plan reuse): replace every concrete table name in a [`StructInfo`] with
//! a symbolic slot (`$t0`, `$t1`, …) so that two views publishing the same
//! *shape* from differently-named relations canonicalise to byte-identical
//! structures — and therefore to the same fingerprint, the same rewrite,
//! and ultimately the same cached plan. The [`BindingTemplate`] remembers
//! which concrete table each slot stood for, so the plan can be re-bound to
//! any member of the shape family at execute time.
//!
//! Only *table* names are canonicalised. Element tags, attribute names and
//! column names are part of the shape: two views that publish different
//! tags or draw different columns are different transforms and must not
//! share a plan.

use crate::from_view::struct_of_view;
use crate::model::{ContentBinding, ElemDecl, StructInfo};
use xsltdb_relstore::binding::{fnv64, slot_name, SlotBindings};
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr};
use xsltdb_relstore::view::XmlView;

/// A [`StructInfo`] whose table names are all symbolic slots, plus the
/// fingerprint that identifies the shape family.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalStruct {
    pub info: StructInfo,
    /// `struct_fingerprint` of the canonicalised structure — equal for all
    /// same-shaped views regardless of their table names.
    pub fingerprint: u64,
}

/// The concrete table that each slot replaced, in slot order: `tables[i]`
/// is what `$ti` stood for in the view this template was derived from.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BindingTemplate {
    pub tables: Vec<String>,
}

impl BindingTemplate {
    pub fn slot_count(&self) -> usize {
        self.tables.len()
    }

    /// The execute-time binding that maps each slot back to the table it
    /// replaced — binding a canonical plan to its *own* view.
    pub fn bindings(&self) -> SlotBindings {
        SlotBindings::from_tables(&self.tables)
    }
}

/// Fingerprint of a structure: FNV-1a over its `Debug` rendering, which is
/// a complete, deterministic serialisation of the model. Canonicalise
/// first when the fingerprint should identify a shape *family* rather than
/// one concrete view.
pub fn struct_fingerprint(info: &StructInfo) -> u64 {
    fnv64(format!("{info:?}").as_bytes())
}

/// Slot assignment: concrete table names in deterministic first-visit
/// order. Repeat references to the same table map to the same slot, so a
/// view joining a table to itself keeps a different shape from one joining
/// two distinct tables.
#[derive(Default)]
struct Slots {
    tables: Vec<String>,
}

impl Slots {
    fn slot_of(&mut self, table: &str) -> String {
        let i = match self.tables.iter().position(|t| t == table) {
            Some(i) => i,
            None => {
                self.tables.push(table.to_string());
                self.tables.len() - 1
            }
        };
        slot_name(i)
    }

    fn rename(&mut self, table: &mut String) {
        *table = self.slot_of(table);
    }
}

/// Canonicalise a structure: every table name (in the origin, row sources,
/// and content publishing expressions) becomes a symbolic slot. Returns
/// the canonical structure with its family fingerprint and the template
/// mapping slots back to this structure's concrete tables.
pub fn canonicalize(info: &StructInfo) -> (CanonicalStruct, BindingTemplate) {
    let mut slots = Slots::default();
    let mut canon = info.clone();
    if let crate::model::Origin::View { base_table } = &mut canon.origin {
        slots.rename(base_table);
    }
    canon_elem(&mut canon.root, &mut slots);
    let template = BindingTemplate { tables: slots.tables };
    let fingerprint = struct_fingerprint(&canon);
    (CanonicalStruct { info: canon, fingerprint }, template)
}

fn canon_elem(decl: &mut ElemDecl, slots: &mut Slots) {
    if let Some(rs) = &mut decl.row_source {
        slots.rename(&mut rs.table);
        for term in &mut rs.predicate {
            canon_term(term, slots);
        }
    }
    if let ContentBinding::Pub(expr) = &mut decl.content {
        canon_pub(expr, slots);
    }
    for child in &mut decl.children {
        canon_elem(&mut child.decl, slots);
    }
}

fn canon_term(term: &mut AggPredTerm, slots: &mut Slots) {
    if let AggPredTerm::Correlate { outer_table, .. } = term {
        slots.rename(outer_table);
    }
}

fn canon_pub(expr: &mut PubExpr, slots: &mut Slots) {
    match expr {
        PubExpr::Literal(_) => {}
        PubExpr::ColumnRef { table, .. } => slots.rename(table),
        PubExpr::Element { attrs, children, .. } => {
            for (_, v) in attrs {
                canon_pub(v, slots);
            }
            for c in children {
                canon_pub(c, slots);
            }
        }
        PubExpr::Concat(parts) | PubExpr::StrConcat(parts) => {
            for p in parts {
                canon_pub(p, slots);
            }
        }
        PubExpr::Agg { table, predicate, body, .. } => {
            slots.rename(table);
            for t in predicate {
                canon_term(t, slots);
            }
            canon_pub(body, slots);
        }
        PubExpr::Arith { left, right, .. } => {
            canon_pub(left, slots);
            canon_pub(right, slots);
        }
        PubExpr::Case { table, then, els, .. } => {
            slots.rename(table);
            canon_pub(then, slots);
            canon_pub(els, slots);
        }
        PubExpr::ScalarAgg { table, predicate, .. } => {
            slots.rename(table);
            for t in predicate {
                canon_term(t, slots);
            }
        }
        PubExpr::Comment(content) => canon_pub(content, slots),
        PubExpr::Pi { content, .. } => canon_pub(content, slots),
        PubExpr::RowNumber { table } => slots.rename(table),
    }
}

/// Everything the plan path needs to know about one view's canonical form:
/// the family fingerprint, the slot count, the execute-time bindings for
/// *this* view, and (when derivable) the canonical structure itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewCanon {
    /// Family fingerprint: canonical-structure fingerprint for derivable
    /// views; a per-view "unstructured" digest otherwise (never shared).
    pub fingerprint: u64,
    pub slot_count: usize,
    /// Slot → this view's concrete tables.
    pub bindings: SlotBindings,
    /// The canonicalised structure, when the view is derivable.
    pub canonical: Option<StructInfo>,
    /// The derivation error text for underivable views.
    pub note: Option<String>,
}

/// Canonicalise a view end to end: derive its structure, canonicalise it,
/// and package fingerprint + bindings. Underivable views get a fingerprint
/// salted with the derivation error (which names the view), so they can
/// never share a plan — exactly the old per-view fingerprint behaviour.
pub fn canonicalize_view(view: &XmlView) -> ViewCanon {
    match struct_of_view(view) {
        Ok(info) => {
            let (canon, template) = canonicalize(&info);
            ViewCanon {
                fingerprint: canon.fingerprint,
                slot_count: template.slot_count(),
                bindings: template.bindings(),
                canonical: Some(canon.info),
                note: None,
            }
        }
        Err(e) => ViewCanon {
            fingerprint: fnv64(format!("unstructured:{e}").as_bytes()),
            slot_count: 0,
            bindings: SlotBindings::identity(),
            canonical: None,
            note: Some(e.to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
    use xsltdb_relstore::{CmpOp, ColumnCmp, Conjunction};

    /// A view shaped like the paper's dept/emp publishing view, over
    /// arbitrarily-named tables.
    fn family_view(view: &str, dept: &str, emp: &str) -> XmlView {
        let select = PubExpr::elem(
            "dept",
            vec![
                PubExpr::elem("dname", vec![PubExpr::col(dept, "dname")]),
                PubExpr::Agg {
                    table: emp.to_string(),
                    predicate: vec![AggPredTerm::Correlate {
                        inner_column: "deptno".into(),
                        outer_table: dept.to_string(),
                        outer_column: "deptno".into(),
                    }],
                    order_by: Vec::new(),
                    body: Box::new(PubExpr::elem(
                        "emp",
                        vec![PubExpr::elem("ename", vec![PubExpr::col(emp, "ename")])],
                    )),
                },
            ],
        );
        XmlView::new(
            view,
            SqlXmlQuery {
                base_table: dept.to_string(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select,
            },
        )
    }

    #[test]
    fn same_shape_different_tables_canonicalise_identically() {
        let a = canonicalize_view(&family_view("va", "dept", "emp"));
        let b = canonicalize_view(&family_view("vb", "division", "worker"));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.canonical, b.canonical, "canonical structures byte-identical");
        assert_eq!(a.slot_count, 2);
        // ... but the bindings remember each view's own tables.
        assert_eq!(a.bindings.get("$t0"), Some("dept"));
        assert_eq!(b.bindings.get("$t0"), Some("division"));
        assert_eq!(b.bindings.get("$t1"), Some("worker"));
    }

    #[test]
    fn slots_are_assigned_in_first_visit_order_and_dedup() {
        let v = family_view("v", "dept", "emp");
        let info = struct_of_view(&v).unwrap();
        let (canon, template) = canonicalize(&info);
        // dept is visited first (origin base table), emp second; the
        // correlate back to dept reuses $t0 rather than minting $t2.
        assert_eq!(template.tables, vec!["dept".to_string(), "emp".to_string()]);
        assert_eq!(
            canon.info.origin,
            crate::model::Origin::View { base_table: "$t0".into() }
        );
        let rendered = format!("{:?}", canon.info);
        assert!(!rendered.contains("table: \"dept\""), "concrete table left: {rendered}");
        assert!(!rendered.contains("table: \"emp\""), "concrete table left: {rendered}");
        assert!(!rendered.contains("base_table: \"dept\""), "concrete base left: {rendered}");
    }

    #[test]
    fn different_shape_means_different_fingerprint() {
        // Same tags, but the inner element draws a different column —
        // a different transform, so a different family.
        let mut alt = family_view("v", "dept", "emp");
        if let PubExpr::Element { children, .. } = &mut alt.query.select {
            children[0] = PubExpr::elem("dname", vec![PubExpr::col("dept", "loc")]);
        }
        let a = canonicalize_view(&family_view("v", "dept", "emp"));
        let b = canonicalize_view(&alt);
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn self_join_shape_differs_from_two_table_shape() {
        // Publishing emp-from-dept's-own-table is a different shape than
        // publishing from a second relation.
        let joined = canonicalize_view(&family_view("v", "dept", "emp"));
        let selfed = canonicalize_view(&family_view("v", "dept", "dept"));
        assert_ne!(joined.fingerprint, selfed.fingerprint);
        assert_eq!(selfed.slot_count, 1);
    }

    #[test]
    fn underivable_views_never_share_a_fingerprint() {
        let bare = |name: &str| {
            XmlView::new(
                name,
                SqlXmlQuery {
                    base_table: "t".into(),
                    where_clause: Conjunction::single("v", CmpOp::Eq, xsltdb_relstore::Datum::Int(1)),
                    order_by: Vec::new(),
                    select: PubExpr::lit("no root element"),
                },
            )
        };
        let a = canonicalize_view(&bare("va"));
        let b = canonicalize_view(&bare("vb"));
        assert!(a.canonical.is_none() && a.note.is_some());
        assert_ne!(a.fingerprint, b.fingerprint, "error text names the view");
        let _ = ColumnCmp::new("v", CmpOp::Eq, xsltdb_relstore::Datum::Int(1));
    }
}
