//! Sample document generation (paper §4.2): a document that captures all
//! the structural information of the input XMLType but none of its content.
//! The partial evaluator runs the XSLTVM over this document with trace
//! instructions enabled.
//!
//! Two forms are generated:
//!
//! * the *clean* sample used for tracing, accompanied by a node→declaration
//!   map so trace events can be resolved back to structure positions;
//! * an *annotated* sample carrying `xdb:*` attributes (model group,
//!   cardinality) in the predefined namespace — the human-readable artefact
//!   the paper describes.

use crate::model::{Cardinality, ChildDecl, ElemDecl, ModelGroup, StructInfo};
use std::collections::HashMap;
use xsltdb_xml::{Document, NodeId, QName, TreeBuilder, XDB_NS};

/// The sentinel placed in text and attribute positions of the sample.
pub const SAMPLE_TEXT: &str = "0";

/// Where a sample node sits in the declaration tree. Paths are child-index
/// routes from the root declaration (the root element's path is empty).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SampleNode {
    Element(Vec<usize>),
    /// A text child of the element at the path.
    Text(Vec<usize>),
    /// An attribute (by name) of the element at the path.
    Attribute(Vec<usize>, String),
    /// The document node.
    Root,
}

/// The generated sample document plus its node→structure map.
pub struct SampleDoc {
    pub doc: Document,
    node_map: HashMap<NodeId, SampleNode>,
}

impl SampleDoc {
    /// Generate the clean (trace) sample for a structure.
    pub fn generate(info: &StructInfo) -> SampleDoc {
        let mut b = TreeBuilder::new();
        let mut map = HashMap::new();
        map.insert(NodeId::DOCUMENT, SampleNode::Root);
        emit(&info.root, &mut b, &mut map, &mut Vec::new());
        SampleDoc { doc: b.finish(), node_map: map }
    }

    /// Where does this sample node sit in the declaration tree?
    pub fn locate(&self, node: NodeId) -> Option<&SampleNode> {
        self.node_map.get(&node)
    }

    /// Resolve a declaration path back to the declaration.
    pub fn decl_at<'a>(info: &'a StructInfo, path: &[usize]) -> &'a ElemDecl {
        let mut cur = &info.root;
        for &i in path {
            cur = &cur.children[i].decl;
        }
        cur
    }
}

fn emit(
    decl: &ElemDecl,
    b: &mut TreeBuilder,
    map: &mut HashMap<NodeId, SampleNode>,
    path: &mut Vec<usize>,
) {
    let el = b.start_element(QName::local(&decl.name));
    map.insert(el, SampleNode::Element(path.clone()));
    // The append-only builder allocates attribute nodes at el+1, el+2, …
    // and the first child right after them — that invariant gives us the
    // node ids without needing the builder to return them.
    for (i, a) in decl.attributes.iter().enumerate() {
        b.attribute(QName::local(a), SAMPLE_TEXT);
        map.insert(
            NodeId(el.0 + 1 + i as u32),
            SampleNode::Attribute(path.clone(), a.clone()),
        );
    }
    if decl.has_text {
        b.text(SAMPLE_TEXT);
        map.insert(
            NodeId(el.0 + 1 + decl.attributes.len() as u32),
            SampleNode::Text(path.clone()),
        );
    }
    for (i, child) in decl.children.iter().enumerate() {
        path.push(i);
        emit(&child.decl, b, map, path);
        path.pop();
    }
    b.end_element();
}

/// Generate the annotated sample (with `xdb:*` structure attributes).
pub fn generate_annotated(info: &StructInfo) -> Document {
    let mut b = TreeBuilder::new();
    emit_annotated(&info.root, None, true, &mut b);
    b.finish()
}

fn emit_annotated(
    decl: &ElemDecl,
    occurs: Option<Cardinality>,
    is_root: bool,
    b: &mut TreeBuilder,
) {
    b.start_element(QName::local(&decl.name));
    if is_root {
        b.attribute(
            QName { prefix: None, local: "xmlns:xdb".into(), ns_uri: None },
            XDB_NS,
        );
    }
    if let Some(card) = occurs {
        let o = match card {
            Cardinality::One => "one",
            Cardinality::Optional => "optional",
            Cardinality::Many => "unbounded",
        };
        b.attribute(QName::prefixed("xdb", "occurs", XDB_NS), o);
    }
    if decl.group != ModelGroup::Sequence {
        let g = match decl.group {
            ModelGroup::Choice => "choice",
            ModelGroup::All => "all",
            ModelGroup::Sequence => unreachable!("guarded above"),
        };
        b.attribute(QName::prefixed("xdb", "group", XDB_NS), g);
    }
    for a in &decl.attributes {
        b.attribute(QName::local(a), SAMPLE_TEXT);
    }
    if decl.has_text {
        b.text(SAMPLE_TEXT);
    }
    for ChildDecl { decl: child, card } in &decl.children {
        emit_annotated(child, Some(*card), false, b);
    }
    b.end_element();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ChildDecl, StructInfo};

    fn dept_info() -> StructInfo {
        let mut dept = ElemDecl::parent(
            "dept",
            vec![
                ChildDecl { decl: ElemDecl::leaf("dname"), card: Cardinality::One },
                ChildDecl { decl: ElemDecl::leaf("loc"), card: Cardinality::Optional },
                ChildDecl {
                    decl: ElemDecl::parent(
                        "employees",
                        vec![ChildDecl {
                            decl: ElemDecl::parent(
                                "emp",
                                vec![
                                    ChildDecl {
                                        decl: ElemDecl::leaf("empno"),
                                        card: Cardinality::One,
                                    },
                                    ChildDecl {
                                        decl: ElemDecl::leaf("sal"),
                                        card: Cardinality::One,
                                    },
                                ],
                            ),
                            card: Cardinality::Many,
                        }],
                    ),
                    card: Cardinality::One,
                },
            ],
        );
        dept.attributes.push("no".into());
        StructInfo::manual(dept)
    }

    #[test]
    fn clean_sample_structure() {
        let info = dept_info();
        let s = SampleDoc::generate(&info);
        let xml = xsltdb_xml::to_string(&s.doc);
        assert_eq!(
            xml,
            r#"<dept no="0"><dname>0</dname><loc>0</loc><employees><emp><empno>0</empno><sal>0</sal></emp></employees></dept>"#
        );
    }

    #[test]
    fn node_map_resolves_elements_and_text() {
        let info = dept_info();
        let s = SampleDoc::generate(&info);
        let root = s.doc.root_element().unwrap();
        assert_eq!(s.locate(root), Some(&SampleNode::Element(vec![])));
        let dname = s.doc.child_element(root, "dname").unwrap();
        assert_eq!(s.locate(dname), Some(&SampleNode::Element(vec![0])));
        let text = s.doc.children(dname).next().unwrap();
        assert_eq!(s.locate(text), Some(&SampleNode::Text(vec![0])));
        let emp = s
            .doc
            .child_element(s.doc.child_element(root, "employees").unwrap(), "emp")
            .unwrap();
        assert_eq!(s.locate(emp), Some(&SampleNode::Element(vec![2, 0])));
    }

    #[test]
    fn every_node_is_mapped() {
        let info = dept_info();
        let s = SampleDoc::generate(&info);
        for n in 0..s.doc.node_count() {
            assert!(
                s.locate(NodeId(n as u32)).is_some(),
                "node {n} unmapped"
            );
        }
    }

    #[test]
    fn attribute_nodes_mapped() {
        let info = dept_info();
        let s = SampleDoc::generate(&info);
        let root = s.doc.root_element().unwrap();
        let attr = s.doc.attributes(root)[0];
        assert_eq!(
            s.locate(attr),
            Some(&SampleNode::Attribute(vec![], "no".into()))
        );
    }

    #[test]
    fn decl_at_resolves_paths() {
        let info = dept_info();
        assert_eq!(SampleDoc::decl_at(&info, &[]).name, "dept");
        assert_eq!(SampleDoc::decl_at(&info, &[2, 0, 1]).name, "sal");
    }

    #[test]
    fn annotated_sample_has_xdb_attrs() {
        let info = dept_info();
        let doc = generate_annotated(&info);
        let xml = xsltdb_xml::to_string(&doc);
        assert!(xml.contains(r#"xdb:occurs="unbounded""#), "{xml}");
        assert!(xml.contains(r#"xdb:occurs="optional""#));
        assert!(xml.contains("xmlns:xdb"));
    }
}
