//! Structural information from a DTD internal subset (paper §3.2, bullet 1).
//!
//! Supports the common single-level content models: `EMPTY`, `(#PCDATA)`,
//! mixed `(#PCDATA | a | b)*`, and one group of named children with `,` or
//! `|` separators and `?`/`*`/`+` cardinalities, plus `<!ATTLIST>`.
//! Recursive element structures are rejected — the paper (§7.2) explicitly
//! leaves recursive documents to future work.

use crate::model::{Cardinality, ChildDecl, ElemDecl, ModelGroup, Origin, StructInfo};
use std::collections::HashMap;

/// DTD parse/derivation error.
#[derive(Debug, Clone, PartialEq)]
pub struct DtdError(pub String);

impl std::fmt::Display for DtdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DTD error: {}", self.0)
    }
}

impl std::error::Error for DtdError {}

#[derive(Debug, Clone)]
struct RawDecl {
    group: ModelGroup,
    children: Vec<(String, Cardinality)>,
    has_text: bool,
}

/// Parse an internal DTD subset and build the structure rooted at `root`.
pub fn struct_of_dtd(subset: &str, root: &str) -> Result<StructInfo, DtdError> {
    let (decls, atts) = parse_subset(subset)?;
    let mut stack = Vec::new();
    let root_decl = build(root, &decls, &atts, &mut stack)?;
    Ok(StructInfo { root: root_decl, origin: Origin::Dtd })
}

fn build(
    name: &str,
    decls: &HashMap<String, RawDecl>,
    atts: &HashMap<String, Vec<String>>,
    stack: &mut Vec<String>,
) -> Result<ElemDecl, DtdError> {
    if stack.iter().any(|s| s == name) {
        return Err(DtdError(format!(
            "recursive element structure through <{name}> is not supported (paper §7.2)"
        )));
    }
    let raw = decls.get(name);
    let mut decl = match raw {
        None => ElemDecl::leaf(name), // undeclared: assume text leaf
        Some(r) => {
            stack.push(name.to_string());
            let mut children = Vec::with_capacity(r.children.len());
            for (cname, card) in &r.children {
                children.push(ChildDecl {
                    decl: build(cname, decls, atts, stack)?,
                    card: *card,
                });
            }
            stack.pop();
            ElemDecl {
                name: name.to_string(),
                group: r.group,
                children,
                has_text: r.has_text,
                attributes: Vec::new(),
                content: crate::model::ContentBinding::Unbound,
                row_source: None,
            }
        }
    };
    if let Some(a) = atts.get(name) {
        decl.attributes = a.clone();
    }
    Ok(decl)
}

type ParsedSubset = (HashMap<String, RawDecl>, HashMap<String, Vec<String>>);

fn parse_subset(subset: &str) -> Result<ParsedSubset, DtdError> {
    let mut decls = HashMap::new();
    let mut atts: HashMap<String, Vec<String>> = HashMap::new();
    let mut rest = subset;
    while let Some(start) = rest.find("<!") {
        rest = &rest[start..];
        let end = rest
            .find('>')
            .ok_or_else(|| DtdError("unterminated declaration".into()))?;
        let decl_text = &rest[2..end];
        rest = &rest[end + 1..];
        if let Some(body) = decl_text.strip_prefix("ELEMENT") {
            let body = body.trim();
            let (name, content) = body
                .split_once(char::is_whitespace)
                .ok_or_else(|| DtdError(format!("malformed ELEMENT decl `{body}`")))?;
            decls.insert(name.to_string(), parse_content_model(content.trim())?);
        } else if let Some(body) = decl_text.strip_prefix("ATTLIST") {
            let mut parts = body.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| DtdError("ATTLIST without element name".into()))?;
            // Attribute declarations come in (name, type, default) triples;
            // defaults like #IMPLIED may be the whole third token.
            let tokens: Vec<&str> = parts.collect();
            let mut i = 0;
            while i + 1 < tokens.len() {
                atts.entry(name.to_string())
                    .or_default()
                    .push(tokens[i].to_string());
                // Skip type and default (default may be a quoted literal).
                i += 3;
            }
        }
        // Other declarations (<!ENTITY>, comments) are ignored.
    }
    Ok((decls, atts))
}

fn parse_content_model(content: &str) -> Result<RawDecl, DtdError> {
    let c = content.trim();
    if c == "EMPTY" {
        return Ok(RawDecl { group: ModelGroup::Sequence, children: Vec::new(), has_text: false });
    }
    if c == "ANY" {
        return Ok(RawDecl { group: ModelGroup::All, children: Vec::new(), has_text: true });
    }
    let inner = c
        .strip_prefix('(')
        .ok_or_else(|| DtdError(format!("expected `(` in content model `{c}`")))?;
    let (inner, trailing) = match inner.rfind(')') {
        Some(i) => (&inner[..i], inner[i + 1..].trim()),
        None => return Err(DtdError(format!("unbalanced parens in `{c}`"))),
    };
    let mixed_star = trailing == "*";
    let inner = inner.trim();
    if inner == "#PCDATA" {
        return Ok(RawDecl { group: ModelGroup::Sequence, children: Vec::new(), has_text: true });
    }
    if inner.contains('(') {
        return Err(DtdError(format!(
            "nested model groups are not supported: `{c}`"
        )));
    }
    let (sep, group) = if inner.contains('|') {
        ('|', ModelGroup::Choice)
    } else {
        (',', ModelGroup::Sequence)
    };
    if inner.contains('|') && inner.contains(',') {
        return Err(DtdError(format!("mixed separators in `{c}`")));
    }
    let mut has_text = false;
    let mut children = Vec::new();
    for part in inner.split(sep) {
        let p = part.trim();
        if p == "#PCDATA" {
            has_text = true;
            continue;
        }
        let (name, card) = match p.chars().last() {
            Some('?') => (&p[..p.len() - 1], Cardinality::Optional),
            Some('*') | Some('+') => (&p[..p.len() - 1], Cardinality::Many),
            _ => (p, Cardinality::One),
        };
        if name.is_empty() {
            return Err(DtdError(format!("empty particle in `{c}`")));
        }
        children.push((name.to_string(), card));
    }
    if has_text {
        // Mixed content: children may repeat in any order.
        return Ok(RawDecl {
            group: ModelGroup::All,
            children: children
                .into_iter()
                .map(|(n, _)| (n, Cardinality::Many))
                .collect(),
            has_text: true,
        });
    }
    let children = if mixed_star {
        children.into_iter().map(|(n, _)| (n, Cardinality::Many)).collect()
    } else {
        children
    };
    Ok(RawDecl { group, children, has_text: false })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEPT_DTD: &str = r#"
        <!ELEMENT dept (dname, loc?, employees)>
        <!ELEMENT dname (#PCDATA)>
        <!ELEMENT loc (#PCDATA)>
        <!ELEMENT employees (emp*)>
        <!ELEMENT emp (empno, ename, sal)>
        <!ELEMENT empno (#PCDATA)>
        <!ELEMENT ename (#PCDATA)>
        <!ELEMENT sal (#PCDATA)>
        <!ATTLIST dept no CDATA #IMPLIED>
    "#;

    #[test]
    fn parses_sequence_model() {
        let info = struct_of_dtd(DEPT_DTD, "dept").unwrap();
        assert_eq!(info.root.name, "dept");
        assert_eq!(info.root.group, ModelGroup::Sequence);
        assert_eq!(info.root.children.len(), 3);
        assert_eq!(info.root.child("loc").unwrap().card, Cardinality::Optional);
        assert_eq!(
            info.root.child("employees").unwrap().decl.child("emp").unwrap().card,
            Cardinality::Many
        );
        assert!(info.root.descend(&["dname"]).unwrap().has_text);
        assert_eq!(info.root.attributes, vec!["no"]);
    }

    #[test]
    fn choice_model() {
        let dtd = "<!ELEMENT r (a | b | c)> <!ELEMENT a (#PCDATA)>";
        let info = struct_of_dtd(dtd, "r").unwrap();
        assert_eq!(info.root.group, ModelGroup::Choice);
        assert_eq!(info.root.children.len(), 3);
    }

    #[test]
    fn mixed_content() {
        let dtd = "<!ELEMENT p (#PCDATA | b | i)*>";
        let info = struct_of_dtd(dtd, "p").unwrap();
        assert!(info.root.has_text);
        assert_eq!(info.root.group, ModelGroup::All);
        assert!(info.root.children.iter().all(|c| c.card == Cardinality::Many));
    }

    #[test]
    fn empty_and_any() {
        let dtd = "<!ELEMENT e EMPTY> <!ELEMENT a ANY>";
        assert!(!struct_of_dtd(dtd, "e").unwrap().root.has_text);
        assert!(struct_of_dtd(dtd, "a").unwrap().root.has_text);
    }

    #[test]
    fn undeclared_child_is_text_leaf() {
        let dtd = "<!ELEMENT r (mystery)>";
        let info = struct_of_dtd(dtd, "r").unwrap();
        assert!(info.root.child("mystery").unwrap().decl.has_text);
    }

    #[test]
    fn recursion_rejected() {
        let dtd = "<!ELEMENT a (b)> <!ELEMENT b (a?)>";
        let err = struct_of_dtd(dtd, "a").unwrap_err();
        assert!(err.0.contains("recursive"));
    }

    #[test]
    fn nested_groups_rejected() {
        let dtd = "<!ELEMENT r ((a, b) | c)>";
        assert!(struct_of_dtd(dtd, "r").is_err());
    }

    #[test]
    fn works_with_doctype_capture() {
        let parsed = xsltdb_xml::parse::parse_with_doctype(
            "<!DOCTYPE dept [<!ELEMENT dept (dname)> <!ELEMENT dname (#PCDATA)>]>\
             <dept><dname>x</dname></dept>",
        )
        .unwrap();
        let info = struct_of_dtd(
            parsed.internal_dtd.as_deref().unwrap(),
            parsed.doctype_name.as_deref().unwrap(),
        )
        .unwrap();
        assert_eq!(info.root.name, "dept");
    }
}
