//! Structural information from static typing of an upstream XQuery (paper
//! §3.2, bullets 3–4): when the input XMLType is the result of another
//! XQuery — in particular an XSLT transform already rewritten to XQuery, as
//! in Example 2 — its structure is the query's inferred result shape.

use crate::model::{
    Cardinality, ChildDecl, ContentBinding, ElemDecl, ModelGroup, Origin, StructInfo,
};
use xsltdb_xquery::typing::{infer, Occurs, Shape};
use xsltdb_xquery::XqExpr;

/// Error deriving structure from typing.
#[derive(Debug, Clone, PartialEq)]
pub struct TypingError(pub String);

impl std::fmt::Display for TypingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "typing derivation error: {}", self.0)
    }
}

impl std::error::Error for TypingError {}

/// Derive the structure of an XQuery expression's result. The result
/// sequence is wrapped in a synthetic document root declaration named
/// `#document`, mirroring how `XMLQuery(... RETURNING CONTENT)` wraps its
/// result into one XMLType value.
pub fn struct_of_query_result(body: &XqExpr) -> Result<StructInfo, TypingError> {
    let shapes = infer(body);
    let children = shapes
        .iter()
        .filter_map(occurs_to_child)
        .collect::<Vec<_>>();
    let mut root = ElemDecl::parent("#document", children);
    root.has_text = shapes
        .iter()
        .any(|o| matches!(o.shape, Shape::Text | Shape::Opaque));
    Ok(StructInfo { root, origin: Origin::StaticTyping })
}

fn occurs_to_child(o: &Occurs) -> Option<ChildDecl> {
    match &o.shape {
        Shape::Element { name, attrs, children } => {
            let kids: Vec<ChildDecl> = children.iter().filter_map(occurs_to_child).collect();
            let has_text = children
                .iter()
                .any(|c| matches!(c.shape, Shape::Text | Shape::Opaque));
            Some(ChildDecl {
                decl: ElemDecl {
                    name: name.clone(),
                    group: ModelGroup::Sequence,
                    children: kids,
                    has_text,
                    attributes: attrs.clone(),
                    content: ContentBinding::Unbound,
                    row_source: None,
                },
                card: match (o.many, o.optional) {
                    (true, _) => Cardinality::Many,
                    (false, true) => Cardinality::Optional,
                    (false, false) => Cardinality::One,
                },
            })
        }
        Shape::Text | Shape::Opaque => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xquery::parse_xq_expr;

    #[test]
    fn table8_like_query_structure() {
        // A cut-down version of the paper's Table 8 output shape.
        let q = parse_xq_expr(
            r#"(<H1>HIGHLY PAID DEPT EMPLOYEES</H1>,
                <table border="2">{
                  for $e in $v/emp return <tr><td>{fn:string($e/empno)}</td></tr>
                }</table>)"#,
        )
        .unwrap();
        let info = struct_of_query_result(&q).unwrap();
        assert_eq!(info.origin, Origin::StaticTyping);
        assert_eq!(info.root.children.len(), 2);
        let table = info.root.child("table").unwrap();
        assert_eq!(table.card, Cardinality::One);
        assert_eq!(table.decl.attributes, vec!["border"]);
        let tr = table.decl.child("tr").unwrap();
        assert_eq!(tr.card, Cardinality::Many);
        assert!(tr.decl.child("td").unwrap().decl.has_text);
    }

    #[test]
    fn conditional_marks_optional() {
        let q = parse_xq_expr("if ($x) then <a/> else ()").unwrap();
        let info = struct_of_query_result(&q).unwrap();
        assert_eq!(info.root.child("a").unwrap().card, Cardinality::Optional);
    }

    #[test]
    fn atomic_result_is_text_document() {
        let q = parse_xq_expr("fn:string($x)").unwrap();
        let info = struct_of_query_result(&q).unwrap();
        assert!(info.root.has_text);
        assert!(info.root.children.is_empty());
    }
}
