//! Cross-source structural derivation tests: the same logical schema
//! expressed as a DTD, an XML Schema and a publishing view must produce
//! interchangeable structural information (same names, cardinalities and
//! sample shapes) — the property §3.2 relies on when it treats all four
//! sources uniformly.

use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{AggPredTerm, PubExpr, SqlXmlQuery};
use xsltdb_relstore::XmlView;
use xsltdb_structinfo::{
    struct_of_dtd, struct_of_view, struct_of_xsd, Cardinality, SampleDoc, StructInfo,
};

fn dtd_info() -> StructInfo {
    struct_of_dtd(
        r#"<!ELEMENT dept (dname, employees)>
           <!ELEMENT dname (#PCDATA)>
           <!ELEMENT employees (emp*)>
           <!ELEMENT emp (sal)>
           <!ELEMENT sal (#PCDATA)>"#,
        "dept",
    )
    .unwrap()
}

fn xsd_info() -> StructInfo {
    struct_of_xsd(
        r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="dept">
            <xs:complexType><xs:sequence>
              <xs:element name="dname" type="xs:string"/>
              <xs:element name="employees">
                <xs:complexType><xs:sequence>
                  <xs:element name="emp" minOccurs="0" maxOccurs="unbounded">
                    <xs:complexType><xs:sequence>
                      <xs:element name="sal" type="xs:decimal"/>
                    </xs:sequence></xs:complexType>
                  </xs:element>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#,
    )
    .unwrap()
}

fn view_info() -> StructInfo {
    struct_of_view(&XmlView::new(
        "vu",
        SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "dept",
                vec![
                    PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                    PubExpr::elem(
                        "employees",
                        vec![PubExpr::Agg {
                            table: "emp".into(),
                            predicate: vec![AggPredTerm::Correlate {
                                inner_column: "deptno".into(),
                                outer_table: "dept".into(),
                                outer_column: "deptno".into(),
                            }],
                            order_by: Vec::new(),
                            body: Box::new(PubExpr::elem(
                                "emp",
                                vec![PubExpr::elem("sal", vec![PubExpr::col("emp", "sal")])],
                            )),
                        }],
                    ),
                ],
            ),
        },
    ))
    .unwrap()
}

fn shape(info: &StructInfo) -> Vec<(String, bool)> {
    fn walk(d: &xsltdb_structinfo::ElemDecl, out: &mut Vec<(String, bool)>, many: bool) {
        out.push((d.name.clone(), many));
        for c in &d.children {
            walk(&c.decl, out, c.card == Cardinality::Many);
        }
    }
    let mut out = Vec::new();
    walk(&info.root, &mut out, false);
    out
}

#[test]
fn all_three_sources_agree_on_shape() {
    let expected = vec![
        ("dept".to_string(), false),
        ("dname".to_string(), false),
        ("employees".to_string(), false),
        ("emp".to_string(), true),
        ("sal".to_string(), false),
    ];
    assert_eq!(shape(&dtd_info()), expected, "DTD");
    assert_eq!(shape(&xsd_info()), expected, "XSD");
    assert_eq!(shape(&view_info()), expected, "view");
}

#[test]
fn all_three_sources_generate_identical_samples() {
    let a = xsltdb_xml::to_string(&SampleDoc::generate(&dtd_info()).doc);
    let b = xsltdb_xml::to_string(&SampleDoc::generate(&xsd_info()).doc);
    let c = xsltdb_xml::to_string(&SampleDoc::generate(&view_info()).doc);
    assert_eq!(a, b);
    assert_eq!(b, c);
    assert_eq!(
        a,
        "<dept><dname>0</dname><employees><emp><sal>0</sal></emp></employees></dept>"
    );
}

#[test]
fn only_view_source_carries_bindings() {
    use xsltdb_structinfo::ContentBinding;
    let sal_dtd = dtd_info();
    let sal_view = view_info();
    let d = sal_dtd.root.descend(&["employees", "emp", "sal"]).unwrap();
    let v = sal_view.root.descend(&["employees", "emp", "sal"]).unwrap();
    assert!(matches!(d.content, ContentBinding::Unbound));
    assert!(matches!(v.content, ContentBinding::Pub(_)));
    assert!(
        sal_view
            .root
            .descend(&["employees", "emp"])
            .unwrap()
            .row_source
            .is_some()
    );
}

#[test]
fn decl_counts_match() {
    assert_eq!(dtd_info().root.decl_count(), 5);
    assert_eq!(xsd_info().root.decl_count(), 5);
    assert_eq!(view_info().root.decl_count(), 5);
}
