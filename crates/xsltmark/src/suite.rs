//! Running the suite: VM baseline vs rewrite, per-case outcomes, and the
//! paper's §5 second objective — how many of the forty cases fully inline.

use crate::cases::{all_cases, Case};
use crate::docgen::{db_struct_info, db_xml};
use xsltdb::pipeline::{
    no_rewrite_transform, plan_bound, plan_cached, plan_cached_shared, plan_transform,
    BoundPlan, Tier,
};
use xsltdb::plancache::{PlanCache, SharedPlanCache};
use xsltdb::xqgen::{rewrite, RewriteMode, RewriteOptions};
use xsltdb::{Guard, PipelineError};
use xsltdb_relstore::{Catalog, ExecStats, XmlView};
use xsltdb_xml::{parse_trimmed, to_string};
use xsltdb_xquery::{evaluate_query, sequence_to_document, NodeHandle};
use xsltdb_xslt::{compile_str, transform};

/// Outcome of one case under the rewrite.
#[derive(Debug, Clone)]
pub struct CaseRun {
    pub name: &'static str,
    /// `None`: the rewrite was not applicable (translation error) and the
    /// case runs on the VM tier.
    pub mode: Option<RewriteMode>,
    /// The generated query has no function calls (paper's inline metric).
    pub fully_inlined: bool,
    /// The rewrite produced the same output as the functional evaluation.
    pub matches_vm: bool,
    /// Failure detail when the rewrite path was not equivalent/applicable.
    pub note: Option<String>,
}

/// How many of the forty XSLTMark cases the rewrite fully inlines (zero
/// generated function declarations). The paper reports 23/40 (§5); the
/// join-graph rewrite — ORDER BY on row sources, positional context via
/// `at`/count variables, and comment/PI emission — pushes six more over:
/// `comments`, `processes`, `position`, `trend`, `stringsort` and
/// `oddtemplates`. Asserted exactly in the suite tests and referenced from
/// EXPERIMENTS.md; a drop means a rewrite regression, a rise means this
/// constant and the experiment record need updating together.
pub const EXPECTED_FULLY_INLINED: usize = 29;

/// A parameterised `dbonerow` stylesheet targeting a specific id (benches
/// point it at an id that exists for their row count).
pub fn dbonerow_stylesheet(target_id: i64) -> String {
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
           <xsl:template match="table">
             <out><xsl:apply-templates select="row[id = {target_id}]"/></out>
           </xsl:template>
           <xsl:template match="row">
             <found><xsl:value-of select="lastname"/>, <xsl:value-of select="firstname"/></found>
           </xsl:template>
           </xsl:stylesheet>"#
    )
}

/// Run one case at a given document size, comparing rewrite vs VM.
pub fn run_case(case: &Case, rows: usize, seed: u64) -> CaseRun {
    let sheet = match compile_str(&case.stylesheet) {
        Ok(s) => s,
        Err(e) => {
            return CaseRun {
                name: case.name,
                mode: None,
                fully_inlined: false,
                matches_vm: false,
                note: Some(format!("compile error: {e}")),
            }
        }
    };
    let doc = parse_trimmed(&db_xml(rows, seed)).expect("generated XML parses");
    let expected = match transform(&sheet, &doc) {
        Ok(d) => to_string(&d),
        Err(e) => {
            return CaseRun {
                name: case.name,
                mode: None,
                fully_inlined: false,
                matches_vm: false,
                note: Some(format!("VM error: {e}")),
            }
        }
    };
    let info = db_struct_info();
    match rewrite(&sheet, &info, &RewriteOptions::default()) {
        Ok(outcome) => {
            let input = NodeHandle::document(doc);
            match evaluate_query(&outcome.query, Some(input)) {
                Ok(seq) => {
                    let got = to_string(&sequence_to_document(&seq));
                    let matches = got == expected;
                    CaseRun {
                        name: case.name,
                        mode: Some(outcome.mode),
                        fully_inlined: outcome.fully_inlined(),
                        matches_vm: matches,
                        note: (!matches).then(|| "output mismatch".to_string()),
                    }
                }
                Err(e) => CaseRun {
                    name: case.name,
                    mode: Some(outcome.mode),
                    fully_inlined: false,
                    matches_vm: false,
                    note: Some(format!("query evaluation error: {e}")),
                },
            }
        }
        Err(e) => CaseRun {
            name: case.name,
            mode: None,
            fully_inlined: false,
            matches_vm: true, // the VM tier by definition matches itself
            note: Some(format!("rewrite not applicable: {e}")),
        },
    }
}

/// Run the whole suite at a small size.
pub fn run_suite(rows: usize, seed: u64) -> Vec<CaseRun> {
    all_cases().iter().map(|c| run_case(c, rows, seed)).collect()
}

/// The paper's §5 inline statistic: `(fully inlined, total)`.
pub fn inline_statistics(rows: usize, seed: u64) -> (usize, usize) {
    let runs = run_suite(rows, seed);
    let inlined = runs.iter().filter(|r| r.fully_inlined).count();
    (inlined, runs.len())
}

/// How many cases plan all the way down to the SQL tier over the
/// relationally backed `db_vu` view: `(sql, xquery, vm)` tier counts.
pub fn tier_statistics(rows: usize, seed: u64) -> (usize, usize, usize) {
    let (_catalog, view) = crate::docgen::db_catalog(rows, seed);
    let mut counts = (0usize, 0usize, 0usize);
    for c in all_cases() {
        let plan = plan_transform(&view, &c.stylesheet, &RewriteOptions::default())
            .expect("cases compile");
        match plan.tier {
            Tier::Sql => counts.0 += 1,
            Tier::XQuery => counts.1 += 1,
            Tier::Vm => counts.2 += 1,
        }
    }
    counts
}

/// Outcome of one case planned through a [`PlanCache`] over the
/// relationally backed `db_vu` view — the differential evidence the cache
/// correctness suite asserts on.
#[derive(Debug, Clone)]
pub struct PlannedRun {
    pub name: &'static str,
    /// The tier of the (possibly cached) plan that produced the output.
    pub tier: Tier,
    /// The cached-plan output is byte-identical to a freshly planned run.
    pub matches_fresh: bool,
    /// The cached-plan output is byte-identical to the no-rewrite baseline.
    pub matches_vm: bool,
    /// [`BoundPlan::execute_to_writer`] produced exactly the bytes of the
    /// serialized `execute` documents — the streaming differential.
    pub matches_streamed: bool,
    pub note: Option<String>,
}

/// Run every case through [`plan_cached`] over the db view at `(rows,
/// seed)`, comparing each cached plan's output against a freshly planned
/// run *and* the functional (no-rewrite) baseline. Calling this twice with
/// the same cache serves the whole second pass from prepared plans — one
/// `plan_cached` lookup per case, so cache hit counters are directly
/// interpretable.
pub fn run_suite_planned(rows: usize, seed: u64, cache: &mut PlanCache) -> Vec<PlannedRun> {
    run_suite_planned_with(rows, seed, |catalog, view, src| {
        plan_cached(cache, catalog, view, src, &RewriteOptions::default())
    })
}

/// [`run_suite_planned`] through a thread-safe [`SharedPlanCache`]: the
/// per-thread body of the concurrent differential harness. Any number of
/// threads can run this against **one** cache simultaneously — each call
/// builds its own catalog/view (sessions share plans, not data handles)
/// and compares every cached plan's output against a fresh plan and the
/// VM baseline, exactly like the single-threaded runner.
pub fn run_suite_planned_shared(
    rows: usize,
    seed: u64,
    cache: &SharedPlanCache,
) -> Vec<PlannedRun> {
    run_suite_planned_with(rows, seed, |catalog, view, src| {
        plan_cached_shared(cache, catalog, view, src, &RewriteOptions::default())
    })
}

/// The differential body shared by the exclusive and concurrent runners;
/// `planner` is the only thing that differs (which cache front door serves
/// the prepared plan).
fn run_suite_planned_with(
    rows: usize,
    seed: u64,
    mut planner: impl FnMut(&Catalog, &XmlView, &str) -> Result<BoundPlan, PipelineError>,
) -> Vec<PlannedRun> {
    let (catalog, view) = crate::docgen::db_catalog(rows, seed);
    let stats = ExecStats::new();
    all_cases()
        .iter()
        .map(|c| {
            let cached = match planner(&catalog, &view, &c.stylesheet) {
                Ok(p) => p,
                Err(e) => {
                    return PlannedRun {
                        name: c.name,
                        tier: Tier::Vm,
                        matches_fresh: false,
                        matches_vm: false,
                        matches_streamed: false,
                        note: Some(format!("cached planning failed: {e}")),
                    }
                }
            };
            let render = |docs: &[xsltdb_xml::Document]| -> Vec<String> {
                docs.iter().map(to_string).collect()
            };
            let got = match cached.execute(&catalog, &stats) {
                Ok(docs) => render(&docs),
                Err(e) => {
                    return PlannedRun {
                        name: c.name,
                        tier: cached.tier(),
                        matches_fresh: false,
                        matches_vm: false,
                        matches_streamed: false,
                        note: Some(format!("cached plan failed to execute: {e}")),
                    }
                }
            };
            let fresh = plan_bound(&catalog, &view, &c.stylesheet, &RewriteOptions::default())
                .and_then(|p| p.execute(&catalog, &stats))
                .map(|docs| render(&docs));
            let baseline = no_rewrite_transform(&catalog, &view, cached.sheet(), &stats)
                .map(|r| render(&r.documents));
            let matches_fresh = fresh.as_ref().map(|f| *f == got).unwrap_or(false);
            let matches_vm = baseline.as_ref().map(|b| *b == got).unwrap_or(false);
            // Streaming differential: the writer path must produce the
            // concatenation of the serialized documents, byte for byte.
            let mut streamed = Vec::new();
            let matches_streamed = cached
                .execute_to_writer(&catalog, &stats, &Guard::unlimited(), &mut streamed)
                .is_ok()
                && streamed == got.concat().into_bytes();
            PlannedRun {
                name: c.name,
                tier: cached.tier(),
                matches_fresh,
                matches_vm,
                matches_streamed,
                note: (!matches_fresh || !matches_vm || !matches_streamed)
                    .then(|| "cached output diverges".to_string()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recursive cases need more stack than the 2 MiB test threads get.
    fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(f)
            .expect("spawn")
            .join()
            .expect("suite thread panicked")
    }

    #[test]
    fn every_rewritten_case_matches_vm() {
        on_big_stack(|| {
            for run in run_suite(30, 11) {
                assert!(
                    run.matches_vm,
                    "case {} diverges: {:?}",
                    run.name, run.note
                );
            }
        });
    }

    #[test]
    fn majority_of_cases_fully_inline() {
        // Paper §5 reports 23/40 completely inlined; the join-graph rewrite
        // raises our count to [`EXPECTED_FULLY_INLINED`] (tracked in
        // EXPERIMENTS.md). Asserted exactly: a drop means a rewrite
        // regression, a rise means the constant needs re-recording.
        let (inlined, total) = on_big_stack(|| inline_statistics(20, 3));
        assert_eq!(total, 40);
        assert_eq!(
            inlined, EXPECTED_FULLY_INLINED,
            "fully-inlined count drifted from the recorded {EXPECTED_FULLY_INLINED}/40"
        );
    }

    #[test]
    fn planned_suite_reuses_prepared_plans() {
        on_big_stack(|| {
            let mut cache = PlanCache::default();
            let first = run_suite_planned(15, 9, &mut cache);
            for run in &first {
                assert!(run.matches_fresh, "case {} diverges: {:?}", run.name, run.note);
                assert!(run.matches_vm, "case {} diverges from VM: {:?}", run.name, run.note);
                assert!(
                    run.matches_streamed,
                    "case {} streams different bytes: {:?}",
                    run.name, run.note
                );
            }
            let after_first = cache.stats();
            assert_eq!(after_first.hits, 0);
            assert_eq!(after_first.misses as usize, first.len());
            // The second pass is served entirely from prepared plans and
            // still produces identical output everywhere.
            let second = run_suite_planned(15, 9, &mut cache);
            for run in &second {
                assert!(run.matches_fresh, "cached case {} diverges: {:?}", run.name, run.note);
            }
            let after_second = cache.stats();
            assert_eq!(after_second.hits as usize, second.len());
            assert_eq!(after_second.misses as usize, first.len());
        });
    }

    #[test]
    fn recursion_cases_do_not_inline() {
        on_big_stack(|| {
            for name in ["bottles", "tower", "queens", "games"] {
                let run = run_case(&crate::cases::case(name), 10, 1);
                assert!(!run.fully_inlined, "{name} unexpectedly inlined");
                assert!(run.matches_vm, "{name} diverges: {:?}", run.note);
            }
        });
    }

    #[test]
    fn tier_statistics_cover_all_cases() {
        let (sql, xq, vm) = on_big_stack(|| tier_statistics(10, 2));
        assert_eq!(sql + xq + vm, 40);
        // A solid majority of the inline-able cases push all the way to SQL;
        // with positional/comment/PI lowering only `functions`
        // (generate-id) stays untranslatable on the VM tier.
        assert!(sql >= 22, "only {sql} cases reached the SQL tier");
        assert!(vm >= 1, "expected the untranslatable cases on the VM tier");
    }

    #[test]
    fn dbonerow_parameterised_matches() {
        let rows = 50;
        let id = crate::docgen::existing_id(rows);
        let case = Case {
            name: "dbonerow",
            area: crate::cases::Area::Selection,
            stylesheet: dbonerow_stylesheet(id),
        };
        let run = run_case(&case, rows, 5);
        assert!(run.matches_vm, "{:?}", run.note);
        assert!(run.fully_inlined);
    }
}
