//! Synthetic workload documents modelled on XSLTMark's `db` family: a flat
//! master table of address rows. Generated three ways, all with identical
//! content for a given `(rows, seed)`:
//!
//! * XML text (for the plain-document/DTD path),
//! * a relational catalog plus publishing view (for the SQL-tier path —
//!   the storage model of the paper's Figure 2 experiment),
//! * structural information (from the DTD).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xsltdb_relstore::exec::Conjunction;
use xsltdb_relstore::pubexpr::{PubExpr, SqlXmlQuery};
use xsltdb_relstore::{Catalog, ColType, Datum, Table, XmlView};
use xsltdb_structinfo::{struct_of_dtd, StructInfo};

/// The DTD of the db document family.
pub const DB_DTD: &str = r#"
    <!ELEMENT table (row*)>
    <!ELEMENT row (id, firstname, lastname, street, city, state, zip)>
    <!ELEMENT id (#PCDATA)>
    <!ELEMENT firstname (#PCDATA)>
    <!ELEMENT lastname (#PCDATA)>
    <!ELEMENT street (#PCDATA)>
    <!ELEMENT city (#PCDATA)>
    <!ELEMENT state (#PCDATA)>
    <!ELEMENT zip (#PCDATA)>
"#;

const FIRST: &[&str] = &[
    "Al", "Bea", "Carl", "Dana", "Ed", "Flo", "Gus", "Hana", "Ike", "Jo", "Kim", "Lou",
];
const LAST: &[&str] = &[
    "Aranow", "Barker", "Corman", "Dole", "Eng", "Farris", "Gomez", "Hart", "Irwin",
    "Jones", "Katz", "Lane",
];
const CITY: &[&str] = &["Anytown", "Big City", "Centerville", "Dover", "Easton"];
const STATE: &[&str] = &["AL", "CA", "FL", "NY", "TX", "WA"];

/// One generated row.
#[derive(Debug, Clone)]
pub struct DbRow {
    pub id: i64,
    pub firstname: &'static str,
    pub lastname: &'static str,
    pub street: String,
    pub city: &'static str,
    pub state: &'static str,
    pub zip: i64,
}

/// Generate the rows deterministically.
pub fn db_rows(rows: usize, seed: u64) -> Vec<DbRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..rows)
        .map(|i| DbRow {
            // Unique, shuffled-looking ids.
            id: (i as i64) * 7919 % (rows.max(1) as i64 * 8) + 1,
            firstname: FIRST[rng.gen_range(0..FIRST.len())],
            lastname: LAST[rng.gen_range(0..LAST.len())],
            street: format!("{} Any St.", rng.gen_range(1..999)),
            city: CITY[rng.gen_range(0..CITY.len())],
            state: STATE[rng.gen_range(0..STATE.len())],
            zip: rng.gen_range(10000..99999),
        })
        .collect()
}

/// The id of a row guaranteed to exist (used by `dbonerow`).
pub fn existing_id(rows: usize) -> i64 {
    let mid = rows / 2;
    (mid as i64) * 7919 % (rows.max(1) as i64 * 8) + 1
}

/// The db document as XML text.
pub fn db_xml(rows: usize, seed: u64) -> String {
    let data = db_rows(rows, seed);
    let mut s = String::with_capacity(rows * 160 + 32);
    s.push_str("<table>");
    for r in &data {
        s.push_str(&format!(
            "<row><id>{}</id><firstname>{}</firstname><lastname>{}</lastname>\
             <street>{}</street><city>{}</city><state>{}</state><zip>{}</zip></row>",
            r.id, r.firstname, r.lastname, r.street, r.city, r.state, r.zip
        ));
    }
    s.push_str("</table>");
    s
}

/// Structural information of the db document (from its DTD).
pub fn db_struct_info() -> StructInfo {
    struct_of_dtd(DB_DTD, "table").expect("static DTD parses")
}

/// Add the db backing under explicit table/view names: a one-row anchor
/// table (the document), a row table with B-tree indexes on `id`, `zip`
/// and `state` (unless `indexed` is off), and the publishing view over
/// them. The helper behind [`db_catalog`] and [`db_catalog_family`].
///
/// Tables are registered *empty* and loaded through
/// [`Catalog::table_mut`]: in a paged catalog the registration migrates
/// the (empty) table onto heap pages first, so the bulk load streams
/// straight into the buffer pool and never builds a transient in-memory
/// copy of the row set.
fn add_db_tables(
    catalog: &mut Catalog,
    doc_table: &str,
    rows_table: &str,
    view_name: &str,
    rows: usize,
    seed: u64,
    indexed: bool,
) -> XmlView {
    catalog.add_table(Table::new(doc_table, &[("docid", ColType::Int)]));
    catalog.add_table(Table::new(
        rows_table,
        &[
            ("id", ColType::Int),
            ("firstname", ColType::Text),
            ("lastname", ColType::Text),
            ("street", ColType::Text),
            ("city", ColType::Text),
            ("state", ColType::Text),
            ("zip", ColType::Int),
        ],
    ));
    catalog
        .table_mut(doc_table)
        .expect("just added")
        .insert(vec![Datum::Int(1)])
        .expect("schema matches");
    let data = db_rows(rows, seed);
    let t = catalog.table_mut(rows_table).expect("just added");
    for r in &data {
        t.insert(vec![
            Datum::Int(r.id),
            Datum::Text(r.firstname.into()),
            Datum::Text(r.lastname.into()),
            Datum::Text(r.street.clone()),
            Datum::Text(r.city.into()),
            Datum::Text(r.state.into()),
            Datum::Int(r.zip),
        ])
        .expect("schema matches");
    }
    if indexed {
        catalog.create_index(rows_table, "id").expect("column exists");
        catalog.create_index(rows_table, "zip").expect("column exists");
        catalog.create_index(rows_table, "state").expect("column exists");
    }

    let leaf = |n: &str| PubExpr::elem(n, vec![PubExpr::col(rows_table, n)]);
    let view = XmlView::new(
        view_name,
        SqlXmlQuery {
            base_table: doc_table.into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem(
                "table",
                vec![PubExpr::Agg {
                    table: rows_table.into(),
                    predicate: Vec::new(),
                    order_by: Vec::new(),
                    body: Box::new(PubExpr::elem(
                        "row",
                        vec![
                            leaf("id"),
                            leaf("firstname"),
                            leaf("lastname"),
                            leaf("street"),
                            leaf("city"),
                            leaf("state"),
                            leaf("zip"),
                        ],
                    )),
                }],
            ),
        },
    );
    catalog.add_view(view.clone());
    view
}

/// The relational backing: a one-row anchor table (the document), a row
/// table with B-tree indexes on `id`, `zip` and `state`, and the publishing
/// view that constructs the same XML as [`db_xml`].
pub fn db_catalog(rows: usize, seed: u64) -> (Catalog, XmlView) {
    let mut catalog = Catalog::new();
    let view = add_db_tables(&mut catalog, "db_doc", "db_rows", "db_vu", rows, seed, true);
    (catalog, view)
}

/// [`db_catalog`] re-backed by disk pages: the same tables and view, but
/// the catalog owns a [`BufferPool`](xsltdb_relstore::BufferPool) of
/// `frames` page frames and the row tables (and their B-tree indexes)
/// live in temp heap files, resident only through the pool. Content is
/// byte-identical to the in-memory catalog for a given `(rows, seed)`.
pub fn db_catalog_paged(rows: usize, seed: u64, frames: usize) -> (Catalog, XmlView) {
    let mut catalog = Catalog::new_paged(frames);
    let view = add_db_tables(&mut catalog, "db_doc", "db_rows", "db_vu", rows, seed, true);
    (catalog, view)
}

/// [`db_catalog`] without the B-tree indexes: same tables, same view,
/// full-scan-only access paths. Used as a lean in-memory reference when
/// differencing large paged runs, where the index side tables would
/// dominate the memory bill without changing the output bytes.
pub fn db_catalog_unindexed(rows: usize, seed: u64) -> (Catalog, XmlView) {
    let mut catalog = Catalog::new();
    let view = add_db_tables(&mut catalog, "db_doc", "db_rows", "db_vu", rows, seed, false);
    (catalog, view)
}

/// A *family* of identically-shaped db views in one catalog: view `i` is
/// `db_vu_{i}` over its own `db_doc_{i}`/`db_rows_{i}` tables, populated
/// with **different** data (`seed + i`) — so any plan-reuse bug that mixes
/// one view's rows into another's output is visible in the bytes, not
/// hidden by identical content. All views canonicalise to one shape, so a
/// canonical-key plan cache serves the whole family from single entries.
pub fn db_catalog_family(views: usize, rows: usize, seed: u64) -> (Catalog, Vec<XmlView>) {
    let mut catalog = Catalog::new();
    let views = (0..views)
        .map(|i| {
            add_db_tables(
                &mut catalog,
                &format!("db_doc_{i}"),
                &format!("db_rows_{i}"),
                &format!("db_vu_{i}"),
                rows,
                seed + i as u64,
                true,
            )
        })
        .collect();
    (catalog, views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_relstore::ExecStats;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(db_xml(10, 42), db_xml(10, 42));
        assert_ne!(db_xml(10, 42), db_xml(10, 43));
    }

    #[test]
    fn xml_parses_and_matches_row_count() {
        let doc = xsltdb_xml::parse::parse(&db_xml(25, 1)).unwrap();
        let table = doc.root_element().unwrap();
        assert_eq!(doc.child_elements(table, "row").count(), 25);
    }

    #[test]
    fn view_materialization_equals_xml_text() {
        let rows = 12;
        let seed = 7;
        let (catalog, view) = db_catalog(rows, seed);
        let stats = ExecStats::new();
        let docs = view.materialize(&catalog, &stats).unwrap();
        assert_eq!(docs.len(), 1);
        assert_eq!(xsltdb_xml::to_string(&docs[0]), db_xml(rows, seed));
    }

    #[test]
    fn paged_catalog_materializes_identical_bytes() {
        let rows = 200;
        let seed = 7;
        // 4 frames is far below the working set at 200 rows, so the scan
        // must survive eviction and re-reads through the pool.
        let (catalog, view) = db_catalog_paged(rows, seed, 4);
        assert!(catalog.table("db_rows").unwrap().is_paged());
        let stats = ExecStats::new();
        let docs = view.materialize(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), db_xml(rows, seed));
        let pool = catalog.pool_stats().unwrap();
        assert!(pool.peak_resident_frames <= 4, "pool overran its budget: {pool:?}");
    }

    #[test]
    fn unindexed_catalog_materializes_identical_bytes() {
        let rows = 30;
        let seed = 3;
        let (catalog, view) = db_catalog_unindexed(rows, seed);
        let stats = ExecStats::new();
        let docs = view.materialize(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), db_xml(rows, seed));
    }

    #[test]
    fn existing_id_is_present() {
        let rows = 40;
        let id = existing_id(rows);
        assert!(db_rows(rows, 9).iter().any(|r| r.id == id));
    }

    #[test]
    fn struct_info_has_row_fields() {
        let info = db_struct_info();
        assert_eq!(info.root.name, "table");
        let row = info.root.child("row").unwrap();
        assert!(row.card.is_many());
        assert!(row.decl.child("zip").is_some());
    }
}
