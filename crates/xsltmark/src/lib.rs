//! # xsltdb-xsltmark
//!
//! The benchmark workload of the paper's evaluation (§5): forty stylesheets
//! re-authored after the XSLTMark suite's case list and functional areas
//! (the original DataPower distribution is no longer available — see
//! DESIGN.md for the substitution note), plus deterministic generators for
//! the `db` document family both as XML text and as relationally backed
//! publishing views.
//!
//! ```
//! use xsltdb_xsltmark::{case, run_case};
//!
//! // One case, one small document: the rewrite path must agree with the
//! // functional (XSLTVM) evaluation byte for byte.
//! let run = run_case(&case("chart"), 12, 7);
//! assert!(run.matches_vm, "{:?}", run.note);
//! assert!(run.fully_inlined);
//! ```

pub mod cases;
pub mod docgen;
pub mod suite;

pub use cases::{all_cases, case, Area, Case};
pub use docgen::{
    db_catalog, db_catalog_family, db_catalog_paged, db_catalog_unindexed, db_rows,
    db_struct_info, db_xml, existing_id, DbRow, DB_DTD,
};
pub use suite::{
    dbonerow_stylesheet, inline_statistics, run_case, run_suite, run_suite_planned,
    run_suite_planned_shared, tier_statistics, CaseRun, PlannedRun,
    EXPECTED_FULLY_INLINED,
};
