//! # xsltdb-xsltmark
//!
//! The benchmark workload of the paper's evaluation (§5): forty stylesheets
//! re-authored after the XSLTMark suite's case list and functional areas
//! (the original DataPower distribution is no longer available — see
//! DESIGN.md for the substitution note), plus deterministic generators for
//! the `db` document family both as XML text and as relationally backed
//! publishing views.

pub mod cases;
pub mod docgen;
pub mod suite;

pub use cases::{all_cases, case, Area, Case};
pub use docgen::{
    db_catalog, db_rows, db_struct_info, db_xml, existing_id, DbRow, DB_DTD,
};
pub use suite::{dbonerow_stylesheet, inline_statistics, run_case, run_suite, tier_statistics, CaseRun};
