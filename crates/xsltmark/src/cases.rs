//! The 40 benchmark stylesheets, re-authored after the XSLTMark suite's
//! case list and functional areas (the original DataPower distribution is
//! no longer available). Every case runs against the `db` document family
//! of [`crate::docgen`]. Case names follow the original suite; bodies are
//! re-creations that exercise the same functional area.
//!
//! The suite deliberately mixes rewrite-friendly cases with cases the
//! paper's approach cannot inline — named-template recursion, body-level
//! `position()`/`last()`, comment/PI construction — so that the §5 inline
//! statistic (23 of 40) is measured, not assumed.

/// Functional areas, following XSLTMark's categorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Area {
    PatternMatching,
    Selection,
    Output,
    ControlFlow,
    Functions,
    Sorting,
    Recursion,
}

/// One benchmark case.
#[derive(Debug, Clone)]
pub struct Case {
    pub name: &'static str,
    pub area: Area,
    pub stylesheet: String,
}

fn wrap(body: &str) -> String {
    format!(
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
    )
}

/// All forty cases.
pub fn all_cases() -> Vec<Case> {
    let mut v = Vec::with_capacity(40);
    let mut push = |name: &'static str, area: Area, body: &str| {
        v.push(Case { name, area, stylesheet: wrap(body) });
    };

    // =======================================================================
    // Cases the rewrite fully inlines (the paper's 23).
    // =======================================================================

    // The five cases the paper names:
    push(
        "dbonerow",
        Area::Selection,
        r#"<xsl:template match="table">
             <out><xsl:apply-templates select="row[id = 41]"/></out>
           </xsl:template>
           <xsl:template match="row">
             <found><xsl:value-of select="lastname"/>, <xsl:value-of select="firstname"/></found>
           </xsl:template>"#,
    );
    push(
        "avts",
        Area::Output,
        r#"<xsl:template match="table"><t><xsl:apply-templates select="row"/></t></xsl:template>
           <xsl:template match="row">
             <card id="{id}" who="{firstname} {lastname}" at="{city}, {state} {zip}"/>
           </xsl:template>"#,
    );
    push(
        "chart",
        Area::Functions,
        r#"<xsl:template match="table">
             <chart>
               <al><xsl:value-of select="count(row[state = 'AL'])"/></al>
               <ca><xsl:value-of select="count(row[state = 'CA'])"/></ca>
               <ny><xsl:value-of select="count(row[state = 'NY'])"/></ny>
               <all><xsl:value-of select="count(row)"/></all>
             </chart>
           </xsl:template>"#,
    );
    push(
        "metric",
        Area::ControlFlow,
        r#"<xsl:template match="table"><m><xsl:apply-templates select="row"/></m></xsl:template>
           <xsl:template match="row">
             <xsl:choose>
               <xsl:when test="zip &gt; 60000"><west><xsl:value-of select="lastname"/></west></xsl:when>
               <xsl:otherwise><east><xsl:value-of select="lastname"/></east></xsl:otherwise>
             </xsl:choose>
           </xsl:template>"#,
    );
    push(
        "total",
        Area::Functions,
        r#"<xsl:template match="table">
             <totals>
               <zipsum><xsl:value-of select="sum(row/zip)"/></zipsum>
               <rows><xsl:value-of select="count(row)"/></rows>
             </totals>
           </xsl:template>"#,
    );

    push(
        "identity",
        Area::PatternMatching,
        r#"<xsl:template match="@*|node()">
             <xsl:copy><xsl:apply-templates select="@*|node()"/></xsl:copy>
           </xsl:template>"#,
    );
    push(
        "patterns",
        Area::PatternMatching,
        r#"<xsl:template match="table"><p><xsl:apply-templates/></p></xsl:template>
           <xsl:template match="table/row"><r><xsl:apply-templates select="id"/></r></xsl:template>
           <xsl:template match="row/id"><i><xsl:value-of select="."/></i></xsl:template>"#,
    );
    push(
        "priority",
        Area::PatternMatching,
        r#"<xsl:template match="table"><out><xsl:apply-templates select="row"/></out></xsl:template>
           <xsl:template match="row[zip &gt; 90000]" priority="2"><far/></xsl:template>
           <xsl:template match="row[zip &gt; 50000]" priority="1"><mid/></xsl:template>
           <xsl:template match="row"><near/></xsl:template>"#,
    );
    push(
        "decoy",
        Area::PatternMatching,
        r#"<xsl:template match="table"><d><xsl:apply-templates select="row"/></d></xsl:template>
           <xsl:template match="row"><hit/></xsl:template>
           <xsl:template match="nothere1"><miss/></xsl:template>
           <xsl:template match="nothere2"><miss/></xsl:template>
           <xsl:template match="nothere3"><miss/></xsl:template>
           <xsl:template match="nothere4"><miss/></xsl:template>
           <xsl:template match="nothere5"><miss/></xsl:template>
           <xsl:template match="nothere6/deep"><miss/></xsl:template>
           <xsl:template match="nothere7/deeper/still"><miss/></xsl:template>"#,
    );
    push(
        "queries",
        Area::Selection,
        r#"<xsl:template match="table">
             <q>
               <xsl:apply-templates select="row[state = 'CA'][zip &gt; 40000]"/>
             </q>
           </xsl:template>
           <xsl:template match="row"><hit><xsl:value-of select="id"/></hit></xsl:template>"#,
    );
    push(
        "descendants",
        Area::Selection,
        r#"<xsl:template match="table">
             <d><xsl:value-of select="count(.//zip)"/></d>
           </xsl:template>"#,
    );
    push(
        "union",
        Area::Selection,
        r#"<xsl:template match="table"><u><xsl:apply-templates select="row[1]"/></u></xsl:template>
           <xsl:template match="row">
             <nm><xsl:for-each select="firstname | lastname"><p><xsl:value-of select="."/></p></xsl:for-each></nm>
           </xsl:template>"#,
    );
    push(
        "creation",
        Area::Output,
        r#"<xsl:template match="table"><c><xsl:apply-templates select="row"/></c></xsl:template>
           <xsl:template match="row">
             <xsl:element name="person">
               <xsl:attribute name="key"><xsl:value-of select="id"/></xsl:attribute>
               <xsl:value-of select="lastname"/>
             </xsl:element>
           </xsl:template>"#,
    );
    push(
        "attsets",
        Area::Output,
        r#"<xsl:template match="table"><s><xsl:apply-templates select="row"/></s></xsl:template>
           <xsl:template match="row">
             <e a1="{id}" a2="{state}" a3="{zip}" a4="x" a5="y"/>
           </xsl:template>"#,
    );
    push(
        "depth",
        Area::Output,
        r#"<xsl:template match="table"><d0><xsl:apply-templates select="row"/></d0></xsl:template>
           <xsl:template match="row">
             <d1><d2><d3><d4><d5><d6><xsl:value-of select="id"/></d6></d5></d4></d3></d2></d1>
           </xsl:template>"#,
    );
    push(
        "conditionals",
        Area::ControlFlow,
        r#"<xsl:template match="table"><c><xsl:apply-templates select="row"/></c></xsl:template>
           <xsl:template match="row">
             <xsl:if test="state = 'CA'"><ca><xsl:value-of select="id"/></ca></xsl:if>
             <xsl:if test="zip &gt; 90000"><hi/></xsl:if>
           </xsl:template>"#,
    );
    push(
        "choose",
        Area::ControlFlow,
        r#"<xsl:template match="table"><c><xsl:apply-templates select="row"/></c></xsl:template>
           <xsl:template match="row">
             <xsl:choose>
               <xsl:when test="state = 'AL'"><a/></xsl:when>
               <xsl:when test="state = 'CA'"><b/></xsl:when>
               <xsl:when test="state = 'NY'"><c/></xsl:when>
               <xsl:otherwise><z/></xsl:otherwise>
             </xsl:choose>
           </xsl:template>"#,
    );
    push(
        "foreach",
        Area::ControlFlow,
        r#"<xsl:template match="table">
             <f><xsl:for-each select="row[zip &gt; 30000]">
               <i><xsl:value-of select="id"/></i>
             </xsl:for-each></f>
           </xsl:template>"#,
    );
    push(
        "variables",
        Area::ControlFlow,
        r#"<xsl:template match="table">
             <xsl:variable name="n" select="count(row)"/>
             <xsl:variable name="z" select="sum(row/zip)"/>
             <v rows="{$n}"><xsl:value-of select="$z div $n"/></v>
           </xsl:template>"#,
    );
    push(
        "params",
        Area::ControlFlow,
        r#"<xsl:template match="table">
             <p><xsl:apply-templates select="row[1]">
               <xsl:with-param name="label" select="'first'"/>
             </xsl:apply-templates></p>
           </xsl:template>
           <xsl:template match="row">
             <xsl:param name="label" select="'none'"/>
             <r l="{$label}"><xsl:value-of select="id"/></r>
           </xsl:template>"#,
    );
    push(
        "modes",
        Area::ControlFlow,
        r#"<xsl:template match="table">
             <m>
               <xsl:apply-templates select="row[1]"/>
               <xsl:apply-templates select="row[1]" mode="brief"/>
             </m>
           </xsl:template>
           <xsl:template match="row"><full><xsl:value-of select="lastname"/>, <xsl:value-of select="firstname"/></full></xsl:template>
           <xsl:template match="row" mode="brief"><brief><xsl:value-of select="lastname"/></brief></xsl:template>"#,
    );
    push(
        "alphabetize",
        Area::Sorting,
        r#"<xsl:template match="table">
             <s><xsl:apply-templates select="row">
               <xsl:sort select="lastname"/>
               <xsl:sort select="firstname"/>
             </xsl:apply-templates></s>
           </xsl:template>
           <xsl:template match="row"><n><xsl:value-of select="lastname"/></n></xsl:template>"#,
    );
    push(
        "numbersort",
        Area::Sorting,
        r#"<xsl:template match="table">
             <s><xsl:for-each select="row">
               <xsl:sort select="zip" data-type="number" order="descending"/>
               <z><xsl:value-of select="zip"/></z>
             </xsl:for-each></s>
           </xsl:template>"#,
    );

    // =======================================================================
    // Cases the rewrite cannot inline (recursion, positional context,
    // comment/PI output) — the paper's remaining 17.
    // =======================================================================

    push(
        "bottles",
        Area::Recursion,
        r#"<xsl:template match="table">
             <song><xsl:call-template name="verse">
               <xsl:with-param name="n" select="9"/>
             </xsl:call-template></song>
           </xsl:template>
           <xsl:template name="verse">
             <xsl:param name="n" select="0"/>
             <xsl:if test="$n &gt; 0">
               <verse><xsl:value-of select="$n"/> bottles</verse>
               <xsl:call-template name="verse">
                 <xsl:with-param name="n" select="$n - 1"/>
               </xsl:call-template>
             </xsl:if>
           </xsl:template>"#,
    );
    push(
        "tower",
        Area::Recursion,
        r#"<xsl:template match="table">
             <hanoi><xsl:call-template name="move">
               <xsl:with-param name="n" select="4"/>
             </xsl:call-template></hanoi>
           </xsl:template>
           <xsl:template name="move">
             <xsl:param name="n" select="0"/>
             <xsl:if test="$n &gt; 0">
               <xsl:call-template name="move">
                 <xsl:with-param name="n" select="$n - 1"/>
               </xsl:call-template>
               <m d="{$n}"/>
               <xsl:call-template name="move">
                 <xsl:with-param name="n" select="$n - 1"/>
               </xsl:call-template>
             </xsl:if>
           </xsl:template>"#,
    );
    push(
        "queens",
        Area::Recursion,
        r#"<xsl:template match="table">
             <q><xsl:call-template name="place">
               <xsl:with-param name="col" select="1"/>
             </xsl:call-template></q>
           </xsl:template>
           <xsl:template name="place">
             <xsl:param name="col" select="1"/>
             <xsl:if test="$col &lt; 6">
               <col n="{$col}"/>
               <xsl:call-template name="place">
                 <xsl:with-param name="col" select="$col + 1"/>
               </xsl:call-template>
             </xsl:if>
           </xsl:template>"#,
    );
    push(
        "games",
        Area::Recursion,
        r#"<xsl:template match="table">
             <fib><xsl:call-template name="fib">
               <xsl:with-param name="n" select="8"/>
             </xsl:call-template></fib>
           </xsl:template>
           <xsl:template name="fib">
             <xsl:param name="n" select="0"/>
             <xsl:choose>
               <xsl:when test="$n &lt; 2"><xsl:value-of select="$n"/></xsl:when>
               <xsl:otherwise>
                 <xsl:variable name="a"><xsl:call-template name="fib">
                   <xsl:with-param name="n" select="$n - 1"/>
                 </xsl:call-template></xsl:variable>
                 <xsl:variable name="b"><xsl:call-template name="fib">
                   <xsl:with-param name="n" select="$n - 2"/>
                 </xsl:call-template></xsl:variable>
                 <xsl:value-of select="$a + $b"/>
               </xsl:otherwise>
             </xsl:choose>
           </xsl:template>"#,
    );
    push(
        "position",
        Area::Recursion,
        r#"<xsl:template match="table"><p><xsl:apply-templates select="row"/></p></xsl:template>
           <xsl:template match="row">
             <i at="{position()}" of="{last()}"><xsl:value-of select="id"/></i>
           </xsl:template>"#,
    );
    push(
        "wordcount",
        Area::Recursion,
        r#"<xsl:template match="table">
             <wc><xsl:call-template name="count-words">
               <xsl:with-param name="s" select="normalize-space(row[1]/street)"/>
             </xsl:call-template></wc>
           </xsl:template>
           <xsl:template name="count-words">
             <xsl:param name="s" select="''"/>
             <xsl:choose>
               <xsl:when test="contains($s, ' ')">
                 <w><xsl:value-of select="substring-before($s, ' ')"/></w>
                 <xsl:call-template name="count-words">
                   <xsl:with-param name="s" select="substring-after($s, ' ')"/>
                 </xsl:call-template>
               </xsl:when>
               <xsl:otherwise><w><xsl:value-of select="$s"/></w></xsl:otherwise>
             </xsl:choose>
           </xsl:template>"#,
    );
    push(
        "reverser",
        Area::Recursion,
        r#"<xsl:template match="table">
             <rev><xsl:call-template name="reverse">
               <xsl:with-param name="s" select="row[1]/lastname"/>
             </xsl:call-template></rev>
           </xsl:template>
           <xsl:template name="reverse">
             <xsl:param name="s" select="''"/>
             <xsl:if test="string-length($s) &gt; 0">
               <xsl:call-template name="reverse">
                 <xsl:with-param name="s" select="substring($s, 2)"/>
               </xsl:call-template>
               <xsl:value-of select="substring($s, 1, 1)"/>
             </xsl:if>
           </xsl:template>"#,
    );
    push(
        "comments",
        Area::Output,
        r#"<xsl:template match="table">
             <c><xsl:comment>generated listing</xsl:comment>
             <n><xsl:value-of select="count(row)"/></n></c>
           </xsl:template>"#,
    );
    push(
        "processes",
        Area::Output,
        r#"<xsl:template match="table">
             <proc><xsl:processing-instruction name="target">run</xsl:processing-instruction>
             <n><xsl:value-of select="count(row)"/></n></proc>
           </xsl:template>"#,
    );
    push(
        "oddtemplates",
        Area::PatternMatching,
        r#"<xsl:template match="table">
             <o><xsl:comment><xsl:value-of select="count(row)"/></xsl:comment>
             <xsl:apply-templates select="row[1]/node()"/></o>
           </xsl:template>
           <xsl:template match="text()"><t><xsl:value-of select="."/></t></xsl:template>
           <xsl:template match="*"><e><xsl:value-of select="name()"/></e></xsl:template>"#,
    );
    push(
        "hierarchy",
        Area::Recursion,
        r#"<xsl:template match="table">
             <tree><xsl:call-template name="nest">
               <xsl:with-param name="depth" select="5"/>
             </xsl:call-template></tree>
           </xsl:template>
           <xsl:template name="nest">
             <xsl:param name="depth" select="0"/>
             <xsl:if test="$depth &gt; 0">
               <level d="{$depth}"><xsl:call-template name="nest">
                 <xsl:with-param name="depth" select="$depth - 1"/>
               </xsl:call-template></level>
             </xsl:if>
           </xsl:template>"#,
    );
    push(
        "summarize",
        Area::Recursion,
        r#"<xsl:template match="table">
             <sum><xsl:call-template name="acc">
               <xsl:with-param name="i" select="1"/>
               <xsl:with-param name="tot" select="0"/>
             </xsl:call-template></sum>
           </xsl:template>
           <xsl:template name="acc">
             <xsl:param name="i" select="1"/>
             <xsl:param name="tot" select="0"/>
             <xsl:choose>
               <xsl:when test="$i &gt; 5"><xsl:value-of select="$tot"/></xsl:when>
               <xsl:otherwise>
                 <xsl:call-template name="acc">
                   <xsl:with-param name="i" select="$i + 1"/>
                   <xsl:with-param name="tot" select="$tot + $i"/>
                 </xsl:call-template>
               </xsl:otherwise>
             </xsl:choose>
           </xsl:template>"#,
    );
    push(
        "trend",
        Area::Functions,
        r#"<xsl:template match="table"><t><xsl:apply-templates select="row"/></t></xsl:template>
           <xsl:template match="row">
             <d p="{position()}"><xsl:value-of select="zip"/></d>
           </xsl:template>"#,
    );
    push(
        "encrypt",
        Area::Recursion,
        r#"<xsl:template match="table">
             <e><xsl:call-template name="rot">
               <xsl:with-param name="s" select="row[1]/lastname"/>
             </xsl:call-template></e>
           </xsl:template>
           <xsl:template name="rot">
             <xsl:param name="s" select="''"/>
             <xsl:if test="string-length($s) &gt; 0">
               <xsl:value-of select="translate(substring($s, 1, 1),
                 'ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz',
                 'NOPQRSTUVWXYZABCDEFGHIJKLMnopqrstuvwxyzabcdefghijklm')"/>
               <xsl:call-template name="rot">
                 <xsl:with-param name="s" select="substring($s, 2)"/>
               </xsl:call-template>
             </xsl:if>
           </xsl:template>"#,
    );
    push(
        "stringsort",
        Area::Sorting,
        r#"<xsl:template match="table">
             <s><xsl:for-each select="row">
               <xsl:sort select="city"/>
               <c n="{position()}"><xsl:value-of select="city"/></c>
             </xsl:for-each></s>
           </xsl:template>"#,
    );
    push(
        "backwards",
        Area::Recursion,
        r#"<xsl:template match="table">
             <b><xsl:apply-templates select="row[last()]"/></b>
           </xsl:template>
           <xsl:template match="row">
             <i><xsl:value-of select="id"/></i>
             <xsl:apply-templates select="preceding-sibling::row[1]"/>
           </xsl:template>"#,
    );
    push(
        "functions",
        Area::Functions,
        r#"<xsl:template match="table"><f><xsl:apply-templates select="row[1]"/></f></xsl:template>
           <xsl:template match="row">
             <a><xsl:value-of select="string-length(lastname)"/></a>
             <b><xsl:value-of select="substring(lastname, 1, 3)"/></b>
             <g><xsl:value-of select="generate-id(.)"/></g>
           </xsl:template>"#,
    );

    assert_eq!(v.len(), 40, "the suite has exactly forty cases");
    v
}

/// Look up one case by name.
pub fn case(name: &str) -> Case {
    all_cases()
        .into_iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("no XSLTMark case named {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_cases_all_compile() {
        let cases = all_cases();
        assert_eq!(cases.len(), 40);
        for c in &cases {
            xsltdb_xslt::compile_str(&c.stylesheet)
                .unwrap_or_else(|e| panic!("case {} fails to compile: {e}", c.name));
        }
    }

    #[test]
    fn names_unique() {
        let cases = all_cases();
        let mut names: Vec<_> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 40);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(case("dbonerow").name, "dbonerow");
    }

    #[test]
    #[should_panic(expected = "no XSLTMark case")]
    fn unknown_case_panics() {
        case("not-a-case");
    }
}
