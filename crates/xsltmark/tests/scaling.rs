//! Scaling sanity for the workload generators and the relational backing:
//! the `db` family must stay internally consistent across sizes, and the
//! Figure-2 claim's precondition — rewrite cost independent of size, scan
//! cost linear — must be visible in the executor's own counters (a
//! time-free check the benches then corroborate with wall clocks).

use xsltdb::pipeline::{plan_bound, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::ExecStats;
use xsltdb_xsltmark::{db_catalog, db_rows, db_xml, dbonerow_stylesheet, existing_id};

#[test]
fn ids_unique_across_sizes() {
    for rows in [1, 10, 100, 1000] {
        let data = db_rows(rows, 7);
        let mut ids: Vec<i64> = data.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rows, "duplicate ids at {rows} rows");
    }
}

#[test]
fn xml_size_grows_linearly() {
    let s1 = db_xml(100, 3).len();
    let s2 = db_xml(200, 3).len();
    let ratio = s2 as f64 / s1 as f64;
    assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
}

#[test]
fn view_matches_xml_at_every_size() {
    for rows in [0, 1, 17, 64] {
        let (catalog, view) = db_catalog(rows, 5);
        let stats = ExecStats::new();
        let docs = view.materialize(&catalog, &stats).unwrap();
        // Compare canonical serializations (`<table/>` vs `<table></table>`).
        let canonical =
            xsltdb_xml::to_string(&xsltdb_xml::parse_xml(&db_xml(rows, 5)).unwrap());
        assert_eq!(xsltdb_xml::to_string(&docs[0]), canonical);
    }
}

#[test]
fn dbonerow_counters_flat_vs_linear() {
    let mut probe_rows = Vec::new();
    let mut baseline_rows = Vec::new();
    for rows in [100usize, 400, 1600] {
        let (catalog, view) = db_catalog(rows, 11);
        let plan = plan_bound(
            &catalog,
            &view,
            &dbonerow_stylesheet(existing_id(rows)),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier(), Tier::Sql);

        let stats = ExecStats::new();
        plan.execute(&catalog, &stats).unwrap();
        let s = stats.snapshot();
        probe_rows.push(s.index_rows + s.rows_scanned);

        stats.reset();
        xsltdb::pipeline::no_rewrite_transform(&catalog, &view, plan.sheet(), &stats)
            .unwrap();
        baseline_rows.push(stats.snapshot().rows_scanned);
    }
    // Rewrite touches a constant number of rows regardless of size…
    assert!(probe_rows.iter().all(|&r| r == probe_rows[0]), "{probe_rows:?}");
    assert!(probe_rows[0] <= 2);
    // …while the baseline's row traffic grows with the document.
    assert!(baseline_rows[1] >= baseline_rows[0] * 3, "{baseline_rows:?}");
    assert!(baseline_rows[2] >= baseline_rows[1] * 3, "{baseline_rows:?}");
}
