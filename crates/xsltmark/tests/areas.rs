//! The suite's functional-area coverage, and spot checks that individual
//! cases exercise the area they claim (the paper uses XSLTMark precisely
//! because its cases are "designed to assess important functional areas of
//! an XSLT processor").

use xsltdb_xsltmark::{all_cases, Area};

#[test]
fn every_area_is_represented() {
    let cases = all_cases();
    for area in [
        Area::PatternMatching,
        Area::Selection,
        Area::Output,
        Area::ControlFlow,
        Area::Functions,
        Area::Sorting,
        Area::Recursion,
    ] {
        let n = cases.iter().filter(|c| c.area == area).count();
        assert!(n >= 3, "area {area:?} has only {n} cases");
    }
}

#[test]
fn named_paper_cases_present_with_expected_features() {
    let cases = all_cases();
    let get = |name: &str| {
        cases
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    assert!(get("dbonerow").stylesheet.contains("row[id ="));
    assert!(get("avts").stylesheet.contains("{firstname}"));
    assert!(get("chart").stylesheet.contains("count(row"));
    assert!(get("total").stylesheet.contains("sum(row/zip)"));
    assert!(get("metric").stylesheet.contains("xsl:choose"));
}

#[test]
fn recursion_cases_actually_recurse() {
    for name in ["bottles", "tower", "queens", "games", "wordcount", "reverser"] {
        let c = xsltdb_xsltmark::case(name);
        assert!(
            c.stylesheet.matches("call-template").count() >= 2,
            "{name} does not self-call"
        );
    }
}

#[test]
fn sorting_cases_sort() {
    // `backwards` reverses via sibling recursion rather than xsl:sort.
    for name in ["alphabetize", "numbersort", "stringsort"] {
        let c = xsltdb_xsltmark::case(name);
        assert!(c.stylesheet.contains("xsl:sort"), "{name} has no xsl:sort");
    }
    assert!(xsltdb_xsltmark::case("backwards")
        .stylesheet
        .contains("preceding-sibling"));
}

#[test]
fn stylesheets_are_self_contained() {
    for c in all_cases() {
        assert!(!c.stylesheet.contains("document("), "{} uses document()", c.name);
        assert!(!c.stylesheet.contains("xsl:import"), "{} imports", c.name);
        assert!(!c.stylesheet.contains("xsl:include"), "{} includes", c.name);
    }
}
