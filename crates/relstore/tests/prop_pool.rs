//! Property-based buffer-pool soundness under concurrent pin / read /
//! insert / evict interleavings.
//!
//! Each case decodes a random op tape and replays it across 4 threads
//! against one [`BufferPool`] whose frame budget (6) is far below the
//! heap's page count, so eviction pressure is constant. Three invariants:
//!
//! * **Pinned pages are never evicted** — a thread that pins a frozen
//!   (non-tail) page, then storms the pool with enough scans to cycle
//!   the clock hand several times over, must read back the exact bytes
//!   it pinned.
//! * **Pins conserve** — after the fleet quiesces every pin count is
//!   back to zero (guards unpin on drop, even while other threads race),
//!   and peak residency never exceeded the budget.
//! * **Pool scan ≡ Mem scan** — the heap's full contents equal a shadow
//!   in-memory `Vec` mutated in lockstep under the same lock, row for
//!   row, datum for datum, no matter how the interleaving went.

use proptest::prelude::*;
use std::sync::{Arc, Mutex, PoisonError};
use xsltdb_relstore::{BufferPool, Datum, HeapFile, PageId};

const THREADS: usize = 4;
const FRAMES: usize = 6;
/// Padding that keeps rows fat enough that the seed data alone spans
/// several times the frame budget.
const PAD: usize = 200;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Pin a frozen page, storm the pool, assert the pinned bytes never
    /// moved, unpin.
    Pin(u32),
    /// Random point read, differenced against the shadow.
    Read(u32),
    /// Append one row to the heap and the shadow under one lock.
    Insert,
    /// Sequential scan of every page: the eviction storm.
    Evict,
}

fn row_for(id: i64) -> Vec<Datum> {
    vec![Datum::Int(id), Datum::Text(format!("r{id}-{}", "x".repeat(PAD)))]
}

/// Heap and shadow behind one lock so every mutation lands in both or
/// neither; reads take the same lock, so a read compares like with like.
struct Store {
    heap: HeapFile,
    shadow: Vec<Vec<Datum>>,
}

fn run_interleaving(ops: &[(u32, u32)]) {
    let pool = Arc::new(BufferPool::new(FRAMES));
    let mut heap = HeapFile::create(&pool).expect("temp heap file");
    let mut shadow = Vec::new();
    for id in 0..240 {
        let row = row_for(id);
        heap.append(&row).expect("seed append");
        shadow.push(row);
    }
    assert!(
        heap.page_count() as usize > 2 * FRAMES,
        "seed data must overflow the budget for the eviction pressure to be real"
    );
    let store = Mutex::new(Store { heap, shadow });
    let decoded: Vec<Op> = ops
        .iter()
        .map(|&(action, target)| match action % 4 {
            0 => Op::Pin(target),
            1 => Op::Read(target),
            2 => Op::Insert,
            _ => Op::Evict,
        })
        .collect();

    std::thread::scope(|s| {
        for thread in 0..THREADS {
            let pool = &pool;
            let store = &store;
            let decoded = &decoded;
            s.spawn(move || {
                let mut tick = 0i64;
                for op in decoded.iter().skip(thread).step_by(THREADS) {
                    tick += 1;
                    match *op {
                        Op::Pin(target) => {
                            // Pin a *frozen* page: everything below the
                            // tail is append-only-immutable, so its bytes
                            // may only change if eviction steals the
                            // frame out from under the pin.
                            let (file, page) = {
                                let st =
                                    store.lock().unwrap_or_else(PoisonError::into_inner);
                                let frozen = st.heap.page_count().saturating_sub(1);
                                if frozen == 0 {
                                    continue;
                                }
                                (st.heap.file_id(), target % frozen)
                            };
                            let guard =
                                pool.fetch(PageId { file, page }).expect("pin frozen page");
                            let pinned: Vec<u8> = guard.with_read(|buf| buf.to_vec());
                            // Storm: cycle the clock hand over every other
                            // frame several times while the pin is live.
                            for _ in 0..2 {
                                let st =
                                    store.lock().unwrap_or_else(PoisonError::into_inner);
                                for p in 0..st.heap.page_count() {
                                    st.heap.read_page_rows(p).expect("storm scan");
                                }
                            }
                            guard.with_read(|buf| {
                                assert_eq!(
                                    buf, &pinned[..],
                                    "pinned page {page} changed under eviction pressure"
                                );
                            });
                        }
                        Op::Read(target) => {
                            let st = store.lock().unwrap_or_else(PoisonError::into_inner);
                            let n = st.shadow.len();
                            let r = target as usize % n;
                            let got = st.heap.get(r).expect("point read");
                            assert_eq!(got, st.shadow[r], "row {r} diverged from shadow");
                        }
                        Op::Insert => {
                            let mut st =
                                store.lock().unwrap_or_else(PoisonError::into_inner);
                            let id = 10_000 + (thread as i64) * 1_000 + tick;
                            let row = row_for(id);
                            st.heap.append(&row).expect("append");
                            st.shadow.push(row);
                        }
                        Op::Evict => {
                            let st = store.lock().unwrap_or_else(PoisonError::into_inner);
                            for p in 0..st.heap.page_count() {
                                st.heap.read_page_rows(p).expect("eviction scan");
                            }
                        }
                    }
                }
            });
        }
    });

    // Quiesce: every guard dropped, every pin returned.
    assert_eq!(pool.pinned_frames(), 0, "pins leaked after the fleet quiesced");
    let snap = pool.stats();
    assert!(
        snap.peak_resident_frames <= FRAMES as u64,
        "pool overran its frame budget: {snap:?}"
    );

    // Pool scan ≡ Mem scan: the whole heap against the whole shadow.
    let st = store.into_inner().unwrap_or_else(PoisonError::into_inner);
    let mut scanned = Vec::with_capacity(st.shadow.len());
    for p in 0..st.heap.page_count() {
        scanned.extend(st.heap.read_page_rows(p).expect("final scan"));
    }
    assert_eq!(scanned, st.shadow, "pool scan diverged from the in-memory scan");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_pin_read_insert_evict_holds_pool_invariants(
        ops in proptest::collection::vec((0u32..8, 0u32..4096), 8..48)
    ) {
        run_interleaving(&ops);
    }
}

/// Deterministic single-thread anchor for the same invariants, so a
/// threaded-property failure has a minimal reference to debug against.
#[test]
fn sequential_pool_anchor() {
    let pool = Arc::new(BufferPool::new(FRAMES));
    let mut heap = HeapFile::create(&pool).expect("temp heap file");
    let mut shadow = Vec::new();
    for id in 0..240 {
        let row = row_for(id);
        heap.append(&row).expect("append");
        shadow.push(row);
    }
    let guard = pool
        .fetch(PageId { file: heap.file_id(), page: 0 })
        .expect("pin page 0");
    let pinned: Vec<u8> = guard.with_read(|buf| buf.to_vec());
    for p in 0..heap.page_count() {
        heap.read_page_rows(p).expect("storm scan");
    }
    guard.with_read(|buf| assert_eq!(buf, &pinned[..], "pinned page moved"));
    drop(guard);
    assert_eq!(pool.pinned_frames(), 0);
    let mut scanned = Vec::new();
    for p in 0..heap.page_count() {
        scanned.extend(heap.read_page_rows(p).expect("scan"));
    }
    assert_eq!(scanned, shadow);
    assert!(pool.stats().peak_resident_frames <= FRAMES as u64);
}
