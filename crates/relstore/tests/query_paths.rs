//! Access-path behaviour of full SQL/XML queries: base-table filtering,
//! EXPLAIN-style path reporting, and the interplay of indexes with
//! publishing.

use xsltdb_relstore::exec::{CmpOp, Conjunction};
use xsltdb_relstore::pubexpr::{PubExpr, SqlXmlQuery};
use xsltdb_relstore::{AccessPath, Catalog, ColType, Datum, ExecStats, Table};

fn catalog() -> Catalog {
    let mut t = Table::new("emp", &[("empno", ColType::Int), ("sal", ColType::Int)]);
    for (no, sal) in [(1, 100), (2, 2500), (3, 900), (4, 4100)] {
        t.insert(vec![Datum::Int(no), Datum::Int(sal)]).unwrap();
    }
    let mut c = Catalog::new();
    c.add_table(t);
    c.create_index("emp", "empno").unwrap();
    c
}

#[test]
fn base_table_where_uses_index() {
    let c = catalog();
    let q = SqlXmlQuery {
        base_table: "emp".into(),
        where_clause: Conjunction::single("empno", CmpOp::Eq, Datum::Int(3)),
        order_by: Vec::new(),
        select: PubExpr::elem("e", vec![PubExpr::col("emp", "sal")]),
    };
    assert_eq!(
        q.explain_base_path(&c).unwrap(),
        AccessPath::IndexEq { column: "empno".into() }
    );
    let stats = ExecStats::new();
    let docs = q.execute(&c, &stats).unwrap();
    assert_eq!(docs.len(), 1);
    assert_eq!(xsltdb_xml::to_string(&docs[0]), "<e>900</e>");
    assert_eq!(stats.snapshot().rows_scanned, 0);
}

#[test]
fn unindexed_filter_full_scans() {
    let c = catalog();
    let q = SqlXmlQuery {
        base_table: "emp".into(),
        where_clause: Conjunction::single("sal", CmpOp::Gt, Datum::Int(1000)),
        order_by: Vec::new(),
        select: PubExpr::elem("e", vec![PubExpr::col("emp", "empno")]),
    };
    assert_eq!(q.explain_base_path(&c).unwrap(), AccessPath::FullScan);
    let stats = ExecStats::new();
    let docs = q.execute(&c, &stats).unwrap();
    assert_eq!(docs.len(), 2);
    assert_eq!(stats.snapshot().rows_scanned, 4);
}

#[test]
fn elements_built_counter() {
    let c = catalog();
    let q = SqlXmlQuery {
        base_table: "emp".into(),
        where_clause: Conjunction::default(),
        order_by: Vec::new(),
        select: PubExpr::elem(
            "e",
            vec![PubExpr::elem("n", vec![PubExpr::col("emp", "empno")])],
        ),
    };
    let stats = ExecStats::new();
    q.execute(&c, &stats).unwrap();
    // Two elements per row, four rows.
    assert_eq!(stats.snapshot().elements_built, 8);
}

#[test]
fn unknown_base_table_errors() {
    let c = catalog();
    let q = SqlXmlQuery {
        base_table: "missing".into(),
        where_clause: Conjunction::default(),
        order_by: Vec::new(),
        select: PubExpr::lit("x"),
    };
    assert!(q.execute(&c, &ExecStats::new()).is_err());
}

#[test]
fn unknown_column_in_predicate_errors_cleanly() {
    let c = catalog();
    let q = SqlXmlQuery {
        base_table: "emp".into(),
        where_clause: Conjunction::single("ghost", CmpOp::Eq, Datum::Int(1)),
        order_by: Vec::new(),
        select: PubExpr::lit("x"),
    };
    // The residual filter path swallows per-row errors as non-matches; the
    // planner's scan interface surfaces them on full scans.
    if let Ok(docs) = q.execute(&c, &ExecStats::new()) {
        // Surfacing an error is also acceptable; a success must be empty.
        assert!(docs.is_empty());
    }
}
