//! Symbolic table slots and their execute-time bindings.
//!
//! A canonicalised plan refers to tables through slots (`$t0`, `$t1`, …)
//! instead of concrete names, so one prepared plan can serve every view
//! publishing the same shape. At execute time a [`SlotBindings`] maps each
//! slot back to the concrete table the current view draws from; names that
//! are not slots pass through unchanged, so an empty binding set is the
//! identity and concrete (un-canonicalised) queries run exactly as before.

use crate::table::StoreError;

/// The name of table slot `i` (`$t0`, `$t1`, …). `$` cannot start a SQL
/// identifier, so slots can never collide with a concrete table name.
pub fn slot_name(i: usize) -> String {
    format!("$t{i}")
}

/// True when `name` is a symbolic slot rather than a concrete table name.
pub fn is_slot(name: &str) -> bool {
    name.starts_with('$')
}

/// Slot → concrete-table map resolved against the catalog at execute time.
///
/// Slot counts are tiny (one per distinct table a view publishes from), so
/// a linear probe over a small vector beats a hash map here.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotBindings {
    pairs: Vec<(String, String)>,
}

impl SlotBindings {
    pub fn new() -> SlotBindings {
        SlotBindings::default()
    }

    /// The empty binding set: every concrete name resolves to itself and
    /// any slot is an error — the identity for un-canonicalised queries.
    pub fn identity() -> SlotBindings {
        SlotBindings::default()
    }

    /// Bind `slot` to `table` (replacing any previous binding of the slot).
    pub fn bind(&mut self, slot: impl Into<String>, table: impl Into<String>) {
        let slot = slot.into();
        let table = table.into();
        match self.pairs.iter_mut().find(|(s, _)| *s == slot) {
            Some(pair) => pair.1 = table,
            None => self.pairs.push((slot, table)),
        }
    }

    /// The binding that maps slot `i` to `tables[i]` — the shape produced
    /// by canonicalisation, consumed by plan binding.
    pub fn from_tables<S: AsRef<str>>(tables: &[S]) -> SlotBindings {
        let mut b = SlotBindings::new();
        for (i, t) in tables.iter().enumerate() {
            b.bind(slot_name(i), t.as_ref());
        }
        b
    }

    /// The concrete table bound to `slot`, if any.
    pub fn get(&self, slot: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(s, _)| s == slot)
            .map(|(_, t)| t.as_str())
    }

    /// Resolve a (possibly symbolic) table name to a concrete one. Concrete
    /// names pass through untouched; an unbound slot is a typed error — a
    /// plan must never silently execute against the wrong relation.
    pub fn resolve<'a>(&'a self, name: &'a str) -> Result<&'a str, StoreError> {
        if !is_slot(name) {
            return Ok(name);
        }
        self.get(name)
            .ok_or_else(|| StoreError::new(format!("unbound table slot {name}")))
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The bindings in insertion (slot) order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.pairs.iter().map(|(s, t)| (s.as_str(), t.as_str()))
    }
}

/// FNV-1a over a byte stream — the digest primitive for canonical
/// fingerprints and cache keys. Not cryptographic; it only has to be fast,
/// deterministic and well-spread, because cache-entry *equality* is decided
/// by full key comparison.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_names_are_dollar_prefixed() {
        assert_eq!(slot_name(0), "$t0");
        assert_eq!(slot_name(12), "$t12");
        assert!(is_slot("$t0"));
        assert!(!is_slot("emp"));
    }

    #[test]
    fn identity_passes_concrete_names_through() {
        let b = SlotBindings::identity();
        assert_eq!(b.resolve("emp").unwrap(), "emp");
        assert!(b.resolve("$t0").is_err());
    }

    #[test]
    fn bound_slots_resolve_and_rebind() {
        let mut b = SlotBindings::new();
        b.bind("$t0", "dept");
        b.bind("$t1", "emp");
        assert_eq!(b.resolve("$t0").unwrap(), "dept");
        assert_eq!(b.resolve("$t1").unwrap(), "emp");
        assert_eq!(b.len(), 2);
        b.bind("$t1", "emp2");
        assert_eq!(b.resolve("$t1").unwrap(), "emp2");
        assert_eq!(b.len(), 2, "rebinding replaces, not appends");
    }

    #[test]
    fn from_tables_assigns_slots_in_order() {
        let b = SlotBindings::from_tables(&["dept", "emp"]);
        assert_eq!(b.get("$t0"), Some("dept"));
        assert_eq!(b.get("$t1"), Some("emp"));
        assert_eq!(b.get("$t2"), None);
    }

    #[test]
    fn fnv64_is_stable_and_spreads() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }
}
