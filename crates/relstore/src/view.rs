//! XMLType views over relational data (paper Table 3): a view produces one
//! XML document per row of its base table via SQL/XML publishing functions.

use crate::catalog::Catalog;
use crate::pubexpr::SqlXmlQuery;
use crate::stats::ExecStats;
use crate::table::StoreError;
use xsltdb_xml::{Document, FaultKind, FaultPoint, Guard};

/// An XMLType view definition.
#[derive(Debug, Clone, PartialEq)]
pub struct XmlView {
    pub name: String,
    pub query: SqlXmlQuery,
}

impl XmlView {
    pub fn new(name: &str, query: SqlXmlQuery) -> Self {
        XmlView { name: name.to_string(), query }
    }

    /// The view's read-set: every table its query can touch. See
    /// [`SqlXmlQuery::referenced_tables`].
    pub fn referenced_tables(&self) -> Vec<String> {
        self.query.referenced_tables()
    }

    /// Materialise the view: one document per base row. This is the
    /// expensive step the paper's rewrite avoids — the no-rewrite baseline
    /// must call this before it can run XSLT functionally.
    pub fn materialize(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
    ) -> Result<Vec<Document>, StoreError> {
        self.query.execute(catalog, stats)
    }

    /// Guarded materialisation: the scan and publishing work are charged
    /// against `guard`, and an armed [`FaultPoint::Materialize`] fault
    /// fires at entry.
    pub fn materialize_guarded(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
    ) -> Result<Vec<Document>, StoreError> {
        if let Some(kind) = guard.take_fault(FaultPoint::Materialize) {
            match kind {
                FaultKind::Error => {
                    return Err(StoreError::new(format!(
                        "injected fault materialising view {}",
                        self.name
                    )))
                }
                FaultKind::Panic => panic!("injected panic materialising view"),
            }
        }
        self.query.execute_guarded(catalog, stats, guard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Conjunction;
    use crate::pubexpr::PubExpr;
    use crate::{datum::ColType, datum::Datum, table::Table};

    #[test]
    fn view_materializes_per_row() {
        let mut t = Table::new("t", &[("v", ColType::Int)]);
        t.insert(vec![Datum::Int(1)]).unwrap();
        t.insert(vec![Datum::Int(2)]).unwrap();
        let mut c = Catalog::new();
        c.add_table(t);
        let view = XmlView::new(
            "vu",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem("row", vec![PubExpr::col("t", "v")]),
            },
        );
        c.add_view(view.clone());
        let stats = ExecStats::new();
        let docs = view.materialize(&c, &stats).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<row>1</row>");
        assert!(c.view("vu").is_ok());
    }
}
