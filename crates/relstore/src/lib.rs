//! # xsltdb-relstore
//!
//! The relational storage substrate standing in for Oracle in the
//! reproduction: heap tables, per-column B-tree indexes, an iterator-based
//! pull executor with an access-path planner, SQL/XML publishing
//! expressions (`XMLElement`, `XMLAgg`, `XMLConcat`, `XMLAttributes`,
//! scalar `count`/`sum` subqueries), XMLType views over tables, and
//! execution statistics that make index usage observable.
//!
//! The paper's performance claims rest on two properties this crate
//! reproduces exactly: rewritten queries (Table 7 / Table 11) reach B-tree
//! indexes for their value predicates, and they never materialise the
//! intermediate XML documents the functional evaluation would build.
//!
//! ```
//! use xsltdb_relstore::{Catalog, Table, ColType, Datum, Conjunction, CmpOp, ExecStats};
//! use xsltdb_relstore::exec::scan;
//!
//! let mut emp = Table::new("emp", &[("sal", ColType::Int)]);
//! emp.insert(vec![Datum::Int(2450)]).unwrap();
//! emp.insert(vec![Datum::Int(1300)]).unwrap();
//! let mut cat = Catalog::new();
//! cat.add_table(emp);
//! cat.create_index("emp", "sal").unwrap();
//!
//! let stats = ExecStats::new();
//! let (rows, path) = scan(&cat, &stats, "emp",
//!     &Conjunction::single("sal", CmpOp::Gt, Datum::Int(2000))).unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(stats.snapshot().index_probes, 1); // B-tree, not a scan
//! # let _ = path;
//! ```

pub mod binding;
pub mod catalog;
pub mod datum;
pub mod docstore;
pub mod exec;
pub mod index;
pub mod page;
pub mod pool;
pub mod pubexpr;
pub mod sqlpretty;
pub mod stats;
pub mod table;
pub mod view;

pub use binding::{fnv64, is_slot, slot_name, SlotBindings};
pub use catalog::{Catalog, TableMeta, TableVersion};
pub use datum::{ArithOp, ColType, Datum, DatumKey};
pub use docstore::{DocStorageModel, PathHit, XmlDocStore};
pub use exec::{scan_guarded, AccessPath, CmpOp, ColumnCmp, Conjunction};
pub use index::Index;
pub use page::PAGE_SIZE;
pub use pool::{BufferPool, HeapFile, PageGuard, PageId};
pub use pubexpr::{AggFunc, AggOrder, AggPredTerm, Bindings, PubExpr, SqlXmlQuery};
pub use sqlpretty::sql_text;
pub use stats::{CacheSnapshot, CacheStats, ExecStats, PoolSnapshot, PoolStats, StatsSnapshot};
pub use table::{Column, RowId, RowCursor, StoreError, Table};
pub use view::XmlView;
