//! Slotted heap pages: the on-disk unit of the paged storage backend.
//!
//! A page is a fixed [`PAGE_SIZE`] byte array with a tiny header, cells
//! appended upward from the header, and a slot directory growing downward
//! from the end. Cells are opaque byte strings — the heap layer stores
//! encoded rows in them, the paged B-tree stores `(key, child-or-row)`
//! entries. Pages are append-only (tables here never delete or update in
//! place), which keeps the format free of tombstones and compaction.
//!
//! Layout:
//!
//! ```text
//! offset 0..2   slot count           (u16 LE)
//! offset 2..4   free-space offset    (u16 LE, first unused cell byte)
//! offset 4..    cells, packed upward
//! ...           free space
//! end           slot directory, one 4-byte entry per cell, growing DOWN:
//!               slot i at PAGE_SIZE - 4*(i+1) = (cell offset u16, len u16)
//! ```
//!
//! Every access is checked: this module (and `pool`) deny
//! `clippy::indexing_slicing`, so a corrupt page surfaces as a typed
//! [`StoreError`], never as an index panic in the storage tier.

#![deny(clippy::indexing_slicing)]

use crate::datum::Datum;
use crate::table::StoreError;

/// Fixed page size of the paged storage backend, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of per-page header (slot count + free offset).
const HEADER: usize = 4;

/// Bytes per slot-directory entry (cell offset + cell length).
const SLOT: usize = 4;

/// The largest cell a single page can hold (one cell, one slot).
pub const MAX_CELL: usize = PAGE_SIZE - HEADER - SLOT;

fn corrupt(what: &str) -> StoreError {
    StoreError::new(format!("page corrupt: {what}"))
}

fn read_u16(buf: &[u8], off: usize) -> Result<u16, StoreError> {
    let b = buf
        .get(off..off + 2)
        .ok_or_else(|| corrupt("u16 out of bounds"))?;
    let arr: [u8; 2] = b.try_into().map_err(|_| corrupt("u16 slice"))?;
    Ok(u16::from_le_bytes(arr))
}

fn write_u16(buf: &mut [u8], off: usize, v: u16) -> Result<(), StoreError> {
    let b = buf
        .get_mut(off..off + 2)
        .ok_or_else(|| corrupt("u16 write out of bounds"))?;
    b.copy_from_slice(&v.to_le_bytes());
    Ok(())
}

/// Initialise `buf` as an empty slotted page.
pub fn init_page(buf: &mut [u8]) -> Result<(), StoreError> {
    if buf.len() != PAGE_SIZE {
        return Err(corrupt("wrong buffer size"));
    }
    write_u16(buf, 0, 0)?;
    write_u16(buf, 2, HEADER as u16)
}

/// Number of cells stored in the page.
pub fn slot_count(buf: &[u8]) -> Result<usize, StoreError> {
    Ok(read_u16(buf, 0)? as usize)
}

/// Bytes still available for one more cell (cell bytes + its slot entry).
pub fn free_space(buf: &[u8]) -> Result<usize, StoreError> {
    let slots = slot_count(buf)?;
    let free_off = read_u16(buf, 2)? as usize;
    let dir_start = PAGE_SIZE
        .checked_sub(SLOT * slots)
        .ok_or_else(|| corrupt("slot directory overflow"))?;
    dir_start
        .checked_sub(free_off)
        .ok_or_else(|| corrupt("free offset past slot directory"))
        .map(|space| space.saturating_sub(SLOT))
}

/// Append a cell. Returns the new slot number, or `None` if the cell does
/// not fit in this page (the caller allocates a fresh page and retries).
pub fn append_cell(buf: &mut [u8], cell: &[u8]) -> Result<Option<u16>, StoreError> {
    if cell.len() > MAX_CELL {
        return Err(StoreError::new(format!(
            "cell of {} bytes exceeds page capacity of {MAX_CELL}",
            cell.len()
        )));
    }
    if free_space(buf)? < cell.len() {
        return Ok(None);
    }
    let slots = slot_count(buf)?;
    let free_off = read_u16(buf, 2)? as usize;
    let dst = buf
        .get_mut(free_off..free_off + cell.len())
        .ok_or_else(|| corrupt("cell area out of bounds"))?;
    dst.copy_from_slice(cell);
    let slot_off = PAGE_SIZE
        .checked_sub(SLOT * (slots + 1))
        .ok_or_else(|| corrupt("slot directory overflow"))?;
    write_u16(buf, slot_off, free_off as u16)?;
    write_u16(buf, slot_off + 2, cell.len() as u16)?;
    write_u16(buf, 2, (free_off + cell.len()) as u16)?;
    write_u16(buf, 0, (slots + 1) as u16)?;
    Ok(Some(slots as u16))
}

/// Read the cell stored in `slot`.
pub fn read_cell(buf: &[u8], slot: u16) -> Result<&[u8], StoreError> {
    let slots = slot_count(buf)?;
    if slot as usize >= slots {
        return Err(StoreError::new(format!(
            "slot {slot} out of range ({slots} cells in page)"
        )));
    }
    let slot_off = PAGE_SIZE
        .checked_sub(SLOT * (slot as usize + 1))
        .ok_or_else(|| corrupt("slot directory overflow"))?;
    let off = read_u16(buf, slot_off)? as usize;
    let len = read_u16(buf, slot_off + 2)? as usize;
    buf.get(off..off + len).ok_or_else(|| corrupt("cell extent"))
}

// ---------------------------------------------------------------------------
// Datum / row serialisation
// ---------------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_NUM: u8 = 2;
const TAG_TEXT: u8 = 3;

/// Append the wire encoding of one datum to `out`.
pub fn encode_datum(d: &Datum, out: &mut Vec<u8>) {
    match d {
        Datum::Null => out.push(TAG_NULL),
        Datum::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Datum::Num(n) => {
            // Bit-exact: NaN payloads and signed zeros round-trip, so a
            // paged scan is byte-identical to the Mem scan it mirrors.
            out.push(TAG_NUM);
            out.extend_from_slice(&n.to_bits().to_le_bytes());
        }
        Datum::Text(s) => {
            out.push(TAG_TEXT);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode one datum starting at `*pos`, advancing `*pos` past it.
pub fn decode_datum(cell: &[u8], pos: &mut usize) -> Result<Datum, StoreError> {
    let tag = *cell.get(*pos).ok_or_else(|| corrupt("datum tag"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Datum::Null),
        TAG_INT => {
            let b = cell
                .get(*pos..*pos + 8)
                .ok_or_else(|| corrupt("int payload"))?;
            let arr: [u8; 8] = b.try_into().map_err(|_| corrupt("int slice"))?;
            *pos += 8;
            Ok(Datum::Int(i64::from_le_bytes(arr)))
        }
        TAG_NUM => {
            let b = cell
                .get(*pos..*pos + 8)
                .ok_or_else(|| corrupt("num payload"))?;
            let arr: [u8; 8] = b.try_into().map_err(|_| corrupt("num slice"))?;
            *pos += 8;
            Ok(Datum::Num(f64::from_bits(u64::from_le_bytes(arr))))
        }
        TAG_TEXT => {
            let b = cell
                .get(*pos..*pos + 4)
                .ok_or_else(|| corrupt("text length"))?;
            let arr: [u8; 4] = b.try_into().map_err(|_| corrupt("text length slice"))?;
            let len = u32::from_le_bytes(arr) as usize;
            *pos += 4;
            let s = cell
                .get(*pos..*pos + len)
                .ok_or_else(|| corrupt("text payload"))?;
            *pos += len;
            Ok(Datum::Text(
                std::str::from_utf8(s)
                    .map_err(|_| corrupt("text not utf-8"))?
                    .to_string(),
            ))
        }
        _ => Err(corrupt("unknown datum tag")),
    }
}

/// Encode a full row as one cell: `u16 LE` column count, then each datum.
pub fn encode_row(row: &[Datum]) -> Result<Vec<u8>, StoreError> {
    if row.len() > u16::MAX as usize {
        return Err(StoreError::new("row has too many columns to page"));
    }
    let mut out = Vec::with_capacity(16 + row.len() * 12);
    out.extend_from_slice(&(row.len() as u16).to_le_bytes());
    for d in row {
        encode_datum(d, &mut out);
    }
    Ok(out)
}

/// Decode a row cell produced by [`encode_row`].
pub fn decode_row(cell: &[u8]) -> Result<Vec<Datum>, StoreError> {
    let b = cell.get(0..2).ok_or_else(|| corrupt("row column count"))?;
    let arr: [u8; 2] = b.try_into().map_err(|_| corrupt("row count slice"))?;
    let cols = u16::from_le_bytes(arr) as usize;
    let mut pos = 2usize;
    let mut row = Vec::with_capacity(cols);
    for _ in 0..cols {
        row.push(decode_datum(cell, &mut pos)?);
    }
    if pos != cell.len() {
        return Err(corrupt("trailing bytes after row"));
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        let mut buf = vec![0u8; PAGE_SIZE];
        init_page(&mut buf).unwrap();
        buf
    }

    #[test]
    fn empty_page_shape() {
        let buf = fresh();
        assert_eq!(slot_count(&buf).unwrap(), 0);
        assert_eq!(free_space(&buf).unwrap(), MAX_CELL);
    }

    #[test]
    fn append_and_read_cells() {
        let mut buf = fresh();
        assert_eq!(append_cell(&mut buf, b"alpha").unwrap(), Some(0));
        assert_eq!(append_cell(&mut buf, b"").unwrap(), Some(1));
        assert_eq!(append_cell(&mut buf, b"gamma-longer").unwrap(), Some(2));
        assert_eq!(read_cell(&buf, 0).unwrap(), b"alpha");
        assert_eq!(read_cell(&buf, 1).unwrap(), b"");
        assert_eq!(read_cell(&buf, 2).unwrap(), b"gamma-longer");
        assert!(read_cell(&buf, 3).is_err());
    }

    #[test]
    fn page_fills_and_reports_full() {
        let mut buf = fresh();
        let cell = [7u8; 100];
        let mut n = 0usize;
        while append_cell(&mut buf, &cell).unwrap().is_some() {
            n += 1;
        }
        // 100-byte cell + 4-byte slot → at most (4096-4)/104 cells.
        assert!(n >= 38, "page held only {n} cells");
        assert!(free_space(&buf).unwrap() < 100 + SLOT);
        // Everything written is still readable.
        for s in 0..n {
            assert_eq!(read_cell(&buf, s as u16).unwrap(), &cell);
        }
    }

    #[test]
    fn oversized_cell_is_typed_error() {
        let mut buf = fresh();
        let big = vec![0u8; MAX_CELL + 1];
        let err = append_cell(&mut buf, &big).unwrap_err();
        assert!(err.message().contains("exceeds page capacity"), "{err}");
    }

    #[test]
    fn datum_roundtrip_bit_exact() {
        let data = vec![
            Datum::Null,
            Datum::Int(i64::MIN),
            Datum::Int(0),
            Datum::Int(i64::MAX),
            Datum::Num(0.0),
            Datum::Num(-0.0),
            Datum::Num(f64::NAN),
            Datum::Num(f64::INFINITY),
            Datum::Num(2450.5),
            Datum::Text(String::new()),
            Datum::Text("köln — xslt".into()),
        ];
        let cell = encode_row(&data).unwrap();
        let back = decode_row(&cell).unwrap();
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            match (a, b) {
                (Datum::Num(x), Datum::Num(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn corrupt_cells_are_typed_errors_not_panics() {
        assert!(decode_row(b"").is_err());
        assert!(decode_row(&[2, 0, TAG_INT, 1]).is_err()); // truncated int
        assert!(decode_row(&[1, 0, 9]).is_err()); // unknown tag
        assert!(decode_row(&[1, 0, TAG_NULL, 0xFF]).is_err()); // trailing bytes
        let mut truncated_text = vec![1, 0, TAG_TEXT];
        truncated_text.extend_from_slice(&100u32.to_le_bytes());
        truncated_text.extend_from_slice(b"short");
        assert!(decode_row(&truncated_text).is_err());
    }
}
