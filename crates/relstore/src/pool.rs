//! The buffer pool: a fixed budget of page frames shared by every paged
//! table and index in a catalog, plus the append-only [`HeapFile`] built
//! on top of it.
//!
//! Design:
//!
//! * **Fixed frame budget.** The pool owns at most `frame_budget` frames of
//!   [`PAGE_SIZE`] bytes each; frames are created on demand up to the
//!   budget and never beyond it, so peak pool residency is bounded no
//!   matter how many pages the backing files grow to.
//! * **Pin/unpin RAII.** [`fetch`](BufferPool::fetch) /
//!   [`alloc`](BufferPool::alloc) return a [`PageGuard`] that pins the
//!   frame; `Drop` unpins — including during a panic unwind, and with
//!   poison-tolerant locking, so a panicking reader can never strand a pin
//!   and leak a frame out of the budget.
//! * **Clock eviction.** Victim selection is second-chance over unpinned
//!   frames; pinned frames are never evicted (asserted by the property
//!   suite). When every frame is pinned, `fetch` blocks on a condvar until
//!   an unpin frees one (bounded by a generous timeout that surfaces as a
//!   typed [`StoreError`], not a deadlock).
//! * **Dirty write-back.** Frames dirtied through
//!   [`PageGuard::with_write`] are written back to their heap file at
//!   eviction; a freshly allocated page is born dirty, so any page that is
//!   not resident is guaranteed to be on disk — a miss can always be
//!   served by a read.
//! * **Temp-file backing.** Heap files live in the OS temp directory and
//!   are unlinked immediately after creation (the open handle keeps them
//!   alive), so a crashed process leaks no storage.
//!
//! Like [`page`](crate::page), this module denies `clippy::indexing_slicing`:
//! the paged hot path must fail typed, never panic on an index.

#![deny(clippy::indexing_slicing)]

use crate::datum::Datum;
use crate::page::{self, PAGE_SIZE};
use crate::stats::{PoolSnapshot, PoolStats};
use crate::table::{RowId, StoreError};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::{Duration, Instant};

/// Identity of a page: which registered file, which page within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageId {
    pub file: u32,
    pub page: u32,
}

/// How long a `fetch` will wait for a pinned-out pool to free a frame
/// before failing typed. Readers pin at most one page at a time, so in
/// practice a wait ends at the next unpin; the timeout only fires if the
/// pool is genuinely wedged (e.g. a caller leaked guards).
const PIN_WAIT: Duration = Duration::from_secs(10);

struct Frame {
    /// Frame content. `Arc` so a [`PageGuard`] can read/write without
    /// holding the pool mutex; the pin count (not this lock) is what keeps
    /// the mapping stable while a guard is alive.
    buf: Arc<RwLock<Box<[u8]>>>,
    page: Option<PageId>,
    pin: u32,
    referenced: bool,
    dirty: bool,
}

impl Frame {
    fn empty() -> Frame {
        Frame {
            buf: Arc::new(RwLock::new(vec![0u8; PAGE_SIZE].into_boxed_slice())),
            page: None,
            pin: 0,
            referenced: false,
            dirty: false,
        }
    }
}

struct PoolInner {
    frames: Vec<Frame>,
    /// Resident pages → frame slot.
    map: HashMap<PageId, usize>,
    /// Clock hand for second-chance eviction.
    hand: usize,
    /// Registered backing files (temp heap files, already unlinked).
    files: HashMap<u32, File>,
    next_file: u32,
}

/// A shared pool of page frames. One pool per paged [`Catalog`]
/// (crate::catalog::Catalog); tables and B-tree indexes draw from the same
/// budget, which is exactly what makes "probe cost = page reads" a
/// meaningful, bounded quantity.
pub struct BufferPool {
    inner: Mutex<PoolInner>,
    /// Signalled by every pin release; `fetch` waits here when saturated.
    vacancy: Condvar,
    stats: PoolStats,
    frame_budget: usize,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("frame_budget", &self.frame_budget)
            .field("resident", &self.resident_frames())
            .field("pinned", &self.pinned_frames())
            .finish()
    }
}

fn io_err(what: &str, e: std::io::Error) -> StoreError {
    StoreError::new(format!("heap file {what}: {e}"))
}

impl BufferPool {
    /// A pool holding at most `frame_budget` pages resident. Budgets below
    /// 2 are raised to 2 (an append needs to hold its tail page while the
    /// next one is allocated).
    pub fn new(frame_budget: usize) -> BufferPool {
        BufferPool {
            inner: Mutex::new(PoolInner {
                frames: Vec::new(),
                map: HashMap::new(),
                hand: 0,
                files: HashMap::new(),
                next_file: 0,
            }),
            vacancy: Condvar::new(),
            stats: PoolStats::new(),
            frame_budget: frame_budget.max(2),
        }
    }

    pub fn frame_budget(&self) -> usize {
        self.frame_budget
    }

    pub fn stats(&self) -> PoolSnapshot {
        self.stats.snapshot()
    }

    /// Pages currently resident in frames.
    pub fn resident_frames(&self) -> usize {
        self.lock_inner().map.len()
    }

    /// Frames with a non-zero pin count. Quiesces to zero when no guards
    /// are alive — the conservation invariant of the property suite.
    pub fn pinned_frames(&self) -> usize {
        self.lock_inner().frames.iter().filter(|f| f.pin > 0).count()
    }

    fn lock_inner(&self) -> MutexGuard<'_, PoolInner> {
        // Poison-tolerant: a panic in another thread must not wedge the
        // pool — the pin counts it left behind are released by that
        // thread's own guard Drops during unwind.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Create a fresh temp-backed heap file and register it with the pool.
    /// The file is unlinked right after creation; the handle owns it.
    pub(crate) fn register_file(self: &Arc<Self>) -> Result<FileHandle, StoreError> {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir();
        let file = loop {
            let n = SEQ.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!("xsltdb-pool-{}-{n}.heap", std::process::id()));
            match OpenOptions::new().read(true).write(true).create_new(true).open(&path) {
                Ok(f) => {
                    // Unlink immediately: the open descriptor keeps the
                    // storage alive, and nothing survives the process.
                    let _ = std::fs::remove_file(&path);
                    break f;
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(io_err("create", e)),
            }
        };
        let mut inner = self.lock_inner();
        let id = inner.next_file;
        inner.next_file += 1;
        inner.files.insert(id, file);
        Ok(FileHandle { pool: Arc::clone(self), id })
    }

    /// Forget a backing file: drop its handle and free its unpinned
    /// resident frames. Called by [`FileHandle::drop`], i.e. when the last
    /// `HeapFile`/paged-index clone referencing the file goes away — at
    /// which point no pins on its pages can exist.
    fn release_file(&self, id: u32) {
        let mut inner = self.lock_inner();
        inner.files.remove(&id);
        let PoolInner { frames, map, .. } = &mut *inner;
        for frame in frames.iter_mut() {
            if let Some(pid) = frame.page {
                if pid.file == id && frame.pin == 0 {
                    map.remove(&pid);
                    frame.page = None;
                    frame.dirty = false;
                    frame.referenced = false;
                }
            }
        }
        self.stats.set_resident_frames(inner.map.len() as u64);
        // Frames freed: a saturated fetch may now proceed.
        self.vacancy.notify_all();
    }

    /// Pin the page, reading it from its file if not resident.
    pub fn fetch(&self, id: PageId) -> Result<PageGuard<'_>, StoreError> {
        self.pin_page(id, false)
    }

    /// Allocate-and-pin a brand-new page of `file`. The caller supplies the
    /// page number it is appending (files are append-only, so the caller —
    /// `HeapFile` or the index builder — is the allocator of record). The
    /// page is born dirty: eviction will materialise it on disk.
    pub fn alloc(&self, file: u32, pg: u32) -> Result<PageGuard<'_>, StoreError> {
        self.pin_page(PageId { file, page: pg }, true)
    }

    fn pin_page(&self, id: PageId, fresh: bool) -> Result<PageGuard<'_>, StoreError> {
        let mut inner = self.lock_inner();
        let deadline = Instant::now() + PIN_WAIT;
        loop {
            if let Some(&fi) = inner.map.get(&id) {
                if fresh {
                    return Err(StoreError::new(format!(
                        "page {}:{} allocated twice",
                        id.file, id.page
                    )));
                }
                let frame = inner
                    .frames
                    .get_mut(fi)
                    .ok_or_else(|| StoreError::new("pool map points past frame table"))?;
                frame.pin += 1;
                frame.referenced = true;
                self.stats.add_pool_hit();
                return Ok(PageGuard {
                    pool: self,
                    frame: fi,
                    buf: Arc::clone(&frame.buf),
                    dirty: false,
                });
            }
            match self.take_frame(&mut inner)? {
                Some(fi) => {
                    self.load_into(&mut inner, fi, id, fresh)?;
                    let frames = inner.map.len() as u64;
                    self.stats.set_resident_frames(frames);
                    let frame = inner
                        .frames
                        .get(fi)
                        .ok_or_else(|| StoreError::new("victim frame vanished"))?;
                    return Ok(PageGuard {
                        pool: self,
                        frame: fi,
                        buf: Arc::clone(&frame.buf),
                        dirty: false,
                    });
                }
                None => {
                    // Every frame is pinned. Wait for an unpin; guards pin
                    // one page at a time, so this resolves unless a caller
                    // is leaking guards — then fail typed, don't deadlock.
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(StoreError::new(format!(
                            "buffer pool exhausted: all {} frames pinned",
                            self.frame_budget
                        )));
                    }
                    let (g, _) = self
                        .vacancy
                        .wait_timeout(inner, deadline - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    inner = g;
                }
            }
        }
    }

    /// Claim a free frame: grow the pool while under budget, else run the
    /// clock over unpinned frames (evicting the victim's current page).
    /// `None` when every frame is pinned.
    fn take_frame(&self, inner: &mut PoolInner) -> Result<Option<usize>, StoreError> {
        if inner.frames.len() < self.frame_budget {
            inner.frames.push(Frame::empty());
            return Ok(Some(inner.frames.len() - 1));
        }
        let n = inner.frames.len();
        // Two sweeps: the first clears reference bits, the second must find
        // any unpinned frame.
        for _ in 0..2 * n {
            let i = inner.hand % n;
            inner.hand = (inner.hand + 1) % n;
            let Some(frame) = inner.frames.get_mut(i) else { continue };
            if frame.pin > 0 {
                continue;
            }
            if frame.referenced {
                frame.referenced = false;
                continue;
            }
            self.evict_slot(inner, i)?;
            return Ok(Some(i));
        }
        Ok(None)
    }

    /// Evict whatever page occupies frame `i` (must be unpinned), writing
    /// it back first if dirty.
    fn evict_slot(&self, inner: &mut PoolInner, i: usize) -> Result<(), StoreError> {
        let PoolInner { frames, map, files, .. } = inner;
        let Some(frame) = frames.get_mut(i) else { return Ok(()) };
        debug_assert_eq!(frame.pin, 0, "evicting a pinned frame");
        let Some(pid) = frame.page.take() else { return Ok(()) };
        if frame.dirty {
            // A released file may still own evictable frames for a moment;
            // its pages are garbage, so skipping the write is correct.
            if let Some(file) = files.get(&pid.file) {
                let buf = frame.buf.read().unwrap_or_else(PoisonError::into_inner);
                file.write_all_at(&buf, pid.page as u64 * PAGE_SIZE as u64)
                    .map_err(|e| io_err("write-back", e))?;
                self.stats.add_dirty_writeback();
            }
            frame.dirty = false;
        }
        map.remove(&pid);
        self.stats.add_eviction();
        Ok(())
    }

    /// Fill frame `fi` with page `id` — from disk (`fresh == false`) or as
    /// a newly initialised empty page — and pin it.
    fn load_into(
        &self,
        inner: &mut PoolInner,
        fi: usize,
        id: PageId,
        fresh: bool,
    ) -> Result<(), StoreError> {
        let PoolInner { frames, map, files, .. } = inner;
        let frame = frames
            .get_mut(fi)
            .ok_or_else(|| StoreError::new("frame index out of range"))?;
        {
            let mut buf = frame.buf.write().unwrap_or_else(PoisonError::into_inner);
            if fresh {
                page::init_page(&mut buf)?;
            } else {
                let file = files.get(&id.file).ok_or_else(|| {
                    StoreError::new(format!("page {}:{} of unregistered file", id.file, id.page))
                })?;
                file.read_exact_at(&mut buf, id.page as u64 * PAGE_SIZE as u64)
                    .map_err(|e| io_err("read", e))?;
                self.stats.add_page_read();
            }
        }
        frame.page = Some(id);
        frame.pin = 1;
        frame.referenced = true;
        frame.dirty = fresh;
        map.insert(id, fi);
        Ok(())
    }

    fn unpin(&self, fi: usize, dirty: bool) {
        let mut inner = self.lock_inner();
        if let Some(frame) = inner.frames.get_mut(fi) {
            frame.pin = frame.pin.saturating_sub(1);
            frame.dirty |= dirty;
            frame.referenced = true;
            if frame.pin == 0 {
                self.vacancy.notify_all();
            }
        }
    }
}

/// RAII pin on one pool frame. Reading and writing go through closures so
/// the frame lock is never held across caller code; `Drop` unpins (and
/// records dirtiness) even during unwind.
pub struct PageGuard<'p> {
    pool: &'p BufferPool,
    frame: usize,
    buf: Arc<RwLock<Box<[u8]>>>,
    dirty: bool,
}

impl PageGuard<'_> {
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let g = self.buf.read().unwrap_or_else(PoisonError::into_inner);
        f(&g)
    }

    pub fn with_write<R>(&mut self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        self.dirty = true;
        let mut g = self.buf.write().unwrap_or_else(PoisonError::into_inner);
        f(&mut g)
    }
}

impl Drop for PageGuard<'_> {
    fn drop(&mut self) {
        self.pool.unpin(self.frame, self.dirty);
    }
}

/// Owned registration of one backing file; dropping the last owner closes
/// the file and releases its frames.
#[derive(Debug)]
pub(crate) struct FileHandle {
    pool: Arc<BufferPool>,
    id: u32,
}

impl FileHandle {
    pub(crate) fn id(&self) -> u32 {
        self.id
    }

    pub(crate) fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

impl Drop for FileHandle {
    fn drop(&mut self) {
        self.pool.release_file(self.id);
    }
}

/// An append-only heap of encoded rows in slotted pages, resident only via
/// the buffer pool. Row N's address is found by binary search over the
/// first-row-per-page directory (kept in memory: 8 bytes per page, i.e.
/// ~2MB per billion rows — the directory is metadata, not data).
#[derive(Debug)]
pub struct HeapFile {
    handle: FileHandle,
    pages: u32,
    /// `page_first_row[p]` = RowId of the first row stored in page `p`.
    page_first_row: Vec<u64>,
    rows: u64,
}

impl HeapFile {
    pub fn create(pool: &Arc<BufferPool>) -> Result<HeapFile, StoreError> {
        Ok(HeapFile {
            handle: pool.register_file()?,
            pages: 0,
            page_first_row: Vec::new(),
            rows: 0,
        })
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        self.handle.pool()
    }

    /// The pool file id backing this heap: paired with a page number it
    /// names this heap's pages for explicit [`BufferPool::fetch`] pinning.
    pub fn file_id(&self) -> u32 {
        self.handle.id()
    }

    pub fn row_count(&self) -> usize {
        self.rows as usize
    }

    pub fn page_count(&self) -> u32 {
        self.pages
    }

    /// Append one row; returns its RowId (dense, insertion-ordered — the
    /// same contract the Mem backing has).
    pub fn append(&mut self, row: &[Datum]) -> Result<RowId, StoreError> {
        let cell = page::encode_row(row)?;
        let file = self.handle.id();
        let pool = Arc::clone(self.handle.pool());
        if self.pages > 0 {
            let last = PageId { file, page: self.pages - 1 };
            let mut g = pool.fetch(last)?;
            let slot = g.with_write(|buf| page::append_cell(buf, &cell))?;
            if slot.is_some() {
                let rid = self.rows as RowId;
                self.rows += 1;
                return Ok(rid);
            }
            // Tail page full: drop the pin before allocating the next page
            // so a 2-frame pool cannot wedge on its own append.
        }
        let mut g = pool.alloc(file, self.pages)?;
        let slot = g.with_write(|buf| page::append_cell(buf, &cell))?;
        if slot.is_none() {
            return Err(StoreError::new(format!(
                "row of {} bytes does not fit an empty page",
                cell.len()
            )));
        }
        self.page_first_row.push(self.rows);
        self.pages += 1;
        let rid = self.rows as RowId;
        self.rows += 1;
        Ok(rid)
    }

    /// Locate `row`: (page, slot within page).
    fn locate(&self, row: RowId) -> Result<(u32, u16), StoreError> {
        if (row as u64) >= self.rows {
            return Err(StoreError::new(format!(
                "row {row} out of range ({} rows)",
                self.rows
            )));
        }
        let p = self
            .page_first_row
            .partition_point(|&first| first <= row as u64)
            .checked_sub(1)
            .ok_or_else(|| StoreError::new("heap page directory empty"))?;
        let first = self
            .page_first_row
            .get(p)
            .copied()
            .ok_or_else(|| StoreError::new("heap page directory hole"))?;
        Ok((p as u32, (row as u64 - first) as u16))
    }

    /// Read one row by id (a pin, a cell read, a decode).
    pub fn get(&self, row: RowId) -> Result<Vec<Datum>, StoreError> {
        let (p, slot) = self.locate(row)?;
        let g = self.pool().fetch(PageId { file: self.handle.id(), page: p })?;
        let cell = g.with_read(|buf| page::read_cell(buf, slot).map(<[u8]>::to_vec))?;
        page::decode_row(&cell)
    }

    /// Decode every row of page `p` (the unit a scanning cursor buffers:
    /// the pin is dropped before the rows are yielded, so a scan holds at
    /// most one frame at a time regardless of table size).
    pub fn read_page_rows(&self, p: u32) -> Result<Vec<Vec<Datum>>, StoreError> {
        if p >= self.pages {
            return Err(StoreError::new(format!(
                "page {p} out of range ({} pages)",
                self.pages
            )));
        }
        let g = self.pool().fetch(PageId { file: self.handle.id(), page: p })?;
        g.with_read(|buf| {
            let n = page::slot_count(buf)?;
            let mut rows = Vec::with_capacity(n);
            for s in 0..n {
                rows.push(page::decode_row(page::read_cell(buf, s as u16)?)?);
            }
            Ok(rows)
        })
    }

    /// First RowId stored in page `p`.
    pub fn first_row_of_page(&self, p: u32) -> u64 {
        self.page_first_row.get(p as usize).copied().unwrap_or(self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::new(frames))
    }

    fn row(i: i64) -> Vec<Datum> {
        vec![Datum::Int(i), Datum::Text(format!("name-{i}-padding-padding")), Datum::Num(i as f64)]
    }

    #[test]
    fn heap_roundtrip_within_budget() {
        let p = pool(8);
        let mut h = HeapFile::create(&p).unwrap();
        for i in 0..100 {
            assert_eq!(h.append(&row(i)).unwrap(), i as usize);
        }
        assert_eq!(h.row_count(), 100);
        for i in 0..100 {
            assert_eq!(h.get(i as usize).unwrap(), row(i));
        }
        assert_eq!(p.pinned_frames(), 0, "all pins released");
    }

    #[test]
    fn eviction_and_readback_beyond_budget() {
        // ~60-byte rows → ~65 per page; 2000 rows ≈ 31 pages through a
        // 4-frame pool: most reads must come back from disk.
        let p = pool(4);
        let mut h = HeapFile::create(&p).unwrap();
        for i in 0..2000 {
            h.append(&row(i)).unwrap();
        }
        assert!(h.page_count() > 8, "expected many pages, got {}", h.page_count());
        // Random-order readback so residency can't hide misses.
        for i in (0..2000).rev() {
            assert_eq!(h.get(i as usize).unwrap(), row(i), "row {i}");
        }
        let s = p.stats();
        assert!(s.evictions > 0, "pool never evicted: {s:?}");
        assert!(s.dirty_writebacks > 0, "dirty pages never written back: {s:?}");
        assert!(s.page_reads > 0, "reads never hit disk: {s:?}");
        assert!(
            s.peak_resident_frames as usize <= p.frame_budget(),
            "residency {} exceeded budget {}",
            s.peak_resident_frames,
            p.frame_budget()
        );
        assert_eq!(p.pinned_frames(), 0);
    }

    #[test]
    fn out_of_range_row_is_typed_error() {
        let p = pool(4);
        let mut h = HeapFile::create(&p).unwrap();
        h.append(&row(1)).unwrap();
        let err = h.get(1).unwrap_err();
        assert!(err.message().contains("out of range"), "{err}");
        assert!(h.get(usize::MAX).is_err());
    }

    #[test]
    fn pinned_page_survives_eviction_pressure() {
        let p = pool(3);
        let mut h = HeapFile::create(&p).unwrap();
        for i in 0..500 {
            h.append(&row(i)).unwrap();
        }
        // Pin page 0 and hold the guard across heavy traffic.
        let g = p.fetch(PageId { file: 0, page: 0 }).unwrap();
        let before: Vec<u8> = g.with_read(<[u8]>::to_vec);
        for i in (0..500).step_by(7) {
            let _ = h.get(i as usize).unwrap();
        }
        let after: Vec<u8> = g.with_read(<[u8]>::to_vec);
        assert_eq!(before, after, "pinned frame content changed under pressure");
        drop(g);
        assert_eq!(p.pinned_frames(), 0);
    }

    #[test]
    fn guard_unpins_during_panic_unwind() {
        let p = pool(2);
        let mut h = HeapFile::create(&p).unwrap();
        h.append(&row(1)).unwrap();
        let p2 = Arc::clone(&p);
        let r = std::thread::spawn(move || {
            let _g = p2.fetch(PageId { file: 0, page: 0 }).unwrap();
            panic!("reader dies while holding a pin");
        })
        .join();
        assert!(r.is_err());
        assert_eq!(p.pinned_frames(), 0, "panic leaked a pin");
        // The pool is still serviceable after the poisoned unwind.
        assert_eq!(h.get(0).unwrap(), row(1));
    }

    #[test]
    fn release_file_frees_frames() {
        let p = pool(4);
        {
            let mut h = HeapFile::create(&p).unwrap();
            for i in 0..50 {
                h.append(&row(i)).unwrap();
            }
            assert!(p.resident_frames() > 0);
        }
        assert_eq!(p.resident_frames(), 0, "dropping the heap left frames resident");
    }

    #[test]
    fn oversized_row_refused() {
        let p = pool(2);
        let mut h = HeapFile::create(&p).unwrap();
        let huge = vec![Datum::Text("x".repeat(PAGE_SIZE))];
        assert!(h.append(&huge).is_err());
        assert_eq!(p.pinned_frames(), 0);
    }
}
