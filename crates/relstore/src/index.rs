//! B-tree secondary indexes (one column each).
//!
//! Two backings behind one probe API:
//!
//! * `Mem` — the original `BTreeMap` over [`DatumKey`], used for
//!   memory-resident tables.
//! * `Paged` — a static B-tree bulk-loaded into slotted pages drawn from
//!   the table's [`BufferPool`](crate::pool::BufferPool), used when the
//!   table itself is paged. Tables here are append-only and indexes are
//!   only ever rebuilt wholesale (`create_index` / `reindex`), so the tree
//!   never splits after construction: sorted leaf pages first, then each
//!   internal level's `(first-key, child-page)` separators, root last. A
//!   probe descends `height` pages and scans forward through contiguous
//!   leaves — O(page reads), not O(rows), and those pages compete for the
//!   same frame budget as the heap they index.

use crate::datum::{Datum, DatumKey};
use crate::page;
use crate::pool::{BufferPool, FileHandle, PageGuard, PageId};
use crate::table::{RowId, StoreError, Table};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// A secondary B-tree index over one column of a table.
#[derive(Debug, Clone)]
pub struct Index {
    pub table: String,
    pub column: String,
    backing: Backing,
}

#[derive(Debug, Clone)]
enum Backing {
    Mem(BTreeMap<DatumKey, Vec<RowId>>),
    Paged(PagedIndex),
}

impl Index {
    /// Build an index over `table.column`. NULLs are not indexed (matching
    /// the usual B-tree behaviour). A paged table gets a paged index in the
    /// same pool; a memory table keeps the `BTreeMap` backing.
    pub fn build(table: &Table, column: &str) -> Result<Index, StoreError> {
        let ci = table
            .col_index(column)
            .ok_or_else(|| StoreError::new(format!("no column {column} in {}", table.name)))?;
        let backing = match table.pool() {
            Some(pool) => {
                let pool = Arc::clone(pool);
                Backing::Paged(PagedIndex::build(table, ci, &pool)?)
            }
            None => {
                let mut map: BTreeMap<DatumKey, Vec<RowId>> = BTreeMap::new();
                table.for_each_row(|rid, row| {
                    let d = row.get(ci).ok_or_else(|| {
                        StoreError::new(format!("row {rid} short of column {ci}"))
                    })?;
                    if !d.is_null() {
                        map.entry(DatumKey(d.clone())).or_default().push(rid);
                    }
                    Ok(())
                })?;
                Backing::Mem(map)
            }
        };
        Ok(Index { table: table.name.clone(), column: column.to_string(), backing })
    }

    /// Equality probe.
    pub fn lookup_eq(&self, key: &Datum) -> Result<Vec<RowId>, StoreError> {
        match &self.backing {
            Backing::Mem(map) => Ok(map
                .get(&DatumKey(key.clone()))
                .cloned()
                .unwrap_or_default()),
            Backing::Paged(p) => p.lookup_eq(key),
        }
    }

    /// Range scan with explicit bounds.
    pub fn lookup_range(
        &self,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> Result<Vec<RowId>, StoreError> {
        match &self.backing {
            Backing::Mem(map) => {
                let lo = map_bound(lo);
                let hi = map_bound(hi);
                let mut out = Vec::new();
                for (_, rids) in map.range::<DatumKey, _>((lo, hi)) {
                    out.extend_from_slice(rids);
                }
                Ok(out)
            }
            Backing::Paged(p) => p.lookup_range(lo, hi),
        }
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        match &self.backing {
            Backing::Mem(map) => map.len(),
            Backing::Paged(p) => p.keys,
        }
    }

    /// Is this index stored in pool pages?
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, Backing::Paged(_))
    }
}

fn map_bound(b: Bound<&Datum>) -> Bound<DatumKey> {
    match b {
        Bound::Included(d) => Bound::Included(DatumKey(d.clone())),
        Bound::Excluded(d) => Bound::Excluded(DatumKey(d.clone())),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// A static bulk-loaded B-tree in pool pages. Pages `0..leaf_count` of the
/// index file are the sorted leaves; internal levels follow; the last page
/// written is the root. Clones share the (immutable) file through the
/// `Arc`ed handle, so a catalog snapshot costs nothing here.
#[derive(Debug, Clone)]
struct PagedIndex {
    handle: Arc<FileHandle>,
    leaf_count: u32,
    root: u32,
    /// Levels in the tree; 1 means the root is the single leaf. 0 = empty.
    height: u32,
    /// Distinct keys (computed at build).
    keys: usize,
    /// Total (non-null) entries.
    entries: u64,
}

fn leaf_cell(d: &Datum, rid: RowId) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    page::encode_datum(d, &mut v);
    v.extend_from_slice(&(rid as u64).to_le_bytes());
    v
}

fn internal_cell(d: &Datum, child: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    page::encode_datum(d, &mut v);
    v.extend_from_slice(&child.to_le_bytes());
    v
}

fn corrupt(what: &str) -> StoreError {
    StoreError::new(format!("paged index corrupt: {what}"))
}

fn decode_leaf_cell(cell: &[u8]) -> Result<(Datum, RowId), StoreError> {
    let mut pos = 0usize;
    let d = page::decode_datum(cell, &mut pos)?;
    let b = cell.get(pos..pos + 8).ok_or_else(|| corrupt("leaf rid"))?;
    let arr: [u8; 8] = b.try_into().map_err(|_| corrupt("leaf rid slice"))?;
    Ok((d, u64::from_le_bytes(arr) as RowId))
}

fn decode_internal_cell(cell: &[u8]) -> Result<(Datum, u32), StoreError> {
    let mut pos = 0usize;
    let d = page::decode_datum(cell, &mut pos)?;
    let b = cell.get(pos..pos + 4).ok_or_else(|| corrupt("child page"))?;
    let arr: [u8; 4] = b.try_into().map_err(|_| corrupt("child page slice"))?;
    Ok((d, u32::from_le_bytes(arr)))
}

/// Sequentially append cells to a fresh run of pages, recording each page's
/// first key. Holds at most one pin at a time.
struct LevelWriter<'p> {
    pool: &'p Arc<BufferPool>,
    file: u32,
    next_page: u32,
    cur: Option<PageGuard<'p>>,
    /// `(first key, page)` of every page written — the next level up.
    separators: Vec<(Datum, u32)>,
}

impl<'p> LevelWriter<'p> {
    fn new(pool: &'p Arc<BufferPool>, file: u32, next_page: u32) -> LevelWriter<'p> {
        LevelWriter { pool, file, next_page, cur: None, separators: Vec::new() }
    }

    fn push(&mut self, key: &Datum, cell: &[u8]) -> Result<(), StoreError> {
        if let Some(g) = self.cur.as_mut() {
            if g.with_write(|b| page::append_cell(b, cell))?.is_some() {
                return Ok(());
            }
            self.cur = None; // page full: drop the pin before allocating
        }
        let mut g = self.pool.alloc(self.file, self.next_page)?;
        if g.with_write(|b| page::append_cell(b, cell))?.is_none() {
            return Err(StoreError::new(format!(
                "index cell of {} bytes does not fit an empty page",
                cell.len()
            )));
        }
        self.separators.push((key.clone(), self.next_page));
        self.next_page += 1;
        self.cur = Some(g);
        Ok(())
    }

    fn finish(self) -> (u32, Vec<(Datum, u32)>) {
        (self.next_page, self.separators)
    }
}

impl PagedIndex {
    fn build(table: &Table, ci: usize, pool: &Arc<BufferPool>) -> Result<PagedIndex, StoreError> {
        // Collect (key, rid) for non-null values; stable sort by key keeps
        // rids ascending within a key — identical ordering to the Mem
        // backing's per-key push order.
        let mut entries: Vec<(Datum, RowId)> = Vec::new();
        table.for_each_row(|rid, row| {
            let d = row
                .get(ci)
                .ok_or_else(|| StoreError::new(format!("row {rid} short of column {ci}")))?;
            if !d.is_null() {
                entries.push((d.clone(), rid));
            }
            Ok(())
        })?;
        entries.sort_by(|a, b| a.0.cmp_total(&b.0));
        let keys = entries
            .windows(2)
            .filter(|w| match w {
                [a, b] => a.0.cmp_total(&b.0) != Ordering::Equal,
                _ => false,
            })
            .count()
            + usize::from(!entries.is_empty());

        let handle = Arc::new(pool.register_file()?);
        if entries.is_empty() {
            return Ok(PagedIndex { handle, leaf_count: 0, root: 0, height: 0, keys: 0, entries: 0 });
        }

        // Leaves.
        let mut w = LevelWriter::new(pool, handle.id(), 0);
        for (d, rid) in &entries {
            w.push(d, &leaf_cell(d, *rid))?;
        }
        let n_entries = entries.len() as u64;
        drop(entries);
        let (mut next_page, mut level) = w.finish();
        let leaf_count = next_page;

        // Internal levels until a single root remains.
        let mut height = 1u32;
        while level.len() > 1 {
            height += 1;
            let mut w = LevelWriter::new(pool, handle.id(), next_page);
            for (d, child) in &level {
                w.push(d, &internal_cell(d, *child))?;
            }
            (next_page, level) = w.finish();
        }
        let root = next_page - 1;
        Ok(PagedIndex { handle, leaf_count, root, height, keys, entries: n_entries })
    }

    fn read_page_cells<T>(
        &self,
        pg: u32,
        decode: impl Fn(&[u8]) -> Result<T, StoreError>,
    ) -> Result<Vec<T>, StoreError> {
        let g = self
            .handle
            .pool()
            .fetch(PageId { file: self.handle.id(), page: pg })?;
        g.with_read(|buf| {
            let n = page::slot_count(buf)?;
            let mut out = Vec::with_capacity(n);
            for s in 0..n {
                out.push(decode(page::read_cell(buf, s as u16)?)?);
            }
            Ok(out)
        })
    }

    /// Descend from the root to the leftmost leaf that could contain `key`:
    /// at each internal level, take the rightmost child whose separator is
    /// strictly below `key` (child 0 when none is) — duplicates spanning a
    /// page boundary are then found by the forward leaf scan.
    fn descend(&self, key: &Datum) -> Result<u32, StoreError> {
        let mut pg = self.root;
        for _ in 1..self.height {
            let cells = self.read_page_cells(pg, decode_internal_cell)?;
            let below = cells
                .iter()
                .take_while(|(d, _)| d.cmp_total(key) == Ordering::Less)
                .count();
            let idx = below.saturating_sub(1);
            pg = cells
                .get(idx)
                .map(|(_, child)| *child)
                .ok_or_else(|| corrupt("empty internal page"))?;
        }
        if pg >= self.leaf_count {
            return Err(corrupt("descent ended on a non-leaf page"));
        }
        Ok(pg)
    }

    fn lookup_eq(&self, key: &Datum) -> Result<Vec<RowId>, StoreError> {
        if self.entries == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut pg = self.descend(key)?;
        'leaves: while pg < self.leaf_count {
            for (d, rid) in self.read_page_cells(pg, decode_leaf_cell)? {
                match d.cmp_total(key) {
                    Ordering::Less => continue,
                    Ordering::Equal => out.push(rid),
                    Ordering::Greater => break 'leaves,
                }
            }
            pg += 1;
        }
        Ok(out)
    }

    fn lookup_range(
        &self,
        lo: Bound<&Datum>,
        hi: Bound<&Datum>,
    ) -> Result<Vec<RowId>, StoreError> {
        if self.entries == 0 {
            return Ok(Vec::new());
        }
        let mut pg = match lo {
            Bound::Unbounded => 0,
            Bound::Included(d) | Bound::Excluded(d) => self.descend(d)?,
        };
        let above_lo = |d: &Datum| match lo {
            Bound::Unbounded => true,
            Bound::Included(l) => d.cmp_total(l) != Ordering::Less,
            Bound::Excluded(l) => d.cmp_total(l) == Ordering::Greater,
        };
        let below_hi = |d: &Datum| match hi {
            Bound::Unbounded => true,
            Bound::Included(h) => d.cmp_total(h) != Ordering::Greater,
            Bound::Excluded(h) => d.cmp_total(h) == Ordering::Less,
        };
        let mut out = Vec::new();
        'leaves: while pg < self.leaf_count {
            for (d, rid) in self.read_page_cells(pg, decode_leaf_cell)? {
                if !above_lo(&d) {
                    continue;
                }
                if !below_hi(&d) {
                    break 'leaves;
                }
                out.push(rid);
            }
            pg += 1;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::ColType;

    fn emp() -> Table {
        let mut t = Table::new("emp", &[("empno", ColType::Int), ("sal", ColType::Int)]);
        for (no, sal) in [(7782, 2450), (7934, 1300), (7954, 4900), (8000, 2450)] {
            t.insert(vec![Datum::Int(no), Datum::Int(sal)]).unwrap();
        }
        t
    }

    fn paged(mut t: Table) -> Table {
        let pool = Arc::new(BufferPool::new(6));
        t.migrate_to_pool(&pool).unwrap();
        t
    }

    fn both() -> [Table; 2] {
        [emp(), paged(emp())]
    }

    #[test]
    fn eq_lookup() {
        for t in both() {
            let idx = Index::build(&t, "sal").unwrap();
            assert_eq!(idx.lookup_eq(&Datum::Int(2450)).unwrap(), vec![0, 3]);
            assert!(idx.lookup_eq(&Datum::Int(9)).unwrap().is_empty());
        }
    }

    #[test]
    fn range_lookup() {
        for t in both() {
            let idx = Index::build(&t, "sal").unwrap();
            let rows = idx
                .lookup_range(Bound::Excluded(&Datum::Int(2000)), Bound::Unbounded)
                .unwrap();
            assert_eq!(rows.len(), 3); // 2450, 2450, 4900
            let rows = idx
                .lookup_range(
                    Bound::Included(&Datum::Int(1300)),
                    Bound::Included(&Datum::Int(2450)),
                )
                .unwrap();
            assert_eq!(rows.len(), 3);
        }
    }

    #[test]
    fn nulls_not_indexed() {
        for mut t in both() {
            t.insert(vec![Datum::Int(9000), Datum::Null]).unwrap();
            let idx = Index::build(&t, "sal").unwrap();
            let all = idx.lookup_range(Bound::Unbounded, Bound::Unbounded).unwrap();
            assert_eq!(all.len(), 4);
        }
    }

    #[test]
    fn unknown_column_errors() {
        for t in both() {
            assert!(Index::build(&t, "nope").is_err());
        }
    }

    #[test]
    fn numeric_cross_type_probe() {
        for t in both() {
            let idx = Index::build(&t, "sal").unwrap();
            assert_eq!(idx.lookup_eq(&Datum::Num(2450.0)).unwrap().len(), 2);
        }
    }

    #[test]
    fn key_count_matches_on_both_backings() {
        let m = Index::build(&emp(), "sal").unwrap();
        let p = Index::build(&paged(emp()), "sal").unwrap();
        assert!(!m.is_paged() && p.is_paged());
        assert_eq!(m.key_count(), 3);
        assert_eq!(p.key_count(), 3);
    }

    /// A multi-level paged tree (thousands of keys, small pool) must agree
    /// with the Mem backing on every probe — including duplicate runs that
    /// span leaf-page boundaries.
    #[test]
    fn paged_tree_multilevel_agrees_with_mem() {
        let mut t = Table::new("big", &[("k", ColType::Int), ("pad", ColType::Text)]);
        // ~5000 entries, every key duplicated 5×, inserted scattered.
        for i in 0..5000i64 {
            let k = (i * 7919) % 1000; // deterministic shuffle of 0..1000, 5 copies each
            t.insert(vec![Datum::Int(k), Datum::Text(format!("pad-{i:04}"))]).unwrap();
        }
        let mem_idx = Index::build(&t, "k").unwrap();
        let t_paged = {
            let pool = Arc::new(BufferPool::new(8));
            let mut tp = t.clone();
            tp.migrate_to_pool(&pool).unwrap();
            tp
        };
        let paged_idx = Index::build(&t_paged, "k").unwrap();
        assert_eq!(mem_idx.key_count(), paged_idx.key_count());
        for k in [0i64, 1, 499, 500, 998, 999] {
            assert_eq!(
                mem_idx.lookup_eq(&Datum::Int(k)).unwrap(),
                paged_idx.lookup_eq(&Datum::Int(k)).unwrap(),
                "eq probe {k} diverged"
            );
        }
        for (lo, hi) in [(0i64, 10i64), (450, 550), (990, 999), (-5, 2000)] {
            assert_eq!(
                mem_idx
                    .lookup_range(Bound::Included(&Datum::Int(lo)), Bound::Excluded(&Datum::Int(hi)))
                    .unwrap(),
                paged_idx
                    .lookup_range(Bound::Included(&Datum::Int(lo)), Bound::Excluded(&Datum::Int(hi)))
                    .unwrap(),
                "range probe [{lo},{hi}) diverged"
            );
        }
        // Probe residency is bounded by the pool, and pins quiesce.
        let pool = t_paged.pool().unwrap();
        assert!(pool.stats().peak_resident_frames as usize <= pool.frame_budget());
        assert_eq!(pool.pinned_frames(), 0);
    }
}
