//! B-tree secondary indexes (one column each).

use crate::datum::{Datum, DatumKey};
use crate::table::{RowId, StoreError, Table};
use std::collections::BTreeMap;
use std::ops::Bound;

/// A secondary B-tree index over one column of a table.
#[derive(Debug, Clone)]
pub struct Index {
    pub table: String,
    pub column: String,
    map: BTreeMap<DatumKey, Vec<RowId>>,
}

impl Index {
    /// Build an index over `table.column`. NULLs are not indexed (matching
    /// the usual B-tree behaviour).
    pub fn build(table: &Table, column: &str) -> Result<Index, StoreError> {
        let ci = table
            .col_index(column)
            .ok_or_else(|| StoreError::new(format!("no column {column} in {}", table.name)))?;
        let mut map: BTreeMap<DatumKey, Vec<RowId>> = BTreeMap::new();
        for (rid, row) in table.rows.iter().enumerate() {
            let d = &row[ci];
            if d.is_null() {
                continue;
            }
            map.entry(DatumKey(d.clone())).or_default().push(rid);
        }
        Ok(Index { table: table.name.clone(), column: column.to_string(), map })
    }

    /// Equality probe.
    pub fn lookup_eq(&self, key: &Datum) -> Vec<RowId> {
        self.map
            .get(&DatumKey(key.clone()))
            .cloned()
            .unwrap_or_default()
    }

    /// Range scan with explicit bounds.
    pub fn lookup_range(&self, lo: Bound<&Datum>, hi: Bound<&Datum>) -> Vec<RowId> {
        let lo = map_bound(lo);
        let hi = map_bound(hi);
        let mut out = Vec::new();
        for (_, rids) in self.map.range::<DatumKey, _>((lo, hi)) {
            out.extend_from_slice(rids);
        }
        out
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> usize {
        self.map.len()
    }
}

fn map_bound(b: Bound<&Datum>) -> Bound<DatumKey> {
    match b {
        Bound::Included(d) => Bound::Included(DatumKey(d.clone())),
        Bound::Excluded(d) => Bound::Excluded(DatumKey(d.clone())),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::ColType;

    fn emp() -> Table {
        let mut t = Table::new("emp", &[("empno", ColType::Int), ("sal", ColType::Int)]);
        for (no, sal) in [(7782, 2450), (7934, 1300), (7954, 4900), (8000, 2450)] {
            t.insert(vec![Datum::Int(no), Datum::Int(sal)]).unwrap();
        }
        t
    }

    #[test]
    fn eq_lookup() {
        let t = emp();
        let idx = Index::build(&t, "sal").unwrap();
        assert_eq!(idx.lookup_eq(&Datum::Int(2450)), vec![0, 3]);
        assert!(idx.lookup_eq(&Datum::Int(9)).is_empty());
    }

    #[test]
    fn range_lookup() {
        let t = emp();
        let idx = Index::build(&t, "sal").unwrap();
        let rows = idx.lookup_range(Bound::Excluded(&Datum::Int(2000)), Bound::Unbounded);
        assert_eq!(rows.len(), 3); // 2450, 2450, 4900
        let rows = idx.lookup_range(
            Bound::Included(&Datum::Int(1300)),
            Bound::Included(&Datum::Int(2450)),
        );
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn nulls_not_indexed() {
        let mut t = emp();
        t.insert(vec![Datum::Int(9000), Datum::Null]).unwrap();
        let idx = Index::build(&t, "sal").unwrap();
        let all = idx.lookup_range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn unknown_column_errors() {
        let t = emp();
        assert!(Index::build(&t, "nope").is_err());
    }

    #[test]
    fn numeric_cross_type_probe() {
        let t = emp();
        let idx = Index::build(&t, "sal").unwrap();
        assert_eq!(idx.lookup_eq(&Datum::Num(2450.0)).len(), 2);
    }
}
