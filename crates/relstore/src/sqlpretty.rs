//! Render SQL/XML queries as SQL text in the style of the paper's Table 7 —
//! display only, for documentation, examples and EXPLAIN-style output.

use crate::exec::Conjunction;
use crate::pubexpr::{AggFunc, AggOrder, AggPredTerm, PubExpr, SqlXmlQuery};

/// Render a full query.
pub fn sql_text(q: &SqlXmlQuery) -> String {
    let mut s = String::from("SELECT ");
    s.push_str(&pub_text(&q.select, 1));
    s.push_str(&format!("\nFROM {}", q.base_table.to_uppercase()));
    if !q.where_clause.is_empty() {
        s.push_str("\nWHERE ");
        s.push_str(&conj_text(&q.where_clause));
    }
    if !q.order_by.is_empty() {
        s.push_str("\nORDER BY ");
        s.push_str(&order_text(&q.order_by));
    }
    s
}

fn order_text(order_by: &[AggOrder]) -> String {
    order_by
        .iter()
        .map(|o| {
            format!(
                "{}{}{}",
                o.column.to_uppercase(),
                if o.numeric { " NUMERIC" } else { "" },
                if o.descending { " DESC" } else { "" }
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn conj_text(c: &Conjunction) -> String {
    c.terms
        .iter()
        .map(|t| format!("{} {} {}", t.column.to_uppercase(), t.op.symbol(), t.value))
        .collect::<Vec<_>>()
        .join(" AND ")
}

fn pad(level: usize) -> String {
    "  ".repeat(level)
}

fn pub_text(e: &PubExpr, level: usize) -> String {
    match e {
        PubExpr::Literal(s) => format!("'{s}'"),
        PubExpr::ColumnRef { table, column } => {
            format!("\"{}\".\"{}\"", table.to_uppercase(), column.to_uppercase())
        }
        PubExpr::StrConcat(parts) => parts
            .iter()
            .map(|p| pub_text(p, level))
            .collect::<Vec<_>>()
            .join(" || "),
        PubExpr::Concat(parts) => {
            let inner = parts
                .iter()
                .map(|p| format!("{}{}", pad(level), pub_text(p, level + 1)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("XMLConcat(\n{inner})")
        }
        PubExpr::Element { name, attrs, children } => {
            let mut args = vec![format!("\"{name}\"")];
            if !attrs.is_empty() {
                let alist = attrs
                    .iter()
                    .map(|(n, v)| format!("{} AS \"{n}\"", pub_text(v, level)))
                    .collect::<Vec<_>>()
                    .join(", ");
                args.push(format!("XMLAttributes({alist})"));
            }
            for c in children {
                args.push(pub_text(c, level + 1));
            }
            if args.iter().map(String::len).sum::<usize>() < 60 {
                format!("XMLElement({})", args.join(", "))
            } else {
                let inner = args
                    .iter()
                    .map(|a| format!("{}{a}", pad(level)))
                    .collect::<Vec<_>>()
                    .join(",\n");
                format!("XMLElement(\n{inner})")
            }
        }
        PubExpr::Agg { table, predicate, order_by, body } => {
            let mut s = format!(
                "(SELECT XMLAgg({}{})\n{}FROM {}",
                pub_text(body, level + 1),
                if order_by.is_empty() {
                    String::new()
                } else {
                    format!(" ORDER BY {}", order_text(order_by))
                },
                pad(level),
                table.to_uppercase()
            );
            if !predicate.is_empty() {
                s.push_str(&format!("\n{}WHERE {}", pad(level), agg_pred_text(predicate)));
            }
            s.push(')');
            s
        }
        PubExpr::Arith { op, left, right } => format!(
            "({} {} {})",
            pub_text(left, level),
            op.symbol(),
            pub_text(right, level)
        ),
        PubExpr::Case { cond, table: _, then, els } => format!(
            "CASE WHEN {} {} {} THEN {} ELSE {} END",
            cond.column.to_uppercase(),
            cond.op.symbol(),
            cond.value,
            pub_text(then, level),
            pub_text(els, level)
        ),
        PubExpr::ScalarAgg { func, column, table, predicate } => {
            let f = match (func, column) {
                (AggFunc::Count, _) => "count(*)".to_string(),
                (AggFunc::Sum, Some(c)) => format!("sum({})", c.to_uppercase()),
                (AggFunc::Sum, None) => "sum(?)".to_string(),
            };
            let mut s = format!("(SELECT {f} FROM {}", table.to_uppercase());
            if !predicate.is_empty() {
                s.push_str(&format!(" WHERE {}", agg_pred_text(predicate)));
            }
            s.push(')');
            s
        }
        PubExpr::Comment(content) => {
            format!("XMLComment({})", pub_text(content, level))
        }
        PubExpr::Pi { target, content } => {
            format!("XMLPI(NAME \"{target}\", {})", pub_text(content, level))
        }
        PubExpr::RowNumber { table } => {
            format!("ROW_NUMBER() OVER ({})", table.to_uppercase())
        }
    }
}

fn agg_pred_text(terms: &[AggPredTerm]) -> String {
    terms
        .iter()
        .map(|t| match t {
            AggPredTerm::Const(c) => {
                format!("{} {} {}", c.column.to_uppercase(), c.op.symbol(), c.value)
            }
            AggPredTerm::Correlate { inner_column, outer_table, outer_column } => format!(
                "{} = {}.{}",
                inner_column.to_uppercase(),
                outer_table.to_uppercase(),
                outer_column.to_uppercase()
            ),
        })
        .collect::<Vec<_>>()
        .join("\n  AND ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::Datum;
    use crate::exec::{CmpOp, ColumnCmp};

    #[test]
    fn renders_table7_like_text() {
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::Concat(vec![
                PubExpr::elem("H1", vec![PubExpr::lit("HIGHLY PAID DEPT EMPLOYEES")]),
                PubExpr::Agg {
                    table: "emp".into(),
                    predicate: vec![
                        AggPredTerm::Const(ColumnCmp::new("sal", CmpOp::Gt, Datum::Int(2000))),
                        AggPredTerm::Correlate {
                            inner_column: "deptno".into(),
                            outer_table: "dept".into(),
                            outer_column: "deptno".into(),
                        },
                    ],
                    order_by: Vec::new(),
                    body: Box::new(PubExpr::elem("tr", vec![PubExpr::col("emp", "empno")])),
                },
            ]),
        };
        let text = sql_text(&q);
        assert!(text.starts_with("SELECT XMLConcat("));
        assert!(text.contains("XMLElement(\"H1\", 'HIGHLY PAID DEPT EMPLOYEES')"));
        assert!(text.contains("SELECT XMLAgg("));
        assert!(text.contains("SAL > 2000"));
        assert!(text.contains("DEPTNO = DEPT.DEPTNO"));
        assert!(text.contains("FROM DEPT"));
    }

    #[test]
    fn renders_where_and_attrs() {
        let q = SqlXmlQuery {
            base_table: "emp".into(),
            where_clause: Conjunction::single("sal", CmpOp::Ge, Datum::Int(100)),
            order_by: Vec::new(),
            select: PubExpr::Element {
                name: "table".into(),
                attrs: vec![("border".into(), PubExpr::lit("2"))],
                children: vec![],
            },
        };
        let text = sql_text(&q);
        assert!(text.contains("XMLAttributes('2' AS \"border\")"));
        assert!(text.contains("WHERE SAL >= 100"));
    }
}
