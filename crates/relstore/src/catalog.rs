//! The catalog: tables, indexes and XMLType views.

use crate::index::Index;
use crate::pool::BufferPool;
use crate::stats::PoolSnapshot;
use crate::table::{StoreError, Table};
use crate::view::XmlView;
use std::collections::HashMap;
use std::sync::Arc;

/// Per-table version coordinates, maintained by the catalog.
///
/// `ddl_stamp` is the value of the *global* DDL clock at the last DDL that
/// touched this table (creation, replacement, index add/rebuild) — stamps
/// from different tables are comparable because they come from one clock.
/// `data_gen` is a per-table DML counter: every mutable access to the
/// table's rows bumps it, and nothing else does. Together they say "this
/// exact shape, this exact data".
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableMeta {
    pub ddl_stamp: u64,
    pub data_gen: u64,
}

/// A named snapshot of one table's [`TableMeta`] — the unit of a cached
/// result's *read-set*: the entry is valid exactly while every read table
/// still reports the same coordinates.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableVersion {
    pub table: String,
    pub ddl_stamp: u64,
    pub data_gen: u64,
}

/// An in-memory database: tables, secondary indexes, XMLType views.
///
/// Every DDL change (table/view registration, index creation) bumps a
/// monotonic [generation counter](Self::generation). Prepared-plan caches
/// key their entries to the generation observed at planning time: a plan
/// built against an older catalog shape is stale — the planner might now
/// choose a different tier or access path — and must be rebuilt.
///
/// On top of the global clock the catalog keeps *per-table* coordinates
/// ([`TableMeta`]): the stamp of the last DDL that touched each table and a
/// DML data generation bumped by [`table_mut`](Self::table_mut). Caches that
/// know their read-set can use [`max_ddl_stamp`](Self::max_ddl_stamp) and
/// [`versions_of`](Self::versions_of) to invalidate narrowly — a DDL on an
/// unrelated table no longer has to nuke them.
///
/// `Clone` takes a full snapshot (tables, indexes, views, generation): a
/// session that clones the catalog keeps executing against the shape it
/// planned for even while DDL reshapes the original underneath it.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    indexes: Vec<Index>,
    views: HashMap<String, XmlView>,
    /// Monotonic DDL counter; see [`Self::generation`].
    generation: u64,
    /// Per-table DDL stamp + DML data generation.
    meta: HashMap<String, TableMeta>,
    /// Global-clock stamp of each view's registration.
    view_stamps: HashMap<String, u64>,
    /// When set, this catalog is *paged*: tables registered into it are
    /// migrated to heap pages and every table and index draws frames from
    /// this one shared pool — the catalog-wide memory budget. `None` (the
    /// default) keeps the original fully-memory-resident behaviour.
    pool: Option<Arc<BufferPool>>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog whose tables live in heap pages behind a shared
    /// [`BufferPool`] of `frame_budget` frames. Everything else (DDL
    /// clocks, views, cloning semantics) is identical to [`Self::new`];
    /// clones still snapshot (paged tables materialise into memory-backed
    /// copies), so consistency contracts of the layers above are unchanged.
    pub fn new_paged(frame_budget: usize) -> Self {
        Catalog { pool: Some(Arc::new(BufferPool::new(frame_budget))), ..Self::default() }
    }

    /// The shared buffer pool, when this catalog is paged.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Buffer-pool counters, when this catalog is paged.
    pub fn pool_stats(&self) -> Option<PoolSnapshot> {
        self.pool.as_ref().map(|p| p.stats())
    }

    /// The current DDL generation. Starts at 0 and increases by one for
    /// every [`add_table`](Self::add_table), [`add_view`](Self::add_view)
    /// and [`create_index`](Self::create_index) (including the rebuilds a
    /// [`reindex`](Self::reindex) performs). Plain data loading through
    /// [`table_mut`](Self::table_mut) is DML, not DDL, and does not bump.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn add_table(&mut self, table: Table) {
        let mut table = table;
        if let Some(pool) = &self.pool {
            // Registration into a paged catalog moves the rows into heap
            // pages. Failure here means the temp heap file could not be
            // created — unrecoverable for a paged catalog, so surface it
            // loudly rather than silently keeping an unbounded Mem table.
            table
                .migrate_to_pool(pool)
                .expect("migrating table into the catalog buffer pool");
        }
        let name = table.name.clone();
        self.tables.insert(name.clone(), table);
        self.generation += 1;
        let m = self.meta.entry(name).or_default();
        m.ddl_stamp = self.generation;
        // Replacing a table replaces its rows: that is a data change too.
        m.data_gen += 1;
    }

    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::new(format!("unknown table {name}")))
    }

    /// Mutable access for loading data. After bulk changes call
    /// [`reindex`](Self::reindex) to rebuild that table's indexes.
    ///
    /// Handing out the mutable borrow counts as a write: the table's
    /// [data generation](Self::data_generation) is bumped even if the
    /// caller ends up not touching a row — conservative, never stale.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        if !self.tables.contains_key(name) {
            return Err(StoreError::new(format!("unknown table {name}")));
        }
        self.meta.entry(name.to_string()).or_default().data_gen += 1;
        Ok(self
            .tables
            .get_mut(name)
            .expect("presence checked above"))
    }

    /// Create (or rebuild) a B-tree index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), StoreError> {
        let t = self.table(table)?;
        let idx = Index::build(t, column)?;
        self.indexes
            .retain(|i| !(i.table == table && i.column.eq_ignore_ascii_case(column)));
        self.indexes.push(idx);
        self.generation += 1;
        self.meta.entry(table.to_string()).or_default().ddl_stamp = self.generation;
        Ok(())
    }

    /// Rebuild every index on `table` (after data loading).
    pub fn reindex(&mut self, table: &str) -> Result<(), StoreError> {
        let columns: Vec<String> = self
            .indexes
            .iter()
            .filter(|i| i.table == table)
            .map(|i| i.column.clone())
            .collect();
        for c in columns {
            self.create_index(table, &c)?;
        }
        Ok(())
    }

    pub fn index_on(&self, table: &str, column: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|i| i.table == table && i.column.eq_ignore_ascii_case(column))
    }

    pub fn add_view(&mut self, view: XmlView) {
        let name = view.name.clone();
        self.views.insert(name.clone(), view);
        self.generation += 1;
        self.view_stamps.insert(name, self.generation);
    }

    pub fn view(&self, name: &str) -> Result<&XmlView, StoreError> {
        self.views
            .get(name)
            .ok_or_else(|| StoreError::new(format!("unknown view {name}")))
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// The per-table DML data generation — bumped by every
    /// [`table_mut`](Self::table_mut) and by table replacement, never by
    /// DDL on *other* tables. Unknown tables report 0.
    pub fn data_generation(&self, table: &str) -> u64 {
        self.meta.get(table).map_or(0, |m| m.data_gen)
    }

    /// The global-clock stamp of the last DDL that touched `table`
    /// (creation, replacement, index create/rebuild). Unknown tables
    /// report 0.
    pub fn table_ddl_stamp(&self, table: &str) -> u64 {
        self.meta.get(table).map_or(0, |m| m.ddl_stamp)
    }

    /// The global-clock stamp of `view`'s registration (0 if unknown).
    /// A plan memoised for a view definition stays valid while this stamp
    /// does not move — re-registering the view is the only way to change
    /// what the planner would see.
    pub fn view_stamp(&self, view: &str) -> u64 {
        self.view_stamps.get(view).copied().unwrap_or(0)
    }

    /// The newest [`table_ddl_stamp`](Self::table_ddl_stamp) over `tables`:
    /// the earliest planning instant a cached plan bound to exactly these
    /// tables could still be valid at. An empty set yields 0 (nothing the
    /// plan reads can have changed shape).
    pub fn max_ddl_stamp<'a, I>(&self, tables: I) -> u64
    where
        I: IntoIterator<Item = &'a str>,
    {
        tables
            .into_iter()
            .map(|t| self.table_ddl_stamp(t))
            .max()
            .unwrap_or(0)
    }

    /// Snapshot the version coordinates of one table.
    pub fn version_of(&self, table: &str) -> TableVersion {
        let m = self.meta.get(table).copied().unwrap_or_default();
        TableVersion { table: table.to_string(), ddl_stamp: m.ddl_stamp, data_gen: m.data_gen }
    }

    /// Snapshot the version coordinates of a read-set, in the given order.
    pub fn versions_of<'a, I>(&self, tables: I) -> Vec<TableVersion>
    where
        I: IntoIterator<Item = &'a str>,
    {
        tables.into_iter().map(|t| self.version_of(t)).collect()
    }

    /// Is every read-set coordinate still what this catalog reports?
    /// The freshness test of a result-cache entry: any DDL *or* DML on any
    /// read table since the snapshot makes this false.
    pub fn versions_current(&self, reads: &[TableVersion]) -> bool {
        reads.iter().all(|v| {
            let m = self.meta.get(&v.table).copied().unwrap_or_default();
            m.ddl_stamp == v.ddl_stamp && m.data_gen == v.data_gen
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::{ColType, Datum};

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        let mut t = Table::new("t", &[("a", ColType::Int)]);
        t.insert(vec![Datum::Int(1)]).unwrap();
        c.add_table(t);
        assert!(c.table("t").is_ok());
        assert!(c.table("missing").is_err());
        c.create_index("t", "a").unwrap();
        assert!(c.index_on("t", "a").is_some());
        assert!(c.index_on("t", "b").is_none());
    }

    #[test]
    fn reindex_after_load() {
        let mut c = Catalog::new();
        let t = Table::new("t", &[("a", ColType::Int)]);
        c.add_table(t);
        c.create_index("t", "a").unwrap();
        c.table_mut("t").unwrap().insert(vec![Datum::Int(5)]).unwrap();
        c.reindex("t").unwrap();
        assert_eq!(c.index_on("t", "a").unwrap().lookup_eq(&Datum::Int(5)).unwrap().len(), 1);
    }

    #[test]
    fn paged_catalog_migrates_tables_and_indexes_into_the_pool() {
        let mut c = Catalog::new_paged(8);
        let mut t = Table::new("t", &[("a", ColType::Int)]);
        t.insert(vec![Datum::Int(1)]).unwrap();
        c.add_table(t);
        assert!(c.table("t").unwrap().is_paged());
        c.create_index("t", "a").unwrap();
        assert!(c.index_on("t", "a").unwrap().is_paged());
        // DML goes through the heap, probes through pool pages.
        c.table_mut("t").unwrap().insert(vec![Datum::Int(5)]).unwrap();
        c.reindex("t").unwrap();
        assert_eq!(c.index_on("t", "a").unwrap().lookup_eq(&Datum::Int(5)).unwrap(), vec![1]);
        let s = c.pool_stats().unwrap();
        assert!(s.peak_resident_frames as usize <= c.pool().unwrap().frame_budget());
        // A clone is a memory snapshot: mutating the paged original does
        // not disturb it, and it carries no live pins.
        let snap = c.clone();
        assert!(!snap.table("t").unwrap().is_paged());
        c.table_mut("t").unwrap().insert(vec![Datum::Int(9)]).unwrap();
        assert_eq!(snap.table("t").unwrap().row_count(), 2);
        assert_eq!(c.pool().unwrap().pinned_frames(), 0);
    }

    #[test]
    fn create_index_on_missing_column_errors() {
        let mut c = Catalog::new();
        c.add_table(Table::new("t", &[("a", ColType::Int)]));
        assert!(c.create_index("t", "zz").is_err());
    }

    #[test]
    fn generation_tracks_ddl_not_dml() {
        let mut c = Catalog::new();
        assert_eq!(c.generation(), 0);
        c.add_table(Table::new("t", &[("a", ColType::Int)]));
        assert_eq!(c.generation(), 1);
        c.create_index("t", "a").unwrap();
        assert_eq!(c.generation(), 2);
        // Data loading is DML: no bump.
        c.table_mut("t").unwrap().insert(vec![Datum::Int(5)]).unwrap();
        assert_eq!(c.generation(), 2);
        // A failed DDL statement changes nothing.
        assert!(c.create_index("t", "zz").is_err());
        assert_eq!(c.generation(), 2);
        c.reindex("t").unwrap();
        assert_eq!(c.generation(), 3);
    }

    #[test]
    fn per_table_data_generation_tracks_only_the_touched_table() {
        let mut c = Catalog::new();
        c.add_table(Table::new("a", &[("x", ColType::Int)]));
        c.add_table(Table::new("b", &[("x", ColType::Int)]));
        let (a0, b0) = (c.data_generation("a"), c.data_generation("b"));
        c.table_mut("a").unwrap().insert(vec![Datum::Int(1)]).unwrap();
        assert_eq!(c.data_generation("a"), a0 + 1, "DML on a bumps a");
        assert_eq!(c.data_generation("b"), b0, "DML on a must not bump b");
        // DDL elsewhere does not move data generations at all.
        c.add_table(Table::new("zz", &[("x", ColType::Int)]));
        assert_eq!(c.data_generation("a"), a0 + 1);
        assert_eq!(c.data_generation("b"), b0);
        // Unknown tables read as 0 and failed DML bumps nothing.
        assert_eq!(c.data_generation("missing"), 0);
        assert!(c.table_mut("missing").is_err());
        assert_eq!(c.data_generation("missing"), 0);
    }

    #[test]
    fn ddl_stamps_come_from_the_global_clock_per_table() {
        let mut c = Catalog::new();
        c.add_table(Table::new("a", &[("x", ColType::Int)]));
        c.add_table(Table::new("b", &[("x", ColType::Int)]));
        assert_eq!(c.table_ddl_stamp("a"), 1);
        assert_eq!(c.table_ddl_stamp("b"), 2);
        c.create_index("a", "x").unwrap();
        assert_eq!(c.table_ddl_stamp("a"), 3, "index DDL restamps its table");
        assert_eq!(c.table_ddl_stamp("b"), 2, "…and only its table");
        assert_eq!(c.max_ddl_stamp(["a", "b"]), 3);
        assert_eq!(c.max_ddl_stamp(["b"]), 2);
        assert_eq!(c.max_ddl_stamp(std::iter::empty::<&str>()), 0);
        // Replacing a table restamps it and bumps its data generation.
        let gen_before = c.data_generation("b");
        c.add_table(Table::new("b", &[("y", ColType::Int)]));
        assert_eq!(c.table_ddl_stamp("b"), c.generation());
        assert_eq!(c.data_generation("b"), gen_before + 1);
    }

    #[test]
    fn versions_snapshot_and_currency() {
        let mut c = Catalog::new();
        c.add_table(Table::new("a", &[("x", ColType::Int)]));
        c.add_table(Table::new("b", &[("x", ColType::Int)]));
        let reads = c.versions_of(["a", "b"]);
        assert_eq!(reads.len(), 2);
        assert!(c.versions_current(&reads));
        // DML on a table outside the snapshot's read-set: still current.
        c.add_table(Table::new("other", &[("x", ColType::Int)]));
        c.table_mut("other").unwrap().insert(vec![Datum::Int(1)]).unwrap();
        assert!(c.versions_current(&reads));
        // DML on a read table: stale.
        c.table_mut("a").unwrap().insert(vec![Datum::Int(1)]).unwrap();
        assert!(!c.versions_current(&reads));
        let reads = c.versions_of(["a", "b"]);
        assert!(c.versions_current(&reads));
        // DDL on a read table: stale again.
        c.create_index("b", "x").unwrap();
        assert!(!c.versions_current(&reads));
    }

    #[test]
    fn view_stamps_track_registration() {
        use crate::exec::Conjunction;
        use crate::pubexpr::{PubExpr, SqlXmlQuery};
        let mut c = Catalog::new();
        assert_eq!(c.view_stamp("vu"), 0);
        c.add_table(Table::new("t", &[("a", ColType::Int)]));
        let q = SqlXmlQuery {
            base_table: "t".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::elem("row", vec![PubExpr::col("t", "a")]),
        };
        c.add_view(XmlView::new("vu", q.clone()));
        let s1 = c.view_stamp("vu");
        assert_eq!(s1, c.generation());
        // Unrelated DDL does not move the view stamp.
        c.add_table(Table::new("zz", &[("a", ColType::Int)]));
        assert_eq!(c.view_stamp("vu"), s1);
        // Re-registering does.
        c.add_view(XmlView::new("vu", q));
        assert!(c.view_stamp("vu") > s1);
    }
}
