//! The catalog: tables, indexes and XMLType views.

use crate::index::Index;
use crate::table::{StoreError, Table};
use crate::view::XmlView;
use std::collections::HashMap;

/// An in-memory database: tables, secondary indexes, XMLType views.
///
/// Every DDL change (table/view registration, index creation) bumps a
/// monotonic [generation counter](Self::generation). Prepared-plan caches
/// key their entries to the generation observed at planning time: a plan
/// built against an older catalog shape is stale — the planner might now
/// choose a different tier or access path — and must be rebuilt.
///
/// `Clone` takes a full snapshot (tables, indexes, views, generation): a
/// session that clones the catalog keeps executing against the shape it
/// planned for even while DDL reshapes the original underneath it.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
    indexes: Vec<Index>,
    views: HashMap<String, XmlView>,
    /// Monotonic DDL counter; see [`Self::generation`].
    generation: u64,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// The current DDL generation. Starts at 0 and increases by one for
    /// every [`add_table`](Self::add_table), [`add_view`](Self::add_view)
    /// and [`create_index`](Self::create_index) (including the rebuilds a
    /// [`reindex`](Self::reindex) performs). Plain data loading through
    /// [`table_mut`](Self::table_mut) is DML, not DDL, and does not bump.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name.clone(), table);
        self.generation += 1;
    }

    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::new(format!("unknown table {name}")))
    }

    /// Mutable access for loading data. After bulk changes call
    /// [`reindex`](Self::reindex) to rebuild that table's indexes.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::new(format!("unknown table {name}")))
    }

    /// Create (or rebuild) a B-tree index on `table.column`.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), StoreError> {
        let t = self.table(table)?;
        let idx = Index::build(t, column)?;
        self.indexes
            .retain(|i| !(i.table == table && i.column.eq_ignore_ascii_case(column)));
        self.indexes.push(idx);
        self.generation += 1;
        Ok(())
    }

    /// Rebuild every index on `table` (after data loading).
    pub fn reindex(&mut self, table: &str) -> Result<(), StoreError> {
        let columns: Vec<String> = self
            .indexes
            .iter()
            .filter(|i| i.table == table)
            .map(|i| i.column.clone())
            .collect();
        for c in columns {
            self.create_index(table, &c)?;
        }
        Ok(())
    }

    pub fn index_on(&self, table: &str, column: &str) -> Option<&Index> {
        self.indexes
            .iter()
            .find(|i| i.table == table && i.column.eq_ignore_ascii_case(column))
    }

    pub fn add_view(&mut self, view: XmlView) {
        self.views.insert(view.name.clone(), view);
        self.generation += 1;
    }

    pub fn view(&self, name: &str) -> Result<&XmlView, StoreError> {
        self.views
            .get(name)
            .ok_or_else(|| StoreError::new(format!("unknown view {name}")))
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::{ColType, Datum};

    #[test]
    fn catalog_roundtrip() {
        let mut c = Catalog::new();
        let mut t = Table::new("t", &[("a", ColType::Int)]);
        t.insert(vec![Datum::Int(1)]).unwrap();
        c.add_table(t);
        assert!(c.table("t").is_ok());
        assert!(c.table("missing").is_err());
        c.create_index("t", "a").unwrap();
        assert!(c.index_on("t", "a").is_some());
        assert!(c.index_on("t", "b").is_none());
    }

    #[test]
    fn reindex_after_load() {
        let mut c = Catalog::new();
        let t = Table::new("t", &[("a", ColType::Int)]);
        c.add_table(t);
        c.create_index("t", "a").unwrap();
        c.table_mut("t").unwrap().insert(vec![Datum::Int(5)]).unwrap();
        c.reindex("t").unwrap();
        assert_eq!(c.index_on("t", "a").unwrap().lookup_eq(&Datum::Int(5)).len(), 1);
    }

    #[test]
    fn create_index_on_missing_column_errors() {
        let mut c = Catalog::new();
        c.add_table(Table::new("t", &[("a", ColType::Int)]));
        assert!(c.create_index("t", "zz").is_err());
    }

    #[test]
    fn generation_tracks_ddl_not_dml() {
        let mut c = Catalog::new();
        assert_eq!(c.generation(), 0);
        c.add_table(Table::new("t", &[("a", ColType::Int)]));
        assert_eq!(c.generation(), 1);
        c.create_index("t", "a").unwrap();
        assert_eq!(c.generation(), 2);
        // Data loading is DML: no bump.
        c.table_mut("t").unwrap().insert(vec![Datum::Int(5)]).unwrap();
        assert_eq!(c.generation(), 2);
        // A failed DDL statement changes nothing.
        assert!(c.create_index("t", "zz").is_err());
        assert_eq!(c.generation(), 2);
        c.reindex("t").unwrap();
        assert_eq!(c.generation(), 3);
    }
}
