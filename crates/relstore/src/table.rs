//! Heap tables.
//!
//! A [`Table`] is a schema plus rows behind **one access seam**: callers
//! read through [`value`](Table::value) / [`value_by_name`](Table::value_by_name) /
//! [`row`](Table::row) / [`cursor`](Table::cursor) / [`for_each_row`](Table::for_each_row)
//! and write through [`insert`](Table::insert) — the row container itself is
//! private. Behind the seam live two backings:
//!
//! * `Mem` — the original `Vec<Vec<Datum>>`, still the default: tests, the
//!   serve path and small catalogs behave exactly as before.
//! * `Paged` — an append-only [`HeapFile`](crate::pool::HeapFile) of slotted
//!   pages resident only via a shared [`BufferPool`](crate::pool::BufferPool),
//!   so a table can be arbitrarily larger than memory.
//!
//! Every accessor is bounds-checked and returns a typed [`StoreError`] for a
//! stale or out-of-range `RowId` — the storage tier never panics on bad row
//! coordinates, whichever backing is live.

use crate::datum::{ColType, Datum};
use crate::pool::{BufferPool, HeapFile};
use std::fmt;
use std::sync::Arc;
use xsltdb_xml::GuardExceeded;

/// Row identifier within a table (heap position).
pub type RowId = usize;

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
}

/// An error from the storage layer.
///
/// A guard trip that surfaces through the store (a scan, a publishing
/// expression, or a streaming sink refusing to emit) keeps its structured
/// [`GuardExceeded`] evidence attached — callers above (the pipeline's
/// retry/admission layers in particular) classify "budget exhausted" vs
/// "engine failure" from the error value itself, without depending on the
/// `Guard::trip` side channel or parsing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreError {
    message: String,
    trip: Option<GuardExceeded>,
}

impl StoreError {
    /// A plain (non-trip) store error.
    pub fn new(message: impl Into<String>) -> StoreError {
        StoreError { message: message.into(), trip: None }
    }

    /// A store error carrying the structured evidence of a guard trip.
    pub fn from_trip(trip: GuardExceeded) -> StoreError {
        StoreError { message: trip.to_string(), trip: Some(trip) }
    }

    /// The failure message (without the `store error:` prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The guard trip this error carries, when it is a budget trip.
    pub fn trip(&self) -> Option<GuardExceeded> {
        self.trip
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

/// The physical backing of a table's rows — the private half of the seam.
#[derive(Debug)]
enum TableStorage {
    /// Rows fully resident in memory (the default).
    Mem(Vec<Vec<Datum>>),
    /// Rows in slotted heap pages, resident only via the buffer pool.
    Paged(HeapFile),
}

/// A heap table: schema plus rows.
#[derive(Debug)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    storage: TableStorage,
}

impl Clone for Table {
    /// Cloning snapshots the rows. A paged table materialises into a `Mem`
    /// clone: catalog clones are consistency *snapshots* (sessions keep
    /// executing against the shape they planned for), so they must not
    /// share mutable pages with the original — and they are short-lived by
    /// contract, so memory residency is acceptable.
    fn clone(&self) -> Table {
        let storage = match &self.storage {
            TableStorage::Mem(rows) => TableStorage::Mem(rows.clone()),
            TableStorage::Paged(h) => {
                let mut rows = Vec::with_capacity(h.row_count());
                for p in 0..h.page_count() {
                    rows.extend(
                        h.read_page_rows(p)
                            .expect("paged table unreadable while snapshotting"),
                    );
                }
                TableStorage::Mem(rows)
            }
        };
        Table { name: self.name.clone(), columns: self.columns.clone(), storage }
    }
}

impl Table {
    pub fn new(name: &str, columns: &[(&str, ColType)]) -> Table {
        Table {
            name: name.to_string(),
            columns: columns
                .iter()
                .map(|(n, t)| Column { name: n.to_string(), ty: *t })
                .collect(),
            storage: TableStorage::Mem(Vec::new()),
        }
    }

    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Insert a row; validates arity and (loosely) types.
    pub fn insert(&mut self, row: Vec<Datum>) -> Result<RowId, StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::new(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (c, d) in self.columns.iter().zip(&row) {
            let ok = matches!(
                (c.ty, d),
                (_, Datum::Null)
                    | (ColType::Int, Datum::Int(_))
                    | (ColType::Num, Datum::Num(_))
                    | (ColType::Num, Datum::Int(_))
                    | (ColType::Text, Datum::Text(_))
            );
            if !ok {
                return Err(StoreError::new(format!(
                    "table {}: column {} has type {:?}, got {d:?}",
                    self.name, c.name, c.ty
                )));
            }
        }
        match &mut self.storage {
            TableStorage::Mem(rows) => {
                rows.push(row);
                Ok(rows.len() - 1)
            }
            TableStorage::Paged(heap) => heap.append(&row),
        }
    }

    fn row_range_err(&self, row: RowId) -> StoreError {
        StoreError::new(format!(
            "table {}: row {row} out of range ({} rows)",
            self.name,
            self.row_count()
        ))
    }

    /// Read one field by column position. Bounds-checked on both
    /// coordinates: a stale `RowId` (or a bad column) is a typed
    /// [`StoreError`], never a panic.
    pub fn value(&self, row: RowId, col: usize) -> Result<Datum, StoreError> {
        if col >= self.columns.len() {
            return Err(StoreError::new(format!(
                "table {}: column {col} out of range ({} columns)",
                self.name,
                self.columns.len()
            )));
        }
        match &self.storage {
            TableStorage::Mem(rows) => rows
                .get(row)
                .and_then(|r| r.get(col))
                .cloned()
                .ok_or_else(|| self.row_range_err(row)),
            TableStorage::Paged(heap) => {
                let mut r = heap.get(row).map_err(|_| self.row_range_err(row))?;
                if col < r.len() {
                    Ok(r.swap_remove(col))
                } else {
                    Err(self.row_range_err(row))
                }
            }
        }
    }

    /// Value by column name; errors on unknown column or stale row.
    pub fn value_by_name(&self, row: RowId, col: &str) -> Result<Datum, StoreError> {
        let i = self
            .col_index(col)
            .ok_or_else(|| StoreError::new(format!("table {} has no column {col}", self.name)))?;
        self.value(row, i)
    }

    /// Read one whole row (bounds-checked).
    pub fn row(&self, row: RowId) -> Result<Vec<Datum>, StoreError> {
        match &self.storage {
            TableStorage::Mem(rows) => {
                rows.get(row).cloned().ok_or_else(|| self.row_range_err(row))
            }
            TableStorage::Paged(heap) => {
                heap.get(row).map_err(|_| self.row_range_err(row))
            }
        }
    }

    pub fn row_count(&self) -> usize {
        match &self.storage {
            TableStorage::Mem(rows) => rows.len(),
            TableStorage::Paged(heap) => heap.row_count(),
        }
    }

    /// Is this table backed by heap pages (vs fully memory-resident)?
    pub fn is_paged(&self) -> bool {
        matches!(self.storage, TableStorage::Paged(_))
    }

    /// The buffer pool backing this table, when paged.
    pub fn pool(&self) -> Option<&Arc<BufferPool>> {
        match &self.storage {
            TableStorage::Mem(_) => None,
            TableStorage::Paged(heap) => Some(heap.pool()),
        }
    }

    /// Iterate all rows in RowId order. For a paged table the cursor
    /// buffers one decoded page at a time and holds **no** pin while rows
    /// are yielded — a full scan's pool footprint is a single frame.
    pub fn cursor(&self) -> RowCursor<'_> {
        RowCursor { table: self, next: 0, page_buf: Vec::new().into_iter(), next_page: 0, failed: false }
    }

    /// Visit every row through the seam without per-row allocation for the
    /// `Mem` backing (index builds and scans use this).
    pub fn for_each_row(
        &self,
        mut f: impl FnMut(RowId, &[Datum]) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        match &self.storage {
            TableStorage::Mem(rows) => {
                for (rid, row) in rows.iter().enumerate() {
                    f(rid, row)?;
                }
                Ok(())
            }
            TableStorage::Paged(heap) => {
                let mut rid: RowId = 0;
                for p in 0..heap.page_count() {
                    for row in heap.read_page_rows(p)? {
                        f(rid, &row)?;
                        rid += 1;
                    }
                }
                Ok(())
            }
        }
    }

    /// Move a `Mem` table's rows into heap pages drawn from `pool`. Called
    /// by the catalog when a table is registered into a paged catalog; a
    /// table that is already paged is left where it is.
    pub(crate) fn migrate_to_pool(&mut self, pool: &Arc<BufferPool>) -> Result<(), StoreError> {
        let rows = match &mut self.storage {
            TableStorage::Paged(_) => return Ok(()),
            TableStorage::Mem(rows) => std::mem::take(rows),
        };
        let mut heap = HeapFile::create(pool)?;
        for row in &rows {
            heap.append(row)?;
        }
        self.storage = TableStorage::Paged(heap);
        Ok(())
    }
}

/// Iterator over `(RowId, row)` pairs; see [`Table::cursor`].
pub struct RowCursor<'t> {
    table: &'t Table,
    next: RowId,
    /// Decoded rows of the current page (paged backing only).
    page_buf: std::vec::IntoIter<Vec<Datum>>,
    next_page: u32,
    failed: bool,
}

impl Iterator for RowCursor<'_> {
    type Item = Result<(RowId, Vec<Datum>), StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match &self.table.storage {
            TableStorage::Mem(rows) => {
                let row = rows.get(self.next)?.clone();
                let rid = self.next;
                self.next += 1;
                Some(Ok((rid, row)))
            }
            TableStorage::Paged(heap) => loop {
                if let Some(row) = self.page_buf.next() {
                    let rid = self.next;
                    self.next += 1;
                    return Some(Ok((rid, row)));
                }
                if self.next_page >= heap.page_count() {
                    return None;
                }
                match heap.read_page_rows(self.next_page) {
                    Ok(rows) => {
                        self.next_page += 1;
                        self.page_buf = rows.into_iter();
                    }
                    Err(e) => {
                        self.failed = true;
                        return Some(Err(e));
                    }
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept() -> Table {
        let mut t = Table::new("dept", &[("deptno", ColType::Int), ("dname", ColType::Text)]);
        t.insert(vec![Datum::Int(10), Datum::Text("ACCOUNTING".into())]).unwrap();
        t.insert(vec![Datum::Int(40), Datum::Text("OPERATIONS".into())]).unwrap();
        t
    }

    fn paged(mut t: Table) -> Table {
        let pool = Arc::new(BufferPool::new(4));
        t.migrate_to_pool(&pool).unwrap();
        t
    }

    #[test]
    fn insert_and_read() {
        let t = dept();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, 1).unwrap(), Datum::Text("ACCOUNTING".into()));
        assert_eq!(t.value_by_name(1, "deptno").unwrap(), Datum::Int(40));
    }

    #[test]
    fn col_index_case_insensitive() {
        let t = dept();
        assert_eq!(t.col_index("DNAME"), Some(1));
        assert_eq!(t.col_index("nope"), None);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = dept();
        assert!(t.insert(vec![Datum::Int(1)]).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = dept();
        assert!(t.insert(vec![Datum::Text("x".into()), Datum::Text("y".into())]).is_err());
    }

    #[test]
    fn null_allowed_everywhere() {
        let mut t = dept();
        t.insert(vec![Datum::Null, Datum::Null]).unwrap();
        assert!(t.value(2, 0).unwrap().is_null());
    }

    #[test]
    fn int_into_num_column_allowed() {
        let mut t = Table::new("m", &[("v", ColType::Num)]);
        t.insert(vec![Datum::Int(3)]).unwrap();
        assert_eq!(t.value(0, 0).unwrap().as_f64(), Some(3.0));
    }

    /// Regression (satellite 1): an out-of-range / stale `RowId` used to
    /// panic via `self.rows[row]`; it must be a typed `StoreError` — on
    /// *both* backings, since paging is exactly when RowIds can go stale.
    #[test]
    fn stale_rowid_is_typed_error_not_panic() {
        for t in [dept(), paged(dept())] {
            let stale: RowId = t.row_count(); // one past the end
            let err = t.value(stale, 0).unwrap_err();
            assert!(err.message().contains("out of range"), "{err}");
            let err = t.value_by_name(stale, "deptno").unwrap_err();
            assert!(err.message().contains("out of range"), "{err}");
            assert!(t.row(usize::MAX).is_err());
            // Column coordinate is checked too.
            assert!(t.value(0, 99).is_err());
        }
    }

    #[test]
    fn paged_backing_reads_identically() {
        let m = dept();
        let p = paged(dept());
        assert!(p.is_paged() && !m.is_paged());
        assert_eq!(m.row_count(), p.row_count());
        for r in 0..m.row_count() {
            assert_eq!(m.row(r).unwrap(), p.row(r).unwrap());
            for c in 0..m.columns.len() {
                assert_eq!(m.value(r, c).unwrap(), p.value(r, c).unwrap());
            }
        }
    }

    #[test]
    fn paged_insert_appends_through_heap() {
        let mut p = paged(dept());
        let rid = p.insert(vec![Datum::Int(50), Datum::Text("RESEARCH".into())]).unwrap();
        assert_eq!(rid, 2);
        assert_eq!(p.value_by_name(2, "dname").unwrap(), Datum::Text("RESEARCH".into()));
    }

    #[test]
    fn cursor_yields_all_rows_in_order_on_both_backings() {
        for t in [dept(), paged(dept())] {
            let got: Vec<(RowId, Vec<Datum>)> =
                t.cursor().collect::<Result<_, _>>().unwrap();
            assert_eq!(got.len(), 2);
            assert_eq!(got[0].0, 0);
            assert_eq!(got[1].1[1], Datum::Text("OPERATIONS".into()));
        }
    }

    #[test]
    fn clone_of_paged_table_is_independent_snapshot() {
        let mut p = paged(dept());
        let snap = p.clone();
        assert!(!snap.is_paged(), "clones materialise to Mem");
        p.insert(vec![Datum::Int(99), Datum::Null]).unwrap();
        assert_eq!(p.row_count(), 3);
        assert_eq!(snap.row_count(), 2, "snapshot saw the append");
        assert_eq!(snap.value(0, 1).unwrap(), Datum::Text("ACCOUNTING".into()));
    }

    #[test]
    fn for_each_row_matches_cursor() {
        for t in [dept(), paged(dept())] {
            let mut seen = Vec::new();
            t.for_each_row(|rid, row| {
                seen.push((rid, row.to_vec()));
                Ok(())
            })
            .unwrap();
            let cur: Vec<(RowId, Vec<Datum>)> =
                t.cursor().collect::<Result<_, _>>().unwrap();
            assert_eq!(seen, cur);
        }
    }
}
