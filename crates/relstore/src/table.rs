//! Heap tables.

use crate::datum::{ColType, Datum};
use std::fmt;
use xsltdb_xml::GuardExceeded;

/// Row identifier within a table (heap position).
pub type RowId = usize;

/// A column definition.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: ColType,
}

/// An error from the storage layer.
///
/// A guard trip that surfaces through the store (a scan, a publishing
/// expression, or a streaming sink refusing to emit) keeps its structured
/// [`GuardExceeded`] evidence attached — callers above (the pipeline's
/// retry/admission layers in particular) classify "budget exhausted" vs
/// "engine failure" from the error value itself, without depending on the
/// `Guard::trip` side channel or parsing messages.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreError {
    message: String,
    trip: Option<GuardExceeded>,
}

impl StoreError {
    /// A plain (non-trip) store error.
    pub fn new(message: impl Into<String>) -> StoreError {
        StoreError { message: message.into(), trip: None }
    }

    /// A store error carrying the structured evidence of a guard trip.
    pub fn from_trip(trip: GuardExceeded) -> StoreError {
        StoreError { message: trip.to_string(), trip: Some(trip) }
    }

    /// The failure message (without the `store error:` prefix).
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The guard trip this error carries, when it is a budget trip.
    pub fn trip(&self) -> Option<GuardExceeded> {
        self.trip
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store error: {}", self.message)
    }
}

impl std::error::Error for StoreError {}

/// A heap table: schema plus rows.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub columns: Vec<Column>,
    pub rows: Vec<Vec<Datum>>,
}

impl Table {
    pub fn new(name: &str, columns: &[(&str, ColType)]) -> Table {
        Table {
            name: name.to_string(),
            columns: columns
                .iter()
                .map(|(n, t)| Column { name: n.to_string(), ty: *t })
                .collect(),
        rows: Vec::new(),
        }
    }

    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Insert a row; validates arity and (loosely) types.
    pub fn insert(&mut self, row: Vec<Datum>) -> Result<RowId, StoreError> {
        if row.len() != self.columns.len() {
            return Err(StoreError::new(format!(
                "table {}: expected {} columns, got {}",
                self.name,
                self.columns.len(),
                row.len()
            )));
        }
        for (c, d) in self.columns.iter().zip(&row) {
            let ok = matches!(
                (c.ty, d),
                (_, Datum::Null)
                    | (ColType::Int, Datum::Int(_))
                    | (ColType::Num, Datum::Num(_))
                    | (ColType::Num, Datum::Int(_))
                    | (ColType::Text, Datum::Text(_))
            );
            if !ok {
                return Err(StoreError::new(format!(
                    "table {}: column {} has type {:?}, got {d:?}",
                    self.name, c.name, c.ty
                )));
            }
        }
        self.rows.push(row);
        Ok(self.rows.len() - 1)
    }

    pub fn value(&self, row: RowId, col: usize) -> &Datum {
        &self.rows[row][col]
    }

    /// Value by column name; errors on unknown column.
    pub fn value_by_name(&self, row: RowId, col: &str) -> Result<&Datum, StoreError> {
        let i = self
            .col_index(col)
            .ok_or_else(|| StoreError::new(format!("table {} has no column {col}", self.name)))?;
        Ok(&self.rows[row][i])
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dept() -> Table {
        let mut t = Table::new("dept", &[("deptno", ColType::Int), ("dname", ColType::Text)]);
        t.insert(vec![Datum::Int(10), Datum::Text("ACCOUNTING".into())]).unwrap();
        t.insert(vec![Datum::Int(40), Datum::Text("OPERATIONS".into())]).unwrap();
        t
    }

    #[test]
    fn insert_and_read() {
        let t = dept();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.value(0, 1), &Datum::Text("ACCOUNTING".into()));
        assert_eq!(t.value_by_name(1, "deptno").unwrap(), &Datum::Int(40));
    }

    #[test]
    fn col_index_case_insensitive() {
        let t = dept();
        assert_eq!(t.col_index("DNAME"), Some(1));
        assert_eq!(t.col_index("nope"), None);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = dept();
        assert!(t.insert(vec![Datum::Int(1)]).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = dept();
        assert!(t.insert(vec![Datum::Text("x".into()), Datum::Text("y".into())]).is_err());
    }

    #[test]
    fn null_allowed_everywhere() {
        let mut t = dept();
        t.insert(vec![Datum::Null, Datum::Null]).unwrap();
        assert!(t.value(2, 0).is_null());
    }

    #[test]
    fn int_into_num_column_allowed() {
        let mut t = Table::new("m", &[("v", ColType::Num)]);
        t.insert(vec![Datum::Int(3)]).unwrap();
        assert_eq!(t.value(0, 0).as_f64(), Some(3.0));
    }
}
