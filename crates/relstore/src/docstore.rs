//! Alternative physical storage models for whole XMLType documents (paper
//! Figure 1 and §7.4): *CLOB storage* (documents kept as text, re-parsed on
//! access) and *tree storage* (documents kept as parsed arenas), each with
//! an optional **path/value index** mapping `(element path, text value)` to
//! node positions — the "CLOB or BLOB storage with path/value index" and
//! "tree storage with path/value index" models the paper lists as future
//! study subjects.

use crate::datum::{Datum, DatumKey};
use crate::stats::ExecStats;
use crate::table::StoreError;
use std::collections::BTreeMap;
use std::rc::Rc;
use xsltdb_xml::{DocRc, NodeId, NodeKind};

/// How documents are physically kept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocStorageModel {
    /// Text; every access re-parses (materialisation cost per query).
    Clob,
    /// Parsed arenas; access is free, storage holds the tree.
    Tree,
}

/// One hit from a path/value probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathHit {
    pub doc: usize,
    /// The matching *leaf* node (the element whose text was indexed).
    pub node: NodeId,
}

/// A store of XMLType documents under a chosen storage model, with an
/// optional path/value index over text-only elements.
pub struct XmlDocStore {
    model: DocStorageModel,
    texts: Vec<String>,
    trees: Vec<DocRc>,
    /// `(path, value)` → hits; `path` is `/a/b/c` by element local names.
    index: Option<BTreeMap<(String, DatumKey), Vec<PathHit>>>,
    /// Number of re-parses performed (the CLOB model's materialisation
    /// cost; always 0 under tree storage).
    pub reparses: std::cell::Cell<u64>,
}

impl XmlDocStore {
    /// Create a store; `indexed` controls whether the path/value index is
    /// built at load time.
    pub fn new(model: DocStorageModel, indexed: bool) -> XmlDocStore {
        XmlDocStore {
            model,
            texts: Vec::new(),
            trees: Vec::new(),
            index: indexed.then(BTreeMap::new),
            reparses: std::cell::Cell::new(0),
        }
    }

    /// Insert a document from text; returns its index.
    pub fn insert(&mut self, text: &str) -> Result<usize, StoreError> {
        let doc = xsltdb_xml::parse::parse(text)
            .map_err(|e| StoreError::new(format!("stored document does not parse: {e}")))?;
        let idx = self.texts.len();
        if let Some(index) = &mut self.index {
            index_document(index, &doc, idx);
        }
        match self.model {
            DocStorageModel::Clob => {
                // Keep only the text; the tree is discarded after indexing.
                self.texts.push(text.to_string());
                self.trees.push(Rc::new(xsltdb_xml::Document::new()));
            }
            DocStorageModel::Tree => {
                self.texts.push(String::new());
                self.trees.push(Rc::new(doc));
            }
        }
        Ok(idx)
    }

    pub fn len(&self) -> usize {
        self.texts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    pub fn model(&self) -> DocStorageModel {
        self.model
    }

    pub fn is_indexed(&self) -> bool {
        self.index.is_some()
    }

    /// Fetch a document. Under CLOB storage this re-parses the stored text
    /// (the cost the model pays per access); under tree storage it is a
    /// reference-count bump.
    pub fn fetch(&self, doc: usize) -> Result<DocRc, StoreError> {
        match self.model {
            DocStorageModel::Tree => Ok(Rc::clone(&self.trees[doc])),
            DocStorageModel::Clob => {
                self.reparses.set(self.reparses.get() + 1);
                let parsed = xsltdb_xml::parse::parse(&self.texts[doc])
                    .map_err(|e| StoreError::new(format!("stored CLOB does not parse: {e}")))?;
                Ok(Rc::new(parsed))
            }
        }
    }

    /// Probe the path/value index for elements at `path` whose text equals
    /// `value`. Node ids are valid against [`fetch`](Self::fetch) of the
    /// same document (parsing is deterministic).
    pub fn lookup(
        &self,
        path: &str,
        value: &Datum,
        stats: &ExecStats,
    ) -> Result<Vec<PathHit>, StoreError> {
        let index = self
            .index
            .as_ref()
            .ok_or_else(|| StoreError::new("document store has no path/value index"))?;
        let hits = index
            .get(&(path.to_string(), DatumKey(value.clone())))
            .cloned()
            .unwrap_or_default();
        stats.add_index_probe(hits.len() as u64);
        Ok(hits)
    }
}

/// Walk a document and index every element whose content is a single text
/// node, under its `/a/b/c` local-name path. Numeric-looking values are
/// indexed as numbers so probes with either representation match.
fn index_document(
    index: &mut BTreeMap<(String, DatumKey), Vec<PathHit>>,
    doc: &xsltdb_xml::Document,
    doc_idx: usize,
) {
    fn walk(
        index: &mut BTreeMap<(String, DatumKey), Vec<PathHit>>,
        doc: &xsltdb_xml::Document,
        doc_idx: usize,
        node: NodeId,
        path: &mut String,
    ) {
        for child in doc.children(node) {
            let NodeKind::Element { name, .. } = doc.kind(child) else {
                continue;
            };
            let saved = path.len();
            path.push('/');
            path.push_str(&name.local);
            let mut kids = doc.children(child);
            match (kids.next(), kids.next()) {
                (Some(only), None) if doc.is_text(only) => {
                    let text = doc.string_value(only);
                    let key_value = match text.parse::<f64>() {
                        Ok(n) if text.chars().all(|c| c.is_ascii_digit() || c == '-' || c == '.') => {
                            Datum::Num(n)
                        }
                        _ => Datum::Text(text),
                    };
                    index
                        .entry((path.clone(), DatumKey(key_value)))
                        .or_default()
                        .push(PathHit { doc: doc_idx, node: child });
                }
                _ => walk(index, doc, doc_idx, child, path),
            }
            path.truncate(saved);
        }
    }
    let mut path = String::new();
    walk(index, doc, doc_idx, NodeId::DOCUMENT, &mut path);
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = "<table><row><id>41</id><name>Ann</name></row>\
                       <row><id>7</id><name>Bo</name></row></table>";

    #[test]
    fn tree_store_probe_and_fetch() {
        let mut s = XmlDocStore::new(DocStorageModel::Tree, true);
        let idx = s.insert(DOC).unwrap();
        let stats = ExecStats::new();
        let hits = s.lookup("/table/row/id", &Datum::Num(41.0), &stats).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.snapshot().index_probes, 1);
        let doc = s.fetch(idx).unwrap();
        // The hit is the <id> leaf; its parent is the row.
        let row = doc.parent(hits[0].node).unwrap();
        assert_eq!(doc.string_value(doc.child_element(row, "name").unwrap()), "Ann");
        assert_eq!(s.reparses.get(), 0);
    }

    #[test]
    fn clob_store_reparses_on_fetch() {
        let mut s = XmlDocStore::new(DocStorageModel::Clob, true);
        let idx = s.insert(DOC).unwrap();
        let d1 = s.fetch(idx).unwrap();
        let d2 = s.fetch(idx).unwrap();
        assert_eq!(s.reparses.get(), 2);
        // Parsing is deterministic: node ids agree across fetches.
        assert_eq!(
            xsltdb_xml::to_string(&d1),
            xsltdb_xml::to_string(&d2)
        );
        let stats = ExecStats::new();
        let hits = s.lookup("/table/row/id", &Datum::Num(7.0), &stats).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(d1.string_value(hits[0].node), "7");
    }

    #[test]
    fn text_values_indexed_as_text() {
        let mut s = XmlDocStore::new(DocStorageModel::Tree, true);
        s.insert(DOC).unwrap();
        let stats = ExecStats::new();
        let hits = s
            .lookup("/table/row/name", &Datum::Text("Bo".into()), &stats)
            .unwrap();
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn missing_value_finds_nothing() {
        let mut s = XmlDocStore::new(DocStorageModel::Tree, true);
        s.insert(DOC).unwrap();
        let stats = ExecStats::new();
        assert!(s
            .lookup("/table/row/id", &Datum::Num(999.0), &stats)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unindexed_store_rejects_probe() {
        let mut s = XmlDocStore::new(DocStorageModel::Tree, false);
        s.insert(DOC).unwrap();
        let stats = ExecStats::new();
        assert!(s.lookup("/table/row/id", &Datum::Num(41.0), &stats).is_err());
    }

    #[test]
    fn bad_xml_rejected() {
        let mut s = XmlDocStore::new(DocStorageModel::Clob, true);
        assert!(s.insert("<broken").is_err());
    }
}
