//! Column values and their total order (for B-tree index keys).

use std::cmp::Ordering;
use std::fmt;

/// Column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColType {
    Int,
    Num,
    Text,
}

/// Arithmetic operators usable in published scalar expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl ArithOp {
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }
}

/// A column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Datum {
    Null,
    Int(i64),
    Num(f64),
    Text(String),
}

impl Datum {
    pub fn is_null(&self) -> bool {
        matches!(self, Datum::Null)
    }

    /// SQL-ish display: NULL renders empty (as in XML publishing).
    pub fn to_text(&self) -> String {
        match self {
            Datum::Null => String::new(),
            Datum::Int(i) => i.to_string(),
            Datum::Num(n) => xsltdb_xpath::value::num_to_string(*n),
            Datum::Text(s) => s.clone(),
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Datum::Int(i) => Some(*i as f64),
            Datum::Num(n) => Some(*n),
            Datum::Null | Datum::Text(_) => None,
        }
    }

    /// Total order used by indexes and comparisons: NULL < numbers < text.
    /// Ints and floats compare numerically; NaN sorts below all numbers.
    pub fn cmp_total(&self, other: &Datum) -> Ordering {
        use Datum::*;
        fn rank(d: &Datum) -> u8 {
            match d {
                Null => 0,
                Int(_) | Num(_) => 1,
                Text(_) => 2,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Text(a), Text(b)) => a.cmp(b),
            (a, b) if rank(a) == 1 && rank(b) == 1 => {
                let x = a.as_f64().expect("numeric");
                let y = b.as_f64().expect("numeric");
                match (x.is_nan(), y.is_nan()) {
                    (true, true) => Ordering::Equal,
                    (true, false) => Ordering::Less,
                    (false, true) => Ordering::Greater,
                    _ => x.partial_cmp(&y).expect("non-NaN"),
                }
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Datum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Datum::Null => write!(f, "NULL"),
            Datum::Int(i) => write!(f, "{i}"),
            Datum::Num(n) => write!(f, "{n}"),
            Datum::Text(s) => write!(f, "'{s}'"),
        }
    }
}

/// A `Datum` wrapper with `Ord`, usable as a B-tree key.
#[derive(Debug, Clone, PartialEq)]
pub struct DatumKey(pub Datum);

impl Eq for DatumKey {}

impl PartialOrd for DatumKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for DatumKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.cmp_total(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order() {
        assert_eq!(Datum::Int(1).cmp_total(&Datum::Int(2)), Ordering::Less);
        assert_eq!(Datum::Int(2).cmp_total(&Datum::Num(2.0)), Ordering::Equal);
        assert_eq!(Datum::Num(2.5).cmp_total(&Datum::Int(2)), Ordering::Greater);
        assert_eq!(Datum::Null.cmp_total(&Datum::Int(0)), Ordering::Less);
        assert_eq!(Datum::Text("a".into()).cmp_total(&Datum::Int(9)), Ordering::Greater);
        assert_eq!(
            Datum::Text("a".into()).cmp_total(&Datum::Text("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn nan_sorts_low_among_numbers() {
        assert_eq!(Datum::Num(f64::NAN).cmp_total(&Datum::Num(0.0)), Ordering::Less);
        assert_eq!(Datum::Num(f64::NAN).cmp_total(&Datum::Null), Ordering::Greater);
    }

    #[test]
    fn to_text_rules() {
        assert_eq!(Datum::Null.to_text(), "");
        assert_eq!(Datum::Int(42).to_text(), "42");
        assert_eq!(Datum::Num(2.5).to_text(), "2.5");
        assert_eq!(Datum::Num(2.0).to_text(), "2");
        assert_eq!(Datum::Text("x".into()).to_text(), "x");
    }

    #[test]
    fn key_usable_in_btreemap() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(DatumKey(Datum::Int(5)), "five");
        m.insert(DatumKey(Datum::Int(1)), "one");
        let keys: Vec<_> = m.keys().map(|k| k.0.clone()).collect();
        assert_eq!(keys, vec![Datum::Int(1), Datum::Int(5)]);
        // Float key matches int key when numerically equal.
        assert!(m.contains_key(&DatumKey(Datum::Num(5.0))));
    }
}
