//! SQL/XML publishing expressions — `XMLElement`, `XMLConcat`, `XMLAgg`,
//! `XMLAttributes`, string concatenation and column references. This is the
//! target language of the paper's final rewrite step (Table 7 / Table 11):
//! a query made only of publishing functions over relational columns.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::binding::SlotBindings;
use crate::catalog::Catalog;
use crate::exec::{guard_err, scan_guarded, AccessPath, CmpOp, ColumnCmp, Conjunction};
use crate::stats::ExecStats;
use crate::table::{RowId, StoreError};
use xsltdb_xml::{
    Document, FaultKind, FaultPoint, Guard, QName, SinkError, StreamWriter, TextSink, TreeSink,
    XmlSink,
};

/// Lower a sink refusal to the store's error type. Guard trips keep their
/// structured evidence reachable via `Guard::trip`, so the stringly form
/// here only carries the message.
fn sink_err(e: SinkError) -> StoreError {
    match e {
        SinkError::Guard(g) => guard_err(g),
        other => StoreError::new(other.to_string()),
    }
}

/// Aggregate functions usable in scalar subqueries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Count,
    Sum,
}

/// A comparison term whose right-hand side may be a constant or a column of
/// the *outer* row (the correlation of a scalar subquery).
#[derive(Debug, Clone, PartialEq)]
pub enum AggPredTerm {
    Const(ColumnCmp),
    /// `inner_column = outer_table.outer_column`.
    Correlate { inner_column: String, outer_table: String, outer_column: String },
}

/// An `ORDER BY` key of an `XMLAgg` or of a base-table row source.
///
/// `numeric` selects the comparison the XSLT tier mandates for
/// `data-type="number"` sort keys: values are coerced with `str_to_num`
/// and NaN (an unparseable key) sorts *first* ascending. Text keys
/// compare byte-wise on the column's text rendering, mirroring the VM's
/// `String::cmp` — not the datum's typed order, which would diverge on
/// numeric columns sorted as text (`"10" < "9"`).
#[derive(Debug, Clone, PartialEq)]
pub struct AggOrder {
    pub column: String,
    pub descending: bool,
    pub numeric: bool,
}

/// A publishing expression, evaluated per outer-row binding.
#[derive(Debug, Clone, PartialEq)]
pub enum PubExpr {
    /// `XMLElement("name", XMLAttributes(...), children...)`.
    Element { name: String, attrs: Vec<(String, PubExpr)>, children: Vec<PubExpr> },
    /// `XMLConcat(...)` — splice children in place.
    Concat(Vec<PubExpr>),
    /// A string literal (text content).
    Literal(String),
    /// A column of a bound table (text content).
    ColumnRef { table: String, column: String },
    /// SQL `||` string concatenation (text content).
    StrConcat(Vec<PubExpr>),
    /// Correlated `(SELECT XMLAgg(body) FROM table WHERE ...)`.
    Agg {
        table: String,
        predicate: Vec<AggPredTerm>,
        order_by: Vec<AggOrder>,
        body: Box<PubExpr>,
    },
    /// Numeric arithmetic over scalar subexpressions, published as text
    /// (`sum(SAL) / count(*)`-style projections).
    Arith {
        op: crate::datum::ArithOp,
        left: Box<PubExpr>,
        right: Box<PubExpr>,
    },
    /// SQL `CASE WHEN col op const THEN ... ELSE ... END` over a bound row —
    /// the target of rewritten `xsl:if`/`xsl:choose` over column values.
    Case {
        cond: ColumnCmp,
        /// Table whose bound row the condition reads.
        table: String,
        then: Box<PubExpr>,
        els: Box<PubExpr>,
    },
    /// Correlated scalar `(SELECT count(*)/sum(col) FROM table WHERE ...)`,
    /// published as text.
    ScalarAgg {
        func: AggFunc,
        column: Option<String>,
        table: String,
        predicate: Vec<AggPredTerm>,
    },
    /// `XMLComment(content)` — a comment node whose content is the
    /// string-value of the inner expression.
    Comment(Box<PubExpr>),
    /// `XMLPI(NAME target, content)` — a processing instruction with a
    /// constant target (the only form the XSLT rewrite emits).
    Pi { target: String, content: Box<PubExpr> },
    /// The 1-based position of the bound row of `table` within its row
    /// source — SQL's `ROW_NUMBER() OVER (...)`, the lowering of XPath
    /// `position()` over an ordered row scan. Requires the row to have
    /// been bound positionally (by an `Agg` loop or a base-table scan);
    /// a row bound without a position is an evaluation error.
    RowNumber { table: String },
}

impl PubExpr {
    pub fn elem(name: &str, children: Vec<PubExpr>) -> PubExpr {
        PubExpr::Element { name: name.to_string(), attrs: Vec::new(), children }
    }

    pub fn col(table: &str, column: &str) -> PubExpr {
        PubExpr::ColumnRef { table: table.to_string(), column: column.to_string() }
    }

    pub fn lit(s: &str) -> PubExpr {
        PubExpr::Literal(s.to_string())
    }

    /// Append every table name this expression can read to `out`
    /// (deduplicated, first-mention order): column references, aggregate
    /// subquery tables, correlation *outer* tables, CASE condition tables.
    /// Mirrors the walk canonicalisation performs, so a canonical plan's
    /// slots cover exactly this set.
    pub fn collect_tables(&self, out: &mut Vec<String>) {
        fn push(out: &mut Vec<String>, t: &str) {
            if !out.iter().any(|x| x == t) {
                out.push(t.to_string());
            }
        }
        fn preds(out: &mut Vec<String>, predicate: &[AggPredTerm]) {
            for term in predicate {
                if let AggPredTerm::Correlate { outer_table, .. } = term {
                    push(out, outer_table);
                }
            }
        }
        match self {
            PubExpr::Literal(_) => {}
            PubExpr::ColumnRef { table, .. } => push(out, table),
            PubExpr::Concat(parts) | PubExpr::StrConcat(parts) => {
                for p in parts {
                    p.collect_tables(out);
                }
            }
            PubExpr::Element { attrs, children, .. } => {
                for (_, a) in attrs {
                    a.collect_tables(out);
                }
                for c in children {
                    c.collect_tables(out);
                }
            }
            PubExpr::Arith { left, right, .. } => {
                left.collect_tables(out);
                right.collect_tables(out);
            }
            PubExpr::Case { table, then, els, .. } => {
                push(out, table);
                then.collect_tables(out);
                els.collect_tables(out);
            }
            PubExpr::Agg { table, predicate, body, .. } => {
                push(out, table);
                preds(out, predicate);
                body.collect_tables(out);
            }
            PubExpr::ScalarAgg { table, predicate, .. } => {
                push(out, table);
                preds(out, predicate);
            }
            PubExpr::Comment(content) => content.collect_tables(out),
            PubExpr::Pi { content, .. } => content.collect_tables(out),
            PubExpr::RowNumber { table } => push(out, table),
        }
    }
}

/// Row bindings during evaluation: innermost binding of a table name wins.
/// A binding may carry the row's 1-based position within its (ordered) row
/// source, which is what [`PubExpr::RowNumber`] reads.
#[derive(Debug, Default, Clone)]
pub struct Bindings {
    stack: Vec<(String, RowId, Option<u64>)>,
}

impl Bindings {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, table: &str, row: RowId) {
        self.stack.push((table.to_string(), row, None));
    }

    /// Bind a row together with its 1-based position in the row source.
    pub fn push_at(&mut self, table: &str, row: RowId, pos: u64) {
        self.stack.push((table.to_string(), row, Some(pos)));
    }

    pub fn pop(&mut self) {
        self.stack.pop();
    }

    pub fn get(&self, table: &str) -> Option<RowId> {
        self.stack
            .iter()
            .rev()
            .find(|(t, _, _)| t == table)
            .map(|(_, r, _)| *r)
    }

    /// The 1-based position of the innermost binding of `table`, if it was
    /// bound positionally.
    pub fn get_pos(&self, table: &str) -> Option<u64> {
        self.stack
            .iter()
            .rev()
            .find(|(t, _, _)| t == table)
            .and_then(|(_, _, p)| *p)
    }
}

/// Evaluate a publishing expression, emitting construction events into any
/// [`XmlSink`] — a [`TreeSink`] to materialise, a [`StreamWriter`] to
/// serialize with zero DOM nodes, a [`TextSink`] for string values.
pub fn eval_pub(
    expr: &PubExpr,
    catalog: &Catalog,
    stats: &ExecStats,
    bindings: &mut Bindings,
    out: &mut dyn XmlSink,
) -> Result<(), StoreError> {
    eval_pub_guarded(expr, catalog, stats, bindings, out, &Guard::unlimited())
}

/// Like [`eval_pub`], but charges `guard` per expression node and bills
/// produced elements against the output caps (output *bytes* are billed by
/// the sink itself, which knows what a byte is for its representation).
pub fn eval_pub_guarded(
    expr: &PubExpr,
    catalog: &Catalog,
    stats: &ExecStats,
    bindings: &mut Bindings,
    out: &mut dyn XmlSink,
    guard: &Guard,
) -> Result<(), StoreError> {
    eval_pub_bound(expr, catalog, stats, bindings, out, guard, &SlotBindings::identity())
}

/// Like [`eval_pub_guarded`], but every table name in the expression is
/// resolved through `slots` before it touches the catalog or the row
/// bindings — the execution mode of canonicalised plans, whose expressions
/// name tables symbolically (`$t0`, `$t1`, …). Row bindings are keyed by
/// *resolved* names throughout, so a slot and its concrete table can never
/// refer to different rows.
#[allow(clippy::too_many_arguments)]
pub fn eval_pub_bound(
    expr: &PubExpr,
    catalog: &Catalog,
    stats: &ExecStats,
    bindings: &mut Bindings,
    out: &mut dyn XmlSink,
    guard: &Guard,
    slots: &SlotBindings,
) -> Result<(), StoreError> {
    guard.charge(1).map_err(guard_err)?;
    match expr {
        PubExpr::Literal(s) => out.text(s).map_err(sink_err),
        PubExpr::ColumnRef { table, column } => {
            let table = slots.resolve(table)?;
            let row = bindings
                .get(table)
                .ok_or_else(|| StoreError::new(format!("no row bound for table {table}")))?;
            let d = catalog.table(table)?.value_by_name(row, column)?;
            out.text(&d.to_text()).map_err(sink_err)
        }
        PubExpr::StrConcat(parts) => {
            for p in parts {
                eval_pub_bound(p, catalog, stats, bindings, out, guard, slots)?;
            }
            Ok(())
        }
        PubExpr::Concat(parts) => {
            for p in parts {
                eval_pub_bound(p, catalog, stats, bindings, out, guard, slots)?;
            }
            Ok(())
        }
        PubExpr::Element { name, attrs, children } => {
            stats.add_element();
            guard.charge_output_nodes(1).map_err(guard_err)?;
            out.start_element(QName::local(name)).map_err(sink_err)?;
            for (aname, avalue) in attrs {
                let text =
                    eval_to_text_bound(avalue, catalog, stats, bindings, guard, slots)?;
                out.attribute(QName::local(aname), &text).map_err(sink_err)?;
            }
            for c in children {
                eval_pub_bound(c, catalog, stats, bindings, out, guard, slots)?;
            }
            out.end_element().map_err(sink_err)
        }
        PubExpr::Arith { op, left, right } => {
            let l = xsltdb_xpath::value::str_to_num(&eval_to_text_bound(
                left, catalog, stats, bindings, guard, slots,
            )?);
            let r = xsltdb_xpath::value::str_to_num(&eval_to_text_bound(
                right, catalog, stats, bindings, guard, slots,
            )?);
            let n = match op {
                crate::datum::ArithOp::Add => l + r,
                crate::datum::ArithOp::Sub => l - r,
                crate::datum::ArithOp::Mul => l * r,
                crate::datum::ArithOp::Div => l / r,
                crate::datum::ArithOp::Mod => l % r,
            };
            out.text(&xsltdb_xpath::value::num_to_string(n)).map_err(sink_err)
        }
        PubExpr::Case { cond, table, then, els } => {
            let table = slots.resolve(table)?;
            let row = bindings
                .get(table)
                .ok_or_else(|| StoreError::new(format!("no row bound for table {table}")))?;
            let t = catalog.table(table)?;
            if cond.matches(t, row)? {
                eval_pub_bound(then, catalog, stats, bindings, out, guard, slots)
            } else {
                eval_pub_bound(els, catalog, stats, bindings, out, guard, slots)
            }
        }
        PubExpr::Agg { table, predicate, order_by, body } => {
            let table = slots.resolve(table)?;
            let rows = agg_rows(table, predicate, catalog, stats, bindings, guard, slots)?;
            let rows = order_rows(rows, table, order_by, catalog)?;
            for (i, r) in rows.into_iter().enumerate() {
                bindings.push_at(table, r, (i + 1) as u64);
                let res = eval_pub_bound(body, catalog, stats, bindings, out, guard, slots);
                bindings.pop();
                res?;
            }
            Ok(())
        }
        PubExpr::ScalarAgg { func, column, table, predicate } => {
            let table = slots.resolve(table)?;
            let rows = agg_rows(table, predicate, catalog, stats, bindings, guard, slots)?;
            let text = match func {
                AggFunc::Count => (rows.len() as i64).to_string(),
                AggFunc::Sum => {
                    let col = column
                        .as_deref()
                        .ok_or_else(|| StoreError::new("sum() needs a column"))?;
                    let t = catalog.table(table)?;
                    let mut total = 0.0;
                    for r in &rows {
                        if let Some(v) = t.value_by_name(*r, col)?.as_f64() {
                            total += v;
                        }
                    }
                    xsltdb_xpath::value::num_to_string(total)
                }
            };
            out.text(&text).map_err(sink_err)
        }
        PubExpr::Comment(content) => {
            let text = eval_to_text_bound(content, catalog, stats, bindings, guard, slots)?;
            guard.charge_output_nodes(1).map_err(guard_err)?;
            out.comment(&text).map_err(sink_err)
        }
        PubExpr::Pi { target, content } => {
            let text = eval_to_text_bound(content, catalog, stats, bindings, guard, slots)?;
            guard.charge_output_nodes(1).map_err(guard_err)?;
            out.pi(target, &text).map_err(sink_err)
        }
        PubExpr::RowNumber { table } => {
            let table = slots.resolve(table)?;
            let pos = bindings.get_pos(table).ok_or_else(|| {
                StoreError::new(format!("no positional row bound for table {table}"))
            })?;
            out.text(&pos.to_string()).map_err(sink_err)
        }
    }
}

/// Evaluate a text-producing expression to a string (for attributes).
pub fn eval_to_text(
    expr: &PubExpr,
    catalog: &Catalog,
    stats: &ExecStats,
    bindings: &mut Bindings,
) -> Result<String, StoreError> {
    eval_to_text_guarded(expr, catalog, stats, bindings, &Guard::unlimited())
}

/// Guarded variant of [`eval_to_text`].
pub fn eval_to_text_guarded(
    expr: &PubExpr,
    catalog: &Catalog,
    stats: &ExecStats,
    bindings: &mut Bindings,
    guard: &Guard,
) -> Result<String, StoreError> {
    eval_to_text_bound(expr, catalog, stats, bindings, guard, &SlotBindings::identity())
}

/// Slot-resolving variant of [`eval_to_text_guarded`]. A [`TextSink`]
/// collects exactly the string-value of the events — no temporary tree.
pub fn eval_to_text_bound(
    expr: &PubExpr,
    catalog: &Catalog,
    stats: &ExecStats,
    bindings: &mut Bindings,
    guard: &Guard,
    slots: &SlotBindings,
) -> Result<String, StoreError> {
    let mut sink = TextSink::new(guard.clone());
    eval_pub_bound(expr, catalog, stats, bindings, &mut sink, guard, slots)?;
    Ok(sink.into_string())
}

/// `table` must already be slot-resolved by the caller; `slots` is still
/// needed here because correlation terms name the *outer* table, which may
/// itself be symbolic in a canonicalised plan.
#[allow(clippy::too_many_arguments)]
fn agg_rows(
    table: &str,
    predicate: &[AggPredTerm],
    catalog: &Catalog,
    stats: &ExecStats,
    bindings: &Bindings,
    guard: &Guard,
    slots: &SlotBindings,
) -> Result<Vec<RowId>, StoreError> {
    // Resolve correlation terms to constants from the outer bindings, so the
    // access-path planner can use an index on the correlated column too.
    let mut conj = Conjunction::default();
    for term in predicate {
        match term {
            AggPredTerm::Const(c) => conj.terms.push(c.clone()),
            AggPredTerm::Correlate { inner_column, outer_table, outer_column } => {
                let outer_table = slots.resolve(outer_table)?;
                let row = bindings.get(outer_table).ok_or_else(|| {
                    StoreError::new(format!("no outer row bound for {outer_table}"))
                })?;
                let v = catalog
                    .table(outer_table)?
                    .value_by_name(row, outer_column)?
                    .clone();
                conj.terms.push(ColumnCmp::new(inner_column, CmpOp::Eq, v));
            }
        }
    }
    let (rows, _path) = scan_guarded(catalog, stats, table, &conj, guard)?;
    Ok(rows)
}

fn order_rows(
    mut rows: Vec<RowId>,
    table: &str,
    order_by: &[AggOrder],
    catalog: &Catalog,
) -> Result<Vec<RowId>, StoreError> {
    if order_by.is_empty() {
        return Ok(rows);
    }
    let t = catalog.table(table)?;
    let mut cols = Vec::with_capacity(order_by.len());
    for o in order_by {
        let ci = t
            .col_index(&o.column)
            .ok_or_else(|| StoreError::new(format!("no column {} in {table}", o.column)))?;
        cols.push((ci, o.descending, o.numeric));
    }
    // Decorate-sort-undecorate: fetch the key *text* once through the
    // (fallible, possibly paged) access seam, then sort on the decoded
    // keys with an infallible comparator. Stable, like the sort it
    // replaces. The comparison is the XSLT tier's, not the datum's typed
    // order — see [`AggOrder`].
    let mut decorated = Vec::with_capacity(rows.len());
    for r in rows.drain(..) {
        let mut keys = Vec::with_capacity(cols.len());
        for &(ci, _, _) in &cols {
            keys.push(t.value(r, ci)?.to_text());
        }
        decorated.push((keys, r));
    }
    decorated.sort_by(|(ka, _), (kb, _)| {
        for (i, &(_, desc, numeric)) in cols.iter().enumerate() {
            let (Some(a), Some(b)) = (ka.get(i), kb.get(i)) else {
                continue;
            };
            let mut ord = if numeric {
                let x = xsltdb_xpath::value::str_to_num(a);
                let y = xsltdb_xpath::value::str_to_num(b);
                match (x.is_nan(), y.is_nan()) {
                    (true, true) => std::cmp::Ordering::Equal,
                    (true, false) => std::cmp::Ordering::Less,
                    (false, true) => std::cmp::Ordering::Greater,
                    (false, false) => {
                        x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
                    }
                }
            } else {
                a.cmp(b)
            };
            if desc {
                ord = ord.reverse();
            }
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    rows.extend(decorated.into_iter().map(|(_, r)| r));
    Ok(rows)
}

/// A complete SQL/XML query: one publishing expression per row of a base
/// table (possibly filtered, possibly ordered) — the shape of Tables 3, 7
/// and 11, extended with a base-row `ORDER BY` for the `xsl:sort` lowering.
#[derive(Debug, Clone, PartialEq)]
pub struct SqlXmlQuery {
    pub base_table: String,
    pub where_clause: Conjunction,
    /// Sort keys applied to the base rows before publishing. Rows are
    /// bound positionally either way, so `RowNumber` over the base table
    /// reads post-sort positions — XSLT's `position()` after `xsl:sort`.
    pub order_by: Vec<AggOrder>,
    pub select: PubExpr,
}

impl SqlXmlQuery {
    /// Run the query: one result document per qualifying base row.
    pub fn execute(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
    ) -> Result<Vec<Document>, StoreError> {
        self.execute_guarded(catalog, stats, &Guard::unlimited())
    }

    /// Like [`Self::execute`], but scans and publishing are charged against
    /// `guard`, and an armed [`FaultPoint::SqlExec`] fault fires at entry.
    pub fn execute_guarded(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
    ) -> Result<Vec<Document>, StoreError> {
        self.execute_bound(catalog, stats, guard, &SlotBindings::identity())
    }

    /// Like [`Self::execute_guarded`], but the base table and every table
    /// named inside the publishing expression are resolved through `slots`
    /// first — how a canonicalised plan (whose query names only `$t0`,
    /// `$t1`, …) executes against one concrete view of the family.
    pub fn execute_bound(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
        slots: &SlotBindings,
    ) -> Result<Vec<Document>, StoreError> {
        if let Some(kind) = guard.take_fault(FaultPoint::SqlExec) {
            match kind {
                FaultKind::Error => {
                    return Err(StoreError::new("injected fault at SQL tier"))
                }
                FaultKind::Panic => panic!("injected panic at SQL tier"),
            }
        }
        let base_table = slots.resolve(&self.base_table)?;
        let (rows, _path) =
            scan_guarded(catalog, stats, base_table, &self.where_clause, guard)?;
        let rows = order_rows(rows, base_table, &self.order_by, catalog)?;
        let mut out = Vec::with_capacity(rows.len());
        let mut bindings = Bindings::new();
        for (i, r) in rows.into_iter().enumerate() {
            bindings.push_at(base_table, r, (i + 1) as u64);
            let mut sink = TreeSink::new(guard.clone());
            let res = eval_pub_bound(
                &self.select,
                catalog,
                stats,
                &mut bindings,
                &mut sink,
                guard,
                slots,
            );
            bindings.pop();
            res?;
            let doc = sink.finish_lenient();
            stats.note_materialized_nodes(doc.node_count() as u64);
            out.push(doc);
        }
        Ok(out)
    }

    /// Run the query **streaming**: rows are pulled through the same
    /// iterator operators, but the publishing expression serializes
    /// straight into `out` — zero DOM nodes, with every byte charged
    /// against the guard as it is written (the paper's §5 emission model).
    /// Result documents are concatenated with no separator, exactly the
    /// bytes `to_string` would produce for each of
    /// [`Self::execute_bound`]'s documents in order. Returns the number of
    /// bytes written, which is also added to `ExecStats::streamed_bytes`.
    pub fn execute_streaming_bound(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
        slots: &SlotBindings,
        out: &mut dyn std::io::Write,
    ) -> Result<u64, StoreError> {
        if let Some(kind) = guard.take_fault(FaultPoint::SqlExec) {
            match kind {
                FaultKind::Error => {
                    return Err(StoreError::new("injected fault at SQL tier"))
                }
                FaultKind::Panic => panic!("injected panic at SQL tier"),
            }
        }
        let base_table = slots.resolve(&self.base_table)?;
        let (rows, _path) =
            scan_guarded(catalog, stats, base_table, &self.where_clause, guard)?;
        let rows = order_rows(rows, base_table, &self.order_by, catalog)?;
        let mut sink = StreamWriter::new(out, guard.clone());
        let mut bindings = Bindings::new();
        for (i, r) in rows.into_iter().enumerate() {
            bindings.push_at(base_table, r, (i + 1) as u64);
            let res = eval_pub_bound(
                &self.select,
                catalog,
                stats,
                &mut bindings,
                &mut sink,
                guard,
                slots,
            );
            bindings.pop();
            res?;
            // Per-row lenient close, mirroring `finish_lenient` on the
            // materialising path: an expression that leaves elements open
            // must not swallow the next row into them.
            while sink.depth() > 0 {
                sink.end_element().map_err(sink_err)?;
            }
        }
        let bytes = sink.bytes_written();
        stats.add_streamed_bytes(bytes);
        Ok(bytes)
    }

    /// The access path the base-table scan would take (for EXPLAIN-style
    /// reporting). `slots` resolves a symbolic base table; pass
    /// [`SlotBindings::identity`] for concrete queries.
    ///
    /// When the query orders its base rows and the leading sort key has a
    /// B-tree index, a predicate-free scan is reported as
    /// [`AccessPath::IndexOrdered`]: the index can deliver rows already in
    /// key order, absorbing the sort into the access path. A predicate
    /// that wins an index probe keeps its own path — the probe's
    /// selectivity outweighs saving the sort.
    pub fn explain_base_path_bound(
        &self,
        catalog: &Catalog,
        slots: &SlotBindings,
    ) -> Result<AccessPath, StoreError> {
        let stats = ExecStats::new();
        let base = slots.resolve(&self.base_table)?;
        let (_, path) = scan_guarded(
            catalog,
            &stats,
            base,
            &self.where_clause,
            &Guard::unlimited(),
        )?;
        if path == AccessPath::FullScan {
            if let Some(o) = self.order_by.first() {
                if catalog.index_on(base, &o.column).is_some() {
                    return Ok(AccessPath::IndexOrdered { column: o.column.clone() });
                }
            }
        }
        Ok(path)
    }

    /// [`Self::explain_base_path_bound`] with the identity binding.
    pub fn explain_base_path(&self, catalog: &Catalog) -> Result<AccessPath, StoreError> {
        self.explain_base_path_bound(catalog, &SlotBindings::identity())
    }

    /// Every table this query can read — the base table plus everything the
    /// publishing expression references (deduplicated, base table first).
    /// This is the query's *read-set*: a result computed from it can only
    /// change if one of these tables changes.
    pub fn referenced_tables(&self) -> Vec<String> {
        let mut out = vec![self.base_table.clone()];
        self.select.collect_tables(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datum::{ColType, Datum};
    use crate::table::Table;

    /// The paper's dept/emp schema (Tables 1 and 2).
    pub(crate) fn paper_catalog() -> Catalog {
        let mut dept = Table::new(
            "dept",
            &[("deptno", ColType::Int), ("dname", ColType::Text), ("loc", ColType::Text)],
        );
        dept.insert(vec![
            Datum::Int(10),
            Datum::Text("ACCOUNTING".into()),
            Datum::Text("NEW YORK".into()),
        ])
        .unwrap();
        dept.insert(vec![
            Datum::Int(40),
            Datum::Text("OPERATIONS".into()),
            Datum::Text("BOSTON".into()),
        ])
        .unwrap();
        let mut emp = Table::new(
            "emp",
            &[
                ("empno", ColType::Int),
                ("ename", ColType::Text),
                ("job", ColType::Text),
                ("sal", ColType::Int),
                ("deptno", ColType::Int),
            ],
        );
        for (no, name, job, sal, d) in [
            (7782, "CLARK", "MANAGER", 2450, 10),
            (7934, "MILLER", "CLERK", 1300, 10),
            (7954, "SMITH", "VP", 4900, 40),
        ] {
            emp.insert(vec![
                Datum::Int(no),
                Datum::Text(name.into()),
                Datum::Text(job.into()),
                Datum::Int(sal),
                Datum::Int(d),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.add_table(dept);
        c.add_table(emp);
        c.create_index("emp", "sal").unwrap();
        c.create_index("emp", "deptno").unwrap();
        c
    }

    /// The dept_emp view construction of Table 3.
    pub(crate) fn dept_emp_pub() -> PubExpr {
        PubExpr::elem(
            "dept",
            vec![
                PubExpr::elem("dname", vec![PubExpr::col("dept", "dname")]),
                PubExpr::elem("loc", vec![PubExpr::col("dept", "loc")]),
                PubExpr::elem(
                    "employees",
                    vec![PubExpr::Agg {
                        table: "emp".into(),
                        predicate: vec![AggPredTerm::Correlate {
                            inner_column: "deptno".into(),
                            outer_table: "dept".into(),
                            outer_column: "deptno".into(),
                        }],
                        order_by: Vec::new(),
                        body: Box::new(PubExpr::elem(
                            "emp",
                            vec![
                                PubExpr::elem("empno", vec![PubExpr::col("emp", "empno")]),
                                PubExpr::elem("ename", vec![PubExpr::col("emp", "ename")]),
                                PubExpr::elem("sal", vec![PubExpr::col("emp", "sal")]),
                            ],
                        )),
                    }],
                ),
            ],
        )
    }

    #[test]
    fn table3_view_produces_table4_rows() {
        let c = paper_catalog();
        let stats = ExecStats::new();
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: dept_emp_pub(),
        };
        let docs = q.execute(&c, &stats).unwrap();
        assert_eq!(docs.len(), 2);
        let first = xsltdb_xml::to_string(&docs[0]);
        assert_eq!(
            first,
            "<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc><employees>\
             <emp><empno>7782</empno><ename>CLARK</ename><sal>2450</sal></emp>\
             <emp><empno>7934</empno><ename>MILLER</ename><sal>1300</sal></emp>\
             </employees></dept>"
        );
        let second = xsltdb_xml::to_string(&docs[1]);
        assert!(second.contains("<ename>SMITH</ename>"));
    }

    #[test]
    fn rewritten_table7_query_uses_sal_index() {
        // The Table 7 shape: per dept row, H1/H2s plus an XMLAgg over emp
        // with `sal > 2000 AND deptno = dept.deptno`.
        let c = paper_catalog();
        let stats = ExecStats::new();
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::Concat(vec![
                PubExpr::elem("H1", vec![PubExpr::lit("HIGHLY PAID DEPT EMPLOYEES")]),
                PubExpr::elem(
                    "H2",
                    vec![PubExpr::StrConcat(vec![
                        PubExpr::lit("Department name: "),
                        PubExpr::col("dept", "dname"),
                    ])],
                ),
                PubExpr::Element {
                    name: "table".into(),
                    attrs: vec![("border".into(), PubExpr::lit("2"))],
                    children: vec![PubExpr::Agg {
                        table: "emp".into(),
                        predicate: vec![
                            AggPredTerm::Const(ColumnCmp::new(
                                "sal",
                                CmpOp::Gt,
                                Datum::Int(2000),
                            )),
                            AggPredTerm::Correlate {
                                inner_column: "deptno".into(),
                                outer_table: "dept".into(),
                                outer_column: "deptno".into(),
                            },
                        ],
                        order_by: Vec::new(),
                        body: Box::new(PubExpr::elem(
                            "tr",
                            vec![PubExpr::elem("td", vec![PubExpr::col("emp", "ename")])],
                        )),
                    }],
                },
            ]),
        };
        let docs = q.execute(&c, &stats).unwrap();
        assert_eq!(docs.len(), 2);
        let s0 = xsltdb_xml::to_string(&docs[0]);
        assert!(s0.contains("<td>CLARK</td>"));
        assert!(!s0.contains("MILLER"));
        // Index used for the correlated probe.
        assert!(stats.snapshot().index_probes >= 2);
    }

    #[test]
    fn scalar_aggregates() {
        let c = paper_catalog();
        let stats = ExecStats::new();
        let mut bindings = Bindings::new();
        let count = eval_to_text(
            &PubExpr::ScalarAgg {
                func: AggFunc::Count,
                column: None,
                table: "emp".into(),
                predicate: vec![],
            },
            &c,
            &stats,
            &mut bindings,
        )
        .unwrap();
        assert_eq!(count, "3");
        let sum = eval_to_text(
            &PubExpr::ScalarAgg {
                func: AggFunc::Sum,
                column: Some("sal".into()),
                table: "emp".into(),
                predicate: vec![],
            },
            &c,
            &stats,
            &mut bindings,
        )
        .unwrap();
        assert_eq!(sum, "8650");
    }

    #[test]
    fn agg_order_by() {
        let c = paper_catalog();
        let stats = ExecStats::new();
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::single("deptno", CmpOp::Eq, Datum::Int(10)),
            order_by: Vec::new(),
            select: PubExpr::Agg {
                table: "emp".into(),
                predicate: vec![AggPredTerm::Correlate {
                    inner_column: "deptno".into(),
                    outer_table: "dept".into(),
                    outer_column: "deptno".into(),
                }],
                order_by: vec![AggOrder {
                    column: "sal".into(),
                    descending: false,
                    numeric: false,
                }],
                body: Box::new(PubExpr::elem("s", vec![PubExpr::col("emp", "sal")])),
            },
        };
        let docs = q.execute(&c, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<s>1300</s><s>2450</s>");
    }

    #[test]
    fn referenced_tables_walks_the_whole_expression() {
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: dept_emp_pub(),
        };
        // Base table first, then first-mention order; correlation outer
        // tables dedupe against the base table.
        assert_eq!(q.referenced_tables(), vec!["dept".to_string(), "emp".to_string()]);

        let scalar = SqlXmlQuery {
            base_table: "a".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: PubExpr::Concat(vec![
                PubExpr::Case {
                    cond: ColumnCmp::new("x", CmpOp::Eq, crate::datum::Datum::Int(1)),
                    table: "b".into(),
                    then: Box::new(PubExpr::col("c", "y")),
                    els: Box::new(PubExpr::lit("")),
                },
                PubExpr::ScalarAgg {
                    func: AggFunc::Count,
                    column: None,
                    table: "d".into(),
                    predicate: vec![AggPredTerm::Correlate {
                        inner_column: "k".into(),
                        outer_table: "e".into(),
                        outer_column: "k".into(),
                    }],
                },
            ]),
        };
        assert_eq!(
            scalar.referenced_tables(),
            vec!["a", "b", "c", "d", "e"].into_iter().map(String::from).collect::<Vec<_>>()
        );
    }

    #[test]
    fn missing_binding_is_error() {
        let c = paper_catalog();
        let stats = ExecStats::new();
        let mut bindings = Bindings::new();
        let mut b = TreeSink::unguarded();
        let r = eval_pub(&PubExpr::col("dept", "dname"), &c, &stats, &mut bindings, &mut b);
        assert!(r.is_err());
    }

    #[test]
    fn streaming_matches_materialized_serialization() {
        let c = paper_catalog();
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: dept_emp_pub(),
        };
        let stats = ExecStats::new();
        let docs = q.execute(&c, &stats).unwrap();
        let expected: String = docs.iter().map(xsltdb_xml::to_string).collect();
        assert!(stats.snapshot().peak_materialized_nodes > 0);

        let streamed_stats = ExecStats::new();
        let mut buf = Vec::new();
        let n = q
            .execute_streaming_bound(
                &c,
                &streamed_stats,
                &Guard::unlimited(),
                &SlotBindings::identity(),
                &mut buf,
            )
            .unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), expected);
        let snap = streamed_stats.snapshot();
        assert_eq!(snap.streamed_bytes, n);
        assert_eq!(n as usize, expected.len());
        // The point of the exercise: nothing was materialised.
        assert_eq!(snap.peak_materialized_nodes, 0);
    }

    #[test]
    fn streaming_trips_output_byte_cap_mid_stream() {
        let c = paper_catalog();
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: Conjunction::default(),
            order_by: Vec::new(),
            select: dept_emp_pub(),
        };
        let guard = Guard::new(
            xsltdb_xml::Limits::UNLIMITED.with_max_output_bytes(40),
        );
        let mut buf = Vec::new();
        let err = q
            .execute_streaming_bound(
                &c,
                &ExecStats::new(),
                &guard,
                &SlotBindings::identity(),
                &mut buf,
            )
            .unwrap_err();
        assert!(err.message().contains("output bytes"), "unexpected error: {err:?}");
        assert!(guard.trip().is_some());
        // The error itself carries the structured trip evidence — layers
        // above can classify it without the Guard side channel.
        assert_eq!(err.trip(), guard.trip());
        // Partial output stopped at the budget, not after a whole tree.
        assert!(buf.len() as u64 <= 40);
        assert!(!buf.is_empty(), "the stream should have started");
    }
}

#[cfg(test)]
mod arith_tests {
    use super::*;
    use crate::datum::ArithOp;

    #[test]
    fn arithmetic_over_scalar_aggs() {
        let c = super::tests::paper_catalog();
        let stats = ExecStats::new();
        let mut bindings = Bindings::new();
        // avg salary = sum(sal) / count(*) = 8650 / 3.
        let avg = PubExpr::Arith {
            op: ArithOp::Div,
            left: Box::new(PubExpr::ScalarAgg {
                func: AggFunc::Sum,
                column: Some("sal".into()),
                table: "emp".into(),
                predicate: vec![],
            }),
            right: Box::new(PubExpr::ScalarAgg {
                func: AggFunc::Count,
                column: None,
                table: "emp".into(),
                predicate: vec![],
            }),
        };
        let text = eval_to_text(&avg, &c, &stats, &mut bindings).unwrap();
        assert_eq!(text.parse::<f64>().unwrap().round(), 2883.0);
    }

    #[test]
    fn arith_pretty_prints() {
        let e = PubExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(PubExpr::lit("1")),
            right: Box::new(PubExpr::lit("2")),
        };
        let q = SqlXmlQuery {
            base_table: "dept".into(),
            where_clause: crate::exec::Conjunction::default(),
            order_by: Vec::new(),
            select: e,
        };
        assert!(crate::sqlpretty::sql_text(&q).contains("('1' + '2')"));
    }
}

#[cfg(test)]
mod access_path_tests {
    use super::*;
    use crate::datum::{ColType, Datum};
    use crate::exec::{AccessPath, CmpOp, Conjunction};
    use crate::table::Table;

    /// The XSLTMark db workload's row table: B-tree indexes on `id`,
    /// `zip` and `state` — and deliberately none on `city`.
    fn dbtail_catalog() -> Catalog {
        let mut catalog = Catalog::new();
        catalog.add_table(Table::new(
            "db_rows",
            &[
                ("id", ColType::Int),
                ("firstname", ColType::Text),
                ("lastname", ColType::Text),
                ("street", ColType::Text),
                ("city", ColType::Text),
                ("state", ColType::Text),
                ("zip", ColType::Int),
            ],
        ));
        let t = catalog.table_mut("db_rows").unwrap();
        for (id, first, last, city, state, zip) in [
            (3, "Al", "Barker", "Dover", "NY", 11100),
            (1, "Bea", "Katz", "Anytown", "CA", 90210),
            (2, "Carl", "Lane", "Dover", "CA", 90210),
        ] {
            t.insert(vec![
                Datum::Int(id),
                Datum::Text(first.into()),
                Datum::Text(last.into()),
                Datum::Text("1 Any St.".into()),
                Datum::Text(city.into()),
                Datum::Text(state.into()),
                Datum::Int(zip),
            ])
            .unwrap();
        }
        catalog.create_index("db_rows", "id").unwrap();
        catalog.create_index("db_rows", "zip").unwrap();
        catalog.create_index("db_rows", "state").unwrap();
        catalog
    }

    fn dbtail_query(where_clause: Conjunction, order_by: Vec<AggOrder>) -> SqlXmlQuery {
        SqlXmlQuery {
            base_table: "db_rows".into(),
            where_clause,
            order_by,
            select: PubExpr::elem("r", vec![PubExpr::col("db_rows", "lastname")]),
        }
    }

    fn asc(column: &str) -> AggOrder {
        AggOrder { column: column.into(), descending: false, numeric: false }
    }

    #[test]
    fn order_by_indexed_column_reports_ordered_index_scan() {
        let catalog = dbtail_catalog();
        let q = dbtail_query(Conjunction::default(), vec![asc("zip")]);
        assert_eq!(
            q.explain_base_path(&catalog).unwrap(),
            AccessPath::IndexOrdered { column: "zip".into() }
        );
    }

    #[test]
    fn only_the_leading_sort_key_picks_the_ordered_scan() {
        let catalog = dbtail_catalog();
        // city (unindexed) leads: the secondary indexed key cannot deliver
        // the ordering, so the scan stays full.
        let q = dbtail_query(Conjunction::default(), vec![asc("city"), asc("zip")]);
        assert_eq!(q.explain_base_path(&catalog).unwrap(), AccessPath::FullScan);
        // state (indexed) leads: ordered index scan on it.
        let q = dbtail_query(Conjunction::default(), vec![asc("state"), asc("city")]);
        assert_eq!(
            q.explain_base_path(&catalog).unwrap(),
            AccessPath::IndexOrdered { column: "state".into() }
        );
    }

    #[test]
    fn unordered_scan_stays_full() {
        let catalog = dbtail_catalog();
        let q = dbtail_query(Conjunction::default(), Vec::new());
        assert_eq!(q.explain_base_path(&catalog).unwrap(), AccessPath::FullScan);
    }

    #[test]
    fn index_probe_outranks_the_ordered_scan() {
        let catalog = dbtail_catalog();
        // A predicate that wins an index probe keeps its own access path:
        // the probe's selectivity outweighs absorbing the sort.
        let q = dbtail_query(
            Conjunction::single("id", CmpOp::Eq, Datum::Int(2)),
            vec![asc("zip")],
        );
        assert_eq!(
            q.explain_base_path(&catalog).unwrap(),
            AccessPath::IndexEq { column: "id".into() }
        );
    }
}
