//! Predicates and the iterator-based pull executor (Graefe-style \[10\]):
//! row sources are iterators; the access-path planner picks a B-tree index
//! probe when one applies and layers a residual filter on top.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::catalog::Catalog;
use crate::datum::Datum;
use crate::stats::ExecStats;
use crate::table::{RowId, StoreError, Table};
use std::cmp::Ordering;
use std::ops::Bound;
use xsltdb_xml::{Guard, GuardExceeded};

pub(crate) fn guard_err(e: GuardExceeded) -> StoreError {
    StoreError::from_trip(e)
}

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

/// A single-column comparison with a constant.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnCmp {
    pub column: String,
    pub op: CmpOp,
    pub value: Datum,
}

impl ColumnCmp {
    pub fn new(column: &str, op: CmpOp, value: Datum) -> Self {
        ColumnCmp { column: column.to_string(), op, value }
    }

    /// Evaluate against a row; comparisons with NULL are false.
    pub fn matches(&self, table: &Table, row: RowId) -> Result<bool, StoreError> {
        let d = table.value_by_name(row, &self.column)?;
        if d.is_null() || self.value.is_null() {
            return Ok(false);
        }
        Ok(self.op.eval(d.cmp_total(&self.value)))
    }
}

/// A conjunction of column comparisons (the only predicate shape the
/// SQL/XML rewrite produces; `OR` never arises from residual XPath
/// predicates of the supported form).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Conjunction {
    pub terms: Vec<ColumnCmp>,
}

impl Conjunction {
    pub fn of(terms: Vec<ColumnCmp>) -> Self {
        Conjunction { terms }
    }

    pub fn single(column: &str, op: CmpOp, value: Datum) -> Self {
        Conjunction { terms: vec![ColumnCmp::new(column, op, value)] }
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    pub fn matches(&self, table: &Table, row: RowId) -> Result<bool, StoreError> {
        for t in &self.terms {
            if !t.matches(table, row)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// The access path the planner chose — surfaced so tests and EXPLAIN-style
/// output can assert on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessPath {
    FullScan,
    IndexEq { column: String },
    IndexRange { column: String },
    /// A full traversal in index-key order — chosen when the query's
    /// `ORDER BY` leads with an indexed column, so the B-tree delivers
    /// rows pre-sorted and no explicit sort is needed.
    IndexOrdered { column: String },
}

/// A full-table scan, counting rows as they are pulled.
pub struct FullScan<'a> {
    table: &'a Table,
    stats: &'a ExecStats,
    next: RowId,
}

impl Iterator for FullScan<'_> {
    type Item = RowId;
    fn next(&mut self) -> Option<RowId> {
        if self.next >= self.table.row_count() {
            return None;
        }
        let r = self.next;
        self.next += 1;
        self.stats.add_rows_scanned(1);
        Some(r)
    }
}

/// Rows produced by an index probe (probe accounted at construction).
pub struct IndexRows {
    rows: std::vec::IntoIter<RowId>,
}

impl Iterator for IndexRows {
    type Item = RowId;
    fn next(&mut self) -> Option<RowId> {
        self.rows.next()
    }
}

/// A residual filter over another row source.
pub struct FilterRows<'a, I> {
    input: I,
    table: &'a Table,
    pred: Conjunction,
}

impl<I: Iterator<Item = RowId>> Iterator for FilterRows<'_, I> {
    type Item = RowId;
    fn next(&mut self) -> Option<RowId> {
        self.input
            .by_ref()
            .find(|&r| self.pred.matches(self.table, r).unwrap_or(false))
    }
}

/// Plan and run an access path for `table` under `pred`, returning matching
/// rows in heap order plus the chosen path.
pub fn scan(
    catalog: &Catalog,
    stats: &ExecStats,
    table_name: &str,
    pred: &Conjunction,
) -> Result<(Vec<RowId>, AccessPath), StoreError> {
    scan_guarded(catalog, stats, table_name, pred, &Guard::unlimited())
}

/// Like [`scan`], but every row pulled (full scan) or surfaced by an index
/// probe is charged against `guard`, so a runaway scan trips the fuel
/// budget instead of running to completion.
pub fn scan_guarded(
    catalog: &Catalog,
    stats: &ExecStats,
    table_name: &str,
    pred: &Conjunction,
    guard: &Guard,
) -> Result<(Vec<RowId>, AccessPath), StoreError> {
    let table = catalog.table(table_name)?;

    // Prefer an equality probe, then a range probe, then a full scan.
    let mut chosen: Option<(usize, bool)> = None; // (term index, is_eq)
    for (i, t) in pred.terms.iter().enumerate() {
        if catalog.index_on(table_name, &t.column).is_none() || t.value.is_null() {
            continue;
        }
        match t.op {
            CmpOp::Eq => {
                chosen = Some((i, true));
                break;
            }
            CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => {
                if chosen.is_none() {
                    chosen = Some((i, false));
                }
            }
            CmpOp::Ne => {}
        }
    }

    match chosen {
        Some((i, is_eq)) => {
            let term = &pred.terms[i];
            let index = catalog
                .index_on(table_name, &term.column)
                .expect("checked above");
            let mut rows = if is_eq {
                index.lookup_eq(&term.value)?
            } else {
                let (lo, hi) = match term.op {
                    CmpOp::Lt => (Bound::Unbounded, Bound::Excluded(&term.value)),
                    CmpOp::Le => (Bound::Unbounded, Bound::Included(&term.value)),
                    CmpOp::Gt => (Bound::Excluded(&term.value), Bound::Unbounded),
                    CmpOp::Ge => (Bound::Included(&term.value), Bound::Unbounded),
                    _ => unreachable!("eq/ne handled elsewhere"),
                };
                index.lookup_range(lo, hi)?
            };
            stats.add_index_probe(rows.len() as u64);
            // Every row the probe surfaced is billed, even ones a residual
            // filter later discards.
            guard.charge(rows.len() as u64).map_err(guard_err)?;
            rows.sort_unstable();
            let residual = Conjunction {
                terms: pred
                    .terms
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != i)
                    .map(|(_, t)| t.clone())
                    .collect(),
            };
            let path = if is_eq {
                AccessPath::IndexEq { column: term.column.clone() }
            } else {
                AccessPath::IndexRange { column: term.column.clone() }
            };
            if residual.is_empty() {
                Ok((rows, path))
            } else {
                // Residual filtering visits each candidate row.
                stats.add_rows_scanned(rows.len() as u64);
                let source = IndexRows { rows: rows.into_iter() };
                let out: Vec<RowId> =
                    FilterRows { input: source, table, pred: residual }.collect();
                Ok((out, path))
            }
        }
        None => {
            let source = FullScan { table, stats, next: 0 };
            let mut out = Vec::new();
            for r in source {
                guard.charge(1).map_err(guard_err)?;
                if pred.is_empty() || pred.matches(table, r)? {
                    out.push(r);
                }
            }
            Ok((out, AccessPath::FullScan))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::datum::ColType;
    use crate::table::Table;

    fn catalog() -> Catalog {
        let mut emp = Table::new(
            "emp",
            &[("empno", ColType::Int), ("sal", ColType::Int), ("deptno", ColType::Int)],
        );
        for (no, sal, d) in [
            (7782, 2450, 10),
            (7934, 1300, 10),
            (7954, 4900, 40),
            (8001, 2100, 40),
        ] {
            emp.insert(vec![Datum::Int(no), Datum::Int(sal), Datum::Int(d)]).unwrap();
        }
        let mut c = Catalog::new();
        c.add_table(emp);
        c.create_index("emp", "sal").unwrap();
        c.create_index("emp", "deptno").unwrap();
        c
    }

    #[test]
    fn full_scan_counts_rows() {
        let c = catalog();
        let stats = ExecStats::new();
        let (rows, path) =
            scan(&c, &stats, "emp", &Conjunction::single("empno", CmpOp::Eq, Datum::Int(7934)))
                .unwrap();
        // empno has no index → full scan.
        assert_eq!(path, AccessPath::FullScan);
        assert_eq!(rows, vec![1]);
        assert_eq!(stats.snapshot().rows_scanned, 4);
        assert_eq!(stats.snapshot().index_probes, 0);
    }

    #[test]
    fn index_range_used_for_sal() {
        let c = catalog();
        let stats = ExecStats::new();
        let (rows, path) =
            scan(&c, &stats, "emp", &Conjunction::single("sal", CmpOp::Gt, Datum::Int(2000)))
                .unwrap();
        assert_eq!(path, AccessPath::IndexRange { column: "sal".into() });
        assert_eq!(rows, vec![0, 2, 3]);
        let s = stats.snapshot();
        assert_eq!(s.index_probes, 1);
        assert_eq!(s.index_rows, 3);
        assert_eq!(s.rows_scanned, 0);
    }

    #[test]
    fn eq_probe_preferred_over_range() {
        let c = catalog();
        let stats = ExecStats::new();
        let pred = Conjunction::of(vec![
            ColumnCmp::new("sal", CmpOp::Gt, Datum::Int(2000)),
            ColumnCmp::new("deptno", CmpOp::Eq, Datum::Int(40)),
        ]);
        let (rows, path) = scan(&c, &stats, "emp", &pred).unwrap();
        assert_eq!(path, AccessPath::IndexEq { column: "deptno".into() });
        assert_eq!(rows, vec![2, 3]);
        let s = stats.snapshot();
        assert_eq!(s.index_probes, 1);
        // Residual sal filter visited both candidates.
        assert_eq!(s.rows_scanned, 2);
    }

    #[test]
    fn null_comparisons_filter_out() {
        let mut c = catalog();
        c.table_mut("emp")
            .unwrap()
            .insert(vec![Datum::Int(9999), Datum::Null, Datum::Int(10)])
            .unwrap();
        let stats = ExecStats::new();
        let (rows, _) =
            scan(&c, &stats, "emp", &Conjunction::single("sal", CmpOp::Ne, Datum::Int(0)))
                .unwrap();
        assert_eq!(rows.len(), 4); // NULL row excluded
    }

    #[test]
    fn empty_predicate_returns_all() {
        let c = catalog();
        let stats = ExecStats::new();
        let (rows, path) = scan(&c, &stats, "emp", &Conjunction::default()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(path, AccessPath::FullScan);
    }

    #[test]
    fn guard_fuel_trips_full_scan() {
        use xsltdb_xml::{Limits, Resource};
        let c = catalog();
        let stats = ExecStats::new();
        let guard = Guard::new(Limits::UNLIMITED.with_fuel(2));
        let err = scan_guarded(&c, &stats, "emp", &Conjunction::default(), &guard).unwrap_err();
        assert!(err.message().contains("fuel"), "unexpected error: {}", err.message());
        let trip = guard.trip().expect("trip recorded");
        assert_eq!(trip.resource, Resource::Fuel);
        assert_eq!(trip.limit, 2);
    }

    #[test]
    fn guard_fuel_trips_index_probe() {
        use xsltdb_xml::{Limits, Resource};
        let c = catalog();
        let stats = ExecStats::new();
        let guard = Guard::new(Limits::UNLIMITED.with_fuel(1));
        // sal > 2000 surfaces three rows through the index in one probe.
        let err = scan_guarded(
            &c,
            &stats,
            "emp",
            &Conjunction::single("sal", CmpOp::Gt, Datum::Int(2000)),
            &guard,
        )
        .unwrap_err();
        assert!(err.message().contains("fuel"), "unexpected error: {}", err.message());
        assert_eq!(guard.trip().unwrap().resource, Resource::Fuel);
    }

    #[test]
    fn guard_expired_deadline_trips_scan() {
        use std::time::Duration;
        use xsltdb_xml::{Limits, Resource};
        let c = catalog();
        let stats = ExecStats::new();
        let guard = Guard::new(Limits::UNLIMITED.with_deadline(Duration::from_secs(0)));
        std::thread::sleep(Duration::from_millis(2));
        let err = scan_guarded(&c, &stats, "emp", &Conjunction::default(), &guard).unwrap_err();
        assert!(err.message().contains("deadline"), "unexpected error: {}", err.message());
        assert_eq!(guard.trip().unwrap().resource, Resource::Deadline);
    }
}
