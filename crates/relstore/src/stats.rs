//! Execution statistics — the observable evidence that the rewrite path
//! actually uses indexes instead of scanning (asserted by integration
//! tests, reported by the benchmark harness).
//!
//! All counters are relaxed atomics so a stats handle can be charged from
//! any thread (concurrent sessions sharing one `SharedPlanCache` charge the
//! same [`CacheStats`]). Relaxed ordering is enough: each counter is an
//! independent monotonic tally, and read-modify-write operations never lose
//! increments, so single-threaded observable totals are unchanged.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters updated during query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Rows visited by full scans and residual filters.
    rows_scanned: AtomicU64,
    /// Number of B-tree probes (equality or range descents).
    index_probes: AtomicU64,
    /// Rows returned from index probes.
    index_rows: AtomicU64,
    /// XML elements constructed by publishing functions.
    elements_built: AtomicU64,
    /// Bytes emitted by the streaming execution path (no DOM involved).
    streamed_bytes: AtomicU64,
    /// Largest arena node count of any single materialised result document
    /// (a high-water mark, not a tally): the streaming path leaves this at
    /// zero, which is the whole point.
    peak_materialized_nodes: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub rows_scanned: u64,
    pub index_probes: u64,
    pub index_rows: u64,
    pub elements_built: u64,
    pub streamed_bytes: u64,
    pub peak_materialized_nodes: u64,
}

impl ExecStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            index_rows: self.index_rows.load(Ordering::Relaxed),
            elements_built: self.elements_built.load(Ordering::Relaxed),
            streamed_bytes: self.streamed_bytes.load(Ordering::Relaxed),
            peak_materialized_nodes: self.peak_materialized_nodes.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.index_probes.store(0, Ordering::Relaxed);
        self.index_rows.store(0, Ordering::Relaxed);
        self.elements_built.store(0, Ordering::Relaxed);
        self.streamed_bytes.store(0, Ordering::Relaxed);
        self.peak_materialized_nodes.store(0, Ordering::Relaxed);
    }

    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_index_probe(&self, rows: u64) {
        self.index_probes.fetch_add(1, Ordering::Relaxed);
        self.index_rows.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn add_element(&self) {
        self.elements_built.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_streamed_bytes(&self, n: u64) {
        self.streamed_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record that a result document of `nodes` arena nodes was
    /// materialised; keeps the per-document maximum.
    pub fn note_materialized_nodes(&self, nodes: u64) {
        self.peak_materialized_nodes.fetch_max(nodes, Ordering::Relaxed);
    }
}

/// Counters for a prepared-plan cache, surfaced alongside [`StatsSnapshot`]
/// by the benchmark harness. The cache itself lives above this crate (it
/// caches whole transform plans); the counters live here so one report can
/// print execution and caching evidence side by side.
///
/// `hits` and `misses` are packed into **one** 64-bit word (32 bits each),
/// so a [`snapshot`](Self::snapshot) reads both with a single atomic load:
/// `hits + misses == lookups` holds in *every* snapshot, even taken while
/// other threads are charging — there is no instant at which a hit has been
/// counted but not become visible to the same snapshot that missed it.
/// 2³² lookups per counter is orders of magnitude beyond any cache's
/// lifetime in this system; the packing saturates rather than overflowing
/// into its neighbour.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// `hits << 32 | misses`, both saturating at `u32::MAX`.
    hits_misses: AtomicU64,
    /// Entries dropped to make room under the byte capacity.
    evictions: AtomicU64,
    /// Entries dropped because their DDL generation was stale.
    invalidations: AtomicU64,
    /// Plans never admitted because they alone exceed the byte capacity.
    uncacheable: AtomicU64,
}

const HIT_ONE: u64 = 1 << 32;
const MISS_MASK: u64 = (1 << 32) - 1;

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub uncacheable: u64,
}

impl CacheSnapshot {
    /// Total lookups. Every lookup is either a hit or a miss, so this is
    /// exactly `hits + misses` — an invariant the property tests assert,
    /// and which the packed-word snapshot preserves under concurrency.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl CacheStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> CacheSnapshot {
        // One load covers hits *and* misses — the consistency point.
        let hm = self.hits_misses.load(Ordering::Relaxed);
        CacheSnapshot {
            hits: hm >> 32,
            misses: hm & MISS_MASK,
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.hits_misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.uncacheable.store(0, Ordering::Relaxed);
    }

    /// Saturating add of `one` (either [`HIT_ONE`] or 1) into the packed
    /// word, leaving the sibling half untouched at the boundary.
    fn bump_packed(&self, one: u64) {
        let _ = self
            .hits_misses
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |hm| {
                let half = if one == HIT_ONE { hm >> 32 } else { hm & MISS_MASK };
                (half < MISS_MASK).then(|| hm + one)
            });
    }

    pub fn add_hit(&self) {
        self.bump_packed(HIT_ONE);
    }

    pub fn add_miss(&self) {
        self.bump_packed(1);
    }

    pub fn add_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_uncacheable(&self) {
        self.uncacheable.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ExecStats::new();
        s.add_rows_scanned(10);
        s.add_index_probe(3);
        s.add_element();
        s.add_streamed_bytes(64);
        s.add_streamed_bytes(16);
        s.note_materialized_nodes(40);
        s.note_materialized_nodes(25); // high-water mark: smaller doc keeps the peak
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned, 10);
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.index_rows, 3);
        assert_eq!(snap.elements_built, 1);
        assert_eq!(snap.streamed_bytes, 80);
        assert_eq!(snap.peak_materialized_nodes, 40);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn cache_counters_accumulate_and_derive() {
        let c = CacheStats::new();
        assert_eq!(c.snapshot().hit_rate(), 0.0);
        c.add_hit();
        c.add_hit();
        c.add_hit();
        c.add_miss();
        c.add_eviction();
        c.add_invalidation();
        c.add_uncacheable();
        let snap = c.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.lookups(), 4);
        assert_eq!(snap.hit_rate(), 0.75);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.uncacheable, 1);
        c.reset();
        assert_eq!(c.snapshot(), CacheSnapshot::default());
    }

    #[test]
    fn snapshots_are_consistent_while_other_threads_charge() {
        let c = Arc::new(CacheStats::new());
        let chargers: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for n in 0..2_000u64 {
                        if (n + i) % 3 == 0 {
                            c.add_miss();
                        } else {
                            c.add_hit();
                        }
                    }
                })
            })
            .collect();
        // Snapshots taken mid-charge must each satisfy the invariant and be
        // monotone in total lookups.
        let mut last = 0u64;
        for _ in 0..500 {
            let snap = c.snapshot();
            assert_eq!(snap.hits + snap.misses, snap.lookups());
            assert!(snap.lookups() >= last, "lookups went backwards");
            last = snap.lookups();
        }
        for t in chargers {
            t.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.lookups(), 8_000, "no charge was lost");
    }
}
