//! Execution statistics — the observable evidence that the rewrite path
//! actually uses indexes instead of scanning (asserted by integration
//! tests, reported by the benchmark harness).

use std::cell::Cell;

/// Counters updated during query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Rows visited by full scans and residual filters.
    pub rows_scanned: Cell<u64>,
    /// Number of B-tree probes (equality or range descents).
    pub index_probes: Cell<u64>,
    /// Rows returned from index probes.
    pub index_rows: Cell<u64>,
    /// XML elements constructed by publishing functions.
    pub elements_built: Cell<u64>,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub rows_scanned: u64,
    pub index_probes: u64,
    pub index_rows: u64,
    pub elements_built: u64,
}

impl ExecStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_scanned: self.rows_scanned.get(),
            index_probes: self.index_probes.get(),
            index_rows: self.index_rows.get(),
            elements_built: self.elements_built.get(),
        }
    }

    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.index_probes.set(0);
        self.index_rows.set(0);
        self.elements_built.set(0);
    }

    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    pub fn add_index_probe(&self, rows: u64) {
        self.index_probes.set(self.index_probes.get() + 1);
        self.index_rows.set(self.index_rows.get() + rows);
    }

    pub fn add_element(&self) {
        self.elements_built.set(self.elements_built.get() + 1);
    }
}

/// Counters for a prepared-plan cache, surfaced alongside [`StatsSnapshot`]
/// by the benchmark harness. The cache itself lives above this crate (it
/// caches whole transform plans); the counters live here so one report can
/// print execution and caching evidence side by side.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: Cell<u64>,
    /// Lookups that had to plan from scratch (including lookups that found
    /// only a stale entry, and lookups whose planning then failed).
    pub misses: Cell<u64>,
    /// Entries dropped to make room under the byte capacity.
    pub evictions: Cell<u64>,
    /// Entries dropped because their DDL generation was stale.
    pub invalidations: Cell<u64>,
    /// Plans never admitted because they alone exceed the byte capacity.
    pub uncacheable: Cell<u64>,
}

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub uncacheable: u64,
}

impl CacheSnapshot {
    /// Total lookups. Every lookup is either a hit or a miss, so this is
    /// exactly `hits + misses` — an invariant the property tests assert.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl CacheStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            invalidations: self.invalidations.get(),
            uncacheable: self.uncacheable.get(),
        }
    }

    pub fn reset(&self) {
        self.hits.set(0);
        self.misses.set(0);
        self.evictions.set(0);
        self.invalidations.set(0);
        self.uncacheable.set(0);
    }

    pub fn add_hit(&self) {
        self.hits.set(self.hits.get() + 1);
    }

    pub fn add_miss(&self) {
        self.misses.set(self.misses.get() + 1);
    }

    pub fn add_eviction(&self) {
        self.evictions.set(self.evictions.get() + 1);
    }

    pub fn add_invalidation(&self) {
        self.invalidations.set(self.invalidations.get() + 1);
    }

    pub fn add_uncacheable(&self) {
        self.uncacheable.set(self.uncacheable.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ExecStats::new();
        s.add_rows_scanned(10);
        s.add_index_probe(3);
        s.add_element();
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned, 10);
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.index_rows, 3);
        assert_eq!(snap.elements_built, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn cache_counters_accumulate_and_derive() {
        let c = CacheStats::new();
        assert_eq!(c.snapshot().hit_rate(), 0.0);
        c.add_hit();
        c.add_hit();
        c.add_hit();
        c.add_miss();
        c.add_eviction();
        c.add_invalidation();
        c.add_uncacheable();
        let snap = c.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.lookups(), 4);
        assert_eq!(snap.hit_rate(), 0.75);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.uncacheable, 1);
        c.reset();
        assert_eq!(c.snapshot(), CacheSnapshot::default());
    }
}
