//! Execution statistics — the observable evidence that the rewrite path
//! actually uses indexes instead of scanning (asserted by integration
//! tests, reported by the benchmark harness).
//!
//! All counters are relaxed atomics so a stats handle can be charged from
//! any thread (concurrent sessions sharing one `SharedPlanCache` charge the
//! same [`CacheStats`]). Relaxed ordering is enough: each counter is an
//! independent monotonic tally, and read-modify-write operations never lose
//! increments, so single-threaded observable totals are unchanged.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters updated during query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Rows visited by full scans and residual filters.
    rows_scanned: AtomicU64,
    /// Number of B-tree probes (equality or range descents).
    index_probes: AtomicU64,
    /// Rows returned from index probes.
    index_rows: AtomicU64,
    /// XML elements constructed by publishing functions.
    elements_built: AtomicU64,
    /// Bytes emitted by the streaming execution path (no DOM involved).
    streamed_bytes: AtomicU64,
    /// Largest arena node count of any single materialised result document
    /// (a high-water mark, not a tally): the streaming path leaves this at
    /// zero, which is the whole point.
    peak_materialized_nodes: AtomicU64,
    /// Subtrees the sink-mode XQuery evaluator had to spill to a tree
    /// (re-inspected constructors) before replaying them as events.
    spilled_subtrees: AtomicU64,
    /// Largest single spilled subtree, in arena nodes — the bounded-memory
    /// evidence for the streaming XQuery tier: peak residency is
    /// O(largest spilled subtree), not O(output).
    peak_spilled_nodes: AtomicU64,
    /// Pages read from the heap file because they were not pool-resident.
    page_reads: AtomicU64,
    /// Page requests answered from a resident buffer-pool frame.
    pool_hits: AtomicU64,
    /// Resident pages displaced to make room under the frame budget.
    evictions: AtomicU64,
    /// Evicted pages that had to be written back because they were dirty.
    dirty_writebacks: AtomicU64,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub rows_scanned: u64,
    pub index_probes: u64,
    pub index_rows: u64,
    pub elements_built: u64,
    pub streamed_bytes: u64,
    pub peak_materialized_nodes: u64,
    pub spilled_subtrees: u64,
    pub peak_spilled_nodes: u64,
    pub page_reads: u64,
    pub pool_hits: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
}

impl ExecStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
            index_probes: self.index_probes.load(Ordering::Relaxed),
            index_rows: self.index_rows.load(Ordering::Relaxed),
            elements_built: self.elements_built.load(Ordering::Relaxed),
            streamed_bytes: self.streamed_bytes.load(Ordering::Relaxed),
            peak_materialized_nodes: self.peak_materialized_nodes.load(Ordering::Relaxed),
            spilled_subtrees: self.spilled_subtrees.load(Ordering::Relaxed),
            peak_spilled_nodes: self.peak_spilled_nodes.load(Ordering::Relaxed),
            page_reads: self.page_reads.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_writebacks: self.dirty_writebacks.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.rows_scanned.store(0, Ordering::Relaxed);
        self.index_probes.store(0, Ordering::Relaxed);
        self.index_rows.store(0, Ordering::Relaxed);
        self.elements_built.store(0, Ordering::Relaxed);
        self.streamed_bytes.store(0, Ordering::Relaxed);
        self.peak_materialized_nodes.store(0, Ordering::Relaxed);
        self.spilled_subtrees.store(0, Ordering::Relaxed);
        self.peak_spilled_nodes.store(0, Ordering::Relaxed);
        self.page_reads.store(0, Ordering::Relaxed);
        self.pool_hits.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.dirty_writebacks.store(0, Ordering::Relaxed);
    }

    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.fetch_add(n, Ordering::Relaxed);
    }

    pub fn add_index_probe(&self, rows: u64) {
        self.index_probes.fetch_add(1, Ordering::Relaxed);
        self.index_rows.fetch_add(rows, Ordering::Relaxed);
    }

    pub fn add_element(&self) {
        self.elements_built.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_streamed_bytes(&self, n: u64) {
        self.streamed_bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Record that a result document of `nodes` arena nodes was
    /// materialised; keeps the per-document maximum.
    pub fn note_materialized_nodes(&self, nodes: u64) {
        self.peak_materialized_nodes.fetch_max(nodes, Ordering::Relaxed);
    }

    /// Record that `count` subtrees were spilled to a tree by the sink-mode
    /// XQuery evaluator before being replayed as events.
    pub fn add_spilled_subtrees(&self, count: u64) {
        self.spilled_subtrees.fetch_add(count, Ordering::Relaxed);
    }

    /// Record the size (arena nodes) of a spilled subtree; keeps the
    /// per-subtree maximum.
    pub fn note_spilled_nodes(&self, nodes: u64) {
        self.peak_spilled_nodes.fetch_max(nodes, Ordering::Relaxed);
    }

    /// Fold a buffer-pool activity delta into these execution counters.
    /// The pool is shared by every table in a catalog, so per-query pool
    /// evidence is attributed by differencing [`PoolSnapshot`]s around the
    /// query and absorbing the delta here.
    pub fn absorb_pool_delta(&self, d: &PoolSnapshot) {
        self.page_reads.fetch_add(d.page_reads, Ordering::Relaxed);
        self.pool_hits.fetch_add(d.pool_hits, Ordering::Relaxed);
        self.evictions.fetch_add(d.evictions, Ordering::Relaxed);
        self.dirty_writebacks.fetch_add(d.dirty_writebacks, Ordering::Relaxed);
    }
}

/// Counters owned by one [`BufferPool`](crate::pool::BufferPool): the
/// observable evidence that the paged backend stays inside its frame budget
/// (`peak_resident_frames`) and that probes cost page reads, not row scans.
/// Same relaxed-atomic discipline as [`ExecStats`].
#[derive(Debug, Default)]
pub struct PoolStats {
    page_reads: AtomicU64,
    pool_hits: AtomicU64,
    evictions: AtomicU64,
    dirty_writebacks: AtomicU64,
    /// Gauge: pages currently resident in pool frames.
    resident_frames: AtomicU64,
    /// High-water mark of `resident_frames` — the budget gate.
    peak_resident_frames: AtomicU64,
}

/// A point-in-time copy of [`PoolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolSnapshot {
    pub page_reads: u64,
    pub pool_hits: u64,
    pub evictions: u64,
    pub dirty_writebacks: u64,
    pub resident_frames: u64,
    pub peak_resident_frames: u64,
}

impl PoolSnapshot {
    /// Counter movement since `earlier` (gauges keep their current value).
    /// Saturating, so a reset pool against an old snapshot reads as zero
    /// rather than wrapping.
    pub fn delta_since(&self, earlier: &PoolSnapshot) -> PoolSnapshot {
        PoolSnapshot {
            page_reads: self.page_reads.saturating_sub(earlier.page_reads),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            dirty_writebacks: self.dirty_writebacks.saturating_sub(earlier.dirty_writebacks),
            resident_frames: self.resident_frames,
            peak_resident_frames: self.peak_resident_frames,
        }
    }

    /// Fraction of page requests answered without a disk read.
    pub fn hit_rate(&self) -> f64 {
        let total = self.page_reads + self.pool_hits;
        if total == 0 {
            0.0
        } else {
            self.pool_hits as f64 / total as f64
        }
    }
}

impl PoolStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            page_reads: self.page_reads.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            dirty_writebacks: self.dirty_writebacks.load(Ordering::Relaxed),
            resident_frames: self.resident_frames.load(Ordering::Relaxed),
            peak_resident_frames: self.peak_resident_frames.load(Ordering::Relaxed),
        }
    }

    pub fn add_page_read(&self) {
        self.page_reads.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_pool_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_dirty_writeback(&self) {
        self.dirty_writebacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Update the residency gauge (and its high-water mark).
    pub fn set_resident_frames(&self, n: u64) {
        self.resident_frames.store(n, Ordering::Relaxed);
        self.peak_resident_frames.fetch_max(n, Ordering::Relaxed);
    }
}

/// Counters for a prepared-plan cache, surfaced alongside [`StatsSnapshot`]
/// by the benchmark harness. The cache itself lives above this crate (it
/// caches whole transform plans); the counters live here so one report can
/// print execution and caching evidence side by side.
///
/// `hits` and `misses` are packed into **one** 64-bit word (32 bits each),
/// so a [`snapshot`](Self::snapshot) reads both with a single atomic load:
/// `hits + misses == lookups` holds in *every* snapshot, even taken while
/// other threads are charging — there is no instant at which a hit has been
/// counted but not become visible to the same snapshot that missed it.
/// 2³² lookups per counter is orders of magnitude beyond any cache's
/// lifetime in this system; the packing saturates rather than overflowing
/// into its neighbour.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// `hits << 32 | misses`, both saturating at `u32::MAX`.
    hits_misses: AtomicU64,
    /// Entries dropped to make room under the byte capacity.
    evictions: AtomicU64,
    /// Entries dropped because their DDL generation was stale.
    invalidations: AtomicU64,
    /// Plans never admitted because they alone exceed the byte capacity.
    uncacheable: AtomicU64,
}

const HIT_ONE: u64 = 1 << 32;
const MISS_MASK: u64 = (1 << 32) - 1;

/// A point-in-time copy of [`CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub uncacheable: u64,
}

impl CacheSnapshot {
    /// Total lookups. Every lookup is either a hit or a miss, so this is
    /// exactly `hits + misses` — an invariant the property tests assert,
    /// and which the packed-word snapshot preserves under concurrency.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups answered from the cache (0 when none were made).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

impl CacheStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> CacheSnapshot {
        // One load covers hits *and* misses — the consistency point.
        let hm = self.hits_misses.load(Ordering::Relaxed);
        CacheSnapshot {
            hits: hm >> 32,
            misses: hm & MISS_MASK,
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
        }
    }

    pub fn reset(&self) {
        self.hits_misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.invalidations.store(0, Ordering::Relaxed);
        self.uncacheable.store(0, Ordering::Relaxed);
    }

    /// Saturating add of `one` (either [`HIT_ONE`] or 1) into the packed
    /// word, leaving the sibling half untouched at the boundary.
    fn bump_packed(&self, one: u64) {
        let _ = self
            .hits_misses
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |hm| {
                let half = if one == HIT_ONE { hm >> 32 } else { hm & MISS_MASK };
                (half < MISS_MASK).then(|| hm + one)
            });
    }

    pub fn add_hit(&self) {
        self.bump_packed(HIT_ONE);
    }

    pub fn add_miss(&self) {
        self.bump_packed(1);
    }

    pub fn add_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_invalidation(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    pub fn add_uncacheable(&self) {
        self.uncacheable.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ExecStats::new();
        s.add_rows_scanned(10);
        s.add_index_probe(3);
        s.add_element();
        s.add_streamed_bytes(64);
        s.add_streamed_bytes(16);
        s.note_materialized_nodes(40);
        s.note_materialized_nodes(25); // high-water mark: smaller doc keeps the peak
        s.add_spilled_subtrees(2);
        s.note_spilled_nodes(7);
        s.note_spilled_nodes(4); // high-water mark: smaller spill keeps the peak
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned, 10);
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.index_rows, 3);
        assert_eq!(snap.elements_built, 1);
        assert_eq!(snap.streamed_bytes, 80);
        assert_eq!(snap.peak_materialized_nodes, 40);
        assert_eq!(snap.spilled_subtrees, 2);
        assert_eq!(snap.peak_spilled_nodes, 7);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }

    #[test]
    fn pool_counters_delta_and_gauge() {
        let p = PoolStats::new();
        p.add_page_read();
        p.add_page_read();
        p.add_pool_hit();
        p.set_resident_frames(5);
        p.set_resident_frames(3); // gauge drops, peak stays
        let early = p.snapshot();
        assert_eq!(early.page_reads, 2);
        assert_eq!(early.resident_frames, 3);
        assert_eq!(early.peak_resident_frames, 5);
        p.add_page_read();
        p.add_eviction();
        p.add_dirty_writeback();
        let d = p.snapshot().delta_since(&early);
        assert_eq!(d.page_reads, 1);
        assert_eq!(d.pool_hits, 0);
        assert_eq!(d.evictions, 1);
        assert_eq!(d.dirty_writebacks, 1);
        assert!((d.hit_rate() - 0.0).abs() < f64::EPSILON);
        // Exec stats absorb the pool delta into the per-query snapshot.
        let s = ExecStats::new();
        s.absorb_pool_delta(&d);
        let snap = s.snapshot();
        assert_eq!(snap.page_reads, 1);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.dirty_writebacks, 1);
    }

    #[test]
    fn cache_counters_accumulate_and_derive() {
        let c = CacheStats::new();
        assert_eq!(c.snapshot().hit_rate(), 0.0);
        c.add_hit();
        c.add_hit();
        c.add_hit();
        c.add_miss();
        c.add_eviction();
        c.add_invalidation();
        c.add_uncacheable();
        let snap = c.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.misses, 1);
        assert_eq!(snap.lookups(), 4);
        assert_eq!(snap.hit_rate(), 0.75);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.invalidations, 1);
        assert_eq!(snap.uncacheable, 1);
        c.reset();
        assert_eq!(c.snapshot(), CacheSnapshot::default());
    }

    #[test]
    fn snapshots_are_consistent_while_other_threads_charge() {
        let c = Arc::new(CacheStats::new());
        let chargers: Vec<_> = (0..4)
            .map(|i| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for n in 0..2_000u64 {
                        if (n + i) % 3 == 0 {
                            c.add_miss();
                        } else {
                            c.add_hit();
                        }
                    }
                })
            })
            .collect();
        // Snapshots taken mid-charge must each satisfy the invariant and be
        // monotone in total lookups.
        let mut last = 0u64;
        for _ in 0..500 {
            let snap = c.snapshot();
            assert_eq!(snap.hits + snap.misses, snap.lookups());
            assert!(snap.lookups() >= last, "lookups went backwards");
            last = snap.lookups();
        }
        for t in chargers {
            t.join().unwrap();
        }
        let snap = c.snapshot();
        assert_eq!(snap.lookups(), 8_000, "no charge was lost");
    }
}
