//! Execution statistics — the observable evidence that the rewrite path
//! actually uses indexes instead of scanning (asserted by integration
//! tests, reported by the benchmark harness).

use std::cell::Cell;

/// Counters updated during query execution.
#[derive(Debug, Default)]
pub struct ExecStats {
    /// Rows visited by full scans and residual filters.
    pub rows_scanned: Cell<u64>,
    /// Number of B-tree probes (equality or range descents).
    pub index_probes: Cell<u64>,
    /// Rows returned from index probes.
    pub index_rows: Cell<u64>,
    /// XML elements constructed by publishing functions.
    pub elements_built: Cell<u64>,
}

/// A point-in-time copy of the counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    pub rows_scanned: u64,
    pub index_probes: u64,
    pub index_rows: u64,
    pub elements_built: u64,
}

impl ExecStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            rows_scanned: self.rows_scanned.get(),
            index_probes: self.index_probes.get(),
            index_rows: self.index_rows.get(),
            elements_built: self.elements_built.get(),
        }
    }

    pub fn reset(&self) {
        self.rows_scanned.set(0);
        self.index_probes.set(0);
        self.index_rows.set(0);
        self.elements_built.set(0);
    }

    pub fn add_rows_scanned(&self, n: u64) {
        self.rows_scanned.set(self.rows_scanned.get() + n);
    }

    pub fn add_index_probe(&self, rows: u64) {
        self.index_probes.set(self.index_probes.get() + 1);
        self.index_rows.set(self.index_rows.get() + rows);
    }

    pub fn add_element(&self) {
        self.elements_built.set(self.elements_built.get() + 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = ExecStats::new();
        s.add_rows_scanned(10);
        s.add_index_probe(3);
        s.add_element();
        let snap = s.snapshot();
        assert_eq!(snap.rows_scanned, 10);
        assert_eq!(snap.index_probes, 1);
        assert_eq!(snap.index_rows, 3);
        assert_eq!(snap.elements_built, 1);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
