//! Acceptance tests for the serving front door under chaos.
//!
//! These drive the same harness as `serve_report` and pin the PR's
//! contract: at 8 concurrent clients with faults injected at every
//! lattice edge, every admitted-and-served request is byte-identical to
//! the fresh single-threaded result, shed requests get typed rejections,
//! guard trips are never retried, and the global ledger returns to zero
//! reservations once the fleet quiesces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use xsltdb::admission::RetryPolicy;
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{FaultKind, FaultPoint, Guard, Limits};
use xsltdb_bench::{run_chaos, ChaosConfig, CHAOS_STACK};
use xsltdb_serve::{FrontDoor, FrontDoorConfig, ServeError};
use xsltdb_xml::LedgerLimits;
use xsltdb_xsltmark::{db_catalog, dbonerow_stylesheet, existing_id};

fn smoke_sized(clients: usize) -> ChaosConfig {
    let mut cfg = ChaosConfig::default_chaos(clients);
    cfg.requests_per_client = 20;
    cfg.rows = 24;
    cfg
}

/// The headline acceptance run: 8 clients, faults at every lattice edge.
#[test]
fn chaos_eight_clients_with_faults_holds_the_contract() {
    let report = run_chaos(&smoke_sized(8));
    assert!(report.served > 0, "chaos run served nothing: {report:?}");
    assert_eq!(
        report.mismatches, 0,
        "served bytes diverged from the single-threaded reference: {:?}",
        report.first_mismatch
    );
    assert_eq!(
        report.guard_trip_retries, 0,
        "an attempt started after a previous attempt tripped its guard"
    );
    assert!(report.quiesced, "ledger still holds reservations after quiesce");
    assert_eq!(
        report.served + report.shed + report.failed,
        report.total,
        "requests unaccounted for: {report:?}"
    );
    assert!(report.holds());
    // The schedule injects a deterministic share of budget trips; they
    // must surface as guard trips, not silent successes or hangs.
    assert!(report.guard_trips > 0, "no budget trip surfaced: {report:?}");
}

/// Without injected faults the same fleet serves every request clean.
#[test]
fn chaos_eight_clients_clean_serves_everything() {
    let mut cfg = smoke_sized(8);
    cfg.inject_faults = false;
    let report = run_chaos(&cfg);
    assert_eq!(report.failed, 0, "clean run failed requests: {report:?}");
    assert_eq!(report.mismatches, 0);
    assert_eq!(report.served + report.shed, report.total);
    assert!(report.quiesced);
    assert!(report.holds());
}

/// Satellite: forced degradation to the streamed XQuery tier. Every
/// request's first attempt loses its SQL tier (alternating error and
/// contained panic), so all 23 SQL-planned cases are actually served by
/// sink-mode XQuery evaluation — events straight to the wire, spills
/// replayed — under 8 concurrent clients. The served bytes must stay
/// identical to the clean single-threaded reference, and the ledger must
/// quiesce: a reservation leaking through a spill-path panic would fail
/// `holds()`.
#[test]
fn chaos_sql_faults_degrade_to_streamed_xquery() {
    let mut cfg = ChaosConfig::sql_degrade_chaos(8);
    cfg.requests_per_client = 20;
    cfg.rows = 24;
    let report = run_chaos(&cfg);
    assert!(report.served > 0, "degrade run served nothing: {report:?}");
    assert_eq!(
        report.mismatches, 0,
        "degraded bytes diverged from the reference: {:?}",
        report.first_mismatch
    );
    assert!(
        report.served_xquery > 0,
        "no request was served by the XQuery tier: {report:?}"
    );
    assert!(report.quiesced, "ledger still holds reservations after quiesce");
    assert!(report.holds());
}

/// Paged storage under churn: the serving catalog lives on disk pages
/// behind a 6-frame buffer pool — far below the working set of the row
/// table plus three B-tree indexes — while churn writers mutate it and a
/// shadow in-memory catalog in lockstep. Every served request is byte-
/// differenced against the shadow under the same read lock, so this run
/// holds "admitted bytes identical to the `Storage::Mem` execution"
/// while the pool demonstrably evicts and re-reads pages mid-suite.
#[test]
fn chaos_paged_catalog_with_eviction_serves_identical_bytes() {
    let mut cfg = ChaosConfig::paged_chaos(6);
    cfg.requests_per_client = 16;
    cfg.rows = 96; // several heap pages + index pages >> 6 frames
    let report = run_chaos(&cfg);
    assert!(report.served > 0, "paged chaos run served nothing: {report:?}");
    assert_eq!(
        report.mismatches, 0,
        "paged bytes diverged from the in-memory execution: {:?}",
        report.first_mismatch
    );
    assert_eq!(report.stale_serves, 0);
    assert!(report.writer_mutations > 0, "churn writers never ran");
    assert!(report.holds());
    let pool = report.pool.expect("paged run reports pool counters");
    assert!(
        pool.evictions > 0,
        "pool never evicted — the budget did not constrain the suite: {pool:?}"
    );
    assert!(
        pool.peak_resident_frames <= 6,
        "pool overran its frame budget: {pool:?}"
    );
}

/// Satellite: ledger accounting under panic. Every request panics at
/// every lattice edge on every attempt, so each one unwinds through
/// `catch_unwind` while holding a live reservation. After 1000 such
/// iterations across 8 threads nothing may be leaked: the ledger must
/// be back to zero fuel / bytes / streams in flight.
#[test]
fn ledger_returns_reservations_after_1000_panicking_requests() {
    let mut cfg = FrontDoorConfig::server_default();
    // Metered limits so every request draws real fuel and byte
    // reservations — a leak shows up as a non-quiesced ledger.
    cfg.limits = Limits::UNLIMITED.with_fuel(1_000_000).with_max_output_bytes(1 << 20);
    cfg.ledger = LedgerLimits::server_default();
    // Panics classify transient, so attempts retry; zero backoff keeps
    // 1000 iterations fast while still exercising the retry loop.
    cfg.retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::ZERO,
        max_backoff: Duration::ZERO,
    };
    let door = FrontDoor::new(cfg);
    let (catalog, view) = db_catalog(24, 7);
    let sheet = dbonerow_stylesheet(existing_id(24));
    let opts = RewriteOptions::default();
    let failures = AtomicU64::new(0);

    const THREADS: usize = 8;
    const PER_THREAD: usize = 125; // 8 × 125 = 1000 iterations
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let door = &door;
            let catalog = &catalog;
            let view = &view;
            let sheet = &sheet;
            let opts = &opts;
            let failures = &failures;
            std::thread::Builder::new()
                .stack_size(CHAOS_STACK)
                .spawn_scoped(s, move || {
                    for _ in 0..PER_THREAD {
                        let result = door.transform_with(
                            catalog,
                            view,
                            sheet,
                            opts,
                            &|limits, _attempt| {
                                // Panic on *every* attempt at *every*
                                // edge: the request can never succeed.
                                Guard::new(limits)
                                    .with_fault(FaultPoint::SqlExec, FaultKind::Panic)
                                    .with_fault(FaultPoint::XQueryExec, FaultKind::Panic)
                                    .with_fault(FaultPoint::VmExec, FaultKind::Panic)
                                    .with_fault(FaultPoint::Materialize, FaultKind::Panic)
                            },
                        );
                        match result {
                            Ok(out) => panic!(
                                "all-edge panic request succeeded: {} bytes via {:?}",
                                out.bytes.len(),
                                out.tier
                            ),
                            Err(ServeError::Pipeline { .. }) | Err(ServeError::Rejected(_)) => {
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                })
                .expect("spawn panic-chaos thread");
        }
    });

    assert_eq!(failures.load(Ordering::Relaxed) as usize, THREADS * PER_THREAD);
    let snap = door.queue().ledger().snapshot();
    assert!(
        snap.is_quiesced(),
        "ledger leaked reservations after panic storm: {snap:?}"
    );
}
