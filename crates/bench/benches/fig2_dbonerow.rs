//! Figure 2: `dbonerow` — XSLT rewrite vs no-rewrite across document sizes.
//!
//! The paper measured 8M/16M/32M/64M documents on Oracle; we sweep row
//! counts geometrically (each size roughly doubling the document). The
//! claim under test is the *shape*: the no-rewrite cost grows linearly with
//! document size (materialise everything, scan everything), while the
//! rewrite cost stays nearly flat thanks to the B-tree probe on the value
//! predicate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsltdb_bench::Workload;

const SIZES: &[usize] = &[1000, 2000, 4000, 8000];

fn fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_dbonerow");
    group.sample_size(10);
    for &rows in SIZES {
        let w = Workload::dbonerow(rows);
        assert_eq!(
            w.tier(),
            xsltdb::pipeline::Tier::Sql,
            "dbonerow must reach the SQL tier"
        );
        group.bench_with_input(BenchmarkId::new("rewrite", rows), &w, |b, w| {
            b.iter(|| black_box(w.run_rewrite()))
        });
        group.bench_with_input(BenchmarkId::new("no_rewrite", rows), &w, |b, w| {
            b.iter(|| black_box(w.run_baseline()))
        });
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
