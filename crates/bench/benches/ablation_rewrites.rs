//! Ablations of the §3.3–3.7 rewrite techniques (the design choices
//! DESIGN.md calls out), measured as XQuery-evaluation time of the
//! generated queries over the same materialised document:
//!
//! * `inline_full`      — every optimisation on (the paper's approach);
//! * `no_model_groups`  — children dispatch via the Table 12 `for …
//!   instance of` loop instead of model-group specialisation;
//! * `no_cardinality`   — `FOR` everywhere, never `LET`;
//! * `straightforward`  — the [9] translation: runtime pattern dispatch
//!   through per-template functions (what §6 argues is inefficient).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::rc::Rc;
use xsltdb::xqgen::{rewrite, rewrite_straightforward, RewriteOptions};
use xsltdb_xml::{parse_trimmed, NodeId};
use xsltdb_xquery::{evaluate_query, NodeHandle, XQuery};
use xsltdb_xslt::compile_str;
use xsltdb_xsltmark::{case, db_struct_info, db_xml};

const ROWS: usize = 1000;

/// The apply-templates-heavy case where dispatch strategy matters most.
const CASE: &str = "metric";

fn variants() -> Vec<(&'static str, XQuery)> {
    let sheet = compile_str(&case(CASE).stylesheet).expect("case compiles");
    let info = db_struct_info();
    let full = RewriteOptions::default();
    let no_groups = RewriteOptions { use_model_groups: false, ..full.clone() };
    let no_card = RewriteOptions { use_cardinality: false, ..full.clone() };
    vec![
        (
            "inline_full",
            rewrite(&sheet, &info, &full).expect("rewrites").query,
        ),
        (
            "no_model_groups",
            rewrite(&sheet, &info, &no_groups).expect("rewrites").query,
        ),
        (
            "no_cardinality",
            rewrite(&sheet, &info, &no_card).expect("rewrites").query,
        ),
        (
            "straightforward",
            rewrite_straightforward(&sheet).expect("rewrites").query,
        ),
    ]
}

fn ablation(c: &mut Criterion) {
    let doc = Rc::new(parse_trimmed(&db_xml(ROWS, 0xDB)).expect("doc parses"));
    let mut group = c.benchmark_group("ablation_rewrites");
    group.sample_size(10);
    for (name, query) in variants() {
        group.bench_with_input(BenchmarkId::new(CASE, name), &query, |b, q| {
            b.iter(|| {
                let input = NodeHandle::new(Rc::clone(&doc), NodeId::DOCUMENT);
                black_box(evaluate_query(q, Some(input)).expect("query runs"))
            })
        });
    }
    group.finish();
}

/// §3.7 in isolation: the `decoy` case carries seven never-matching
/// templates; with dead-template removal off (function mode) every apply
/// site tests them all at run time.
fn dead_templates(c: &mut Criterion) {
    let sheet = compile_str(&case("decoy").stylesheet).expect("case compiles");
    let info = db_struct_info();
    let doc = Rc::new(parse_trimmed(&db_xml(ROWS, 0xDB)).expect("doc parses"));
    let removed = rewrite(
        &sheet,
        &info,
        &RewriteOptions { inline: false, ..Default::default() },
    )
    .expect("rewrites")
    .query;
    let kept = rewrite(
        &sheet,
        &info,
        &RewriteOptions { inline: false, remove_dead_templates: false, ..Default::default() },
    )
    .expect("rewrites")
    .query;

    let mut group = c.benchmark_group("ablation_dead_templates");
    group.sample_size(10);
    for (name, query) in [("removed_3_7", removed), ("kept", kept)] {
        group.bench_with_input(BenchmarkId::new("decoy", name), &query, |b, q| {
            b.iter(|| {
                let input = NodeHandle::new(Rc::clone(&doc), NodeId::DOCUMENT);
                black_box(evaluate_query(q, Some(input)).expect("query runs"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, ablation, dead_templates);
criterion_main!(benches);
