//! Figure 3: `avts`, `chart`, `metric`, `total` — rewrite vs no-rewrite.
//!
//! These cases carry no indexable value predicate; the rewrite's win comes
//! from construction directly over relational columns (avts, metric) and
//! from pushing `count()`/`sum()` into relational aggregation (chart,
//! total), instead of materialising the XML and interpreting templates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use xsltdb_bench::Workload;

const CASES: &[&str] = &["avts", "chart", "metric", "total"];
const ROWS: usize = 2000;

fn fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_cases");
    group.sample_size(10);
    for &name in CASES {
        let w = Workload::xsltmark(name, ROWS);
        assert_ne!(
            w.tier(),
            xsltdb::pipeline::Tier::Vm,
            "{name} must reach a rewrite tier"
        );
        group.bench_with_input(BenchmarkId::new("rewrite", name), &w, |b, w| {
            b.iter(|| black_box(w.run_rewrite()))
        });
        group.bench_with_input(BenchmarkId::new("no_rewrite", name), &w, |b, w| {
            b.iter(|| black_box(w.run_baseline()))
        });
    }
    group.finish();
}

criterion_group!(benches, fig3);
criterion_main!(benches);
