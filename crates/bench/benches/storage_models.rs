//! Criterion version of the §7.4 storage-model study (see
//! `src/bin/storage_report.rs` for the narrated table): the `dbonerow`
//! query under object-relational, tree+index, CLOB+index, unindexed-tree
//! and functional-DOM execution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::rc::Rc;
use xsltdb::docexec::execute_indexed;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_bench::Workload;
use xsltdb_relstore::{DocStorageModel, ExecStats, XmlDocStore};
use xsltdb_xml::NodeId;
use xsltdb_xquery::{evaluate_query, NodeHandle};
use xsltdb_xslt::{compile_str, transform};
use xsltdb_xsltmark::{db_struct_info, db_xml, dbonerow_stylesheet, existing_id};

const ROWS: usize = 2000;

fn storage_models(c: &mut Criterion) {
    let xml = db_xml(ROWS, 0xDB);
    let sheet = compile_str(&dbonerow_stylesheet(existing_id(ROWS))).expect("compiles");
    let outcome =
        rewrite(&sheet, &db_struct_info(), &RewriteOptions::default()).expect("rewrites");
    let parsed = Rc::new(xsltdb_xml::parse::parse(&xml).expect("parses"));
    let mut tree_idx = XmlDocStore::new(DocStorageModel::Tree, true);
    tree_idx.insert(&xml).expect("insert");
    let mut clob_idx = XmlDocStore::new(DocStorageModel::Clob, true);
    clob_idx.insert(&xml).expect("insert");
    let or = Workload::dbonerow(ROWS);

    let mut group = c.benchmark_group("storage_models");
    group.sample_size(10);
    group.bench_function("object_relational_sql", |b| {
        b.iter(|| black_box(or.run_rewrite()))
    });
    let stats = ExecStats::new();
    group.bench_function("tree_with_path_index", |b| {
        b.iter(|| black_box(execute_indexed(&outcome.query, &tree_idx, 0, &stats).unwrap()))
    });
    group.bench_function("clob_with_path_index", |b| {
        b.iter(|| black_box(execute_indexed(&outcome.query, &clob_idx, 0, &stats).unwrap()))
    });
    group.bench_function("tree_no_index_xquery", |b| {
        b.iter(|| {
            let input = NodeHandle::new(Rc::clone(&parsed), NodeId::DOCUMENT);
            black_box(evaluate_query(&outcome.query, Some(input)).unwrap())
        })
    });
    group.bench_function("dom_no_rewrite_vm", |b| {
        b.iter(|| black_box(transform(&sheet, &parsed).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, storage_models);
criterion_main!(benches);
