//! # xsltdb-bench
//!
//! The benchmark harness regenerating every figure and table of the
//! paper's evaluation (§5). Criterion benches (`benches/`) provide the
//! statistically careful measurements; the report binaries (`src/bin/`)
//! print paper-shaped tables:
//!
//! * `fig2_report` — `dbonerow` rewrite vs no-rewrite across document
//!   sizes (Figure 2);
//! * `fig3_report` — `avts` / `chart` / `metric` / `total` rewrite vs
//!   no-rewrite (Figure 3);
//! * `inline_report` — the 40-case inline statistic (§5, objective 2);
//! * `cache_report` — prepared-transform caching: cold vs amortized
//!   per-call cost (`--smoke` for the 1-iteration CI run).
//!
//! ```
//! use xsltdb::PlanCache;
//! use xsltdb_bench::Workload;
//!
//! // Repeat calls through one cache hit the prepared plan.
//! let w = Workload::dbonerow(50);
//! let mut cache = PlanCache::default();
//! let (first, _) = w.run_cached_call(&mut cache);
//! let (second, _) = w.run_cached_call(&mut cache);
//! assert_eq!(
//!     first.iter().map(xsltdb_xml::to_string).collect::<Vec<_>>(),
//!     second.iter().map(xsltdb_xml::to_string).collect::<Vec<_>>(),
//! );
//! assert_eq!(cache.stats().hits, 1);
//! ```

pub mod chaos;
pub mod harness;

pub use chaos::{reference_outputs, run_chaos, ChaosConfig, ChaosReport, CHAOS_STACK};
pub use harness::{
    measure_amortization, measure_concurrent, median_micros, AmortizedCost, ScalingPoint,
    Workload,
};

/// Write a machine-readable benchmark artefact (`BENCH_*.json`) to the
/// repository root (or wherever the report is run from) and say so — the
/// perf-trajectory files CI and humans diff across PRs.
pub fn write_bench_json(path: &str, body: &str) {
    match std::fs::write(path, body) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
