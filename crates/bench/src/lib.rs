//! # xsltdb-bench
//!
//! The benchmark harness regenerating every figure and table of the
//! paper's evaluation (§5). Criterion benches (`benches/`) provide the
//! statistically careful measurements; the report binaries (`src/bin/`)
//! print paper-shaped tables:
//!
//! * `fig2_report` — `dbonerow` rewrite vs no-rewrite across document
//!   sizes (Figure 2);
//! * `fig3_report` — `avts` / `chart` / `metric` / `total` rewrite vs
//!   no-rewrite (Figure 3);
//! * `inline_report` — the 40-case inline statistic (§5, objective 2).

pub mod harness;

pub use harness::{median_micros, Workload};
