//! Shared setup for the benchmark harness: workloads, the two competing
//! execution paths (rewrite vs no-rewrite), and a tiny median timer for the
//! report binaries (Criterion drives the statistically careful runs; the
//! reports print paper-shaped tables quickly).

use std::sync::Arc;
use std::time::Instant;
use xsltdb::pipeline::{
    no_rewrite_transform, plan_bound, plan_cached, plan_cached_shared, plan_compiled, BoundPlan,
    Tier,
};
use xsltdb::plancache::{PlanCache, SharedPlanCache};
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::{CacheSnapshot, Catalog, ExecStats, StatsSnapshot, XmlView};
use xsltdb_xml::Document;
use xsltdb_xslt::{compile_str, Stylesheet};
use xsltdb_xsltmark::{case, db_catalog, dbonerow_stylesheet, existing_id};

/// A prepared workload: the relational backing plus the two plans.
pub struct Workload {
    pub name: String,
    pub rows: usize,
    pub catalog: Catalog,
    pub view: XmlView,
    pub stylesheet_src: String,
    pub sheet: Stylesheet,
    pub bound: BoundPlan,
}

impl Workload {
    /// Build a workload from a stylesheet over the db view at `rows`.
    pub fn new(name: &str, rows: usize, stylesheet: &str) -> Workload {
        let (catalog, view) = db_catalog(rows, 0xDB);
        let sheet = compile_str(stylesheet).expect("stylesheet compiles");
        let plan = Arc::new(
            plan_compiled(&view, sheet.clone(), &RewriteOptions::default())
                .expect("planning succeeds"),
        );
        let bound = plan.bind(&view, &catalog).expect("binding succeeds");
        Workload {
            name: name.to_string(),
            rows,
            catalog,
            view,
            stylesheet_src: stylesheet.to_string(),
            sheet,
            bound,
        }
    }

    /// The `dbonerow` workload of Figure 2 at a given row count.
    pub fn dbonerow(rows: usize) -> Workload {
        Workload::new("dbonerow", rows, &dbonerow_stylesheet(existing_id(rows)))
    }

    /// One of the named XSLTMark cases (Figure 3) at a given row count.
    pub fn xsltmark(name: &str, rows: usize) -> Workload {
        Workload::new(name, rows, &case(name).stylesheet)
    }

    /// Execute the rewrite path once; returns the documents and counters.
    pub fn run_rewrite(&self) -> (Vec<Document>, StatsSnapshot) {
        let stats = ExecStats::new();
        let docs = self.bound.execute(&self.catalog, &stats).expect("rewrite path runs");
        (docs, stats.snapshot())
    }

    /// Execute the no-rewrite baseline once (materialise + XSLTVM).
    pub fn run_baseline(&self) -> (Vec<Document>, StatsSnapshot) {
        let stats = ExecStats::new();
        let run = no_rewrite_transform(&self.catalog, &self.view, &self.sheet, &stats)
            .expect("baseline runs");
        (run.documents, stats.snapshot())
    }

    /// One **uncached** `transform()`-style call: pay the whole compile →
    /// partial-evaluate → rewrite pipeline and then execute. This is what
    /// every call costs without a PlanCache.
    pub fn run_uncached_call(&self) -> (Vec<Document>, StatsSnapshot) {
        let stats = ExecStats::new();
        let bound = plan_bound(
            &self.catalog,
            &self.view,
            &self.stylesheet_src,
            &RewriteOptions::default(),
        )
        .expect("planning succeeds");
        let docs = bound.execute(&self.catalog, &stats).expect("plan runs");
        (docs, stats.snapshot())
    }

    /// One **cached** call: look the prepared plan up in `cache` (planning
    /// only on a miss) and execute it. Repeat calls collapse to
    /// execution-only cost.
    pub fn run_cached_call(&self, cache: &mut PlanCache) -> (Vec<Document>, StatsSnapshot) {
        let stats = ExecStats::new();
        let bound = self.plan_cached(cache);
        let docs = bound.execute(&self.catalog, &stats).expect("plan runs");
        (docs, stats.snapshot())
    }

    /// One cached call through a thread-safe [`SharedPlanCache`]: the
    /// per-thread body of the concurrency harness. Takes `&self` and
    /// `&cache` only, so any number of threads can run it against one
    /// workload and one cache.
    pub fn run_cached_call_shared(
        &self,
        cache: &SharedPlanCache,
    ) -> (Vec<Document>, StatsSnapshot) {
        let stats = ExecStats::new();
        let bound = self.plan_cached_shared(cache);
        let docs = bound.execute(&self.catalog, &stats).expect("plan runs");
        (docs, stats.snapshot())
    }

    /// The prepared plan for this workload, bound to its view, through
    /// `cache`.
    pub fn plan_cached(&self, cache: &mut PlanCache) -> BoundPlan {
        plan_cached(
            cache,
            &self.catalog,
            &self.view,
            &self.stylesheet_src,
            &RewriteOptions::default(),
        )
        .expect("planning succeeds")
    }

    /// The prepared plan for this workload, bound to its view, through a
    /// shared `cache`.
    pub fn plan_cached_shared(&self, cache: &SharedPlanCache) -> BoundPlan {
        plan_cached_shared(
            cache,
            &self.catalog,
            &self.view,
            &self.stylesheet_src,
            &RewriteOptions::default(),
        )
        .expect("planning succeeds")
    }

    pub fn tier(&self) -> Tier {
        self.bound.tier()
    }
}

/// Aggregate cost evidence for one cached-vs-uncached comparison, printed
/// by `cache_report` with the execution counters alongside the cache
/// counters.
#[derive(Debug, Clone, Copy)]
pub struct AmortizedCost {
    /// Median cost of a cold, uncached call (plan + execute), µs.
    pub cold_us: f64,
    /// Mean per-call cost over the warm, cached loop, µs.
    pub warm_us: f64,
    /// Cache counters after the warm loop.
    pub cache: CacheSnapshot,
}

impl AmortizedCost {
    /// `warm / cold` — the fraction of the cold cost a repeat call pays.
    pub fn ratio(&self) -> f64 {
        if self.cold_us <= 0.0 {
            f64::NAN
        } else {
            self.warm_us / self.cold_us
        }
    }
}

/// Measure the amortization the cache buys on `w`: the median cold
/// (uncached) per-call cost vs the mean per-call cost of `repeats` calls
/// sharing one cache (one miss, `repeats − 1` hits).
pub fn measure_amortization(w: &Workload, cold_iters: usize, repeats: usize) -> AmortizedCost {
    assert!(repeats > 0);
    let cold_us = median_micros(cold_iters, || {
        let _ = w.run_uncached_call();
    });
    let mut cache = PlanCache::default();
    let t0 = Instant::now();
    for _ in 0..repeats {
        let _ = w.run_cached_call(&mut cache);
    }
    let warm_us = t0.elapsed().as_secs_f64() * 1e6 / repeats as f64;
    AmortizedCost { cold_us, warm_us, cache: cache.stats() }
}

/// One point of the thread-scaling curve: K sessions hammering one shared
/// cache.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    pub threads: usize,
    pub calls_per_thread: usize,
    /// Wall-clock for the whole K-thread run, seconds.
    pub wall_s: f64,
    /// Aggregate calls per second across all threads.
    pub throughput_per_s: f64,
}

/// Run `threads` concurrent sessions, each performing `calls_per_thread`
/// warm cached calls on `w` through one shared `cache`, asserting every
/// call's output byte-identical to `expected` (the single-threaded
/// rendering). Returns the aggregate throughput — the scaling evidence the
/// `concurrency_report` binary prints.
///
/// The differential assertion runs *inside* the timed region on purpose:
/// the serialisation cost is identical at every K, so speedups are
/// comparable, and a silent divergence can never produce a good-looking
/// number.
pub fn measure_concurrent(
    w: &Workload,
    cache: &SharedPlanCache,
    threads: usize,
    calls_per_thread: usize,
    expected: &[String],
) -> ScalingPoint {
    assert!(threads > 0 && calls_per_thread > 0);
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    for _ in 0..calls_per_thread {
                        let (docs, _) = w.run_cached_call_shared(cache);
                        let got: Vec<String> =
                            docs.iter().map(xsltdb_xml::to_string).collect();
                        assert_eq!(
                            got, expected,
                            "concurrent output diverged from the single-threaded run"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("session thread panicked");
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let total = (threads * calls_per_thread) as f64;
    ScalingPoint {
        threads,
        calls_per_thread,
        wall_s,
        throughput_per_s: total / wall_s.max(1e-9),
    }
}

/// Median wall-clock over `iters` runs, in microseconds.
pub fn median_micros(iters: usize, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0);
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbonerow_workload_reaches_sql_tier() {
        let w = Workload::dbonerow(200);
        assert_eq!(w.tier(), Tier::Sql, "fallback: {:?}", w.bound.fallback_reason());
        let (rw, rw_stats) = w.run_rewrite();
        let (bl, _) = w.run_baseline();
        let rws: Vec<String> = rw.iter().map(xsltdb_xml::to_string).collect();
        let bls: Vec<String> = bl.iter().map(xsltdb_xml::to_string).collect();
        assert_eq!(rws, bls);
        // The rewrite probes the id index instead of scanning 200 rows.
        assert!(rw_stats.index_probes >= 1);
        assert!(rw_stats.rows_scanned < 200);
    }

    #[test]
    fn fig3_cases_reach_a_rewrite_tier_and_agree() {
        for name in ["avts", "chart", "metric", "total"] {
            let w = Workload::xsltmark(name, 100);
            assert_ne!(
                w.tier(),
                Tier::Vm,
                "{name} fell to VM: {:?}",
                w.bound.fallback_reason()
            );
            let (rw, _) = w.run_rewrite();
            let (bl, _) = w.run_baseline();
            let rws: Vec<String> = rw.iter().map(xsltdb_xml::to_string).collect();
            let bls: Vec<String> = bl.iter().map(xsltdb_xml::to_string).collect();
            assert_eq!(rws, bls, "{name} rewrite disagrees with baseline");
        }
    }

    #[test]
    fn cached_and_uncached_calls_agree() {
        let w = Workload::dbonerow(100);
        let mut cache = PlanCache::default();
        let (uncached, _) = w.run_uncached_call();
        for _ in 0..3 {
            let (cached, _) = w.run_cached_call(&mut cache);
            let c: Vec<String> = cached.iter().map(xsltdb_xml::to_string).collect();
            let u: Vec<String> = uncached.iter().map(xsltdb_xml::to_string).collect();
            assert_eq!(c, u);
        }
        let snap = cache.stats();
        assert_eq!((snap.hits, snap.misses), (2, 1));
    }

    #[test]
    fn amortization_measure_counts_one_miss() {
        let w = Workload::dbonerow(100);
        let cost = measure_amortization(&w, 3, 5);
        assert_eq!(cost.cache.misses, 1);
        assert_eq!(cost.cache.hits, 4);
        assert!(cost.cold_us > 0.0 && cost.warm_us > 0.0);
        assert!(cost.ratio().is_finite());
    }

    #[test]
    fn shared_cached_calls_agree_with_exclusive_ones() {
        let w = Workload::dbonerow(100);
        let shared = SharedPlanCache::default();
        let mut exclusive = PlanCache::default();
        let (expected, _) = w.run_cached_call(&mut exclusive);
        let expected: Vec<String> = expected.iter().map(xsltdb_xml::to_string).collect();
        for _ in 0..3 {
            let (docs, _) = w.run_cached_call_shared(&shared);
            let got: Vec<String> = docs.iter().map(xsltdb_xml::to_string).collect();
            assert_eq!(got, expected);
        }
        assert_eq!((shared.stats().hits, shared.stats().misses), (2, 1));
    }

    #[test]
    fn concurrent_measure_is_differential() {
        let w = Workload::dbonerow(60);
        let cache = SharedPlanCache::default();
        let (docs, _) = w.run_cached_call_shared(&cache);
        let expected: Vec<String> = docs.iter().map(xsltdb_xml::to_string).collect();
        let point = measure_concurrent(&w, &cache, 3, 4, &expected);
        assert_eq!(point.threads, 3);
        assert!(point.throughput_per_s > 0.0);
        let snap = cache.stats();
        assert_eq!(snap.lookups(), 13, "warm-up + 3×4 measured calls");
        assert_eq!(snap.misses, 1, "one cold plan serves every session");
    }

    #[test]
    fn median_timer_is_sane() {
        let m = median_micros(5, || {
            std::hint::black_box(1 + 1);
        });
        assert!(m >= 0.0);
    }
}
