//! Shared setup for the benchmark harness: workloads, the two competing
//! execution paths (rewrite vs no-rewrite), and a tiny median timer for the
//! report binaries (Criterion drives the statistically careful runs; the
//! reports print paper-shaped tables quickly).

use std::time::Instant;
use xsltdb::pipeline::{no_rewrite_transform, plan_compiled, Tier, TransformPlan};
use xsltdb::xqgen::RewriteOptions;
use xsltdb_relstore::{Catalog, ExecStats, StatsSnapshot, XmlView};
use xsltdb_xml::Document;
use xsltdb_xslt::{compile_str, Stylesheet};
use xsltdb_xsltmark::{case, db_catalog, dbonerow_stylesheet, existing_id};

/// A prepared workload: the relational backing plus the two plans.
pub struct Workload {
    pub name: String,
    pub rows: usize,
    pub catalog: Catalog,
    pub view: XmlView,
    pub sheet: Stylesheet,
    pub plan: TransformPlan,
}

impl Workload {
    /// Build a workload from a stylesheet over the db view at `rows`.
    pub fn new(name: &str, rows: usize, stylesheet: &str) -> Workload {
        let (catalog, view) = db_catalog(rows, 0xDB);
        let sheet = compile_str(stylesheet).expect("stylesheet compiles");
        let plan = plan_compiled(&view, sheet.clone(), &RewriteOptions::default())
            .expect("planning succeeds");
        Workload { name: name.to_string(), rows, catalog, view, sheet, plan }
    }

    /// The `dbonerow` workload of Figure 2 at a given row count.
    pub fn dbonerow(rows: usize) -> Workload {
        Workload::new("dbonerow", rows, &dbonerow_stylesheet(existing_id(rows)))
    }

    /// One of the named XSLTMark cases (Figure 3) at a given row count.
    pub fn xsltmark(name: &str, rows: usize) -> Workload {
        Workload::new(name, rows, &case(name).stylesheet)
    }

    /// Execute the rewrite path once; returns the documents and counters.
    pub fn run_rewrite(&self) -> (Vec<Document>, StatsSnapshot) {
        let stats = ExecStats::new();
        let docs = self.plan.execute(&self.catalog, &stats).expect("rewrite path runs");
        (docs, stats.snapshot())
    }

    /// Execute the no-rewrite baseline once (materialise + XSLTVM).
    pub fn run_baseline(&self) -> (Vec<Document>, StatsSnapshot) {
        let stats = ExecStats::new();
        let run = no_rewrite_transform(&self.catalog, &self.view, &self.sheet, &stats)
            .expect("baseline runs");
        (run.documents, stats.snapshot())
    }

    pub fn tier(&self) -> Tier {
        self.plan.tier
    }
}

/// Median wall-clock over `iters` runs, in microseconds.
pub fn median_micros(iters: usize, mut f: impl FnMut()) -> f64 {
    assert!(iters > 0);
    let mut times: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    times[times.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbonerow_workload_reaches_sql_tier() {
        let w = Workload::dbonerow(200);
        assert_eq!(w.tier(), Tier::Sql, "fallback: {:?}", w.plan.fallback_reason);
        let (rw, rw_stats) = w.run_rewrite();
        let (bl, _) = w.run_baseline();
        let rws: Vec<String> = rw.iter().map(xsltdb_xml::to_string).collect();
        let bls: Vec<String> = bl.iter().map(xsltdb_xml::to_string).collect();
        assert_eq!(rws, bls);
        // The rewrite probes the id index instead of scanning 200 rows.
        assert!(rw_stats.index_probes >= 1);
        assert!(rw_stats.rows_scanned < 200);
    }

    #[test]
    fn fig3_cases_reach_a_rewrite_tier_and_agree() {
        for name in ["avts", "chart", "metric", "total"] {
            let w = Workload::xsltmark(name, 100);
            assert_ne!(
                w.tier(),
                Tier::Vm,
                "{name} fell to VM: {:?}",
                w.plan.fallback_reason
            );
            let (rw, _) = w.run_rewrite();
            let (bl, _) = w.run_baseline();
            let rws: Vec<String> = rw.iter().map(xsltdb_xml::to_string).collect();
            let bls: Vec<String> = bl.iter().map(xsltdb_xml::to_string).collect();
            assert_eq!(rws, bls, "{name} rewrite disagrees with baseline");
        }
    }

    #[test]
    fn median_timer_is_sane() {
        let m = median_micros(5, || {
            std::hint::black_box(1 + 1);
        });
        assert!(m >= 0.0);
    }
}
