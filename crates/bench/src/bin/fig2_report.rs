//! Figure 2 report: the `dbonerow` rewrite vs no-rewrite series across
//! document sizes, printed as the paper plots it, plus the execution
//! counters that explain the shape (index probes vs rows scanned and
//! materialised nodes).

use xsltdb_bench::{median_micros, Workload};

fn main() {
    let sizes = [1000usize, 2000, 4000, 8000, 16000];
    let iters = 9;

    println!("Figure 2 — dbonerow: XSLT rewrite vs no-rewrite");
    println!("(paper: 8M/16M/32M/64M documents on Oracle; here: row-count sweep)");
    println!();
    println!(
        "{:>8} | {:>14} | {:>14} | {:>8} | {:>22}",
        "rows", "rewrite (µs)", "no-rewrite (µs)", "speedup", "rewrite access path"
    );
    println!("{}", "-".repeat(80));

    for rows in sizes {
        let w = Workload::dbonerow(rows);
        assert_eq!(w.tier(), xsltdb::pipeline::Tier::Sql);
        let rewrite_us = median_micros(iters, || {
            let _ = w.run_rewrite();
        });
        let baseline_us = median_micros(iters, || {
            let _ = w.run_baseline();
        });
        let (_, rs) = w.run_rewrite();
        println!(
            "{:>8} | {:>14.1} | {:>14.1} | {:>7.1}x | {:>3} probes, {:>6} rows",
            rows,
            rewrite_us,
            baseline_us,
            baseline_us / rewrite_us,
            rs.index_probes,
            rs.rows_scanned,
        );
    }

    println!();
    println!("Expected shape (paper): no-rewrite grows ~linearly with document size;");
    println!("rewrite stays nearly flat (B-tree probe on the id predicate).");
}
