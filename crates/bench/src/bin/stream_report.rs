//! Streaming report: what `execute_to_writer` buys over materialise +
//! serialize.
//!
//! The DOM path builds one document per result row before any byte leaves
//! the engine, so its working set scales with the output; the streaming
//! path emits through a guarded [`StreamWriter`] and holds only one
//! pending tag. This report shows the memory cliff — materialized-node
//! counts per path — and the throughput of both paths on `dbonerow`
//! (point lookup, tiny output) and `dbtail` (full-table projection, output
//! proportional to the table), plus a mid-stream `max_output_bytes` trip
//! proving the guard fires while bytes are leaving, not after.
//!
//! `--smoke` runs one iteration of everything (CI bit-rot check);
//! `--json` also writes `BENCH_stream.json`, the machine-readable artefact.

use xsltdb::pipeline::Tier;
use xsltdb::{Guard, Limits};
use xsltdb_bench::{median_micros, write_bench_json, Workload};
use xsltdb_relstore::ExecStats;
use xsltdb_xsltmark::all_cases;

/// Stack for the full-suite pass: the recursive cases blow the default.
const SUITE_STACK: usize = 64 * 1024 * 1024;

fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(SUITE_STACK)
        .spawn(f)
        .expect("spawn suite thread")
        .join()
        .expect("suite thread panicked")
}

/// XSLTMark's `dbtail` shape: project every row of the table, so the
/// output (and the DOM path's working set) grows linearly with the data.
fn dbtail_stylesheet() -> String {
    r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
       <xsl:template match="table">
         <out><xsl:apply-templates select="row"/></out>
       </xsl:template>
       <xsl:template match="row">
         <r><xsl:value-of select="lastname"/>, <xsl:value-of select="firstname"/></r>
       </xsl:template>
       </xsl:stylesheet>"#
        .to_string()
}

struct PathRun {
    us: f64,
    bytes: u64,
    peak_nodes: u64,
}

/// Time the materialise + serialize path: `execute` then `to_string`.
fn run_materialized(w: &Workload, iters: usize) -> PathRun {
    let stats = ExecStats::new();
    let mut bytes = 0u64;
    let us = median_micros(iters, || {
        let docs = w.bound.execute(&w.catalog, &stats).expect("DOM path runs");
        bytes = docs.iter().map(|d| xsltdb_xml::to_string(d).len() as u64).sum();
    });
    PathRun { us, bytes, peak_nodes: stats.snapshot().peak_materialized_nodes }
}

/// Time the streaming path: `execute_to_writer` into a byte sink.
fn run_streamed(w: &Workload, iters: usize) -> PathRun {
    let stats = ExecStats::new();
    let mut bytes = 0u64;
    let us = median_micros(iters, || {
        let mut out = Vec::new();
        let run = w
            .bound
            .execute_to_writer(&w.catalog, &stats, &Guard::unlimited(), &mut out)
            .expect("streaming path runs");
        bytes = run.bytes_written;
    });
    PathRun { us, bytes, peak_nodes: stats.snapshot().peak_materialized_nodes }
}

fn mb_per_s(bytes: u64, us: f64) -> f64 {
    if us <= 0.0 {
        f64::NAN
    } else {
        bytes as f64 / us // bytes/µs == MB/s
    }
}

/// One XSLTMark case through both paths, with the materialisation story
/// split by side: result-tree nodes on the DOM path, spilled subtrees on
/// the streaming path, and the plan's static emission census.
struct CaseRow {
    name: &'static str,
    tier: Tier,
    bytes: u64,
    identical: bool,
    /// Peak DOM nodes the materialising path built (input + result trees).
    dom_peak_nodes: u64,
    /// Peak DOM nodes the streaming path built (the input documents on the
    /// XQuery tier; zero on the SQL tier).
    stream_peak_nodes: u64,
    /// Result-side subtrees the sink-mode evaluator had to spill.
    spilled_subtrees: u64,
    peak_spilled_nodes: u64,
    /// Static emission census of the rewritten query (None on the VM tier).
    emit_sites: Option<usize>,
    spill_sites: Option<usize>,
}

/// Run the whole 40-case suite through `execute` and `execute_to_writer`.
fn run_suite(rows: usize) -> Vec<CaseRow> {
    all_cases()
        .iter()
        .map(|case| {
            let w = Workload::new(case.name, rows, &case.stylesheet);
            let mat_stats = ExecStats::new();
            let docs = w
                .bound
                .execute(&w.catalog, &mat_stats)
                .unwrap_or_else(|e| panic!("DOM path failed on {}: {e}", case.name));
            let mat_bytes: String = docs.iter().map(xsltdb_xml::to_string).collect();

            let st_stats = ExecStats::new();
            let mut streamed = Vec::new();
            w.bound
                .execute_to_writer(&w.catalog, &st_stats, &Guard::unlimited(), &mut streamed)
                .unwrap_or_else(|e| panic!("streaming path failed on {}: {e}", case.name));
            let snap = st_stats.snapshot();
            let emission = w.bound.plan().emission;
            CaseRow {
                name: case.name,
                tier: w.tier(),
                bytes: streamed.len() as u64,
                identical: mat_bytes.as_bytes() == streamed.as_slice(),
                dom_peak_nodes: mat_stats.snapshot().peak_materialized_nodes,
                stream_peak_nodes: snap.peak_materialized_nodes,
                spilled_subtrees: snap.spilled_subtrees,
                peak_spilled_nodes: snap.peak_spilled_nodes,
                emit_sites: emission.map(|e| e.emit_sites),
                spill_sites: emission.map(|e| e.spill_sites),
            }
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let (iters, sizes): (usize, &[usize]) = if smoke { (1, &[500]) } else { (9, &[1_000, 10_000]) };

    println!("Streaming — execute_to_writer vs materialise + serialize");
    println!("(peak nodes: high-water DOM node count a path built per result document)");
    println!();
    println!(
        "{:>9} | {:>6} | {:>4} | {:>9} | {:>11} | {:>11} | {:>10} | {:>10}",
        "case", "rows", "tier", "bytes", "DOM (µs)", "stream (µs)", "MB/s", "peak nodes"
    );
    println!("{}", "-".repeat(90));

    let mut all_sql_streams_zero_nodes = true;
    let mut json_rows: Vec<String> = Vec::new();
    let mut trip_workload: Option<Workload> = None;
    for &rows in sizes {
        for name in ["dbonerow", "dbtail"] {
            let w = if name == "dbonerow" {
                Workload::dbonerow(rows)
            } else {
                Workload::new("dbtail", rows, &dbtail_stylesheet())
            };
            let mat = run_materialized(&w, iters);
            let st = run_streamed(&w, iters);
            assert_eq!(mat.bytes, st.bytes, "{name}@{rows}: paths disagree on output bytes");
            let tier = format!("{:?}", w.tier()).to_lowercase();
            if w.tier() == Tier::Sql && st.peak_nodes != 0 {
                all_sql_streams_zero_nodes = false;
            }
            println!(
                "{:>9} | {:>6} | {:>4} | {:>9} | {:>11.1} | {:>11.1} | {:>10.1} | {:>4} -> {:>3}",
                name,
                rows,
                tier,
                st.bytes,
                mat.us,
                st.us,
                mb_per_s(st.bytes, st.us),
                mat.peak_nodes,
                st.peak_nodes,
            );
            json_rows.push(format!(
                r#"{{"case":"{name}","rows":{rows},"tier":"{tier}","bytes":{},"dom_us":{:.1},"stream_us":{:.1},"stream_mb_per_s":{:.1},"peak_nodes_dom":{},"peak_nodes_stream":{}}}"#,
                st.bytes,
                mat.us,
                st.us,
                mb_per_s(st.bytes, st.us),
                mat.peak_nodes,
                st.peak_nodes,
            ));
            if name == "dbtail" {
                trip_workload = Some(w);
            }
        }
    }

    // Guard demonstration: cap the output at a quarter of what dbtail
    // wants to emit and watch the trip fire mid-stream — the partial
    // output on the wire must never exceed the cap.
    let w = trip_workload.expect("dbtail ran");
    let full_bytes = run_streamed(&w, 1).bytes;
    let cap = (full_bytes / 4).max(16);
    let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(cap));
    let mut partial = Vec::new();
    let tripped = w
        .bound
        .execute_to_writer(&w.catalog, &ExecStats::new(), &guard, &mut partial)
        .is_err()
        && guard.trip().is_some();
    let bounded = (partial.len() as u64) <= cap && !partial.is_empty();

    println!();
    println!(
        "Guard trip: cap {cap} B on a {full_bytes} B stream -> tripped={tripped}, \
         {} B reached the wire (bounded={bounded})",
        partial.len()
    );

    // =======================================================================
    // Full-suite pass: all 40 XSLTMark cases through both paths, with the
    // per-tier materialisation story. Gates:
    //  * every case byte-identical between the paths;
    //  * every SQL-tier stream builds zero DOM nodes;
    //  * ≥ 10 XQuery-tier cases stream with zero spilled result subtrees;
    //  * the static emission analysis is sound — a plan it calls
    //    spill-free never spills at run time.
    // =======================================================================
    // Full runs stay under the engine's 96-deep recursion limit: the
    // recursion-shaped cases (`backwards`, `reverser`, …) recurse once per
    // row on both paths, so rows must sit below MAX_DEPTH.
    let suite_rows = if smoke { 24 } else { 64 };
    let suite = on_big_stack(move || run_suite(suite_rows));

    println!();
    println!("XSLTMark suite at {suite_rows} rows — per-tier materialisation");
    println!("(spills: result subtrees the sink-mode evaluator built and replayed)");
    println!();
    println!(
        "{:>12} | {:>6} | {:>8} | {:>9} | {:>11} | {:>7} | {:>11} | {:>5}",
        "case", "tier", "bytes", "DOM nodes", "strm nodes", "spills", "emit/spill", "ident"
    );
    println!("{}", "-".repeat(92));
    let mut suite_identical = true;
    let mut sql_zero_nodes = true;
    let mut analysis_sound = true;
    let mut xquery_cases = 0u32;
    let mut xquery_zero_spill = 0u32;
    let mut suite_json: Vec<String> = Vec::new();
    for c in &suite {
        suite_identical &= c.identical;
        match c.tier {
            Tier::Sql => sql_zero_nodes &= c.stream_peak_nodes == 0,
            Tier::XQuery => {
                xquery_cases += 1;
                if c.spilled_subtrees == 0 {
                    xquery_zero_spill += 1;
                }
                if c.spill_sites == Some(0) && c.spilled_subtrees > 0 {
                    analysis_sound = false;
                }
            }
            Tier::Vm => {}
        }
        let census = match (c.emit_sites, c.spill_sites) {
            (Some(e), Some(s)) => format!("{e}/{s}"),
            _ => "-".to_string(),
        };
        println!(
            "{:>12} | {:>6} | {:>8} | {:>9} | {:>11} | {:>7} | {:>11} | {:>5}",
            c.name,
            format!("{:?}", c.tier).to_lowercase(),
            c.bytes,
            c.dom_peak_nodes,
            c.stream_peak_nodes,
            c.spilled_subtrees,
            census,
            c.identical,
        );
        suite_json.push(format!(
            r#"{{"case":"{}","tier":"{}","bytes":{},"identical":{},"peak_nodes_dom":{},"peak_nodes_stream":{},"spilled_subtrees":{},"peak_spilled_nodes":{},"emit_sites":{},"spill_sites":{}}}"#,
            c.name,
            format!("{:?}", c.tier).to_lowercase(),
            c.bytes,
            c.identical,
            c.dom_peak_nodes,
            c.stream_peak_nodes,
            c.spilled_subtrees,
            c.peak_spilled_nodes,
            c.emit_sites.map_or("null".to_string(), |v| v.to_string()),
            c.spill_sites.map_or("null".to_string(), |v| v.to_string()),
        ));
    }
    let enough_zero_spill = xquery_zero_spill >= 10;
    let suite_ok = suite_identical && sql_zero_nodes && analysis_sound && enough_zero_spill;
    println!();
    println!(
        "Suite check [{}]: identical {suite_identical}; sql-tier zero nodes {sql_zero_nodes}; \
         xquery zero-spill {xquery_zero_spill}/{xquery_cases} (need >= 10: {enough_zero_spill}); \
         spill-free plans never spilled: {analysis_sound}.",
        if suite_ok { "OK" } else { "REGRESSION" },
    );
    println!();
    println!("Expected shape: on the SQL tier the streaming path builds zero DOM");
    println!("nodes — the DOM column's working set grows with the output while the");
    println!("stream column stays flat — and an output-byte cap stops the stream");
    println!("mid-flight with at most `cap` bytes on the wire.");
    let ok = all_sql_streams_zero_nodes && tripped && bounded && suite_ok;
    println!(
        "Shape check [{}]: sql-tier streams materialized 0 nodes: {}; \
         mid-stream trip fired and stayed bounded: {}; suite gates: {}.",
        if ok { "OK" } else { "REGRESSION" },
        all_sql_streams_zero_nodes,
        tripped && bounded,
        suite_ok
    );

    if json {
        let body = format!(
            "{{\n  \"bench\": \"stream\",\n  \"smoke\": {smoke},\n  \"iters\": {iters},\n  \"rows\": [\n    {}\n  ],\n  \"guard_trip\": {{\"cap_bytes\": {cap}, \"stream_bytes\": {full_bytes}, \"partial_bytes\": {}, \"tripped\": {tripped}, \"bounded\": {bounded}}},\n  \"sql_tier_zero_nodes\": {all_sql_streams_zero_nodes},\n  \"suite_rows\": {suite_rows},\n  \"cases\": [\n    {}\n  ],\n  \"xquery_cases\": {xquery_cases},\n  \"xquery_zero_spill\": {xquery_zero_spill},\n  \"suite_ok\": {suite_ok}\n}}\n",
            json_rows.join(",\n    "),
            partial.len(),
            suite_json.join(",\n    "),
        );
        write_bench_json("BENCH_stream.json", &body);
    }

    // The shape check is the CI contract: a sql-tier stream that
    // materialises nodes, a cap that fails to stop the stream, a byte
    // divergence anywhere in the suite, or a spill-free plan that spilled
    // at run time — any of these fails the job.
    if !ok {
        std::process::exit(1);
    }
}
