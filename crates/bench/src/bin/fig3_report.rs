//! Figure 3 report: `avts`, `chart`, `metric`, `total` — rewrite vs
//! no-rewrite at a fixed document size, as in the paper's bar chart.

use xsltdb_bench::{median_micros, Workload};

fn main() {
    let cases = ["avts", "chart", "metric", "total"];
    let rows = 2000usize;
    let iters = 9;

    println!("Figure 3 — XSLT rewrite vs no-rewrite ({} rows)", rows);
    println!();
    println!(
        "{:>8} | {:>14} | {:>14} | {:>8} | {:>8}",
        "case", "rewrite (µs)", "no-rewrite (µs)", "speedup", "tier"
    );
    println!("{}", "-".repeat(64));

    for name in cases {
        let w = Workload::xsltmark(name, rows);
        let rewrite_us = median_micros(iters, || {
            let _ = w.run_rewrite();
        });
        let baseline_us = median_micros(iters, || {
            let _ = w.run_baseline();
        });
        println!(
            "{:>8} | {:>14.1} | {:>14.1} | {:>7.1}x | {:>8}",
            name,
            rewrite_us,
            baseline_us,
            baseline_us / rewrite_us,
            match w.tier() {
                xsltdb::pipeline::Tier::Sql => "SQL",
                xsltdb::pipeline::Tier::XQuery => "XQuery",
                xsltdb::pipeline::Tier::Vm => "VM",
            },
        );
    }

    println!();
    println!("Expected shape (paper): the rewrite wins every case; chart/total push");
    println!("count()/sum() into relational aggregation, avts/metric construct");
    println!("directly from columns without materialising the input XML.");
}
