//! Serving report: the admission-controlled front door under K-client
//! load, with and without injected faults.
//!
//! For K ∈ {1, 4, 8} the 40-case XSLTMark suite is replayed through one
//! [`FrontDoor`] and the report prints p50/p99 latency, throughput, and
//! the shed / retry / breaker-open counters. Every served request is
//! checked byte-for-byte against the fresh single-threaded result; **any
//! mismatch fails the process** (exit 1) — that is the CI contract.
//!
//! `--smoke` shrinks the run (CI bit-rot check); `--json` also writes
//! `BENCH_serve.json`.

use xsltdb_bench::{run_chaos, write_bench_json, ChaosConfig, ChaosReport};

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

struct Row {
    clients: usize,
    faults: bool,
    churn: bool,
    report: ChaosReport,
    p50_us: u64,
    p99_us: u64,
    throughput: f64,
}

fn run_point(clients: usize, faults: bool, churn: bool, smoke: bool) -> Row {
    let mut cfg =
        if churn { ChaosConfig::churn_chaos(clients) } else { ChaosConfig::default_chaos(clients) };
    cfg.inject_faults = faults;
    if smoke {
        cfg.requests_per_client = if churn { 10 } else { 20 };
        cfg.rows = 24;
    }
    let report = run_chaos(&cfg);
    let mut lat = report.latencies_us.clone();
    lat.sort_unstable();
    let p50_us = percentile(&lat, 0.50);
    let p99_us = percentile(&lat, 0.99);
    let throughput = if report.wall_us == 0 {
        f64::NAN
    } else {
        report.served as f64 / (report.wall_us as f64 / 1_000_000.0)
    };
    Row { clients, faults, churn, report, p50_us, p99_us, throughput }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let ks: &[usize] = &[1, 4, 8];

    println!("Serving front door — K clients × 40-case suite through one FrontDoor");
    println!("(faulty runs inject errors/panics at every lattice edge plus budget trips;");
    println!(" churn runs race DML/DDL writers against the readers and gate every served");
    println!(" byte on a fresh uncached execution under the same catalog lock)");
    println!();
    println!(
        "{:>2} | {:>6} | {:>5} | {:>6} | {:>5} | {:>6} | {:>9} | {:>9} | {:>7} | {:>7} | {:>5} | {:>5} | {:>7}",
        "K", "faults", "churn", "served", "shed", "failed", "p50 (µs)", "p99 (µs)", "req/s",
        "hit%", "stale", "brk", "quiesce"
    );
    println!("{}", "-".repeat(118));

    let mut ok = true;
    let mut json_rows: Vec<String> = Vec::new();
    for &k in ks {
        for (faults, churn) in [(false, false), (true, false), (true, true)] {
            let row = run_point(k, faults, churn, smoke);
            let r = &row.report;
            ok &= r.holds();
            println!(
                "{:>2} | {:>6} | {:>5} | {:>6} | {:>5} | {:>6} | {:>9} | {:>9} | {:>7.0} | {:>6.1}% | {:>5} | {:>5} | {:>7}",
                row.clients,
                row.faults,
                row.churn,
                r.served,
                r.shed,
                r.failed,
                row.p50_us,
                row.p99_us,
                row.throughput,
                100.0 * r.result_hit_rate(),
                r.stale_serves,
                r.stats.breaker_opened,
                r.quiesced,
            );
            if let Some(m) = &r.first_mismatch {
                eprintln!("MISMATCH at K={k} faults={faults} churn={churn}: {m}");
            }
            json_rows.push(format!(
                r#"{{"clients":{},"faults":{},"churn":{},"total":{},"served":{},"shed":{},"failed":{},"mismatches":{},"stale_serves":{},"guard_trips":{},"guard_trip_retries":{},"p50_us":{},"p99_us":{},"requests_per_s":{:.1},"shed_rate":{:.4},"result_hit_rate":{:.4},"result_hits":{},"result_misses":{},"result_invalidations":{},"writer_mutations":{},"retries":{},"breaker_opened":{},"quiesced":{}}}"#,
                row.clients,
                row.faults,
                row.churn,
                r.total,
                r.served,
                r.shed,
                r.failed,
                r.mismatches,
                r.stale_serves,
                r.guard_trips,
                r.guard_trip_retries,
                row.p50_us,
                row.p99_us,
                row.throughput,
                r.shed_rate(),
                r.result_hit_rate(),
                r.stats.result_hits,
                r.stats.result_misses,
                r.stats.result_invalidations,
                r.writer_mutations,
                r.stats.retries,
                r.stats.breaker_opened,
                r.quiesced,
            ));
        }
    }

    println!();
    println!("Expected shape: every served request byte-identical to the fresh");
    println!("reference (static outputs without churn, per-request differentials");
    println!("with churn); zero stale serves from the result cache; shed requests");
    println!("get typed rejections; guard trips never retried; the global ledger");
    println!("quiesces to zero after each run.");
    println!(
        "Shape check [{}]: byte-identity, cache freshness, retry discipline, and ledger conservation all held: {ok}.",
        if ok { "OK" } else { "REGRESSION" },
    );

    if json {
        let body = format!(
            "{{\n  \"bench\": \"serve\",\n  \"smoke\": {smoke},\n  \"rows\": [\n    {}\n  ],\n  \"holds\": {ok}\n}}\n",
            json_rows.join(",\n    "),
        );
        write_bench_json("BENCH_serve.json", &body);
    }

    if !ok {
        std::process::exit(1);
    }
}
