//! Example 2 (§2.2) as a measurement: the user XQuery of Table 10 over an
//! XSLT view, executed (a) naïvely — materialise the view, run the XSLT
//! functionally, evaluate the query over the result — versus (b) via the
//! combined optimisation — compose the two rewrites into the Table 11
//! SQL/XML query and run it straight against the base tables.

use std::rc::Rc;
use xsltdb::combined::compose_over_xslt_view;
use xsltdb::pipeline::no_rewrite_transform;
use xsltdb::sqlrewrite::rewrite_to_sql;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_bench::median_micros;
use xsltdb_relstore::ExecStats;
use xsltdb_structinfo::struct_of_view;
use xsltdb_xml::NodeId;
use xsltdb_xquery::{evaluate_query, parse_query, NodeHandle};
use xsltdb_xslt::compile_str;
use xsltdb_xsltmark::db_catalog;

fn main() {
    let rows = 2000usize;
    let iters = 9;
    let (catalog, view) = db_catalog(rows, 0xDB);

    // An XSLT view over the db document, then a query over its result.
    let stylesheet = r#"<xsl:stylesheet version="1.0"
xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
<xsl:template match="table">
<listing><head>all rows</head>
<body><xsl:apply-templates select="row[zip &gt; 70000]"/></body>
</listing>
</xsl:template>
<xsl:template match="row">
<entry><who><xsl:value-of select="lastname"/></who><zip><xsl:value-of select="zip"/></zip></entry>
</xsl:template>
</xsl:stylesheet>"#;
    let user_query = "for $e in ./listing/body/entry return $e";

    let sheet = compile_str(stylesheet).expect("stylesheet compiles");
    let info = struct_of_view(&view).expect("structure derivable");
    let xslt_q = rewrite(&sheet, &info, &RewriteOptions::default()).expect("rewrites");
    let user_q = parse_query(user_query).expect("user query parses");
    let composed = compose_over_xslt_view(&user_q, &xslt_q.query).expect("composes");
    let sql = rewrite_to_sql(&composed, &info).expect("SQL rewrite succeeds");

    println!("Example 2 — combined optimisation of XQuery over an XSLT view ({rows} rows)");
    println!();

    let stats = ExecStats::new();
    let naive = median_micros(iters, || {
        let run = no_rewrite_transform(&catalog, &view, &sheet, &stats).expect("baseline");
        for doc in run.documents {
            let input = NodeHandle::new(Rc::new(doc), NodeId::DOCUMENT);
            let _ = evaluate_query(&user_q, Some(input)).expect("user query runs");
        }
    });
    let combined = median_micros(iters, || {
        let _ = sql.execute(&catalog, &stats).expect("Table 11 plan runs");
    });

    println!("{:<44} | {:>12}", "execution strategy", "median (µs)");
    println!("{}", "-".repeat(60));
    println!("{:<44} | {:>12.1}", "naive: materialise + XSLT + XQuery", naive);
    println!("{:<44} | {:>12.1}", "combined: composed Table-11 SQL/XML plan", combined);
    println!();
    println!("speedup: {:.1}x — the XSLT view never runs; the composed query", naive / combined);
    println!("reads the base tables directly (paper §2.2 / Table 11).");
}
