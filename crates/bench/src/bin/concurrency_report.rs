//! Concurrency report: what sharing prepared plans across threads buys.
//!
//! PR 2 made the plan an asset (`PlanCache`); this report proves the asset
//! survives the `Send` boundary. K session threads hammer the warm
//! `dbonerow` workload through **one** [`SharedPlanCache`]: every call's
//! output is asserted byte-identical to the single-threaded run (inside
//! the timed region, so the comparison is fair across K), and the
//! aggregate throughput is reported per thread count.
//!
//! Flags:
//! * `--smoke` — one tiny iteration of everything (CI bit-rot check);
//! * `--json`  — also write `BENCH_concurrency.json`, the machine-readable
//!   perf-trajectory artefact.

use xsltdb::plancache::SharedPlanCache;
use xsltdb_bench::{measure_concurrent, write_bench_json, ScalingPoint, Workload};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let (rows, calls_per_thread): (usize, usize) = if smoke { (500, 3) } else { (10_000, 100) };
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    println!("SharedPlanCache — concurrent sessions over one prepared-plan cache");
    println!(
        "(dbonerow@{rows}, warm: every session reuses one cached plan; {cores} core(s) available)"
    );
    println!();

    let w = Workload::dbonerow(rows);
    let cache = SharedPlanCache::default();
    // Warm the cache and fix the single-threaded expectation every
    // concurrent call must reproduce byte for byte.
    let (docs, _) = w.run_cached_call_shared(&cache);
    let expected: Vec<String> = docs.iter().map(xsltdb_xml::to_string).collect();

    println!(
        "{:>8} | {:>10} | {:>12} | {:>9}",
        "threads", "wall (s)", "calls/s", "speedup"
    );
    println!("{}", "-".repeat(50));

    let mut points: Vec<ScalingPoint> = Vec::new();
    let mut base_throughput = 0.0f64;
    for &k in thread_counts {
        let p = measure_concurrent(&w, &cache, k, calls_per_thread, &expected);
        if k == 1 {
            base_throughput = p.throughput_per_s;
        }
        let speedup = p.throughput_per_s / base_throughput.max(1e-9);
        println!(
            "{:>8} | {:>10.3} | {:>12.1} | {:>8.2}x",
            p.threads, p.wall_s, p.throughput_per_s, speedup
        );
        points.push(p);
    }

    let snap = cache.stats();
    println!();
    println!(
        "cache: {} hits / {} misses over {} lookups (hit rate {:.1}%)",
        snap.hits,
        snap.misses,
        snap.lookups(),
        snap.hit_rate() * 100.0
    );
    println!("differential: every concurrent output matched the single-threaded run");

    // Shape checks. The hit-rate bound holds on any machine: one cold plan
    // serves every session. The scaling bound needs cores to scale onto —
    // on a box with fewer than 4 cores the 3× target is physically
    // unreachable and is reported as informational instead of failing.
    let hit_ok = snap.hit_rate() >= 0.90;
    println!(
        "Shape check [{}]: shared-cache hit rate {:.1}% (target ≥ 90%).",
        if hit_ok { "OK" } else { "REGRESSION" },
        snap.hit_rate() * 100.0
    );
    let speedup8 = points
        .iter()
        .find(|p| p.threads == 8)
        .map(|p| p.throughput_per_s / base_throughput.max(1e-9))
        .unwrap_or(0.0);
    if cores >= 4 {
        let verdict = if speedup8 >= 3.0 { "OK" } else { "REGRESSION" };
        println!(
            "Shape check [{verdict}]: 8-thread throughput is {speedup8:.2}x the \
             single-thread rate (target ≥ 3x on ≥ 4 cores)."
        );
    } else {
        println!(
            "Shape check [SKIPPED]: {speedup8:.2}x at 8 threads — only {cores} core(s) \
             available, the ≥ 3x target needs ≥ 4; rerun on a multicore host."
        );
    }

    if json {
        let point_objs: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    r#"{{"threads":{},"calls_per_thread":{},"wall_s":{:.6},"throughput_per_s":{:.1},"speedup":{:.3}}}"#,
                    p.threads,
                    p.calls_per_thread,
                    p.wall_s,
                    p.throughput_per_s,
                    p.throughput_per_s / base_throughput.max(1e-9)
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"bench\": \"concurrency\",\n  \"workload\": \"dbonerow\",\n  \"rows\": {rows},\n  \"cores\": {cores},\n  \"smoke\": {smoke},\n  \"points\": [\n    {}\n  ],\n  \"cache\": {{\"hits\": {}, \"misses\": {}, \"lookups\": {}, \"hit_rate\": {:.4}}},\n  \"identical_output\": true\n}}\n",
            point_objs.join(",\n    "),
            snap.hits,
            snap.misses,
            snap.lookups(),
            snap.hit_rate()
        );
        write_bench_json("BENCH_concurrency.json", &body);
    }
}
