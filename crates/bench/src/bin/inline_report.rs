//! §5 objective 2 report: how many of the forty XSLTMark cases the rewrite
//! compiles into a fully inlined XQuery. The paper measured 23 of 40; the
//! join-graph lowering (ORDER BY on row sources, positional context,
//! comment/PI constructors — DESIGN.md §5i) raises the floor to
//! [`MIN_FULLY_INLINED`], and the suite pins the exact count at
//! [`EXPECTED_FULLY_INLINED`].
//!
//! Three verdicts, all CI-gated (exit 1 on failure):
//!
//! * **Inline count** — `fully_inlined >= MIN_FULLY_INLINED` (a drop below
//!   means a lowering regressed back to a punt).
//! * **Equivalence** — every case, whatever its tier, is byte-identical to
//!   the XSLTVM output.
//! * **Tier placement** — each of the newly-inlined cases plans at the SQL
//!   tier over the relational db view, and its warm p50 is reported next
//!   to the VM transform it used to fall back to.
//!
//! `--smoke` shrinks rows/iterations (CI bit-rot check); `--json` also
//! writes `BENCH_inline.json`.

use std::time::Instant;
use xsltdb::pipeline::{no_rewrite_transform, plan_bound, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb::Guard;
use xsltdb_bench::write_bench_json;
use xsltdb_relstore::ExecStats;
use xsltdb_xsltmark::{all_cases, db_catalog, run_case, EXPECTED_FULLY_INLINED};

/// The CI floor: ISSUE 9's acceptance bar. The recorded count is
/// [`EXPECTED_FULLY_INLINED`]; the report fails only below this floor so a
/// future *improvement* does not break the bench gate (the suite's exact
/// assert catches unrecorded drift either way).
const MIN_FULLY_INLINED: usize = 26;

/// The cases the join-graph lowering newly inlines (DESIGN.md §5i). Before
/// it they punted to function-mode XQuery or the VM; their warm p50 is
/// reported against the VM fallback they used to run as.
const NEWLY_INLINED: &[&str] =
    &["comments", "processes", "position", "trend", "stringsort", "oddtemplates"];

/// The subset committed to the SQL tier: these must lower all the way to
/// a single SQL/XML statement and stream without materialising a node.
/// (`oddtemplates` inlines fully but keeps a pattern-position predicate
/// the SQL rewrite correctly refuses, so it stays at the XQuery tier.)
const SQL_COMMITTED: &[&str] = &["comments", "processes", "position", "trend", "stringsort"];

fn tier_name(t: Tier) -> &'static str {
    match t {
        Tier::Sql => "sql",
        Tier::XQuery => "xquery",
        Tier::Vm => "vm",
    }
}

/// Median of warm iterations (µs), after one discarded warm-up run.
fn warm_p50_us(mut run: impl FnMut(), iters: usize) -> u64 {
    run();
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            run();
            t0.elapsed().as_micros() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

struct NewCase {
    name: &'static str,
    tier: &'static str,
    warm_p50_us: u64,
    vm_fallback_p50_us: u64,
    streams_without_nodes: bool,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let (rows, iters) = if smoke { (20usize, 5usize) } else { (120, 15) };

    println!(
        "XSLTMark inline-mode statistic (paper §5: 23 of 40 fully inline; \
         recorded: {EXPECTED_FULLY_INLINED} of 40, floor {MIN_FULLY_INLINED})"
    );
    println!();
    println!(
        "{:<14} | {:<16} | {:>6} | {:>7} | {:>7} | note",
        "case", "mode", "tier", "inline", "matches"
    );
    println!("{}", "-".repeat(86));

    let (catalog, view) = db_catalog(rows, 0xDB);
    let stats = ExecStats::new();

    let mut inlined = 0usize;
    let mut matched = 0usize;
    let mut tiers = (0usize, 0usize, 0usize);
    let mut case_json: Vec<String> = Vec::new();
    let mut newly: Vec<NewCase> = Vec::new();
    let cases = all_cases();
    for c in &cases {
        let r = run_case(c, 20, 0xDB);
        if r.fully_inlined {
            inlined += 1;
        }
        if r.matches_vm {
            matched += 1;
        }
        let bound = plan_bound(&catalog, &view, &c.stylesheet, &RewriteOptions::default())
            .unwrap_or_else(|e| panic!("{} fails to plan: {e}", c.name));
        let tier = bound.tier();
        match tier {
            Tier::Sql => tiers.0 += 1,
            Tier::XQuery => tiers.1 += 1,
            Tier::Vm => tiers.2 += 1,
        }
        println!(
            "{:<14} | {:<16} | {:>6} | {:>6} | {:>7} | {}",
            r.name,
            r.mode.map_or("VM (fallback)".to_string(), |m| format!("{m:?}")),
            tier_name(tier),
            if r.fully_inlined { "yes" } else { "no" },
            if r.matches_vm { "yes" } else { "NO" },
            r.note.as_deref().unwrap_or(""),
        );
        case_json.push(format!(
            r#"{{"name":"{}","mode":"{}","tier":"{}","fully_inlined":{},"matches_vm":{}}}"#,
            r.name,
            r.mode.map_or("vm-fallback".to_string(), |m| format!("{m:?}")),
            tier_name(tier),
            r.fully_inlined,
            r.matches_vm,
        ));

        if NEWLY_INLINED.contains(&c.name) {
            let plan_p50 = warm_p50_us(
                || {
                    bound.execute(&catalog, &stats).expect("planned execution");
                },
                iters,
            );
            let vm_p50 = warm_p50_us(
                || {
                    no_rewrite_transform(&catalog, &view, bound.sheet(), &stats)
                        .expect("VM baseline");
                },
                iters,
            );
            // The SQL tier must stream the case without building a DOM node.
            let streams_without_nodes = if tier == Tier::Sql {
                let stream_stats = ExecStats::new();
                let mut out = Vec::new();
                bound
                    .execute_to_writer(&catalog, &stream_stats, &Guard::unlimited(), &mut out)
                    .expect("streamed execution");
                stream_stats.snapshot().peak_materialized_nodes == 0 && !out.is_empty()
            } else {
                false
            };
            newly.push(NewCase {
                name: c.name,
                tier: tier_name(tier),
                warm_p50_us: plan_p50,
                vm_fallback_p50_us: vm_p50,
                streams_without_nodes,
            });
        }
    }

    println!("{}", "-".repeat(86));
    println!(
        "fully inlined: {inlined} / {} (paper: 23 / 40); equivalent to VM: {matched} / {}",
        cases.len(),
        cases.len()
    );
    println!(
        "planned tiers over the relational db view: SQL {}, XQuery {}, VM {}",
        tiers.0, tiers.1, tiers.2
    );
    println!();
    println!("newly-inlined cases ({rows} rows, warm p50 over {iters} iterations):");
    println!(
        "{:<14} | {:>6} | {:>12} | {:>15} | {:>8} | {:>9}",
        "case", "tier", "planned (µs)", "vm fallback (µs)", "speedup", "no-nodes"
    );
    println!("{}", "-".repeat(80));
    let mut placement_ok = true;
    for n in &newly {
        if SQL_COMMITTED.contains(&n.name) {
            placement_ok &= n.tier == "sql" && n.streams_without_nodes;
        }
        println!(
            "{:<14} | {:>6} | {:>12} | {:>15} | {:>7.2}x | {:>9}",
            n.name,
            n.tier,
            n.warm_p50_us,
            n.vm_fallback_p50_us,
            n.vm_fallback_p50_us as f64 / n.warm_p50_us.max(1) as f64,
            if n.tier == "sql" { n.streams_without_nodes.to_string() } else { "n/a".into() },
        );
    }
    placement_ok &= newly.len() == NEWLY_INLINED.len();

    let count_ok = inlined >= MIN_FULLY_INLINED;
    let identity_ok = matched == cases.len();
    let ok = count_ok && identity_ok && placement_ok;
    println!();
    println!("Expected shape: at least {MIN_FULLY_INLINED} of 40 cases fully inline, every");
    println!("case byte-identical to the VM, and each SQL-committed case planned at the");
    println!("SQL tier and streamed with zero materialised nodes.");
    println!(
        "Shape check [{}]: count {count_ok} ({inlined}/40), identity {identity_ok}, \
         sql-placement {placement_ok}.",
        if ok { "OK" } else { "REGRESSION" },
    );

    if json {
        let newly_json: Vec<String> = newly
            .iter()
            .map(|n| {
                format!(
                    r#"{{"name":"{}","tier":"{}","warm_p50_us":{},"vm_fallback_p50_us":{},"streams_without_nodes":{}}}"#,
                    n.name, n.tier, n.warm_p50_us, n.vm_fallback_p50_us, n.streams_without_nodes,
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"bench\": \"inline\",\n  \"smoke\": {smoke},\n  \"rows\": {rows},\n  \"paper_fully_inlined\": 23,\n  \"expected_fully_inlined\": {EXPECTED_FULLY_INLINED},\n  \"min_fully_inlined\": {MIN_FULLY_INLINED},\n  \"fully_inlined\": {inlined},\n  \"matches_vm\": {matched},\n  \"tiers\": {{\"sql\": {}, \"xquery\": {}, \"vm\": {}}},\n  \"cases\": [\n    {}\n  ],\n  \"newly_inlined\": [\n    {}\n  ],\n  \"holds\": {ok}\n}}\n",
            tiers.0,
            tiers.1,
            tiers.2,
            case_json.join(",\n    "),
            newly_json.join(",\n    "),
        );
        write_bench_json("BENCH_inline.json", &body);
    }

    if !ok {
        std::process::exit(1);
    }
}
