//! §5 objective 2 report: how many of the forty XSLTMark cases the rewrite
//! compiles into a fully inlined XQuery (the paper measured 23 of 40).

use xsltdb_xsltmark::{all_cases, run_case};

fn main() {
    println!("XSLTMark inline-mode statistic (paper §5: 23 of 40 fully inline)");
    println!();
    println!(
        "{:<14} | {:<16} | {:>7} | {:>7} | note",
        "case", "mode", "inline", "matches"
    );
    println!("{}", "-".repeat(78));

    let mut inlined = 0usize;
    let mut matched = 0usize;
    let cases = all_cases();
    for c in &cases {
        let r = run_case(c, 20, 0xDB);
        if r.fully_inlined {
            inlined += 1;
        }
        if r.matches_vm {
            matched += 1;
        }
        println!(
            "{:<14} | {:<16} | {:>7} | {:>7} | {}",
            r.name,
            r.mode.map_or("VM (fallback)".to_string(), |m| format!("{m:?}")),
            if r.fully_inlined { "yes" } else { "no" },
            if r.matches_vm { "yes" } else { "NO" },
            r.note.as_deref().unwrap_or(""),
        );
    }

    println!("{}", "-".repeat(78));
    println!(
        "fully inlined: {inlined} / {} (paper: 23 / 40); equivalent to VM: {matched} / {}",
        cases.len(),
        cases.len()
    );
    let (sql, xq, vm) = xsltdb_xsltmark::tier_statistics(20, 0xDB);
    println!(
        "planned tiers over the relational db view: SQL {sql}, XQuery {xq}, VM {vm}"
    );
}
