//! Cross-view plan-reuse report: what canonical plan keys buy when many
//! same-shaped documents share one cache.
//!
//! M identically-shaped db views (each over its own tables, with its own
//! data) run all forty XSLTMark stylesheets through **one**
//! [`SharedPlanCache`]. Because prepared plans are keyed on the canonical
//! structure — table identity replaced by binding slots — the whole family
//! is served from one entry per stylesheet: plans-built stays at the
//! number of distinct (stylesheet × shape) pairs while views-served grows
//! with M. Every cached call's output is asserted byte-identical to a
//! freshly planned, uncached run over the same view.
//!
//! Exits non-zero if plans-built exceeds the number of distinct shapes ×
//! stylesheets — the regression CI guards against.
//!
//! Flags:
//! * `--smoke` — one tiny iteration of everything (CI bit-rot check);
//! * `--json`  — also write `BENCH_reuse.json`, the machine-readable
//!   perf-trajectory artefact.

use std::time::Instant;
use xsltdb::pipeline::{plan_bound, plan_cached_shared};
use xsltdb::plancache::SharedPlanCache;
use xsltdb::Guard;
use xsltdb::xqgen::RewriteOptions;
use xsltdb_bench::write_bench_json;
use xsltdb_relstore::ExecStats;
use xsltdb_xsltmark::{all_cases, db_catalog_family};

/// Recursive suite cases need more stack than the default main thread gets
/// in some environments; run the whole report body on a roomy one.
fn on_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("report thread panicked")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let code = on_big_stack(move || run(smoke, json));
    std::process::exit(code);
}

fn run(smoke: bool, json: bool) -> i32 {
    // Row counts stay under the recursion ceilings of the per-row
    // recursive suite cases (`backwards` burns one XQuery frame per row,
    // limit 96) so every case *executes* on every tier, not just plans.
    let (views, rows) = if smoke { (3usize, 40usize) } else { (8, 60) };
    let (catalog, family) = db_catalog_family(views, rows, 0xBEE5);
    let cases = all_cases();
    let sheets = cases.len();
    let opts = RewriteOptions::default();

    println!("Cross-view plan reuse — {views} same-shaped views × {sheets} stylesheets");
    println!("(db@{rows} rows per view; one SharedPlanCache; canonical plan keys)");
    println!();

    // Uncached pass: every (stylesheet, view) pair pays the full planning
    // pipeline. Outputs are kept as the differential expectation.
    let t0 = Instant::now();
    let mut expected: Vec<Vec<Vec<String>>> = Vec::with_capacity(sheets);
    for case in &cases {
        let mut per_view = Vec::with_capacity(views);
        for view in &family {
            let bound = plan_bound(&catalog, view, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: planning fails: {e}", case.name));
            let stats = ExecStats::new();
            let run = bound
                .execute_guarded(&catalog, &stats, &Guard::unlimited())
                .unwrap_or_else(|e| panic!("{}: uncached run fails: {e}", case.name));
            per_view.push(run.documents.iter().map(xsltdb_xml::to_string).collect::<Vec<_>>());
        }
        expected.push(per_view);
    }
    let uncached_s = t0.elapsed().as_secs_f64();

    // Cached pass: one shared cache serves the whole family; each call
    // rebinds the canonical plan to its view and must reproduce the
    // uncached bytes exactly.
    let cache = SharedPlanCache::default();
    let t1 = Instant::now();
    for (ci, case) in cases.iter().enumerate() {
        for (vi, view) in family.iter().enumerate() {
            let bound = plan_cached_shared(&cache, &catalog, view, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: cached planning fails: {e}", case.name));
            let stats = ExecStats::new();
            let run = bound
                .execute_guarded(&catalog, &stats, &Guard::unlimited())
                .unwrap_or_else(|e| panic!("{}: cached run fails: {e}", case.name));
            let got: Vec<String> = run.documents.iter().map(xsltdb_xml::to_string).collect();
            assert_eq!(
                got, expected[ci][vi],
                "{}: cached output for view {} diverged from the fresh plan",
                case.name, view.name
            );
        }
    }
    let cached_s = t1.elapsed().as_secs_f64();

    let snap = cache.stats();
    let calls = (sheets * views) as f64;
    let uncached_us = uncached_s * 1e6 / calls;
    let cached_us = cached_s * 1e6 / calls;
    let speedup = uncached_us / cached_us.max(1e-9);
    // One shape: the family canonicalises identically, so the budget of
    // prepared plans is one per stylesheet.
    let distinct = sheets as u64;

    println!("{:>16} | {:>12}", "metric", "value");
    println!("{}", "-".repeat(32));
    println!("{:>16} | {:>12}", "views served", snap.lookups());
    println!("{:>16} | {:>12}", "plans built", snap.misses);
    println!("{:>16} | {:>12}", "plan budget", distinct);
    println!("{:>16} | {:>12.1}", "uncached µs/call", uncached_us);
    println!("{:>16} | {:>12.1}", "cached µs/call", cached_us);
    println!("{:>16} | {:>11.2}x", "warm speedup", speedup);
    println!();
    println!("differential: every cached call matched its fresh per-view plan");

    let reuse_ok = snap.misses <= distinct;
    println!(
        "Shape check [{}]: {} plans built for {} (stylesheet × shape) pairs over {} calls.",
        if reuse_ok { "OK" } else { "REGRESSION" },
        snap.misses,
        distinct,
        snap.lookups()
    );

    if json {
        let body = format!(
            "{{\n  \"bench\": \"reuse\",\n  \"views\": {views},\n  \"rows\": {rows},\n  \"sheets\": {sheets},\n  \"smoke\": {smoke},\n  \"plans_built\": {},\n  \"plan_budget\": {distinct},\n  \"views_served\": {},\n  \"uncached_us_per_call\": {uncached_us:.1},\n  \"cached_us_per_call\": {cached_us:.1},\n  \"warm_speedup\": {speedup:.3},\n  \"cache\": {{\"hits\": {}, \"misses\": {}, \"lookups\": {}, \"hit_rate\": {:.4}}},\n  \"identical_output\": true\n}}\n",
            snap.misses,
            snap.lookups(),
            snap.hits,
            snap.misses,
            snap.lookups(),
            snap.hit_rate()
        );
        write_bench_json("BENCH_reuse.json", &body);
    }

    if reuse_ok {
        0
    } else {
        eprintln!(
            "error: {} plans built exceeds the {} distinct (stylesheet × shape) pairs",
            snap.misses, distinct
        );
        1
    }
}
