//! §7.4 study: "the XSLT performance for different physical XML storage and
//! index models (object relational storage, CLOB or BLOB storage with
//! path/value index, tree storage with path/value index) through XSLT to
//! XQuery rewrite so that we know what type of storage is ideal for what
//! type of XSLT query." The paper leaves this to future work; this report
//! runs the `dbonerow` query under five storage/index models.

use xsltdb::docexec::execute_indexed;
use xsltdb::xqgen::{rewrite, RewriteOptions};
use xsltdb_bench::{median_micros, Workload};
use xsltdb_relstore::{DocStorageModel, ExecStats, XmlDocStore};
use xsltdb_xml::NodeId;
use xsltdb_xquery::{evaluate_query, NodeHandle};
use xsltdb_xslt::{compile_str, transform};
use xsltdb_xsltmark::{db_struct_info, db_xml, dbonerow_stylesheet, existing_id};

fn main() {
    let rows = 4000usize;
    let iters = 9;
    let xml = db_xml(rows, 0xDB);
    let stylesheet = dbonerow_stylesheet(existing_id(rows));
    let sheet = compile_str(&stylesheet).expect("stylesheet compiles");
    let info = db_struct_info();
    let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).expect("rewrites");
    let parsed = std::rc::Rc::new(xsltdb_xml::parse::parse(&xml).expect("doc parses"));

    let mut tree_idx = XmlDocStore::new(DocStorageModel::Tree, true);
    tree_idx.insert(&xml).expect("insert");
    let mut clob_idx = XmlDocStore::new(DocStorageModel::Clob, true);
    clob_idx.insert(&xml).expect("insert");

    // Object-relational storage: the SQL tier over the db view.
    let or = Workload::dbonerow(rows);
    assert_eq!(or.tier(), xsltdb::pipeline::Tier::Sql);

    println!("§7.4 — dbonerow over different physical XML storage models ({rows} rows)");
    println!();
    println!("{:<34} | {:>14}", "storage / index model", "median (µs)");
    println!("{}", "-".repeat(52));

    let t = median_micros(iters, || {
        let _ = or.run_rewrite();
    });
    println!("{:<34} | {:>14.1}", "object-relational (SQL tier)", t);

    let stats = ExecStats::new();
    let t = median_micros(iters, || {
        let _ = execute_indexed(&outcome.query, &tree_idx, 0, &stats).expect("runs");
    });
    println!("{:<34} | {:>14.1}", "tree storage + path/value index", t);

    let t = median_micros(iters, || {
        let _ = execute_indexed(&outcome.query, &clob_idx, 0, &stats).expect("runs");
    });
    println!("{:<34} | {:>14.1}", "CLOB storage + path/value index", t);

    let t = median_micros(iters, || {
        let input = NodeHandle::new(std::rc::Rc::clone(&parsed), NodeId::DOCUMENT);
        let _ = evaluate_query(&outcome.query, Some(input)).expect("runs");
    });
    println!("{:<34} | {:>14.1}", "tree storage, no index (XQuery)", t);

    let t = median_micros(iters, || {
        let _ = transform(&sheet, &parsed).expect("runs");
    });
    println!("{:<34} | {:>14.1}", "DOM, no rewrite (XSLTVM)", t);

    println!();
    println!("Reading: object-relational and tree+index answer with one probe and");
    println!("no materialisation. CLOB+index shows the §7.4 trade-off starkly: the");
    println!("probe itself is cheap but fetching the document re-parses the whole");
    println!("CLOB, swamping the index benefit — a path/value index only pays off");
    println!("when the storage model avoids rematerialisation.");
}
