//! PlanCache report: what prepared-transform caching buys per call.
//!
//! The paper's setting assumes `XMLTransform()` is called repeatedly with
//! the same stylesheet over the same XMLType, so the compile →
//! partial-evaluate → rewrite pipeline is paid once, not per call. This
//! report measures that amortization on `dbonerow` and two Figure 3 cases:
//! the cold (uncached) per-call cost against the warm per-call cost of a
//! loop sharing one cache, with the cache counters printed alongside the
//! execution counters.
//!
//! `--smoke` runs one iteration of everything (CI bit-rot check);
//! `--json` also writes `BENCH_cache.json`, the machine-readable artefact.

use xsltdb_bench::{measure_amortization, write_bench_json, Workload};

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let (cold_iters, repeats, sizes): (usize, usize, &[usize]) = if smoke {
        (1, 3, &[500])
    } else {
        (9, 200, &[1_000, 10_000])
    };

    println!("PlanCache — prepared-transform caching, per-call cost");
    println!("(cold: plan from scratch each call; warm: {repeats} calls sharing one cache)");
    println!();
    println!(
        "{:>10} | {:>6} | {:>12} | {:>12} | {:>7} | {:>20}",
        "case", "rows", "cold (µs)", "warm (µs)", "ratio", "cache h/m/probes"
    );
    println!("{}", "-".repeat(82));

    let mut worst_dbonerow_ratio: f64 = 0.0;
    let mut json_rows: Vec<String> = Vec::new();
    for &rows in sizes {
        for name in ["dbonerow", "chart", "total"] {
            let w = if name == "dbonerow" {
                Workload::dbonerow(rows)
            } else {
                Workload::xsltmark(name, rows)
            };
            let cost = measure_amortization(&w, cold_iters, repeats);
            let (_, exec) = {
                let mut cache = xsltdb::PlanCache::default();
                w.run_cached_call(&mut cache)
            };
            println!(
                "{:>10} | {:>6} | {:>12.1} | {:>12.1} | {:>6.1}% | {:>3} hit {:>3} miss {:>4} probes",
                name,
                rows,
                cost.cold_us,
                cost.warm_us,
                cost.ratio() * 100.0,
                cost.cache.hits,
                cost.cache.misses,
                exec.index_probes,
            );
            if name == "dbonerow" && rows >= 10_000 {
                worst_dbonerow_ratio = worst_dbonerow_ratio.max(cost.ratio());
            }
            json_rows.push(format!(
                r#"{{"case":"{name}","rows":{rows},"cold_us":{:.1},"warm_us":{:.1},"ratio":{:.4},"hits":{},"misses":{},"index_probes":{}}}"#,
                cost.cold_us,
                cost.warm_us,
                cost.ratio(),
                cost.cache.hits,
                cost.cache.misses,
                exec.index_probes,
            ));
        }
    }

    println!();
    println!("Expected shape: repeat calls collapse to execution-only cost — the");
    println!("amortized warm call pays a small fraction of the cold call, which");
    println!("still compiles, partially evaluates and rewrites the stylesheet.");
    if !smoke {
        let verdict = if worst_dbonerow_ratio <= 0.20 { "OK" } else { "REGRESSION" };
        println!(
            "Shape check [{verdict}]: dbonerow@10k amortized repeat-call cost is \
             {:.1}% of cold (target ≤ 20%).",
            worst_dbonerow_ratio * 100.0
        );
    }

    if json {
        let body = format!(
            "{{\n  \"bench\": \"cache\",\n  \"smoke\": {smoke},\n  \"cold_iters\": {cold_iters},\n  \"repeats\": {repeats},\n  \"rows\": [\n    {}\n  ],\n  \"worst_dbonerow_ratio\": {:.4}\n}}\n",
            json_rows.join(",\n    "),
            worst_dbonerow_ratio
        );
        write_bench_json("BENCH_cache.json", &body);
    }
}
