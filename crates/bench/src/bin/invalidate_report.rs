//! Invalidation report: warm transform-result-cache hits versus fresh
//! execution, and exact eviction targeting under DML/DDL.
//!
//! Two verdicts, both CI-gated (exit 1 on failure):
//!
//! * **Latency** — across the XSLTMark suite, the median warm hit through
//!   the front door must cost at most 5% of the median uncached
//!   execution of the same request.
//! * **Targeting** — in a family of same-shaped views over disjoint
//!   tables, DML on one view's row table evicts *exactly one* cached
//!   result, index-add DDL on another evicts *exactly one* more, and DDL
//!   on a table outside every read set evicts *zero* — counts asserted
//!   exactly against the shared cache's eviction counters.
//!
//! `--smoke` shrinks the run (CI bit-rot check); `--json` also writes
//! `BENCH_invalidate.json`.

use std::time::Instant;
use xsltdb::xqgen::RewriteOptions;
use xsltdb_bench::{write_bench_json, CHAOS_STACK};
use xsltdb_relstore::{ColType, Datum, Table};
use xsltdb_serve::{FrontDoor, FrontDoorConfig};
use xsltdb_xsltmark::{all_cases, db_catalog, db_catalog_family};

const HIT_THRESHOLD: f64 = 0.05;

fn median(mut v: Vec<u64>) -> u64 {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

struct LatencyPoint {
    cases: usize,
    uncached_p50_us: u64,
    warm_hit_p50_us: u64,
    ratio: f64,
    holds: bool,
}

/// Median uncached vs. warm-hit latency over the suite, both through the
/// same front-door serving path.
fn latency_point(smoke: bool) -> LatencyPoint {
    // The 5% gate needs the full case mix even in smoke: the suite's
    // cheap prefix alone pushes the uncached median down to the hit
    // path's fixed overhead and the ratio loses its meaning. Smoke
    // shrinks repetitions and data, not coverage.
    let (catalog, view) = db_catalog(if smoke { 32 } else { 48 }, 7);
    let cases = all_cases();
    let take = cases.len();
    let reps = if smoke { 2 } else { 5 };
    let opts = RewriteOptions::default();

    let mut uncached_cfg = FrontDoorConfig::server_default();
    uncached_cfg.result_cache_bytes = 0;
    let uncached_door = FrontDoor::new(uncached_cfg);
    let cached_door = FrontDoor::new(FrontDoorConfig::server_default());

    let mut uncached = Vec::with_capacity(take * reps);
    let mut warm = Vec::with_capacity(take * reps);
    for case in cases.iter().take(take) {
        // Prime both paths: plan cache for the uncached door, plan +
        // result caches for the cached one.
        uncached_door
            .transform(&catalog, &view, &case.stylesheet, &opts)
            .unwrap_or_else(|e| panic!("{}: uncached prime failed: {e}", case.name));
        cached_door
            .transform(&catalog, &view, &case.stylesheet, &opts)
            .unwrap_or_else(|e| panic!("{}: cached prime failed: {e}", case.name));
        for _ in 0..reps {
            let t0 = Instant::now();
            uncached_door
                .transform(&catalog, &view, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: uncached run failed: {e}", case.name));
            uncached.push(t0.elapsed().as_micros() as u64);

            let t1 = Instant::now();
            let out = cached_door
                .transform(&catalog, &view, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: warm run failed: {e}", case.name));
            warm.push(t1.elapsed().as_micros() as u64);
            assert!(out.cached, "{}: warm request missed the result cache", case.name);
        }
    }

    let uncached_p50_us = median(uncached);
    let warm_hit_p50_us = median(warm);
    let ratio = if uncached_p50_us == 0 {
        f64::NAN
    } else {
        warm_hit_p50_us as f64 / uncached_p50_us as f64
    };
    LatencyPoint {
        cases: take,
        uncached_p50_us,
        warm_hit_p50_us,
        ratio,
        holds: ratio <= HIT_THRESHOLD,
    }
}

struct EvictionRow {
    mutation: &'static str,
    expected: u64,
    observed: u64,
    survivors_served: u64,
}

/// Exact eviction targeting: each mutation against a warm 4-view family
/// must cost exactly the predicted number of entries, and every survivor
/// must still serve from the cache afterwards.
fn eviction_rows(smoke: bool) -> Vec<EvictionRow> {
    let views_n = 4;
    let (mut catalog, views) = db_catalog_family(views_n, if smoke { 8 } else { 24 }, 7);
    let case = &all_cases()[0];
    let opts = RewriteOptions::default();
    let door = FrontDoor::new(FrontDoorConfig::server_default());

    let warm_all = |catalog: &xsltdb_relstore::Catalog| {
        for v in &views {
            door.transform(catalog, v, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: warm fill failed: {e}", v.name));
        }
    };
    // Fill one entry per view, then confirm all four serve warm.
    warm_all(&catalog);
    warm_all(&catalog);

    let mut rows = Vec::new();
    let mut last_invalidations = door.stats().result_invalidations;
    let mut probe = |name: &'static str,
                     expected: u64,
                     catalog: &xsltdb_relstore::Catalog,
                     door: &FrontDoor| {
        // Serve every view once: evicted entries re-execute, survivors hit.
        let mut survivors = 0;
        for v in &views {
            let out = door
                .transform(catalog, v, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: post-mutation serve failed: {e}", v.name));
            if out.cached {
                survivors += 1;
            }
        }
        let now = door.stats().result_invalidations;
        rows.push(EvictionRow {
            mutation: name,
            expected,
            observed: now - last_invalidations,
            survivors_served: survivors,
        });
        last_invalidations = now;
    };

    // DML on view 0's row table: exactly its one entry dies.
    catalog
        .table_mut("db_rows_0")
        .expect("table exists")
        .insert(vec![
            Datum::Int(900_001),
            Datum::Text("Churn".into()),
            Datum::Text("Writer".into()),
            Datum::Text("1 Churn St".into()),
            Datum::Text("Churnville".into()),
            Datum::Text("ZZ".into()),
            Datum::Int(99_999),
        ])
        .expect("schema");
    catalog.reindex("db_rows_0").expect("reindex");
    probe("dml db_rows_0", 1, &catalog, &door);

    // Index-add DDL on view 1's row table: exactly its one entry dies.
    catalog.create_index("db_rows_1", "firstname").expect("index DDL");
    probe("create_index db_rows_1", 1, &catalog, &door);

    // DDL on a table outside every read set: nothing dies.
    catalog.add_table(Table::new("invalidate_scratch", &[("tick", ColType::Int)]));
    probe("add_table scratch", 0, &catalog, &door);

    rows
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");

    // Suite cases recurse; run the whole report on a big stack.
    let (latency, evictions) = std::thread::Builder::new()
        .stack_size(CHAOS_STACK)
        .spawn(move || (latency_point(smoke), eviction_rows(smoke)))
        .expect("spawn report thread")
        .join()
        .expect("report thread panicked");

    println!("Transform-result cache — warm hits vs fresh execution, eviction targeting");
    println!();
    println!(
        "latency over {} cases: uncached p50 {} µs, warm hit p50 {} µs, ratio {:.3} (threshold {HIT_THRESHOLD})",
        latency.cases, latency.uncached_p50_us, latency.warm_hit_p50_us, latency.ratio,
    );
    println!();
    println!(
        "{:<24} | {:>8} | {:>8} | {:>9}",
        "mutation", "expected", "observed", "survivors"
    );
    println!("{}", "-".repeat(60));
    let mut targeting_ok = true;
    for r in &evictions {
        targeting_ok &= r.expected == r.observed;
        println!(
            "{:<24} | {:>8} | {:>8} | {:>9}",
            r.mutation, r.expected, r.observed, r.survivors_served
        );
    }

    let ok = latency.holds && targeting_ok;
    println!();
    println!("Expected shape: a warm hit costs ≤ 5% of an uncached execution, and");
    println!("each mutation evicts exactly the read-set-affected entries — no");
    println!("collateral eviction, no survivor re-executed.");
    println!(
        "Shape check [{}]: hit-latency bound and exact eviction targeting held: {ok}.",
        if ok { "OK" } else { "REGRESSION" },
    );

    if json {
        let eviction_rows_json: Vec<String> = evictions
            .iter()
            .map(|r| {
                format!(
                    r#"{{"mutation":"{}","expected_evictions":{},"observed_evictions":{},"survivors_served":{}}}"#,
                    r.mutation, r.expected, r.observed, r.survivors_served
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"bench\": \"invalidate\",\n  \"smoke\": {smoke},\n  \"latency\": {{\"cases\": {}, \"uncached_p50_us\": {}, \"warm_hit_p50_us\": {}, \"ratio\": {:.4}, \"threshold\": {HIT_THRESHOLD}, \"holds\": {}}},\n  \"evictions\": [\n    {}\n  ],\n  \"holds\": {ok}\n}}\n",
            latency.cases,
            latency.uncached_p50_us,
            latency.warm_hit_p50_us,
            latency.ratio,
            latency.holds,
            eviction_rows_json.join(",\n    "),
        );
        write_bench_json("BENCH_invalidate.json", &body);
    }

    if !ok {
        std::process::exit(1);
    }
}
