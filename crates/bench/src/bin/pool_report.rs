//! Buffer-pool report: the paged catalog scaled far beyond its frame
//! budget, gated on residency, identity and probe cost.
//!
//! `dbtail` (project every row) runs over a disk-backed catalog at row
//! counts growing 100× while the buffer pool keeps a **fixed** frame
//! budget. Four verdicts, all CI-gated (exit 1 on failure):
//!
//! * **Bounded residency** — peak resident pool frames never exceed the
//!   budget at any scale: the working set is the pool, not the table.
//! * **Byte identity** — the streamed output of every paged run is
//!   byte-identical to the same plan over a `Storage::Mem` catalog.
//! * **Real eviction** — at the largest scale the pool records evictions
//!   and dirty write-backs: the data demonstrably did not fit.
//! * **Probe cost** — a `dbonerow` point lookup touches at most
//!   [`PROBE_PAGE_CAP`] pool pages at *every* scale: O(page reads) via
//!   the paged B-tree, not O(rows).
//!
//! `--smoke` shrinks the rows (CI bit-rot check) but keeps the budget
//! small enough that eviction still happens; `--json` also writes
//! `BENCH_pool.json`.

use std::time::Instant;
use xsltdb::pipeline::{plan_bound, BoundPlan, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb::Guard;
use xsltdb_bench::write_bench_json;
use xsltdb_relstore::{fnv64, Catalog, ExecStats, PoolSnapshot, XmlView, PAGE_SIZE};
use xsltdb_xsltmark::{
    db_catalog_paged, db_catalog_unindexed, dbonerow_stylesheet, existing_id,
};

/// Pool pages a point lookup may touch: root-to-leaf descent plus the one
/// heap page plus the anchor scan, with slack for a duplicate-spanning
/// leaf step — far below the thousands of heap pages a scan would read.
const PROBE_PAGE_CAP: u64 = 16;

/// The process's resident set in KiB, read from `/proc/self/status`
/// (`VmRSS`). Returns 0 where procfs is unavailable (non-Linux), so the
/// report degrades to "not sampled" instead of failing — the pool-frame
/// gates above are the portable residency evidence; this is the OS-level
/// corroboration.
fn vm_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmRSS:")).and_then(|l| {
                l.split_whitespace().nth(1).and_then(|v| v.parse().ok())
            })
        })
        .unwrap_or(0)
}

/// XSLTMark's `dbtail` shape: project every row, so the output — and an
/// unpaged working set — grows linearly with the data.
fn dbtail_stylesheet() -> String {
    r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
       <xsl:template match="table">
         <out><xsl:apply-templates select="row"/></out>
       </xsl:template>
       <xsl:template match="row">
         <r><xsl:value-of select="lastname"/>, <xsl:value-of select="firstname"/></r>
       </xsl:template>
       </xsl:stylesheet>"#
        .to_string()
}

fn plan(catalog: &Catalog, view: &XmlView, stylesheet: &str) -> BoundPlan {
    plan_bound(catalog, view, stylesheet, &RewriteOptions::default())
        .unwrap_or_else(|e| panic!("planning failed: {e}"))
}

fn stream(bound: &BoundPlan, catalog: &Catalog) -> Vec<u8> {
    let mut out = Vec::new();
    bound
        .execute_to_writer(catalog, &ExecStats::new(), &Guard::unlimited(), &mut out)
        .unwrap_or_else(|e| panic!("execution failed: {e}"));
    out
}

struct ScalePoint {
    rows: usize,
    dbtail_bytes: u64,
    dbtail_fnv64: u64,
    dbtail_us: u64,
    identical: bool,
    pool: PoolSnapshot,
    peak_frames: u64,
    probe_pages: u64,
    probe_identical: bool,
    probe_is_sql: bool,
    /// Process RSS (KiB) sampled right after the paged dbtail stream — the
    /// real-memory reading ROADMAP asked for alongside the frame counters.
    rss_kb: u64,
}

/// One scale point: build the paged catalog and its in-memory reference at
/// `rows`, stream `dbtail` over both, then probe `dbonerow` and count the
/// pool pages the point lookup touched.
fn run_scale(rows: usize, frames: usize, seed: u64) -> ScalePoint {
    let (paged, paged_view) = db_catalog_paged(rows, seed, frames);
    // The reference side skips the B-tree side tables: they do not change
    // the bytes, and at the largest scale they would dominate the memory
    // bill of a run whose point is that the *paged* side stays bounded.
    let (mem, mem_view) = db_catalog_unindexed(rows, seed);

    let tail = dbtail_stylesheet();
    let paged_tail = plan(&paged, &paged_view, &tail);
    let mem_tail = plan(&mem, &mem_view, &tail);

    let before = paged.pool_stats().expect("paged catalog has a pool");
    let t0 = Instant::now();
    let paged_out = stream(&paged_tail, &paged);
    let dbtail_us = t0.elapsed().as_micros() as u64;
    let rss_kb = vm_rss_kb();
    let after = paged.pool_stats().expect("paged catalog has a pool");
    let mem_out = stream(&mem_tail, &mem);

    let onerow = dbonerow_stylesheet(existing_id(rows));
    let paged_probe = plan(&paged, &paged_view, &onerow);
    let probe_is_sql = paged_probe.tier() == Tier::Sql;
    let p0 = paged.pool_stats().expect("paged catalog has a pool");
    let probe_out = stream(&paged_probe, &paged);
    let p1 = paged.pool_stats().expect("paged catalog has a pool");
    let probe_delta = p1.delta_since(&p0);
    let mem_probe_out = stream(&plan(&mem, &mem_view, &onerow), &mem);

    ScalePoint {
        rows,
        dbtail_bytes: paged_out.len() as u64,
        dbtail_fnv64: fnv64(&paged_out),
        dbtail_us,
        identical: paged_out == mem_out,
        pool: after.delta_since(&before),
        peak_frames: after.peak_resident_frames,
        probe_pages: probe_delta.page_reads + probe_delta.pool_hits,
        probe_identical: probe_out == mem_probe_out,
        probe_is_sql,
        rss_kb,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    // One fixed frame budget across every scale: the rows grow 100×, the
    // pool does not.
    let (frames, sizes): (usize, &[usize]) = if smoke {
        (16, &[500, 2_000])
    } else {
        (256, &[10_000, 100_000, 1_000_000])
    };
    let budget_bytes = frames * PAGE_SIZE;

    println!("Buffer pool — dbtail scaled 100× under a fixed {frames}-frame budget ({budget_bytes} B)");
    println!();
    println!(
        "{:>9} | {:>10} | {:>10} | {:>9} | {:>9} | {:>9} | {:>11} | {:>6} | {:>6} | {:>9}",
        "rows", "out bytes", "reads", "hits", "evict", "wrback", "peak/budget", "probe", "ident", "rss (KiB)"
    );
    println!("{}", "-".repeat(114));

    let points: Vec<ScalePoint> =
        sizes.iter().map(|&rows| run_scale(rows, frames, 0xDB)).collect();

    let mut residency_ok = true;
    let mut identity_ok = true;
    let mut probe_ok = true;
    for p in &points {
        residency_ok &= p.peak_frames <= frames as u64;
        identity_ok &= p.identical && p.probe_identical;
        probe_ok &= p.probe_is_sql && p.probe_pages <= PROBE_PAGE_CAP;
        println!(
            "{:>9} | {:>10} | {:>10} | {:>9} | {:>9} | {:>9} | {:>5}/{:<5} | {:>6} | {:>6} | {:>9}",
            p.rows,
            p.dbtail_bytes,
            p.pool.page_reads,
            p.pool.pool_hits,
            p.pool.evictions,
            p.pool.dirty_writebacks,
            p.peak_frames,
            frames,
            p.probe_pages,
            p.identical && p.probe_identical,
            p.rss_kb,
        );
    }
    let eviction_ok = points.last().is_some_and(|p| p.pool.evictions > 0);

    let ok = residency_ok && identity_ok && probe_ok && eviction_ok;
    println!();
    println!("Expected shape: peak resident frames stay within the fixed budget while");
    println!("the rows grow 100×, every paged output is byte-identical to the Mem");
    println!("execution, the largest scale demonstrably evicts, and a dbonerow point");
    println!("lookup touches ≤ {PROBE_PAGE_CAP} pool pages at every scale (O(page reads), not O(rows)).");
    println!(
        "Shape check [{}]: residency {residency_ok}, identity {identity_ok}, \
         eviction-at-max {eviction_ok}, probe {probe_ok}.",
        if ok { "OK" } else { "REGRESSION" },
    );

    if json {
        let rows_json: Vec<String> = points
            .iter()
            .map(|p| {
                format!(
                    r#"{{"rows":{},"dbtail_bytes":{},"dbtail_fnv64":"{:016x}","dbtail_us":{},"page_reads":{},"pool_hits":{},"evictions":{},"dirty_writebacks":{},"peak_resident_frames":{},"probe_pages":{},"identical":{},"rss_kb":{}}}"#,
                    p.rows,
                    p.dbtail_bytes,
                    p.dbtail_fnv64,
                    p.dbtail_us,
                    p.pool.page_reads,
                    p.pool.pool_hits,
                    p.pool.evictions,
                    p.pool.dirty_writebacks,
                    p.peak_frames,
                    p.probe_pages,
                    p.identical && p.probe_identical,
                    p.rss_kb,
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"bench\": \"pool\",\n  \"smoke\": {smoke},\n  \"frame_budget\": {frames},\n  \"budget_bytes\": {budget_bytes},\n  \"page_size\": {PAGE_SIZE},\n  \"probe_page_cap\": {PROBE_PAGE_CAP},\n  \"scales\": [\n    {}\n  ],\n  \"holds\": {ok}\n}}\n",
            rows_json.join(",\n    "),
        );
        write_bench_json("BENCH_pool.json", &body);
    }

    if !ok {
        std::process::exit(1);
    }
}
