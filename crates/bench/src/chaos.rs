//! Chaos harness: the 40-case XSLTMark suite replayed at K clients
//! through one [`FrontDoor`] while deterministic faults fire at every
//! lattice edge.
//!
//! The harness proves the serving front door's contract under fire:
//!
//! * **Byte identity** — every *admitted and served* request's bytes equal
//!   the fresh single-threaded result for its case, no matter which tier
//!   served it, how many attempts it took, or which breakers were open.
//! * **Typed shedding** — a request that gets no result gets a typed
//!   [`Rejected`](xsltdb::admission::Rejected) or a typed pipeline error;
//!   never a hang, never partial bytes.
//! * **No forbidden retries** — guard-tripped requests finish in exactly
//!   one attempt.
//! * **Ledger conservation** — after the fleet quiesces, the global
//!   ledger holds zero reservations.
//!
//! Fault selection is a pure function of `(seed, client, request)` via
//! xorshift, so a chaos run replays identically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use xsltdb::pipeline::plan_bound;
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{FaultKind, FaultPoint, Guard, Limits};
use xsltdb_relstore::{Catalog, ExecStats, XmlView};
use xsltdb_serve::{FrontDoor, FrontDoorConfig, FrontDoorStats, ServeError};
use xsltdb_xsltmark::{all_cases, db_catalog};

/// Stack for suite work: the recursive cases blow the 2 MiB default.
pub const CHAOS_STACK: usize = 64 * 1024 * 1024;

/// What kind of chaos one request gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chaos {
    /// Run clean.
    None,
    /// One lattice edge dies (error or panic) on the first attempt; the
    /// same attempt degrades to the next tier.
    OneEdge(FaultPoint, FaultKind),
    /// Every lattice edge dies on the first attempt: the attempt exhausts
    /// the lattice and the retry layer must recover on attempt two.
    AllEdges(FaultKind),
    /// The request runs with a absurdly small output budget: it must trip
    /// its guard, classify terminal, and never be retried.
    TripBudget,
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

const POINTS: [FaultPoint; 4] = [
    FaultPoint::SqlExec,
    FaultPoint::XQueryExec,
    FaultPoint::VmExec,
    FaultPoint::Materialize,
];

fn pick_chaos(seed: u64, client: usize, request: usize) -> Chaos {
    let r = xorshift(seed ^ ((client as u64) << 32) ^ request as u64 ^ 0xC4A0_5EED);
    match r % 16 {
        0..=9 => Chaos::None,
        10 | 11 => {
            let point = POINTS[(r >> 8) as usize % POINTS.len()];
            let kind =
                if (r >> 16).is_multiple_of(2) { FaultKind::Error } else { FaultKind::Panic };
            Chaos::OneEdge(point, kind)
        }
        12 => Chaos::AllEdges(FaultKind::Error),
        13 => Chaos::AllEdges(FaultKind::Panic),
        _ => Chaos::TripBudget,
    }
}

/// Knobs for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client fires (cases cycle round-robin per client).
    pub requests_per_client: usize,
    /// Rows in the backing `db` table.
    pub rows: usize,
    /// Master seed for data generation and fault scheduling.
    pub seed: u64,
    /// When false, every request runs clean (pure load test).
    pub inject_faults: bool,
    /// Front-door tuning for the run.
    pub door: FrontDoorConfig,
}

impl ChaosConfig {
    /// A run sized for CI: faults everywhere, capacity tight enough that
    /// shedding happens, deadline generous enough that most requests make
    /// it through.
    pub fn default_chaos(clients: usize) -> ChaosConfig {
        ChaosConfig {
            clients,
            requests_per_client: 80,
            rows: 48,
            seed: 0xC4A0_5EED,
            inject_faults: true,
            door: FrontDoorConfig::server_default(),
        }
    }
}

/// Aggregate outcome of a chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// Requests fired (`clients * requests_per_client`).
    pub total: u64,
    /// Admitted and served with full bytes.
    pub served: u64,
    /// Shed at admission with a typed rejection.
    pub shed: u64,
    /// Admitted but errored (guard trips, exhausted retries).
    pub failed: u64,
    /// Served requests whose bytes differ from the fresh single-threaded
    /// result. **Must be zero.**
    pub mismatches: u64,
    /// Sample diagnostic for the first mismatch, when any.
    pub first_mismatch: Option<String>,
    /// Attempts that started after a previous attempt of the same request
    /// had tripped its guard. **Must be zero** — trips are terminal, so
    /// the retry layer must never follow one with another attempt.
    pub guard_trip_retries: u64,
    /// Budget-tripped requests that correctly surfaced as guard trips.
    pub guard_trips: u64,
    /// Wall-clock latency of every served request, microseconds.
    pub latencies_us: Vec<u64>,
    /// Front-door counters at the end of the run.
    pub stats: FrontDoorStats,
    /// Ledger held zero reservations after the fleet quiesced.
    pub quiesced: bool,
    /// Wall-clock of the whole run, microseconds.
    pub wall_us: u64,
}

impl ChaosReport {
    /// Fraction of requests shed at the door.
    pub fn shed_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.shed as f64 / self.total as f64
        }
    }

    /// The invariants the chaos suite (and CI) hold this run to.
    pub fn holds(&self) -> bool {
        self.mismatches == 0
            && self.guard_trip_retries == 0
            && self.quiesced
            && self.served + self.shed + self.failed == self.total
    }
}

/// Fresh single-threaded reference output for every case: one plan, one
/// unlimited guard, no cache, no concurrency.
pub fn reference_outputs(catalog: &Catalog, view: &XmlView) -> Vec<Vec<u8>> {
    let opts = RewriteOptions::default();
    all_cases()
        .iter()
        .map(|case| {
            let bound = plan_bound(catalog, view, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: plan failed: {e}", case.name));
            let mut out = Vec::new();
            bound
                .execute_to_writer(catalog, &ExecStats::new(), &Guard::unlimited(), &mut out)
                .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", case.name));
            out
        })
        .collect()
}

/// Run the chaos schedule and aggregate the verdict.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let started = Instant::now();
    let (catalog, view) = db_catalog(cfg.rows, cfg.seed);
    let cases = all_cases();
    // The reference pass needs suite-sized stacks too.
    let expected = {
        let catalog = &catalog;
        let view = &view;
        std::thread::scope(|s| {
            std::thread::Builder::new()
                .stack_size(CHAOS_STACK)
                .spawn_scoped(s, move || reference_outputs(catalog, view))
                .expect("spawn reference pass")
                .join()
                .expect("reference pass panicked")
        })
    };

    let door = FrontDoor::new(cfg.door);
    let served = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let guard_trip_retries = AtomicU64::new(0);
    let guard_trips = AtomicU64::new(0);
    let first_mismatch: Mutex<Option<String>> = Mutex::new(None);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for client in 0..cfg.clients {
            let door = &door;
            let catalog = &catalog;
            let view = &view;
            let cases = &cases;
            let expected = &expected;
            let served = &served;
            let shed = &shed;
            let failed = &failed;
            let mismatches = &mismatches;
            let guard_trip_retries = &guard_trip_retries;
            let guard_trips = &guard_trips;
            let first_mismatch = &first_mismatch;
            let latencies = &latencies;
            let cfg = *cfg;
            std::thread::Builder::new()
                .stack_size(CHAOS_STACK)
                .spawn_scoped(s, move || {
                    let opts = RewriteOptions::default();
                    let mut local_lat = Vec::with_capacity(cfg.requests_per_client);
                    for request in 0..cfg.requests_per_client {
                        let case_idx =
                            (client * cfg.requests_per_client + request) % cases.len();
                        let case = &cases[case_idx];
                        let chaos = if cfg.inject_faults {
                            pick_chaos(cfg.seed, client, request)
                        } else {
                            Chaos::None
                        };
                        let t0 = Instant::now();
                        // The previous attempt's guard, kept so a *new*
                        // attempt starting after a trip — the forbidden
                        // retry — is caught at the moment it happens, not
                        // inferred from the final error.
                        let prev_guard: Mutex<Option<Guard>> = Mutex::new(None);
                        let result = door.transform_with(
                            catalog,
                            view,
                            &case.stylesheet,
                            &opts,
                            &|limits, attempt| {
                                let mut prev = prev_guard
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                if attempt > 0
                                    && prev.as_ref().is_some_and(|g| g.trip().is_some())
                                {
                                    guard_trip_retries.fetch_add(1, Ordering::Relaxed);
                                }
                                let g = match chaos {
                                    Chaos::TripBudget => {
                                        Guard::new(Limits::UNLIMITED.with_max_output_bytes(2))
                                    }
                                    Chaos::OneEdge(point, kind) if attempt == 0 => {
                                        Guard::new(limits).with_fault(point, kind)
                                    }
                                    Chaos::AllEdges(kind) if attempt == 0 => POINTS
                                        .iter()
                                        .fold(Guard::new(limits), |g, &p| g.with_fault(p, kind)),
                                    _ => Guard::new(limits),
                                };
                                *prev = Some(g.clone());
                                g
                            },
                        );
                        match result {
                            Ok(out) => {
                                local_lat.push(t0.elapsed().as_micros() as u64);
                                if chaos == Chaos::TripBudget {
                                    // A 2-byte budget must trip on every
                                    // case in the suite; success means the
                                    // guard was ignored.
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                    let mut slot = first_mismatch
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    slot.get_or_insert_with(|| {
                                        format!(
                                            "{}: budget-tripped request returned Ok",
                                            case.name
                                        )
                                    });
                                } else if out.bytes != expected[case_idx] {
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                    let mut slot = first_mismatch
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    slot.get_or_insert_with(|| {
                                        format!(
                                            "{}: served {}B != reference {}B \
                                             (tier {:?}, attempts {}, chaos {:?})",
                                            case.name,
                                            out.bytes.len(),
                                            expected[case_idx].len(),
                                            out.tier,
                                            out.attempts,
                                            chaos,
                                        )
                                    });
                                }
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Rejected(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Pipeline { error, .. }) => {
                                if error.is_guard_trip() {
                                    guard_trips.fetch_add(1, Ordering::Relaxed);
                                }
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    latencies
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local_lat);
                })
                .expect("spawn chaos client");
        }
    });

    let quiesced = door.is_quiesced();
    ChaosReport {
        total: (cfg.clients * cfg.requests_per_client) as u64,
        served: served.into_inner(),
        shed: shed.into_inner(),
        failed: failed.into_inner(),
        mismatches: mismatches.into_inner(),
        first_mismatch: first_mismatch.into_inner().unwrap_or_else(|e| e.into_inner()),
        guard_trip_retries: guard_trip_retries.into_inner(),
        guard_trips: guard_trips.into_inner(),
        latencies_us: latencies.into_inner().unwrap_or_else(|e| e.into_inner()),
        stats: door.stats(),
        quiesced,
        wall_us: started.elapsed().as_micros() as u64,
    }
}
