//! Chaos harness: the 40-case XSLTMark suite replayed at K clients
//! through one [`FrontDoor`] while deterministic faults fire at every
//! lattice edge.
//!
//! The harness proves the serving front door's contract under fire:
//!
//! * **Byte identity** — every *admitted and served* request's bytes equal
//!   the fresh single-threaded result for its case, no matter which tier
//!   served it, how many attempts it took, or which breakers were open.
//! * **Typed shedding** — a request that gets no result gets a typed
//!   [`Rejected`](xsltdb::admission::Rejected) or a typed pipeline error;
//!   never a hang, never partial bytes.
//! * **No forbidden retries** — guard-tripped requests finish in exactly
//!   one attempt.
//! * **Ledger conservation** — after the fleet quiesces, the global
//!   ledger holds zero reservations.
//! * **Cache freshness under churn** — with `churn_writers > 0`, writer
//!   threads interleave DML (+`reindex`) on the read-set table and DDL on
//!   an unrelated scratch table with the reader fleet. Every served
//!   request is then compared against a *fresh uncached* execution under
//!   the same catalog read lock; a byte mismatch on a result served from
//!   the transform-result cache is a **stale serve** and must be zero.
//! * **Paged storage transparency** — with `pool_frames > 0`, the serving
//!   catalog lives on disk pages behind a buffer pool sized small enough
//!   that the suite forces eviction mid-run, while a shadow `Storage::Mem`
//!   catalog receives every churn mutation in lockstep under the same
//!   write lock. The reference side of every byte comparison runs against
//!   the shadow, so "admitted bytes identical to the in-memory execution"
//!   is checked literally, page faults, evictions and all.
//!
//! Fault selection is a pure function of `(seed, client, request)` via
//! xorshift, so a chaos run replays identically.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError, RwLock};
use std::time::{Duration, Instant};
use xsltdb::pipeline::{plan_bound, Tier};
use xsltdb::xqgen::RewriteOptions;
use xsltdb::{FaultKind, FaultPoint, Guard, Limits};
use xsltdb_relstore::{Catalog, ColType, Datum, ExecStats, PoolSnapshot, Table, XmlView};
use xsltdb_serve::{FrontDoor, FrontDoorConfig, FrontDoorStats, ServeError};
use xsltdb_xsltmark::{all_cases, db_catalog, db_catalog_paged};

/// Stack for suite work: the recursive cases blow the 2 MiB default.
pub const CHAOS_STACK: usize = 64 * 1024 * 1024;

/// What kind of chaos one request gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chaos {
    /// Run clean.
    None,
    /// One lattice edge dies (error or panic) on the first attempt; the
    /// same attempt degrades to the next tier.
    OneEdge(FaultPoint, FaultKind),
    /// Every lattice edge dies on the first attempt: the attempt exhausts
    /// the lattice and the retry layer must recover on attempt two.
    AllEdges(FaultKind),
    /// The request runs with a absurdly small output budget: it must trip
    /// its guard, classify terminal, and never be retried.
    TripBudget,
}

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

const POINTS: [FaultPoint; 4] = [
    FaultPoint::SqlExec,
    FaultPoint::XQueryExec,
    FaultPoint::VmExec,
    FaultPoint::Materialize,
];

fn pick_chaos(seed: u64, client: usize, request: usize) -> Chaos {
    let r = xorshift(seed ^ ((client as u64) << 32) ^ request as u64 ^ 0xC4A0_5EED);
    match r % 16 {
        0..=9 => Chaos::None,
        10 | 11 => {
            let point = POINTS[(r >> 8) as usize % POINTS.len()];
            let kind =
                if (r >> 16).is_multiple_of(2) { FaultKind::Error } else { FaultKind::Panic };
            Chaos::OneEdge(point, kind)
        }
        12 => Chaos::AllEdges(FaultKind::Error),
        13 => Chaos::AllEdges(FaultKind::Panic),
        _ => Chaos::TripBudget,
    }
}

/// Knobs for one chaos run.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client fires (cases cycle round-robin per client).
    pub requests_per_client: usize,
    /// Rows in the backing `db` table.
    pub rows: usize,
    /// Master seed for data generation and fault scheduling.
    pub seed: u64,
    /// When false, every request runs clean (pure load test).
    pub inject_faults: bool,
    /// Writer threads mutating the catalog concurrently with the readers:
    /// DML + `reindex` on the read-set table, DDL on an unrelated scratch
    /// table. With churn on, every served request is checked against a
    /// fresh uncached execution under the same catalog read lock.
    pub churn_writers: usize,
    /// Frame budget of the serving catalog's buffer pool. `0` keeps the
    /// catalog in memory (`Storage::Mem`); any other value re-backs it by
    /// disk pages and keeps a shadow in-memory catalog, mutated in
    /// lockstep by the churn writers, as the reference side of every byte
    /// comparison.
    pub pool_frames: usize,
    /// Kill the SQL tier on every request's first attempt (alternating
    /// error and panic), so SQL-tier plans degrade to the streamed XQuery
    /// tier mid-request. Unlike `inject_faults` this is not randomised: it
    /// drives the *whole* SQL-planned share of the suite through the
    /// sink-mode spill path under concurrency.
    pub degrade_sql: bool,
    /// Front-door tuning for the run.
    pub door: FrontDoorConfig,
}

impl ChaosConfig {
    /// A run sized for CI: faults everywhere, capacity tight enough that
    /// shedding happens, deadline generous enough that most requests make
    /// it through.
    pub fn default_chaos(clients: usize) -> ChaosConfig {
        ChaosConfig {
            clients,
            requests_per_client: 80,
            rows: 48,
            seed: 0xC4A0_5EED,
            inject_faults: true,
            churn_writers: 0,
            pool_frames: 0,
            degrade_sql: false,
            door: FrontDoorConfig::server_default(),
        }
    }

    /// The SQL-degrade run: no random chaos, but every request's first
    /// attempt loses its SQL tier, so all SQL-planned cases are served by
    /// streamed sink-mode XQuery evaluation — spills, replays and all —
    /// while byte identity and ledger conservation stay asserted.
    pub fn sql_degrade_chaos(clients: usize) -> ChaosConfig {
        ChaosConfig {
            inject_faults: false,
            degrade_sql: true,
            ..ChaosConfig::default_chaos(clients)
        }
    }

    /// The churn differential run: readers race DML/DDL writers and every
    /// served byte is re-derived fresh under the same lock. Smaller per
    /// client because each served request pays a reference execution.
    pub fn churn_chaos(clients: usize) -> ChaosConfig {
        ChaosConfig {
            requests_per_client: 40,
            churn_writers: 2,
            ..ChaosConfig::default_chaos(clients)
        }
    }

    /// The paged-storage run: the churn schedule, but the serving catalog
    /// is disk-backed behind a buffer pool far smaller than its working
    /// set (6 frames against a multi-page table plus three B-tree
    /// indexes), so the suite evicts and re-reads pages mid-flight while
    /// every served byte is differenced against the shadow in-memory
    /// catalog.
    pub fn paged_chaos(clients: usize) -> ChaosConfig {
        ChaosConfig { pool_frames: 6, ..ChaosConfig::churn_chaos(clients) }
    }
}

/// Aggregate outcome of a chaos run.
#[derive(Debug)]
pub struct ChaosReport {
    /// Requests fired (`clients * requests_per_client`).
    pub total: u64,
    /// Admitted and served with full bytes.
    pub served: u64,
    /// Shed at admission with a typed rejection.
    pub shed: u64,
    /// Admitted but errored (guard trips, exhausted retries).
    pub failed: u64,
    /// Served requests whose bytes differ from the fresh single-threaded
    /// result. **Must be zero.**
    pub mismatches: u64,
    /// Served requests whose bytes came from the XQuery tier — in a
    /// `degrade_sql` run this counts the requests that actually exercised
    /// the streamed sink-mode path after losing their SQL tier.
    pub served_xquery: u64,
    /// Sample diagnostic for the first mismatch, when any.
    pub first_mismatch: Option<String>,
    /// Attempts that started after a previous attempt of the same request
    /// had tripped its guard. **Must be zero** — trips are terminal, so
    /// the retry layer must never follow one with another attempt.
    pub guard_trip_retries: u64,
    /// Budget-tripped requests that correctly surfaced as guard trips.
    pub guard_trips: u64,
    /// Served-from-cache responses whose bytes differ from a fresh
    /// execution under the same catalog lock. **Must be zero** — one stale
    /// serve means invalidation has a hole.
    pub stale_serves: u64,
    /// Catalog mutations the churn writers landed (0 without churn).
    pub writer_mutations: u64,
    /// Wall-clock latency of every served request, microseconds.
    pub latencies_us: Vec<u64>,
    /// Front-door counters at the end of the run.
    pub stats: FrontDoorStats,
    /// Buffer-pool counters at the end of the run, when the serving
    /// catalog was paged (`pool_frames > 0`). A paged run that never
    /// evicted did not actually stress the pool.
    pub pool: Option<PoolSnapshot>,
    /// Everything at rest after the fleet quiesced: the ledger held zero
    /// reservations and (in a paged run) the buffer pool held zero pinned
    /// frames.
    pub quiesced: bool,
    /// Wall-clock of the whole run, microseconds.
    pub wall_us: u64,
}

impl ChaosReport {
    /// Fraction of requests shed at the door.
    pub fn shed_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.shed as f64 / self.total as f64
        }
    }

    /// Fraction of lookups the transform-result cache answered.
    pub fn result_hit_rate(&self) -> f64 {
        let lookups = self.stats.result_hits + self.stats.result_misses;
        if lookups == 0 {
            0.0
        } else {
            self.stats.result_hits as f64 / lookups as f64
        }
    }

    /// The invariants the chaos suite (and CI) hold this run to.
    pub fn holds(&self) -> bool {
        self.mismatches == 0
            && self.stale_serves == 0
            && self.guard_trip_retries == 0
            && self.quiesced
            && self.served + self.shed + self.failed == self.total
    }
}

/// Fresh single-threaded reference output for every case: one plan, one
/// unlimited guard, no cache, no concurrency.
pub fn reference_outputs(catalog: &Catalog, view: &XmlView) -> Vec<Vec<u8>> {
    let opts = RewriteOptions::default();
    all_cases()
        .iter()
        .map(|case| {
            let bound = plan_bound(catalog, view, &case.stylesheet, &opts)
                .unwrap_or_else(|e| panic!("{}: plan failed: {e}", case.name));
            let mut out = Vec::new();
            bound
                .execute_to_writer(catalog, &ExecStats::new(), &Guard::unlimited(), &mut out)
                .unwrap_or_else(|e| panic!("{}: reference run failed: {e}", case.name));
            out
        })
        .collect()
}

/// Fresh uncached output for one stylesheet against the catalog as it is
/// *right now* — the churn differential's reference side, run under the
/// same read lock as the served request it gates. Materialise-then-
/// serialize rather than `execute_to_writer`: the reference must be
/// maximally robust, and on the streaming path a tier that dies after its
/// first byte is terminal (dirtiness rule), whereas the materialising
/// lattice degrades cleanly — e.g. a recursion-shaped case whose XQuery
/// tier trips the depth limit still produces VM bytes here, exactly as a
/// breaker-routed serve does.
fn fresh_output(catalog: &Catalog, view: &XmlView, stylesheet: &str, name: &str) -> Vec<u8> {
    let opts = RewriteOptions::default();
    let bound = plan_bound(catalog, view, stylesheet, &opts)
        .unwrap_or_else(|e| panic!("{name}: differential plan failed: {e}"));
    let docs = bound
        .execute(catalog, &ExecStats::new())
        .unwrap_or_else(|e| panic!("{name}: differential run failed: {e}"));
    docs.iter().map(xsltdb_xml::to_string).collect::<String>().into_bytes()
}

/// The unrelated table the churn writers churn DDL/DML through: it is in
/// no request's read set, so mutating it must never cost a cached result.
fn scratch_table(tick: u64) -> Table {
    let mut t = Table::new("chaos_scratch", &[("tick", ColType::Int)]);
    t.insert(vec![Datum::Int(tick as i64)]).expect("scratch schema");
    t
}

/// Ticks during which a churn writer may grow `db_rows`. The
/// recursion-shaped suite cases (`backwards`, `reverser`, …) recurse once
/// per row, so unbounded growth would push them past the engine's 96-deep
/// recursion limit mid-run — and on the streaming XQuery tier a depth trip
/// lands *after* bytes reached the writer, which is terminal by the
/// dirtiness rule. Capping growth at 8 inserts per writer (48 seed rows +
/// 2 writers × 8 ≤ 64 total) keeps every case inside the limit; after the
/// cap, writers keep churning scratch DDL every tick, so invalidation
/// pressure never stops.
const GROWTH_TICKS: u64 = 8;

/// One churn step, applied identically to the serving catalog and (in a
/// paged run) its in-memory shadow: the two must stay byte-equivalent, so
/// the mutation is a pure function of `(writer, tick, r)`.
fn apply_churn(cat: &mut Catalog, writer: usize, tick: u64, r: u64) {
    if r.is_multiple_of(4) || tick >= GROWTH_TICKS {
        // Unrelated DDL + DML: replacing the scratch table bumps the
        // global DDL clock and the scratch data generation — neither is
        // in any request's read set, so cached results must survive this.
        cat.add_table(scratch_table(tick));
    } else {
        // Read-set DML: new row, then reindex so the index-backed SQL
        // tier and the heap tiers see the same data.
        let id = 1_000_000 + (writer as i64) * 100_000 + tick as i64;
        cat.table_mut("db_rows")
            .expect("db_rows exists")
            .insert(vec![
                Datum::Int(id),
                Datum::Text(format!("Churn{writer}")),
                Datum::Text("Writer".into()),
                Datum::Text(format!("{tick} Churn St")),
                Datum::Text("Churnville".into()),
                Datum::Text("ZZ".into()),
                Datum::Int(99_000 + (tick % 999) as i64),
            ])
            .expect("db_rows schema");
        cat.reindex("db_rows").expect("reindex db_rows");
    }
}

/// Run the chaos schedule and aggregate the verdict.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    let started = Instant::now();
    let (catalog, view) = if cfg.pool_frames > 0 {
        db_catalog_paged(cfg.rows, cfg.seed, cfg.pool_frames)
    } else {
        db_catalog(cfg.rows, cfg.seed)
    };
    // The paged run's reference side: a Storage::Mem catalog with the same
    // `(rows, seed)`, mutated in lockstep by the churn writers. Every byte
    // comparison below runs against it, so a paged serve is literally
    // checked against the in-memory execution.
    let shadow = (cfg.pool_frames > 0).then(|| db_catalog(cfg.rows, cfg.seed).0);
    let cases = all_cases();
    // The reference pass needs suite-sized stacks too. Under churn the
    // static reference is useless (the data moves), so each served request
    // pays a fresh differential instead.
    let expected = if cfg.churn_writers > 0 {
        Vec::new()
    } else {
        let reference_catalog = shadow.as_ref().unwrap_or(&catalog);
        let view = &view;
        std::thread::scope(|s| {
            std::thread::Builder::new()
                .stack_size(CHAOS_STACK)
                .spawn_scoped(s, move || reference_outputs(reference_catalog, view))
                .expect("spawn reference pass")
                .join()
                .expect("reference pass panicked")
        })
    };

    let door = FrontDoor::new(cfg.door);
    let store = RwLock::new((catalog, shadow));
    let served = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let mismatches = AtomicU64::new(0);
    let served_xquery = AtomicU64::new(0);
    let guard_trip_retries = AtomicU64::new(0);
    let guard_trips = AtomicU64::new(0);
    let stale_serves = AtomicU64::new(0);
    let writer_mutations = AtomicU64::new(0);
    let readers_done = AtomicUsize::new(0);
    let first_mismatch: Mutex<Option<String>> = Mutex::new(None);
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        for writer in 0..cfg.churn_writers {
            let store = &store;
            let readers_done = &readers_done;
            let writer_mutations = &writer_mutations;
            let cfg = *cfg;
            std::thread::Builder::new()
                .spawn_scoped(s, move || {
                    let mut tick = 0u64;
                    while readers_done.load(Ordering::Acquire) < cfg.clients {
                        let r = xorshift(
                            cfg.seed ^ ((writer as u64) << 48) ^ tick ^ 0xD31A_B017,
                        );
                        {
                            let mut locked = store
                                .write()
                                .unwrap_or_else(PoisonError::into_inner);
                            let (cat, shadow) = &mut *locked;
                            apply_churn(cat, writer, tick, r);
                            // Same mutation, same order, same lock: the
                            // shadow stays a byte-equivalent Mem twin of
                            // the paged serving catalog.
                            if let Some(twin) = shadow.as_mut() {
                                apply_churn(twin, writer, tick, r);
                            }
                        }
                        writer_mutations.fetch_add(1, Ordering::Relaxed);
                        tick += 1;
                        // Let readers in between writes: churn, not a
                        // write-lock convoy.
                        std::thread::sleep(Duration::from_micros(250));
                    }
                })
                .expect("spawn churn writer");
        }
        for client in 0..cfg.clients {
            let door = &door;
            let store = &store;
            let view = &view;
            let stale_serves = &stale_serves;
            let readers_done = &readers_done;
            let cases = &cases;
            let expected = &expected;
            let served = &served;
            let shed = &shed;
            let failed = &failed;
            let mismatches = &mismatches;
            let served_xquery = &served_xquery;
            let guard_trip_retries = &guard_trip_retries;
            let guard_trips = &guard_trips;
            let first_mismatch = &first_mismatch;
            let latencies = &latencies;
            let cfg = *cfg;
            std::thread::Builder::new()
                .stack_size(CHAOS_STACK)
                .spawn_scoped(s, move || {
                    // Counted on drop (not at fall-through) so the churn
                    // writers stop even if this reader panics.
                    struct DoneTick<'a>(&'a AtomicUsize);
                    impl Drop for DoneTick<'_> {
                        fn drop(&mut self) {
                            self.0.fetch_add(1, Ordering::Release);
                        }
                    }
                    let _done = DoneTick(readers_done);
                    let opts = RewriteOptions::default();
                    let mut local_lat = Vec::with_capacity(cfg.requests_per_client);
                    for request in 0..cfg.requests_per_client {
                        let case_idx =
                            (client * cfg.requests_per_client + request) % cases.len();
                        let case = &cases[case_idx];
                        let chaos = if cfg.inject_faults {
                            pick_chaos(cfg.seed, client, request)
                        } else {
                            Chaos::None
                        };
                        let t0 = Instant::now();
                        // The catalog read lock pins the data for the whole
                        // request: the served bytes and (under churn) the
                        // fresh differential below see the same state.
                        let locked = store.read().unwrap_or_else(PoisonError::into_inner);
                        let (cat, shadow) = &*locked;
                        // The previous attempt's guard, kept so a *new*
                        // attempt starting after a trip — the forbidden
                        // retry — is caught at the moment it happens, not
                        // inferred from the final error.
                        let prev_guard: Mutex<Option<Guard>> = Mutex::new(None);
                        let result = door.transform_with(
                            cat,
                            view,
                            &case.stylesheet,
                            &opts,
                            &|limits, attempt| {
                                let mut prev = prev_guard
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                                if attempt > 0
                                    && prev.as_ref().is_some_and(|g| g.trip().is_some())
                                {
                                    guard_trip_retries.fetch_add(1, Ordering::Relaxed);
                                }
                                let g = match chaos {
                                    Chaos::TripBudget => {
                                        Guard::new(Limits::UNLIMITED.with_max_output_bytes(2))
                                    }
                                    Chaos::OneEdge(point, kind) if attempt == 0 => {
                                        Guard::new(limits).with_fault(point, kind)
                                    }
                                    Chaos::AllEdges(kind) if attempt == 0 => POINTS
                                        .iter()
                                        .fold(Guard::new(limits), |g, &p| g.with_fault(p, kind)),
                                    _ => Guard::new(limits),
                                };
                                // The degrade schedule stacks on top: the
                                // first attempt always loses its SQL tier,
                                // alternating a clean error and a contained
                                // panic so both exits of the spill path are
                                // exercised.
                                let g = if cfg.degrade_sql && attempt == 0 {
                                    let kind = if request.is_multiple_of(2) {
                                        FaultKind::Error
                                    } else {
                                        FaultKind::Panic
                                    };
                                    g.with_fault(FaultPoint::SqlExec, kind)
                                } else {
                                    g
                                };
                                *prev = Some(g.clone());
                                g
                            },
                        );
                        match result {
                            Ok(out) => {
                                local_lat.push(t0.elapsed().as_micros() as u64);
                                if chaos == Chaos::TripBudget {
                                    // A 2-byte budget must trip on every
                                    // case in the suite; success means the
                                    // guard was ignored.
                                    mismatches.fetch_add(1, Ordering::Relaxed);
                                    let mut slot = first_mismatch
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    slot.get_or_insert_with(|| {
                                        format!(
                                            "{}: budget-tripped request returned Ok",
                                            case.name
                                        )
                                    });
                                } else {
                                    // Under churn the reference is derived
                                    // fresh under the read lock we still
                                    // hold — against the Mem shadow in a
                                    // paged run; static runs use the
                                    // precomputed single-threaded outputs.
                                    let differential;
                                    let reference: &[u8] = if cfg.churn_writers > 0 {
                                        differential = fresh_output(
                                            shadow.as_ref().unwrap_or(cat),
                                            view,
                                            &case.stylesheet,
                                            case.name,
                                        );
                                        &differential
                                    } else {
                                        &expected[case_idx]
                                    };
                                    if out.bytes != reference {
                                        mismatches.fetch_add(1, Ordering::Relaxed);
                                        if out.cached {
                                            stale_serves.fetch_add(1, Ordering::Relaxed);
                                        }
                                        let mut slot = first_mismatch
                                            .lock()
                                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                                        slot.get_or_insert_with(|| {
                                            format!(
                                                "{}: served {}B != reference {}B \
                                                 (tier {:?}, attempts {}, cached {}, chaos {:?})",
                                                case.name,
                                                out.bytes.len(),
                                                reference.len(),
                                                out.tier,
                                                out.attempts,
                                                out.cached,
                                                chaos,
                                            )
                                        });
                                    }
                                }
                                if out.tier == Tier::XQuery {
                                    served_xquery.fetch_add(1, Ordering::Relaxed);
                                }
                                served.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Rejected(_)) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ServeError::Pipeline { error, .. }) => {
                                if error.is_guard_trip() {
                                    guard_trips.fetch_add(1, Ordering::Relaxed);
                                }
                                failed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    latencies
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .extend(local_lat);
                })
                .expect("spawn chaos client");
        }
    });

    let (catalog, _shadow) = store.into_inner().unwrap_or_else(PoisonError::into_inner);
    let pool = catalog.pool_stats();
    let pool_pins_drained = catalog.pool().is_none_or(|p| p.pinned_frames() == 0);
    let quiesced = door.is_quiesced() && pool_pins_drained;
    ChaosReport {
        total: (cfg.clients * cfg.requests_per_client) as u64,
        served: served.into_inner(),
        shed: shed.into_inner(),
        failed: failed.into_inner(),
        mismatches: mismatches.into_inner(),
        served_xquery: served_xquery.into_inner(),
        first_mismatch: first_mismatch.into_inner().unwrap_or_else(|e| e.into_inner()),
        guard_trip_retries: guard_trip_retries.into_inner(),
        guard_trips: guard_trips.into_inner(),
        stale_serves: stale_serves.into_inner(),
        writer_mutations: writer_mutations.into_inner(),
        latencies_us: latencies.into_inner().unwrap_or_else(|e| e.into_inner()),
        stats: door.stats(),
        pool,
        quiesced,
        wall_us: started.elapsed().as_micros() as u64,
    }
}
