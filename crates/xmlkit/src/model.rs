//! Arena-based XML document model.
//!
//! Documents are built append-only (see [`crate::builder::TreeBuilder`]) and
//! are immutable afterwards, so `NodeId` order *is* document order and
//! document-order comparison is a single integer compare. This matters for
//! XPath, whose node-sets are kept sorted in document order.
//!
//! Attributes are arena nodes too (so the XPath attribute axis can return
//! them in ordinary node-sets), but they are *not* part of their element's
//! child list; they are reachable through [`Document::attributes`]. An
//! element's attribute nodes are allocated immediately after the element and
//! before its first child, which gives them the document-order position the
//! XPath data model requires.

use crate::qname::QName;
use std::rc::Rc;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The document (root) node of every arena.
    pub const DOCUMENT: NodeId = NodeId(0);

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// The document root; exactly one per arena, always `NodeId(0)`.
    Document,
    Element { name: QName, attrs: Vec<NodeId> },
    /// An attribute node; `parent` links to the owning element, but the
    /// element's child list does not include it.
    Attribute { name: QName, value: String },
    Text(String),
    Comment(String),
    Pi { target: String, data: String },
}

/// One node in the arena, with structural links.
#[derive(Debug, Clone)]
pub struct Node {
    pub kind: NodeKind,
    pub parent: Option<NodeId>,
    pub prev_sibling: Option<NodeId>,
    pub next_sibling: Option<NodeId>,
    pub first_child: Option<NodeId>,
    pub last_child: Option<NodeId>,
}

impl Node {
    pub(crate) fn new(kind: NodeKind) -> Self {
        Node {
            kind,
            parent: None,
            prev_sibling: None,
            next_sibling: None,
            first_child: None,
            last_child: None,
        }
    }
}

/// An immutable XML document stored as a flat arena of nodes.
#[derive(Debug, Clone)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
}

/// A shared, immutable document. XQuery items and XSLT result-tree fragments
/// hold these so nodes from multiple documents can coexist in one sequence.
pub type DocRc = Rc<Document>;

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// An empty document containing only the document node.
    pub fn new() -> Self {
        Document { nodes: vec![Node::new(NodeKind::Document)] }
    }

    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        // The document node is always present.
        self.nodes.len() <= 1
    }

    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.kind(id), NodeKind::Element { .. })
    }

    pub fn is_attribute(&self, id: NodeId) -> bool {
        matches!(self.kind(id), NodeKind::Attribute { .. })
    }

    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.kind(id), NodeKind::Text(_))
    }

    /// The root element of the document, if any.
    pub fn root_element(&self) -> Option<NodeId> {
        self.children(NodeId::DOCUMENT)
            .find(|&c| matches!(self.kind(c), NodeKind::Element { .. }))
    }

    /// Element name, if `id` is an element.
    pub fn element_name(&self, id: NodeId) -> Option<&QName> {
        match self.kind(id) {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Name of an element or attribute node.
    pub fn node_name(&self, id: NodeId) -> Option<&QName> {
        match self.kind(id) {
            NodeKind::Element { name, .. } | NodeKind::Attribute { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Attribute node ids of an element (empty for other node kinds).
    pub fn attributes(&self, id: NodeId) -> &[NodeId] {
        match self.kind(id) {
            NodeKind::Element { attrs, .. } => attrs,
            _ => &[],
        }
    }

    /// Value of an attribute node.
    pub fn attr_value(&self, attr: NodeId) -> Option<&str> {
        match self.kind(attr) {
            NodeKind::Attribute { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Attribute value of an element by local name.
    pub fn attribute(&self, id: NodeId, local: &str) -> Option<&str> {
        self.attributes(id).iter().find_map(|&a| match self.kind(a) {
            NodeKind::Attribute { name, value } if &*name.local == local => {
                Some(value.as_str())
            }
            _ => None,
        })
    }

    /// Iterator over the children of a node, in document order. Attribute
    /// nodes are not children.
    pub fn children(&self, id: NodeId) -> Children<'_> {
        Children { doc: self, next: self.node(id).first_child }
    }

    /// Iterator over `id` and all its descendants, in document order.
    pub fn descendants_or_self(&self, id: NodeId) -> DescendantsOrSelf<'_> {
        DescendantsOrSelf { doc: self, root: id, next: Some(id) }
    }

    /// Iterator over the strict descendants of `id`, in document order.
    pub fn descendants(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.descendants_or_self(id).skip(1)
    }

    /// Iterator over ancestors, nearest first.
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors { doc: self, next: self.parent(id) }
    }

    /// The XPath string-value of a node: for elements and the document node,
    /// the concatenation of all descendant text; for attribute, text,
    /// comment and PI nodes, their own content.
    pub fn string_value(&self, id: NodeId) -> String {
        match self.kind(id) {
            NodeKind::Text(t) => t.clone(),
            NodeKind::Comment(t) => t.clone(),
            NodeKind::Attribute { value, .. } => value.clone(),
            NodeKind::Pi { data, .. } => data.clone(),
            NodeKind::Document | NodeKind::Element { .. } => {
                let mut out = String::new();
                self.collect_text(id, &mut out);
                out
            }
        }
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        for c in self.children(id) {
            match self.kind(c) {
                NodeKind::Text(t) => out.push_str(t),
                NodeKind::Element { .. } => self.collect_text(c, out),
                _ => {}
            }
        }
    }

    /// First child element with the given local name.
    pub fn child_element(&self, id: NodeId, local: &str) -> Option<NodeId> {
        self.children(id)
            .find(|&c| self.element_name(c).is_some_and(|n| &*n.local == local))
    }

    /// All child elements with the given local name.
    pub fn child_elements<'a>(
        &'a self,
        id: NodeId,
        local: &'a str,
    ) -> impl Iterator<Item = NodeId> + 'a {
        self.children(id)
            .filter(move |&c| self.element_name(c).is_some_and(|n| &*n.local == local))
    }

    /// Count of all nodes of every kind (including the document node and
    /// attribute nodes).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// See [`Document::children`].
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).next_sibling;
        Some(cur)
    }
}

/// See [`Document::descendants_or_self`].
pub struct DescendantsOrSelf<'a> {
    doc: &'a Document,
    root: NodeId,
    next: Option<NodeId>,
}

impl Iterator for DescendantsOrSelf<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        // Depth-first pre-order walk bounded by `root`.
        let node = self.doc.node(cur);
        self.next = if let Some(fc) = node.first_child {
            Some(fc)
        } else {
            let mut up = cur;
            loop {
                if up == self.root {
                    break None;
                }
                if let Some(ns) = self.doc.node(up).next_sibling {
                    break Some(ns);
                }
                match self.doc.node(up).parent {
                    Some(p) => up = p,
                    None => break None,
                }
            }
        };
        Some(cur)
    }
}

/// See [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.node(cur).parent;
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TreeBuilder;

    fn sample() -> Document {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("dept"));
        b.attribute(QName::local("no"), "10");
        b.start_element(QName::local("dname"));
        b.text("ACCOUNTING");
        b.end_element();
        b.start_element(QName::local("loc"));
        b.text("NEW YORK");
        b.end_element();
        b.end_element();
        b.finish()
    }

    #[test]
    fn root_element_found() {
        let d = sample();
        let root = d.root_element().unwrap();
        assert_eq!(&*d.element_name(root).unwrap().local, "dept");
    }

    #[test]
    fn children_in_order_excluding_attrs() {
        let d = sample();
        let root = d.root_element().unwrap();
        let names: Vec<_> = d
            .children(root)
            .filter_map(|c| d.element_name(c).map(|n| n.local.to_string()))
            .collect();
        assert_eq!(names, ["dname", "loc"]);
        assert_eq!(d.children(root).count(), 2);
    }

    #[test]
    fn attribute_nodes_reachable() {
        let d = sample();
        let root = d.root_element().unwrap();
        let attrs = d.attributes(root);
        assert_eq!(attrs.len(), 1);
        assert_eq!(d.attr_value(attrs[0]), Some("10"));
        assert_eq!(d.parent(attrs[0]), Some(root));
        assert_eq!(d.string_value(attrs[0]), "10");
        assert_eq!(d.attribute(root, "no"), Some("10"));
    }

    #[test]
    fn attribute_precedes_children_in_doc_order() {
        let d = sample();
        let root = d.root_element().unwrap();
        let attr = d.attributes(root)[0];
        let first_child = d.children(root).next().unwrap();
        assert!(attr < first_child);
        assert!(root < attr);
    }

    #[test]
    fn string_value_concatenates() {
        let d = sample();
        let root = d.root_element().unwrap();
        assert_eq!(d.string_value(root), "ACCOUNTINGNEW YORK");
    }

    #[test]
    fn descendants_or_self_preorder() {
        let d = sample();
        let ids: Vec<_> = d.descendants_or_self(NodeId::DOCUMENT).collect();
        // Append-only build means document order == id order; attribute
        // nodes are not visited by the descendant walk.
        let mut sorted = ids.clone();
        sorted.sort();
        assert_eq!(ids, sorted);
        assert_eq!(ids.len(), d.node_count() - 1);
    }

    #[test]
    fn ancestors_nearest_first() {
        let d = sample();
        let dname = d.child_element(d.root_element().unwrap(), "dname").unwrap();
        let text = d.children(dname).next().unwrap();
        let anc: Vec<_> = d.ancestors(text).collect();
        assert_eq!(anc.len(), 3); // dname, dept, document
        assert_eq!(anc[2], NodeId::DOCUMENT);
    }

    #[test]
    fn child_element_lookup() {
        let d = sample();
        let root = d.root_element().unwrap();
        assert!(d.child_element(root, "loc").is_some());
        assert!(d.child_element(root, "nope").is_none());
    }

    #[test]
    fn empty_document() {
        let d = Document::new();
        assert!(d.is_empty());
        assert!(d.root_element().is_none());
        assert_eq!(d.string_value(NodeId::DOCUMENT), "");
    }
}
