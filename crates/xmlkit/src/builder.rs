//! Append-only construction of [`Document`] arenas.

use crate::model::{Document, Node, NodeId, NodeKind};
use crate::qname::QName;

/// Builds a [`Document`] in document order.
///
/// The builder is the only way to create non-empty documents; it guarantees
/// that node ids are assigned in document order (attribute nodes directly
/// after their element, before its children), which the rest of the system
/// relies on for O(1) document-order comparison.
pub struct TreeBuilder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Default for TreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TreeBuilder {
    pub fn new() -> Self {
        TreeBuilder { doc: Document::new(), stack: vec![NodeId::DOCUMENT] }
    }

    fn append_child(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.doc.nodes.len() as u32);
        let parent = *self.stack.last().expect("builder stack never empty");
        let mut node = Node::new(kind);
        node.parent = Some(parent);
        node.prev_sibling = self.doc.nodes[parent.index()].last_child;
        self.doc.nodes.push(node);
        let pnode = &mut self.doc.nodes[parent.index()];
        if pnode.first_child.is_none() {
            pnode.first_child = Some(id);
        }
        if let Some(prev) = pnode.last_child {
            self.doc.nodes[prev.index()].next_sibling = Some(id);
        }
        self.doc.nodes[parent.index()].last_child = Some(id);
        id
    }

    /// Open an element; subsequent nodes become its children until
    /// [`end_element`](Self::end_element).
    pub fn start_element(&mut self, name: QName) -> NodeId {
        let id = self.append_child(NodeKind::Element { name, attrs: Vec::new() });
        self.stack.push(id);
        id
    }

    /// Add an attribute to the currently open element.
    ///
    /// Panics if no element is open or if content has already been added to
    /// it — attributes must precede children, as in serialized XML. Setting
    /// an attribute that already exists replaces its value (last write wins,
    /// matching `xsl:attribute` semantics).
    pub fn attribute(&mut self, name: QName, value: impl Into<String>) {
        let cur = *self.stack.last().expect("builder stack never empty");
        assert_ne!(cur, NodeId::DOCUMENT, "attribute outside an element");
        assert!(
            self.doc.nodes[cur.index()].first_child.is_none(),
            "attributes must be added before child content"
        );
        // Last write wins when the name repeats.
        let existing = self.doc.attributes(cur).iter().copied().find(|&a| {
            matches!(self.doc.kind(a), NodeKind::Attribute { name: n, .. } if n == &name)
        });
        if let Some(a) = existing {
            if let NodeKind::Attribute { value: v, .. } = &mut self.doc.nodes[a.index()].kind {
                *v = value.into();
            }
            return;
        }
        let id = NodeId(self.doc.nodes.len() as u32);
        let mut node = Node::new(NodeKind::Attribute { name, value: value.into() });
        node.parent = Some(cur);
        self.doc.nodes.push(node);
        match &mut self.doc.nodes[cur.index()].kind {
            NodeKind::Element { attrs, .. } => attrs.push(id),
            _ => unreachable!("stack entries above the root are elements"),
        }
    }

    /// Fallible form of [`attribute`](Self::attribute) for callers (the XSLT
    /// engine) that must report, not panic, when an attribute arrives too
    /// late or outside an element.
    pub fn try_attribute(
        &mut self,
        name: QName,
        value: impl Into<String>,
    ) -> Result<(), &'static str> {
        let cur = *self.stack.last().expect("builder stack never empty");
        if cur == NodeId::DOCUMENT {
            return Err("attribute outside an element");
        }
        if self.doc.nodes[cur.index()].first_child.is_some() {
            return Err("attributes must be added before child content");
        }
        self.attribute(name, value);
        Ok(())
    }

    /// Does the currently open node already have children?
    pub fn current_has_children(&self) -> bool {
        let cur = *self.stack.last().expect("builder stack never empty");
        self.doc.nodes[cur.index()].first_child.is_some()
    }

    /// Close the currently open element.
    pub fn end_element(&mut self) {
        assert!(self.stack.len() > 1, "end_element without start_element");
        self.stack.pop();
    }

    /// Append a text node, merging with an immediately preceding text node
    /// (the XPath data model never has adjacent text siblings).
    pub fn text(&mut self, content: &str) {
        if content.is_empty() {
            return;
        }
        let parent = *self.stack.last().expect("builder stack never empty");
        if let Some(last) = self.doc.nodes[parent.index()].last_child {
            if let NodeKind::Text(t) = &mut self.doc.nodes[last.index()].kind {
                t.push_str(content);
                return;
            }
        }
        self.append_child(NodeKind::Text(content.to_string()));
    }

    pub fn comment(&mut self, content: impl Into<String>) {
        self.append_child(NodeKind::Comment(content.into()));
    }

    pub fn pi(&mut self, target: impl Into<String>, data: impl Into<String>) {
        self.append_child(NodeKind::Pi { target: target.into(), data: data.into() });
    }

    /// Deep-copy the subtree rooted at `node` of `src` into the current
    /// position. Copying an element copies its attributes and descendants;
    /// copying the document node copies its children; copying an attribute
    /// node sets the attribute on the currently open element.
    pub fn copy_subtree(&mut self, src: &Document, node: NodeId) {
        match src.kind(node) {
            NodeKind::Document => {
                for c in src.children(node) {
                    self.copy_subtree(src, c);
                }
            }
            NodeKind::Element { name, attrs } => {
                self.start_element(name.clone());
                for &a in attrs.clone().iter() {
                    if let NodeKind::Attribute { name, value } = src.kind(a) {
                        self.attribute(name.clone(), value.clone());
                    }
                }
                for c in src.children(node) {
                    self.copy_subtree(src, c);
                }
                self.end_element();
            }
            NodeKind::Attribute { name, value } => {
                self.attribute(name.clone(), value.clone());
            }
            NodeKind::Text(t) => self.text(t),
            NodeKind::Comment(t) => self.comment(t.clone()),
            NodeKind::Pi { target, data } => self.pi(target.clone(), data.clone()),
        }
    }

    /// Number of currently open elements (0 at the top level).
    pub fn depth(&self) -> usize {
        self.stack.len() - 1
    }

    /// True when nothing has been added yet.
    pub fn is_empty(&self) -> bool {
        self.doc.is_empty()
    }

    /// Finish building. Panics if elements are still open.
    pub fn finish(self) -> Document {
        assert_eq!(self.stack.len(), 1, "unclosed elements at finish");
        self.doc
    }

    /// Finish building, closing any still-open elements first.
    pub fn finish_lenient(mut self) -> Document {
        while self.stack.len() > 1 {
            self.stack.pop();
        }
        self.doc
    }
}

/// Convenience: build a document with a single element containing text.
pub fn text_element(name: &str, text: &str) -> Document {
    let mut b = TreeBuilder::new();
    b.start_element(QName::local(name));
    b.text(text);
    b.end_element();
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_siblings_correctly() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.start_element(QName::local("a"));
        b.end_element();
        b.start_element(QName::local("b"));
        b.end_element();
        b.end_element();
        let d = b.finish();
        let r = d.root_element().unwrap();
        let kids: Vec<_> = d.children(r).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.node(kids[0]).next_sibling, Some(kids[1]));
        assert_eq!(d.node(kids[1]).prev_sibling, Some(kids[0]));
        assert_eq!(d.node(kids[1]).next_sibling, None);
    }

    #[test]
    fn adjacent_text_merges() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.text("foo");
        b.text("bar");
        b.end_element();
        let d = b.finish();
        let r = d.root_element().unwrap();
        assert_eq!(d.children(r).count(), 1);
        assert_eq!(d.string_value(r), "foobar");
    }

    #[test]
    fn empty_text_ignored() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.text("");
        b.end_element();
        let d = b.finish();
        assert_eq!(d.children(d.root_element().unwrap()).count(), 0);
    }

    #[test]
    fn duplicate_attribute_last_wins() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.attribute(QName::local("a"), "1");
        b.attribute(QName::local("a"), "2");
        b.end_element();
        let d = b.finish();
        let r = d.root_element().unwrap();
        assert_eq!(d.attributes(r).len(), 1);
        assert_eq!(d.attribute(r, "a"), Some("2"));
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn finish_with_open_element_panics() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        let _ = b.finish();
    }

    #[test]
    fn finish_lenient_closes() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        let d = b.finish_lenient();
        assert!(d.root_element().is_some());
    }

    #[test]
    fn copy_subtree_deep_with_attrs() {
        let mut b0 = TreeBuilder::new();
        b0.start_element(QName::local("x"));
        b0.attribute(QName::local("k"), "v");
        b0.text("hello");
        b0.end_element();
        let src = b0.finish();

        let mut b = TreeBuilder::new();
        b.start_element(QName::local("wrap"));
        b.copy_subtree(&src, src.root_element().unwrap());
        b.end_element();
        let d = b.finish();
        let wrap = d.root_element().unwrap();
        let x = d.child_element(wrap, "x").unwrap();
        assert_eq!(d.string_value(x), "hello");
        assert_eq!(d.attribute(x, "k"), Some("v"));
    }

    #[test]
    fn copy_attribute_node_sets_attribute() {
        let mut b0 = TreeBuilder::new();
        b0.start_element(QName::local("x"));
        b0.attribute(QName::local("k"), "v");
        b0.end_element();
        let src = b0.finish();
        let attr = src.attributes(src.root_element().unwrap())[0];

        let mut b = TreeBuilder::new();
        b.start_element(QName::local("y"));
        b.copy_subtree(&src, attr);
        b.end_element();
        let d = b.finish();
        assert_eq!(d.attribute(d.root_element().unwrap(), "k"), Some("v"));
    }

    #[test]
    #[should_panic(expected = "before child content")]
    fn attribute_after_content_panics() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.text("hi");
        b.attribute(QName::local("late"), "x");
    }
}
