//! XML escaping and entity decoding.
//!
//! The escape functions return [`Cow`]: the common case — text with no
//! escapable character at all — is returned borrowed, with zero allocation.
//! This matters because escaping sits on the streaming emission hot path
//! (`sink::StreamWriter` escapes every text node and attribute value as it
//! writes), where a per-call `String` would dominate the profile.

use std::borrow::Cow;

/// Bytes that force [`escape_text`] onto the owned path. `\r` must become
/// a character reference: a literal CR in serialized output is normalised
/// to `\n` by any spec-conforming reparse (XML 1.0 §2.11), silently
/// corrupting the roundtrip.
#[inline]
fn text_special(b: u8) -> bool {
    matches!(b, b'&' | b'<' | b'>' | b'\r')
}

/// Bytes that force [`escape_attr`] onto the owned path: the text set plus
/// the quote and the whitespace characters attribute-value normalisation
/// would otherwise fold to spaces.
#[inline]
fn attr_special(b: u8) -> bool {
    matches!(b, b'&' | b'<' | b'>' | b'\r' | b'"' | b'\n' | b'\t')
}

/// Escape a string for use as element character data.
///
/// Returns the input borrowed when it contains no escapable character —
/// the overwhelmingly common case for real text nodes.
pub fn escape_text(s: &str) -> Cow<'_, str> {
    let first = match s.bytes().position(text_special) {
        None => return Cow::Borrowed(s),
        Some(i) => i,
    };
    // All special bytes are ASCII, so `first` is a char boundary.
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Escape a string for use inside a double-quoted attribute value.
///
/// Returns the input borrowed when it contains no escapable character.
pub fn escape_attr(s: &str) -> Cow<'_, str> {
    let first = match s.bytes().position(attr_special) {
        None => return Cow::Borrowed(s),
        Some(i) => i,
    };
    let mut out = String::with_capacity(s.len() + 8);
    out.push_str(&s[..first]);
    for c in s[first..].chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            '\r' => out.push_str("&#13;"),
            _ => out.push(c),
        }
    }
    Cow::Owned(out)
}

/// Decode the five predefined entities plus numeric character references.
/// Unknown entities are an error (we do not support custom DTD entities).
pub fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity reference near {:.20}", rest))?;
        let ent = &rest[1..end];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| format!("bad hex character reference &{ent};"))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| format!("invalid code point &{ent};"))?,
                );
            }
            _ if ent.starts_with('#') => {
                let cp: u32 = ent[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference &{ent};"))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| format!("invalid code point &{ent};"))?,
                );
            }
            _ => return Err(format!("unknown entity &{ent};")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_specials() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
    }

    #[test]
    fn escape_attr_quotes_and_ws() {
        assert_eq!(escape_attr("x\"y\n"), "x&quot;y&#10;");
    }

    #[test]
    fn carriage_return_escapes_in_text_and_attr() {
        assert_eq!(escape_text("a\rb"), "a&#13;b");
        assert_eq!(escape_attr("a\rb"), "a&#13;b");
        // ... and decodes back to the literal CR.
        assert_eq!(decode_entities("a&#13;b").unwrap(), "a\rb");
    }

    #[test]
    fn clean_input_is_borrowed() {
        let s = "no specials here, plain ASCII and ünïcödé";
        assert!(matches!(escape_text(s), Cow::Borrowed(_)));
        assert!(matches!(escape_attr(s), Cow::Borrowed(_)));
        // One special anywhere forces the owned path.
        assert!(matches!(escape_text("x & y"), Cow::Owned(_)));
        assert!(matches!(escape_attr("tab\there"), Cow::Owned(_)));
    }

    #[test]
    fn decode_predefined() {
        assert_eq!(
            decode_entities("&lt;a&gt; &amp; &apos;b&apos; &quot;c&quot;").unwrap(),
            "<a> & 'b' \"c\""
        );
    }

    #[test]
    fn decode_numeric() {
        assert_eq!(decode_entities("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn decode_unknown_is_error() {
        assert!(decode_entities("&nbsp;").is_err());
    }

    #[test]
    fn decode_unterminated_is_error() {
        assert!(decode_entities("a & b").is_err());
    }

    #[test]
    fn roundtrip_escape_decode() {
        let original = "tricky <text> with & \"quotes\" and 'apostrophes' and a \r return";
        assert_eq!(decode_entities(&escape_text(original)).unwrap(), original);
        assert_eq!(decode_entities(&escape_attr(original)).unwrap(), original);
    }
}
