//! XML escaping and entity decoding.

/// Escape a string for use as element character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape a string for use inside a double-quoted attribute value.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

/// Decode the five predefined entities plus numeric character references.
/// Unknown entities are an error (we do not support custom DTD entities).
pub fn decode_entities(s: &str) -> Result<String, String> {
    if !s.contains('&') {
        return Ok(s.to_string());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest
            .find(';')
            .ok_or_else(|| format!("unterminated entity reference near {:.20}", rest))?;
        let ent = &rest[1..end];
        match ent {
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "amp" => out.push('&'),
            "apos" => out.push('\''),
            "quot" => out.push('"'),
            _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                let cp = u32::from_str_radix(&ent[2..], 16)
                    .map_err(|_| format!("bad hex character reference &{ent};"))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| format!("invalid code point &{ent};"))?,
                );
            }
            _ if ent.starts_with('#') => {
                let cp: u32 = ent[1..]
                    .parse()
                    .map_err(|_| format!("bad character reference &{ent};"))?;
                out.push(
                    char::from_u32(cp)
                        .ok_or_else(|| format!("invalid code point &{ent};"))?,
                );
            }
            _ => return Err(format!("unknown entity &{ent};")),
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_specials() {
        assert_eq!(escape_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
    }

    #[test]
    fn escape_attr_quotes_and_ws() {
        assert_eq!(escape_attr("x\"y\n"), "x&quot;y&#10;");
    }

    #[test]
    fn decode_predefined() {
        assert_eq!(
            decode_entities("&lt;a&gt; &amp; &apos;b&apos; &quot;c&quot;").unwrap(),
            "<a> & 'b' \"c\""
        );
    }

    #[test]
    fn decode_numeric() {
        assert_eq!(decode_entities("&#65;&#x42;").unwrap(), "AB");
    }

    #[test]
    fn decode_unknown_is_error() {
        assert!(decode_entities("&nbsp;").is_err());
    }

    #[test]
    fn decode_unterminated_is_error() {
        assert!(decode_entities("a & b").is_err());
    }

    #[test]
    fn roundtrip_escape_decode() {
        let original = "tricky <text> with & \"quotes\" and 'apostrophes'";
        assert_eq!(decode_entities(&escape_text(original)).unwrap(), original);
    }
}
