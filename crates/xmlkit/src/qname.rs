//! Qualified names with lexical prefix and resolved namespace URI.

use std::fmt;

/// The XSLT 1.0 namespace URI.
pub const XSL_NS: &str = "http://www.w3.org/1999/XSL/Transform";
/// The namespace used for structural annotations on sample documents
/// (the paper's "special attribute belonging to predefined Oracle XDB
/// namespace", section 4.2).
pub const XDB_NS: &str = "http://xmlns.example.org/xdb-struct";

/// A qualified XML name.
///
/// The `ns_uri` is resolved at parse time from the in-scope namespace
/// declarations. Names built programmatically usually have no prefix and no
/// namespace.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    /// Lexical prefix (`xsl` in `xsl:template`), if any.
    pub prefix: Option<Box<str>>,
    /// Local part of the name.
    pub local: Box<str>,
    /// Resolved namespace URI, if the name is in a namespace.
    pub ns_uri: Option<Box<str>>,
}

impl QName {
    /// A name with no prefix and no namespace.
    pub fn local(name: &str) -> Self {
        QName { prefix: None, local: name.into(), ns_uri: None }
    }

    /// A name in a namespace, with a prefix.
    pub fn prefixed(prefix: &str, local: &str, ns_uri: &str) -> Self {
        QName { prefix: Some(prefix.into()), local: local.into(), ns_uri: Some(ns_uri.into()) }
    }

    /// Split a lexical QName into `(prefix, local)`.
    pub fn split(lexical: &str) -> (Option<&str>, &str) {
        match lexical.split_once(':') {
            Some((p, l)) => (Some(p), l),
            None => (None, lexical),
        }
    }

    /// True when this name is in the XSLT namespace.
    pub fn is_xsl(&self) -> bool {
        self.ns_uri.as_deref() == Some(XSL_NS)
    }

    /// The lexical form (`prefix:local` or `local`).
    pub fn lexical(&self) -> String {
        match &self.prefix {
            Some(p) => format!("{p}:{}", self.local),
            None => self.local.to_string(),
        }
    }

    /// Name comparison used by XPath node tests: local names must match and,
    /// when both sides carry a namespace, the namespaces must match too. A
    /// test written without a prefix matches nodes regardless of namespace
    /// (a deliberate simplification of XPath 1.0's context-dependent
    /// namespace resolution, documented in DESIGN.md).
    pub fn matches_test(&self, test_prefix: Option<&str>, test_local: &str) -> bool {
        if &*self.local != test_local {
            return false;
        }
        match test_prefix {
            None => true,
            Some(p) => self.prefix.as_deref() == Some(p),
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.prefix {
            Some(p) => write!(f, "{p}:{}", self.local),
            None => write!(f, "{}", self.local),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_plain() {
        assert_eq!(QName::split("dept"), (None, "dept"));
    }

    #[test]
    fn split_prefixed() {
        assert_eq!(QName::split("xsl:template"), (Some("xsl"), "template"));
    }

    #[test]
    fn lexical_roundtrip() {
        let q = QName::prefixed("xsl", "template", XSL_NS);
        assert_eq!(q.lexical(), "xsl:template");
        assert!(q.is_xsl());
        assert_eq!(q.to_string(), "xsl:template");
    }

    #[test]
    fn matches_unprefixed_test_ignores_ns() {
        let q = QName::prefixed("h", "table", "urn:html");
        assert!(q.matches_test(None, "table"));
        assert!(!q.matches_test(None, "tr"));
    }

    #[test]
    fn matches_prefixed_test_requires_prefix() {
        let q = QName::prefixed("h", "table", "urn:html");
        assert!(q.matches_test(Some("h"), "table"));
        assert!(!q.matches_test(Some("x"), "table"));
        let plain = QName::local("table");
        assert!(!plain.matches_test(Some("h"), "table"));
    }
}
