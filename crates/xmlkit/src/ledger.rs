//! Global resource ledger: aggregate admission budgets across requests.
//!
//! [`Guard`](crate::Guard) budgets are strictly per-call — N concurrent
//! callers can each stay within their own limits while collectively
//! exhausting the process. The [`ResourceLedger`] closes that gap: it holds
//! fleet-wide ceilings (aggregate fuel, bytes-in-flight, concurrent
//! streams) as lock-free atomic counters, and hands out RAII
//! [`Reservation`]s that draw the ceilings down on admission and return
//! every unit on `Drop` — including when the drop happens during a panic
//! unwind, which is what makes the ledger safe to combine with the
//! pipeline's `catch_unwind` tier containment.
//!
//! Invariants (checked by the chaos suite):
//!
//! 1. **Conservation** — for each resource, `in_flight` equals the sum of
//!    live reservations; after every reservation drops, `in_flight == 0`.
//! 2. **No overshoot** — a reservation is all-or-nothing: if any resource
//!    would pierce its ceiling the whole request is refused and nothing is
//!    drawn down.
//! 3. **Panic safety** — a reservation dropped mid-unwind returns its
//!    units exactly once (plain `Drop`, no `mem::forget` paths).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Fleet-wide ceilings for a [`ResourceLedger`]. `u64::MAX` means
/// unmetered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerLimits {
    /// Aggregate fuel reservable across all in-flight requests.
    pub max_total_fuel: u64,
    /// Aggregate output bytes reservable across all in-flight requests.
    pub max_bytes_in_flight: u64,
    /// Maximum concurrently admitted streams.
    pub max_concurrent_streams: u64,
}

impl LedgerLimits {
    /// No ceilings at all; every admission succeeds.
    pub const UNLIMITED: LedgerLimits = LedgerLimits {
        max_total_fuel: u64::MAX,
        max_bytes_in_flight: u64::MAX,
        max_concurrent_streams: u64::MAX,
    };

    /// Serving defaults: roomy enough for tens of concurrent
    /// `Limits::server_default` guards, small enough that a stampede is
    /// shed instead of swallowed.
    pub fn server_default() -> LedgerLimits {
        LedgerLimits {
            max_total_fuel: 2_000_000_000,
            max_bytes_in_flight: 2 * 1024 * 1024 * 1024,
            max_concurrent_streams: 256,
        }
    }

    pub fn with_max_total_fuel(mut self, v: u64) -> LedgerLimits {
        self.max_total_fuel = v;
        self
    }

    pub fn with_max_bytes_in_flight(mut self, v: u64) -> LedgerLimits {
        self.max_bytes_in_flight = v;
        self
    }

    pub fn with_max_concurrent_streams(mut self, v: u64) -> LedgerLimits {
        self.max_concurrent_streams = v;
        self
    }
}

/// Why the ledger refused an admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerDenied {
    /// Admitting would push aggregate fuel past the ceiling.
    Fuel { requested: u64, available: u64 },
    /// Admitting would push bytes-in-flight past the ceiling.
    Bytes { requested: u64, available: u64 },
    /// All concurrent-stream slots are taken.
    Streams { ceiling: u64 },
}

impl fmt::Display for LedgerDenied {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerDenied::Fuel { requested, available } => {
                write!(f, "ledger: fuel exhausted ({requested} requested, {available} free)")
            }
            LedgerDenied::Bytes { requested, available } => {
                write!(f, "ledger: bytes-in-flight exhausted ({requested} requested, {available} free)")
            }
            LedgerDenied::Streams { ceiling } => {
                write!(f, "ledger: all {ceiling} stream slots in use")
            }
        }
    }
}

impl std::error::Error for LedgerDenied {}

#[derive(Debug, Default)]
struct LedgerInner {
    fuel_in_flight: AtomicU64,
    bytes_in_flight: AtomicU64,
    streams_in_flight: AtomicU64,
    admitted_total: AtomicU64,
    denied_total: AtomicU64,
}

/// A point-in-time view of the ledger counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LedgerSnapshot {
    pub fuel_in_flight: u64,
    pub bytes_in_flight: u64,
    pub streams_in_flight: u64,
    pub admitted_total: u64,
    pub denied_total: u64,
}

impl LedgerSnapshot {
    /// True when no request holds any reservation.
    pub fn is_quiesced(&self) -> bool {
        self.fuel_in_flight == 0 && self.bytes_in_flight == 0 && self.streams_in_flight == 0
    }
}

/// The global ledger. Cheap to clone (an `Arc` handle); all operations are
/// lock-free CAS loops on relaxed-to-acquire atomics.
#[derive(Debug, Clone)]
pub struct ResourceLedger {
    limits: LedgerLimits,
    inner: Arc<LedgerInner>,
}

impl ResourceLedger {
    pub fn new(limits: LedgerLimits) -> ResourceLedger {
        ResourceLedger { limits, inner: Arc::new(LedgerInner::default()) }
    }

    /// An unmetered ledger (tests, single-shot tools).
    pub fn unlimited() -> ResourceLedger {
        ResourceLedger::new(LedgerLimits::UNLIMITED)
    }

    pub fn limits(&self) -> LedgerLimits {
        self.limits
    }

    /// Try to admit a request that wants `fuel` fuel units and `bytes`
    /// output bytes. All-or-nothing: on any refusal, nothing stays drawn
    /// down. On success the returned [`Reservation`] holds the units until
    /// it drops.
    pub fn try_reserve(&self, fuel: u64, bytes: u64) -> Result<Reservation, LedgerDenied> {
        let denied = |d: LedgerDenied| {
            self.inner.denied_total.fetch_add(1, Ordering::Relaxed);
            d
        };
        // Streams first: it is the cheapest to undo and the most common
        // refusal under stampede.
        if let Err(ceiling) = draw(
            &self.inner.streams_in_flight,
            1,
            self.limits.max_concurrent_streams,
        ) {
            let _ = ceiling;
            return Err(denied(LedgerDenied::Streams {
                ceiling: self.limits.max_concurrent_streams,
            }));
        }
        if let Err(available) =
            draw(&self.inner.fuel_in_flight, fuel, self.limits.max_total_fuel)
        {
            self.inner.streams_in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(denied(LedgerDenied::Fuel { requested: fuel, available }));
        }
        if let Err(available) =
            draw(&self.inner.bytes_in_flight, bytes, self.limits.max_bytes_in_flight)
        {
            self.inner.fuel_in_flight.fetch_sub(fuel, Ordering::AcqRel);
            self.inner.streams_in_flight.fetch_sub(1, Ordering::AcqRel);
            return Err(denied(LedgerDenied::Bytes { requested: bytes, available }));
        }
        self.inner.admitted_total.fetch_add(1, Ordering::Relaxed);
        Ok(Reservation { inner: Arc::clone(&self.inner), fuel, bytes })
    }

    pub fn snapshot(&self) -> LedgerSnapshot {
        LedgerSnapshot {
            fuel_in_flight: self.inner.fuel_in_flight.load(Ordering::Acquire),
            bytes_in_flight: self.inner.bytes_in_flight.load(Ordering::Acquire),
            streams_in_flight: self.inner.streams_in_flight.load(Ordering::Acquire),
            admitted_total: self.inner.admitted_total.load(Ordering::Relaxed),
            denied_total: self.inner.denied_total.load(Ordering::Relaxed),
        }
    }
}

/// CAS-draw `amount` units from `counter` without letting it pierce
/// `ceiling`. Returns the free headroom on refusal.
fn draw(counter: &AtomicU64, amount: u64, ceiling: u64) -> Result<(), u64> {
    if ceiling == u64::MAX {
        // Unmetered: still count, so snapshots stay truthful.
        counter.fetch_add(amount, Ordering::AcqRel);
        return Ok(());
    }
    let mut current = counter.load(Ordering::Acquire);
    loop {
        let free = ceiling.saturating_sub(current);
        if amount > free {
            return Err(free);
        }
        match counter.compare_exchange_weak(
            current,
            current + amount,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => return Ok(()),
            Err(observed) => current = observed,
        }
    }
}

/// A live draw against the ledger. Returns every unit on drop — exactly
/// once, including when dropped during a panic unwind.
#[derive(Debug)]
pub struct Reservation {
    inner: Arc<LedgerInner>,
    fuel: u64,
    bytes: u64,
}

impl Reservation {
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.inner.fuel_in_flight.fetch_sub(self.fuel, Ordering::AcqRel);
        self.inner.bytes_in_flight.fetch_sub(self.bytes, Ordering::AcqRel);
        self.inner.streams_in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_drop_round_trips_to_zero() {
        let ledger = ResourceLedger::new(LedgerLimits::server_default());
        let r = ledger.try_reserve(1_000, 2_000).unwrap();
        let snap = ledger.snapshot();
        assert_eq!(snap.fuel_in_flight, 1_000);
        assert_eq!(snap.bytes_in_flight, 2_000);
        assert_eq!(snap.streams_in_flight, 1);
        drop(r);
        assert!(ledger.snapshot().is_quiesced());
        assert_eq!(ledger.snapshot().admitted_total, 1);
    }

    #[test]
    fn refusal_is_all_or_nothing() {
        let limits = LedgerLimits::UNLIMITED
            .with_max_total_fuel(100)
            .with_max_bytes_in_flight(50)
            .with_max_concurrent_streams(8);
        let ledger = ResourceLedger::new(limits);
        // Bytes ceiling refuses — fuel and the stream slot must both be
        // returned.
        let err = ledger.try_reserve(10, 51).unwrap_err();
        assert!(matches!(err, LedgerDenied::Bytes { requested: 51, available: 50 }));
        assert!(ledger.snapshot().is_quiesced());
        assert_eq!(ledger.snapshot().denied_total, 1);
        // Fuel ceiling refuses — the stream slot must be returned.
        let err = ledger.try_reserve(101, 0).unwrap_err();
        assert!(matches!(err, LedgerDenied::Fuel { requested: 101, available: 100 }));
        assert!(ledger.snapshot().is_quiesced());
    }

    #[test]
    fn stream_slots_refuse_at_ceiling() {
        let ledger =
            ResourceLedger::new(LedgerLimits::UNLIMITED.with_max_concurrent_streams(2));
        let a = ledger.try_reserve(1, 1).unwrap();
        let b = ledger.try_reserve(1, 1).unwrap();
        let err = ledger.try_reserve(1, 1).unwrap_err();
        assert!(matches!(err, LedgerDenied::Streams { ceiling: 2 }));
        drop(a);
        let c = ledger.try_reserve(1, 1).unwrap();
        drop(b);
        drop(c);
        assert!(ledger.snapshot().is_quiesced());
    }

    #[test]
    fn reservation_returns_units_during_panic_unwind() {
        let ledger = ResourceLedger::new(LedgerLimits::server_default());
        let res = ledger.try_reserve(500, 500).unwrap();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _held = res;
            panic!("tier blew up");
        }));
        assert!(outcome.is_err());
        assert!(ledger.snapshot().is_quiesced(), "{:?}", ledger.snapshot());
    }

    #[test]
    fn concurrent_reservations_conserve_units() {
        let ledger = ResourceLedger::new(
            LedgerLimits::UNLIMITED
                .with_max_total_fuel(1_000_000)
                .with_max_bytes_in_flight(1_000_000)
                .with_max_concurrent_streams(64),
        );
        std::thread::scope(|s| {
            for t in 0..8 {
                let ledger = &ledger;
                s.spawn(move || {
                    for i in 0..500 {
                        let fuel = 1 + ((t * 31 + i * 7) % 97) as u64;
                        if let Ok(r) = ledger.try_reserve(fuel, fuel * 2) {
                            assert_eq!(r.fuel(), fuel);
                            let snap = ledger.snapshot();
                            assert!(snap.fuel_in_flight <= 1_000_000);
                            assert!(snap.bytes_in_flight <= 1_000_000);
                            assert!(snap.streams_in_flight <= 64);
                            drop(r);
                        }
                    }
                });
            }
        });
        assert!(ledger.snapshot().is_quiesced(), "{:?}", ledger.snapshot());
    }

    #[test]
    fn unlimited_ledger_still_counts_in_flight() {
        let ledger = ResourceLedger::unlimited();
        let r = ledger.try_reserve(42, 7).unwrap();
        let snap = ledger.snapshot();
        assert_eq!(snap.fuel_in_flight, 42);
        assert_eq!(snap.bytes_in_flight, 7);
        assert_eq!(snap.streams_in_flight, 1);
        drop(r);
        assert!(ledger.snapshot().is_quiesced());
    }
}
