//! Serialization of documents back to XML text.

use crate::escape::{escape_attr, escape_text};
use crate::model::{Document, NodeId, NodeKind};

/// Serialization options.
#[derive(Debug, Clone, Default)]
pub struct SerializeOptions {
    /// Indent nested elements with two spaces per level.
    pub pretty: bool,
    /// Emit an `<?xml version="1.0"?>` declaration.
    pub declaration: bool,
}

/// Serialize an entire document with default options.
pub fn to_string(doc: &Document) -> String {
    node_to_string(doc, NodeId::DOCUMENT)
}

/// Serialize with pretty-printing.
pub fn to_pretty_string(doc: &Document) -> String {
    serialize(doc, NodeId::DOCUMENT, &SerializeOptions { pretty: true, declaration: false })
}

/// Serialize the subtree rooted at `node`.
pub fn node_to_string(doc: &Document, node: NodeId) -> String {
    serialize(doc, node, &SerializeOptions::default())
}

/// Serialize the subtree rooted at `node` with explicit options.
pub fn serialize(doc: &Document, node: NodeId, opts: &SerializeOptions) -> String {
    let mut out = String::new();
    if opts.declaration {
        out.push_str("<?xml version=\"1.0\"?>");
        if opts.pretty {
            out.push('\n');
        }
    }
    write_node(doc, node, opts, 0, &mut out);
    out
}

fn has_element_child(doc: &Document, id: NodeId) -> bool {
    doc.children(id).any(|c| {
        matches!(doc.kind(c), NodeKind::Element { .. } | NodeKind::Comment(_) | NodeKind::Pi { .. })
    })
}

fn write_node(doc: &Document, id: NodeId, opts: &SerializeOptions, depth: usize, out: &mut String) {
    match doc.kind(id) {
        NodeKind::Document => {
            let mut first = true;
            for c in doc.children(id) {
                if opts.pretty && !first {
                    out.push('\n');
                }
                first = false;
                write_node(doc, c, opts, depth, out);
            }
        }
        NodeKind::Element { name, attrs } => {
            out.push('<');
            out.push_str(&name.lexical());
            for &a in attrs {
                if let NodeKind::Attribute { name, value } = doc.kind(a) {
                    out.push(' ');
                    out.push_str(&name.lexical());
                    out.push_str("=\"");
                    out.push_str(&escape_attr(value));
                    out.push('"');
                }
            }
            if doc.node(id).first_child.is_none() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let indent_children = opts.pretty && has_element_child(doc, id);
            for c in doc.children(id) {
                if indent_children {
                    out.push('\n');
                    for _ in 0..=depth {
                        out.push_str("  ");
                    }
                }
                write_node(doc, c, opts, depth + 1, out);
            }
            if indent_children {
                out.push('\n');
                for _ in 0..depth {
                    out.push_str("  ");
                }
            }
            out.push_str("</");
            out.push_str(&name.lexical());
            out.push('>');
        }
        NodeKind::Attribute { .. } => {
            // Attribute nodes are serialized as part of their element; a
            // bare attribute serializes as its value, matching how XSLT
            // copies attribute nodes into text contexts.
            if let Some(v) = doc.attr_value(id) {
                out.push_str(&escape_text(v));
            }
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        NodeKind::Pi { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn roundtrip_compact() {
        let src = r#"<dept><dname>ACCOUNTING</dname><loc>NEW YORK</loc></dept>"#;
        let d = parse(src).unwrap();
        assert_eq!(to_string(&d), src);
    }

    #[test]
    fn attributes_escaped() {
        let src = r#"<x a="&lt;v&gt;"/>"#;
        let d = parse(src).unwrap();
        assert_eq!(to_string(&d), src);
    }

    #[test]
    fn text_escaped() {
        let d = crate::builder::text_element("x", "a < b & c");
        assert_eq!(to_string(&d), "<x>a &lt; b &amp; c</x>");
    }

    #[test]
    fn self_closing_for_empty() {
        let d = parse("<x></x>").unwrap();
        assert_eq!(to_string(&d), "<x/>");
    }

    #[test]
    fn pretty_indents_nested_elements() {
        let d = parse("<a><b><c>x</c></b></a>").unwrap();
        let s = to_pretty_string(&d);
        assert_eq!(s, "<a>\n  <b>\n    <c>x</c>\n  </b>\n</a>");
    }

    #[test]
    fn pretty_keeps_text_only_inline() {
        let d = parse("<a>hello</a>").unwrap();
        assert_eq!(to_pretty_string(&d), "<a>hello</a>");
    }

    #[test]
    fn roundtrip_comment_and_pi() {
        let src = "<x><!--c--><?t d?></x>";
        let d = parse(src).unwrap();
        assert_eq!(to_string(&d), src);
    }

    #[test]
    fn declaration_option() {
        let d = parse("<x/>").unwrap();
        let s = serialize(&d, crate::model::NodeId::DOCUMENT, &SerializeOptions {
            pretty: false,
            declaration: true,
        });
        assert_eq!(s, "<?xml version=\"1.0\"?><x/>");
    }

    #[test]
    fn reparse_of_serialized_equals_original_structure() {
        let src = r#"<r a="1"><b>text &amp; more</b><c/><!--n--></r>"#;
        let d1 = parse(src).unwrap();
        let s = to_string(&d1);
        let d2 = parse(&s).unwrap();
        assert_eq!(to_string(&d2), s);
    }
}
