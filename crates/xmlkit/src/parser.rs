//! A hand-written, non-validating XML 1.0 parser covering the subset used
//! throughout the system: elements, attributes, namespaces, text with entity
//! and character references, CDATA sections, comments, processing
//! instructions, an optional XML declaration, and an optional DOCTYPE whose
//! internal subset is captured verbatim (for the DTD-based structural-
//! information extractor in `xsltdb-structinfo`).

use crate::builder::TreeBuilder;
use crate::escape::decode_entities;
use crate::model::Document;
use crate::qname::QName;
use std::collections::HashMap;
use std::fmt;

/// A parse error with byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result of [`parse_with_doctype`].
pub struct ParsedXml {
    pub document: Document,
    /// The internal DTD subset (text between `[` and `]` of a DOCTYPE), if
    /// one was present.
    pub internal_dtd: Option<String>,
    /// The DOCTYPE name, if a DOCTYPE was present.
    pub doctype_name: Option<String>,
}

/// Element-nesting ceiling applied by the convenience entry points. The
/// parser recurses per element, so without a ceiling a pathological input
/// (`<a><a><a>…`) overflows the thread stack instead of returning `Err`.
/// 1024 is far beyond any real document while keeping stack use in the
/// low hundreds of kilobytes.
pub const DEFAULT_MAX_DEPTH: usize = 1024;

/// Parse an XML document. Whitespace-only text nodes are preserved.
pub fn parse(input: &str) -> Result<Document, ParseError> {
    Ok(parse_with_doctype(input)?.document)
}

/// Parse with an explicit element-nesting ceiling instead of
/// [`DEFAULT_MAX_DEPTH`]. Depth is counted in open elements: a document
/// whose deepest element chain has `max_depth` elements parses; one level
/// deeper returns a [`ParseError`].
pub fn parse_with_depth_limit(input: &str, max_depth: usize) -> Result<Document, ParseError> {
    let mut p = Parser::new(input);
    p.max_depth = max_depth;
    p.parse_document()?;
    Ok(p.into_parsed().document)
}

/// Parse an XML document, dropping whitespace-only text nodes. Convenient
/// for data documents written with indentation.
pub fn parse_trimmed(input: &str) -> Result<Document, ParseError> {
    let mut p = Parser::new(input);
    p.drop_ws_only_text = true;
    p.parse_document()?;
    Ok(p.into_parsed().document)
}

/// Parse and also return DOCTYPE information.
pub fn parse_with_doctype(input: &str) -> Result<ParsedXml, ParseError> {
    let mut p = Parser::new(input);
    p.parse_document()?;
    Ok(p.into_parsed())
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    builder: TreeBuilder,
    /// Stack of namespace scopes; each frame maps prefix -> URI. The empty
    /// prefix key "" holds the default namespace.
    ns_stack: Vec<HashMap<String, String>>,
    drop_ws_only_text: bool,
    internal_dtd: Option<String>,
    doctype_name: Option<String>,
    /// Names of currently open elements (innermost last); its length is the
    /// nesting depth checked against `max_depth` — see [`DEFAULT_MAX_DEPTH`].
    open: Vec<String>,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            builder: TreeBuilder::new(),
            ns_stack: vec![HashMap::new()],
            drop_ws_only_text: false,
            internal_dtd: None,
            doctype_name: None,
            open: Vec::new(),
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    fn into_parsed(self) -> ParsedXml {
        ParsedXml {
            document: self.builder.finish_lenient(),
            internal_dtd: self.internal_dtd,
            doctype_name: self.doctype_name,
        }
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: msg.into() })
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            self.err(format!("expected `{s}`"))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
            self.bump();
        }
    }

    fn parse_document(&mut self) -> Result<(), ParseError> {
        // Prolog: XML declaration, misc, doctype, misc.
        self.skip_ws();
        if self.rest().starts_with("<?xml") {
            let close = self
                .rest()
                .find("?>")
                .ok_or_else(|| ParseError {
                    offset: self.pos,
                    message: "unterminated XML declaration".into(),
                })?;
            self.pos += close + 2;
        }
        loop {
            self.skip_ws();
            if self.rest().starts_with("<!--") {
                self.parse_comment(false)?;
            } else if self.rest().starts_with("<!DOCTYPE") {
                self.parse_doctype()?;
            } else if self.rest().starts_with("<?") {
                self.parse_pi(false)?;
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.peek() != Some('<') {
            return self.err("expected root element");
        }
        self.parse_element()?;
        // Trailing misc.
        loop {
            self.skip_ws();
            if self.rest().starts_with("<!--") {
                self.parse_comment(false)?;
            } else if self.rest().starts_with("<?") {
                self.parse_pi(false)?;
            } else {
                break;
            }
        }
        self.skip_ws();
        if self.pos != self.input.len() {
            return self.err("content after root element");
        }
        Ok(())
    }

    fn parse_doctype(&mut self) -> Result<(), ParseError> {
        self.expect("<!DOCTYPE")?;
        self.skip_ws();
        let name = self.parse_name()?;
        self.doctype_name = Some(name);
        // Skip external id keywords until `[` or `>`.
        loop {
            match self.peek() {
                Some('[') => {
                    self.bump();
                    let start = self.pos;
                    let close = self.rest().find(']').ok_or_else(|| ParseError {
                        offset: self.pos,
                        message: "unterminated internal DTD subset".into(),
                    })?;
                    self.internal_dtd = Some(self.input[start..start + close].to_string());
                    self.pos += close + 1;
                }
                Some('>') => {
                    self.bump();
                    return Ok(());
                }
                Some(_) => {
                    self.bump();
                }
                None => return self.err("unterminated DOCTYPE"),
            }
        }
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return self.err("expected a name"),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn resolve_ns(&self, prefix: &str) -> Option<&str> {
        self.ns_stack
            .iter()
            .rev()
            .find_map(|frame| frame.get(prefix))
            .map(|s| s.as_str())
    }

    fn make_qname(&self, lexical: &str, is_attr: bool) -> QName {
        let (prefix, local) = QName::split(lexical);
        let ns_uri = match prefix {
            Some(p) => self.resolve_ns(p).map(|u| u.into()),
            // Per the namespaces spec, unprefixed attributes are never in
            // the default namespace.
            None if is_attr => None,
            None => self.resolve_ns("").map(|u| u.into()),
        };
        QName { prefix: prefix.map(|p| p.into()), local: local.into(), ns_uri }
    }

    /// Parse one element and everything inside it. Iterative — an explicit
    /// stack of open element names replaces call recursion, so nesting depth
    /// is bounded by `max_depth` (a structured [`ParseError`]), never by the
    /// thread stack.
    fn parse_element(&mut self) -> Result<(), ParseError> {
        // Invariant at the top of the outer loop: the next input is a start
        // tag (`self.peek() == Some('<')`).
        loop {
            let self_closed = self.parse_start_tag()?;
            if self_closed {
                self.builder.end_element();
                self.ns_stack.pop();
            } else if self.depth() > self.max_depth {
                return self.err(format!(
                    "element nesting deeper than {} levels",
                    self.max_depth
                ));
            }
            // Consume content — text, comments, PIs, CDATA, end tags —
            // until a child start tag appears (loop back) or every opened
            // element has closed.
            loop {
                if self.open.is_empty() {
                    return Ok(());
                }
                if self.rest().starts_with("</") {
                    self.pos += 2;
                    let name = self.parse_name()?;
                    if self.open.last().map(String::as_str) != Some(name.as_str()) {
                        let open_name = self.open.last().cloned().unwrap_or_default();
                        return self.err(format!(
                            "mismatched end tag: expected </{open_name}>, found </{name}>"
                        ));
                    }
                    self.skip_ws();
                    self.expect(">")?;
                    self.builder.end_element();
                    self.ns_stack.pop();
                    self.open.pop();
                } else if self.rest().starts_with("<!--") {
                    self.parse_comment(true)?;
                } else if self.rest().starts_with("<![CDATA[") {
                    self.pos += "<![CDATA[".len();
                    let close = self.rest().find("]]>").ok_or_else(|| ParseError {
                        offset: self.pos,
                        message: "unterminated CDATA section".into(),
                    })?;
                    let text = &self.input[self.pos..self.pos + close];
                    self.builder.text(text);
                    self.pos += close + 3;
                } else if self.rest().starts_with("<?") {
                    self.parse_pi(true)?;
                } else if self.peek() == Some('<') {
                    break;
                } else if self.peek().is_none() {
                    let open_name = self.open.last().cloned().unwrap_or_default();
                    return self.err(format!("unexpected end of input inside <{open_name}>"));
                } else {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == '<' {
                            break;
                        }
                        self.bump();
                    }
                    let raw = &self.input[start..self.pos];
                    let text = decode_entities(raw)
                        .map_err(|m| ParseError { offset: start, message: m })?;
                    if !(self.drop_ws_only_text
                        && text.chars().all(|c| c.is_ascii_whitespace()))
                    {
                        self.builder.text(&text);
                    }
                }
            }
        }
    }

    fn depth(&self) -> usize {
        self.open.len()
    }

    /// Parse one start tag including its attributes; pushes the namespace
    /// frame, emits the builder events, and (unless self-closing) pushes the
    /// element name onto the open stack. Returns whether it self-closed.
    fn parse_start_tag(&mut self) -> Result<bool, ParseError> {
        self.expect("<")?;
        let name = self.parse_name()?;
        // Collect raw attributes first so namespace declarations on this
        // element are in scope for its own name and attribute names.
        let mut raw_attrs: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some('>') | Some('/') => break,
                Some(c) if is_name_start(c) => {
                    let aname = self.parse_name()?;
                    self.skip_ws();
                    self.expect("=")?;
                    self.skip_ws();
                    let quote = match self.bump() {
                        Some(q @ ('"' | '\'')) => q,
                        _ => return self.err("expected quoted attribute value"),
                    };
                    let start = self.pos;
                    let close = self.rest().find(quote).ok_or_else(|| ParseError {
                        offset: self.pos,
                        message: "unterminated attribute value".into(),
                    })?;
                    let raw = &self.input[start..start + close];
                    self.pos += close + 1;
                    let value = decode_entities(raw)
                        .map_err(|m| ParseError { offset: start, message: m })?;
                    if raw_attrs.iter().any(|(n, _)| n == &aname) {
                        return self.err(format!("duplicate attribute `{aname}`"));
                    }
                    raw_attrs.push((aname, value));
                }
                _ => return self.err("malformed start tag"),
            }
        }

        let mut ns_frame = HashMap::new();
        for (n, v) in &raw_attrs {
            if n == "xmlns" {
                ns_frame.insert(String::new(), v.clone());
            } else if let Some(p) = n.strip_prefix("xmlns:") {
                ns_frame.insert(p.to_string(), v.clone());
            }
        }
        self.ns_stack.push(ns_frame);

        let qname = self.make_qname(&name, false);
        self.builder.start_element(qname);
        for (n, v) in &raw_attrs {
            // Namespace declarations are kept as plain attributes too, so
            // serialization round-trips and the XSLT engine can copy them.
            let q = if n == "xmlns" || n.starts_with("xmlns:") {
                QName { prefix: None, local: n.as_str().into(), ns_uri: None }
            } else {
                self.make_qname(n, true)
            };
            self.builder.attribute(q, v.clone());
        }

        if self.eat("/>") {
            return Ok(true);
        }
        self.expect(">")?;
        self.open.push(name);
        Ok(false)
    }

    fn parse_comment(&mut self, emit: bool) -> Result<(), ParseError> {
        self.expect("<!--")?;
        let close = self.rest().find("-->").ok_or_else(|| ParseError {
            offset: self.pos,
            message: "unterminated comment".into(),
        })?;
        let text = &self.input[self.pos..self.pos + close];
        if emit {
            self.builder.comment(text);
        }
        self.pos += close + 3;
        Ok(())
    }

    fn parse_pi(&mut self, emit: bool) -> Result<(), ParseError> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        let close = self.rest().find("?>").ok_or_else(|| ParseError {
            offset: self.pos,
            message: "unterminated processing instruction".into(),
        })?;
        let data = self.input[self.pos..self.pos + close].trim().to_string();
        if emit {
            self.builder.pi(target, data);
        }
        self.pos += close + 2;
        Ok(())
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NodeKind;
    use crate::qname::XSL_NS;

    #[test]
    fn parses_simple_document() {
        let d = parse("<dept><dname>ACCOUNTING</dname></dept>").unwrap();
        let root = d.root_element().unwrap();
        assert_eq!(&*d.element_name(root).unwrap().local, "dept");
        let dname = d.child_element(root, "dname").unwrap();
        assert_eq!(d.string_value(dname), "ACCOUNTING");
    }

    #[test]
    fn parses_attributes_and_self_closing() {
        let d = parse(r#"<table border="2" width='10'/>"#).unwrap();
        let t = d.root_element().unwrap();
        assert_eq!(d.attribute(t, "border"), Some("2"));
        assert_eq!(d.attribute(t, "width"), Some("10"));
    }

    #[test]
    fn resolves_namespaces() {
        let d = parse(
            r#"<xsl:stylesheet xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
                 <xsl:template match="/"/>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let root = d.root_element().unwrap();
        let name = d.element_name(root).unwrap();
        assert_eq!(name.ns_uri.as_deref(), Some(XSL_NS));
        assert!(name.is_xsl());
    }

    #[test]
    fn default_namespace_applies_to_elements_not_attrs() {
        let d = parse(r#"<r xmlns="urn:x" a="1"><c/></r>"#).unwrap();
        let r = d.root_element().unwrap();
        assert_eq!(d.element_name(r).unwrap().ns_uri.as_deref(), Some("urn:x"));
        let c = d.child_element(r, "c").unwrap();
        assert_eq!(d.element_name(c).unwrap().ns_uri.as_deref(), Some("urn:x"));
        let attr = d.attributes(r)[1];
        assert_eq!(d.node_name(attr).unwrap().ns_uri, None);
    }

    #[test]
    fn entity_decoding_in_text_and_attrs() {
        let d = parse(r#"<x a="&lt;v&gt;">&amp;&#65;</x>"#).unwrap();
        let x = d.root_element().unwrap();
        assert_eq!(d.attribute(x, "a"), Some("<v>"));
        assert_eq!(d.string_value(x), "&A");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let d = parse("<x><![CDATA[a < b & c]]></x>").unwrap();
        assert_eq!(d.string_value(d.root_element().unwrap()), "a < b & c");
    }

    #[test]
    fn comments_and_pis() {
        let d = parse("<x><!-- note --><?php echo?></x>").unwrap();
        let x = d.root_element().unwrap();
        let kids: Vec<_> = d.children(x).collect();
        assert!(matches!(d.kind(kids[0]), NodeKind::Comment(t) if t == " note "));
        assert!(matches!(d.kind(kids[1]), NodeKind::Pi { target, .. } if target == "php"));
    }

    #[test]
    fn xml_declaration_and_doctype() {
        let parsed = parse_with_doctype(
            "<?xml version=\"1.0\"?><!DOCTYPE dept [<!ELEMENT dept (dname)>]><dept><dname>x</dname></dept>",
        )
        .unwrap();
        assert_eq!(parsed.doctype_name.as_deref(), Some("dept"));
        assert!(parsed.internal_dtd.as_deref().unwrap().contains("<!ELEMENT dept"));
        assert!(parsed.document.root_element().is_some());
    }

    #[test]
    fn mismatched_tags_rejected() {
        assert!(parse("<a><b></a></b>").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn content_after_root_rejected() {
        assert!(parse("<a/><b/>").is_err());
    }

    #[test]
    fn unknown_entity_rejected() {
        assert!(parse("<a>&nbsp;</a>").is_err());
    }

    #[test]
    fn trimmed_drops_whitespace_only_text() {
        let d = parse_trimmed("<a>\n  <b>x</b>\n</a>").unwrap();
        let a = d.root_element().unwrap();
        assert_eq!(d.children(a).count(), 1);
    }

    #[test]
    fn untrimmed_keeps_whitespace() {
        let d = parse("<a>\n  <b>x</b>\n</a>").unwrap();
        let a = d.root_element().unwrap();
        assert_eq!(d.children(a).count(), 3);
    }

    #[test]
    fn deeply_nested_ok() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..200 {
            s.push_str("</d>");
        }
        let d = parse(&s).unwrap();
        assert_eq!(d.string_value(crate::model::NodeId::DOCUMENT), "x");
    }

    fn nested(depth: usize) -> String {
        let mut s = String::with_capacity(depth * 7 + 1);
        for _ in 0..depth {
            s.push_str("<d>");
        }
        s.push('x');
        for _ in 0..depth {
            s.push_str("</d>");
        }
        s
    }

    #[test]
    fn depth_limit_boundary() {
        // Exactly at the ceiling parses; one past it is a structured error.
        assert!(parse_with_depth_limit(&nested(10), 10).is_ok());
        let e = parse_with_depth_limit(&nested(11), 10).unwrap_err();
        assert!(e.message.contains("nesting deeper than 10"), "{e}");
    }

    #[test]
    fn pathological_nesting_errs_instead_of_overflowing() {
        // 100k-deep input: must return Err via the default ceiling, not
        // blow the thread stack.
        let e = parse(&nested(100_000)).unwrap_err();
        assert!(e.message.contains("nesting deeper than"), "{e}");
        assert!(parse_trimmed(&nested(100_000)).is_err());
        assert!(parse_with_doctype(&nested(100_000)).is_err());
    }
}
