//! ExecGuard: shared resource governance for every execution tier.
//!
//! `XMLTransform()` runs *inside* the database server, so a runaway
//! stylesheet, query, or scan must never take the server down. A [`Guard`]
//! is a cheap, clonable handle carrying the budgets one transformation is
//! allowed to consume:
//!
//! * **fuel** — an abstract step budget charged at the hot loop of every
//!   engine (one unit per VM instruction, per XQuery/XPath expression
//!   evaluation, per relational row visited);
//! * **recursion depth** — template/function call nesting ceiling;
//! * **output size** — result nodes and serialized text bytes;
//! * **wall-clock deadline** — checked lazily, piggybacked on fuel charges
//!   so the common path stays allocation- and syscall-free.
//!
//! The module lives in the XML substrate crate because every engine
//! (`xsltdb-xpath`, `xsltdb-xslt`, `xsltdb-xquery`, `xsltdb-relstore`)
//! already depends on it; the `xsltdb` core crate re-exports it as
//! `xsltdb::guard`.
//!
//! A tripped guard records the *first* violation as a structured
//! [`GuardExceeded`] (resource, limit, amount spent) retrievable via
//! [`Guard::trip`], so callers above stringly-typed engine errors — the
//! pipeline in particular — can distinguish "budget exhausted" from
//! "engine bug" without parsing messages.
//!
//! Deterministic fault injection for the tier-fallback lattice also rides
//! on the guard (see [`FaultPoint`]): injected faults are plain runtime
//! state, always compiled, so the exact binary under test is the binary in
//! production.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Which budget a [`GuardExceeded`] trip exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The abstract step budget.
    Fuel,
    /// Recursion (template / function / parser nesting) depth.
    Depth,
    /// Result-tree nodes constructed.
    OutputNodes,
    /// Serialized output bytes (text content) produced.
    OutputBytes,
    /// The wall-clock deadline.
    Deadline,
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Resource::Fuel => "fuel",
            Resource::Depth => "recursion depth",
            Resource::OutputNodes => "output nodes",
            Resource::OutputBytes => "output bytes",
            Resource::Deadline => "deadline",
        };
        f.write_str(s)
    }
}

/// Structured evidence of a resource-budget violation: which budget, what
/// the limit was, and how much had been spent when the guard tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardExceeded {
    pub resource: Resource,
    pub limit: u64,
    pub spent: u64,
}

impl fmt::Display for GuardExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.resource {
            Resource::Deadline => write!(
                f,
                "guard exceeded: deadline of {}ms overrun ({}ms elapsed)",
                self.limit, self.spent
            ),
            r => write!(
                f,
                "guard exceeded: {} limit {} (spent {})",
                r, self.limit, self.spent
            ),
        }
    }
}

impl std::error::Error for GuardExceeded {}

/// Resource ceilings for one guarded execution. `u64::MAX` (or `None` for
/// the deadline) means unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Abstract step budget across all tiers.
    pub fuel: u64,
    /// Recursion-depth ceiling.
    pub max_depth: u64,
    /// Maximum result-tree nodes.
    pub max_output_nodes: u64,
    /// Maximum serialized text bytes.
    pub max_output_bytes: u64,
    /// Wall-clock budget, measured from [`Guard::new`] (or the latest
    /// [`Guard::restart_clock`]).
    pub deadline: Option<Duration>,
}

impl Limits {
    /// No limits at all — every check is a no-op that can never trip.
    pub const UNLIMITED: Limits = Limits {
        fuel: u64::MAX,
        max_depth: u64::MAX,
        max_output_nodes: u64::MAX,
        max_output_bytes: u64::MAX,
        deadline: None,
    };

    /// Conservative server-side defaults: generous enough for every
    /// workload in the benchmark suite, small enough that an infinite
    /// template loop or FLWOR expansion dies in well under a second.
    pub fn server_default() -> Limits {
        Limits {
            fuel: 50_000_000,
            max_depth: 512,
            max_output_nodes: 10_000_000,
            max_output_bytes: 256 * 1024 * 1024,
            deadline: Some(Duration::from_secs(30)),
        }
    }

    pub fn with_fuel(mut self, fuel: u64) -> Limits {
        self.fuel = fuel;
        self
    }

    pub fn with_max_depth(mut self, d: u64) -> Limits {
        self.max_depth = d;
        self
    }

    pub fn with_max_output_nodes(mut self, n: u64) -> Limits {
        self.max_output_nodes = n;
        self
    }

    pub fn with_max_output_bytes(mut self, n: u64) -> Limits {
        self.max_output_bytes = n;
        self
    }

    pub fn with_deadline(mut self, d: Duration) -> Limits {
        self.deadline = Some(d);
        self
    }
}

impl Default for Limits {
    fn default() -> Limits {
        Limits::UNLIMITED
    }
}

/// Tier boundaries where a deterministic fault can be injected to exercise
/// the pipeline's fallback lattice (`Sql → XQuery → Vm`). The variants name
/// the pipeline's execution points; the type lives here so every engine
/// crate can honour an injection without depending on the core crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultPoint {
    /// Start of SQL-tier execution (`SqlXmlQuery::execute`).
    SqlExec,
    /// Start of XQuery-tier execution (`evaluate_query`).
    XQueryExec,
    /// Start of VM-tier execution (`transform`).
    VmExec,
    /// View materialisation (feeds the XQuery and VM tiers).
    Materialize,
}

/// What an injected fault does when its [`FaultPoint`] is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an engine error ("transient failure" shape).
    Error,
    /// Panic ("engine bug" shape) — the pipeline must contain it with
    /// `catch_unwind` at the tier boundary.
    Panic,
}

#[derive(Debug)]
struct GuardCore {
    limits: Limits,
    fuel_spent: AtomicU64,
    depth: AtomicU64,
    output_nodes: AtomicU64,
    output_bytes: AtomicU64,
    /// Wall-clock origin; a mutex because [`Guard::restart_clock`] replaces
    /// it, but it is only read every [`DEADLINE_STRIDE`] charges.
    started: Mutex<Instant>,
    /// Charges remaining until the next wall-clock check.
    deadline_stride_left: AtomicU32,
    /// First violation observed; later checks keep returning it. Cold path
    /// (locked only when a budget is pierced or a deadline is read), so a
    /// mutex costs nothing where it matters.
    trip: Mutex<Option<GuardExceeded>>,
    /// Injected faults: (point, kind); armed and taken at tier boundaries,
    /// never in a hot loop.
    faults: Mutex<[Option<(FaultPoint, FaultKind)>; 4]>,
}

/// Lock a guard-internal mutex. The guard is panic-tolerant by design (the
/// pipeline contains engine panics at tier boundaries), so a poisoned lock
/// just yields the inner state — the counters are always valid u64s.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// How many fuel charges pass between wall-clock reads. `Instant::now()`
/// costs a vDSO call; the hot loops charge fuel every few nanoseconds.
const DEADLINE_STRIDE: u32 = 1024;

/// A shared, clonable resource-governance handle. Cloning is cheap (one
/// `Arc` bump) and every clone shares the same budgets, so a pipeline can
/// hand one guard to all three tiers and the spend accumulates globally.
///
/// The counters are relaxed atomics, so a guard (or any clone of it) can be
/// charged from any thread: concurrent sessions sharing prepared plans out
/// of a [`SharedPlanCache`](../../xsltdb/plancache/struct.SharedPlanCache.html)
/// each arm their own guard, but nothing stops one guarded execution from
/// being split across worker threads. Single-threaded observable behaviour
/// is unchanged — every charge is a read-modify-write, so totals are exact.
#[derive(Debug, Clone)]
pub struct Guard {
    core: Arc<GuardCore>,
}

// The whole point of the concurrent engine: a guard must cross threads.
// (Compile-time enforcement; mirrors the `TransformPlan: Send + Sync`
// assertion in the core crate.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Guard>();
    assert_send_sync::<Limits>();
    assert_send_sync::<GuardExceeded>();
};

impl Default for Guard {
    fn default() -> Guard {
        Guard::unlimited()
    }
}

impl Guard {
    /// A guard enforcing `limits`, with the wall clock starting now.
    pub fn new(limits: Limits) -> Guard {
        Guard {
            core: Arc::new(GuardCore {
                limits,
                fuel_spent: AtomicU64::new(0),
                depth: AtomicU64::new(0),
                output_nodes: AtomicU64::new(0),
                output_bytes: AtomicU64::new(0),
                started: Mutex::new(Instant::now()),
                deadline_stride_left: AtomicU32::new(0),
                trip: Mutex::new(None),
                faults: Mutex::new([None; 4]),
            }),
        }
    }

    /// A guard that never trips. This is the default everywhere a guard is
    /// not supplied explicitly, preserving pre-ExecGuard behaviour.
    pub fn unlimited() -> Guard {
        Guard::new(Limits::UNLIMITED)
    }

    /// The limits this guard enforces.
    pub fn limits(&self) -> Limits {
        self.core.limits
    }

    /// Arm a deterministic fault at `point`. Up to four distinct points can
    /// be armed on one guard; re-arming a point replaces its kind. Faults
    /// are one-shot: taking one disarms it, so a pipeline retry on a lower
    /// tier proceeds cleanly.
    pub fn with_fault(self, point: FaultPoint, kind: FaultKind) -> Guard {
        {
            let mut faults = lock(&self.core.faults);
            // Re-arm in place if the point is already armed, else take the
            // first free slot — never both, or one take_fault could fire
            // twice.
            if let Some(slot) = faults
                .iter_mut()
                .find(|s| s.map(|(p, _)| p == point).unwrap_or(false))
            {
                *slot = Some((point, kind));
            } else if let Some(slot) = faults.iter_mut().find(|s| s.is_none()) {
                *slot = Some((point, kind));
            }
        }
        self
    }

    /// Take (and disarm) the fault injected at `point`, if any. Engines and
    /// the pipeline call this at their tier boundary. Atomic under the
    /// fault lock: of two racing takers, exactly one observes the fault.
    pub fn take_fault(&self, point: FaultPoint) -> Option<FaultKind> {
        lock(&self.core.faults)
            .iter_mut()
            .find(|s| s.map(|(p, _)| p == point).unwrap_or(false))
            .and_then(|slot| slot.take())
            .map(|(_, k)| k)
    }

    /// The first budget violation observed by any clone of this guard, if
    /// one has tripped. Engines surface trips as their native (stringly)
    /// error types; callers that need the structured evidence — the
    /// pipeline's typed `PipelineError::Guard` variant — read it here.
    pub fn trip(&self) -> Option<GuardExceeded> {
        *lock(&self.core.trip)
    }

    /// Reset the wall-clock origin to now (for guards built ahead of time
    /// and reused).
    pub fn restart_clock(&self) {
        *lock(&self.core.started) = Instant::now();
        self.core.deadline_stride_left.store(0, Ordering::Relaxed);
    }

    /// Fuel spent so far across every tier sharing this guard.
    pub fn fuel_spent(&self) -> u64 {
        self.core.fuel_spent.load(Ordering::Relaxed)
    }

    fn fail(&self, e: GuardExceeded) -> GuardExceeded {
        // Always report the *first* trip so concurrent budgets (or racing
        // threads) don't shadow the root cause on re-checks.
        *lock(&self.core.trip).get_or_insert(e)
    }

    /// Charge `n` abstract steps. Cheap: one relaxed fetch-add and a
    /// compare on the untripped path; the wall clock is read only every
    /// [`DEADLINE_STRIDE`] charges.
    #[inline]
    pub fn charge(&self, n: u64) -> Result<(), GuardExceeded> {
        let spent = self
            .core
            .fuel_spent
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if spent > self.core.limits.fuel {
            return Err(self.fail(GuardExceeded {
                resource: Resource::Fuel,
                limit: self.core.limits.fuel,
                spent,
            }));
        }
        if self.core.limits.deadline.is_some() {
            // The stride counter wraps on concurrent decrements; it is a
            // sampling heuristic, not an exact period — any thread that
            // observes 0 re-arms it and pays the clock read.
            let left = self.core.deadline_stride_left.fetch_sub(1, Ordering::Relaxed);
            if left == 0 {
                self.core
                    .deadline_stride_left
                    .store(DEADLINE_STRIDE, Ordering::Relaxed);
                self.check_deadline()?;
            }
        }
        Ok(())
    }

    /// Read the wall clock and trip if the deadline has passed. Engines
    /// normally rely on the strided check inside [`Guard::charge`]; call
    /// this directly at coarse boundaries (per document, per tier).
    pub fn check_deadline(&self) -> Result<(), GuardExceeded> {
        if let Some(trip) = *lock(&self.core.trip) {
            return Err(trip);
        }
        if let Some(d) = self.core.limits.deadline {
            let elapsed = lock(&self.core.started).elapsed();
            if elapsed > d {
                return Err(self.fail(GuardExceeded {
                    resource: Resource::Deadline,
                    limit: d.as_millis() as u64,
                    spent: elapsed.as_millis() as u64,
                }));
            }
        }
        Ok(())
    }

    /// Enter one recursion level; pair with [`Guard::leave`]. Returns the
    /// structured violation when the ceiling is pierced (the level is *not*
    /// entered in that case — do not call `leave`).
    #[inline]
    pub fn enter(&self) -> Result<(), GuardExceeded> {
        let d = self.core.depth.fetch_add(1, Ordering::Relaxed) + 1;
        if d > self.core.limits.max_depth {
            // Roll the failed entry back so the rejected level is not
            // counted — callers must not `leave` after an `enter` error.
            self.core.depth.fetch_sub(1, Ordering::Relaxed);
            return Err(self.fail(GuardExceeded {
                resource: Resource::Depth,
                limit: self.core.limits.max_depth,
                spent: d,
            }));
        }
        Ok(())
    }

    /// Leave a recursion level previously entered with [`Guard::enter`].
    #[inline]
    pub fn leave(&self) {
        // Saturating: an unpaired `leave` clamps at zero instead of
        // wrapping, matching the pre-atomic behaviour.
        let _ = self
            .core
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Current recursion depth (for diagnostics).
    pub fn depth(&self) -> u64 {
        self.core.depth.load(Ordering::Relaxed)
    }

    /// Account `n` result-tree nodes.
    #[inline]
    pub fn charge_output_nodes(&self, n: u64) -> Result<(), GuardExceeded> {
        let total = self
            .core
            .output_nodes
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if total > self.core.limits.max_output_nodes {
            return Err(self.fail(GuardExceeded {
                resource: Resource::OutputNodes,
                limit: self.core.limits.max_output_nodes,
                spent: total,
            }));
        }
        Ok(())
    }

    /// Account `n` serialized output bytes.
    #[inline]
    pub fn charge_output_bytes(&self, n: u64) -> Result<(), GuardExceeded> {
        let total = self
            .core
            .output_bytes
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        if total > self.core.limits.max_output_bytes {
            return Err(self.fail(GuardExceeded {
                resource: Resource::OutputBytes,
                limit: self.core.limits.max_output_bytes,
                spent: total,
            }));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = Guard::unlimited();
        for _ in 0..10_000 {
            g.charge(1_000_000).unwrap();
        }
        g.charge_output_nodes(u64::MAX / 2).unwrap();
        g.charge_output_bytes(u64::MAX / 2).unwrap();
        assert!(g.trip().is_none());
    }

    #[test]
    fn fuel_trips_with_evidence() {
        let g = Guard::new(Limits::UNLIMITED.with_fuel(10));
        assert!(g.charge(8).is_ok());
        let e = g.charge(5).unwrap_err();
        assert_eq!(e.resource, Resource::Fuel);
        assert_eq!(e.limit, 10);
        assert_eq!(e.spent, 13);
        assert_eq!(g.trip(), Some(e));
        // The first trip is sticky even if another budget is pierced later.
        let e2 = g.charge(1).unwrap_err();
        assert_eq!(e2, e);
    }

    #[test]
    fn depth_ceiling_enforced() {
        let g = Guard::new(Limits::UNLIMITED.with_max_depth(2));
        g.enter().unwrap();
        g.enter().unwrap();
        let e = g.enter().unwrap_err();
        assert_eq!(e.resource, Resource::Depth);
        g.leave();
        g.leave();
        assert_eq!(g.depth(), 0);
    }

    #[test]
    fn output_budgets_enforced() {
        let g = Guard::new(Limits::UNLIMITED.with_max_output_nodes(3));
        g.charge_output_nodes(3).unwrap();
        assert_eq!(
            g.charge_output_nodes(1).unwrap_err().resource,
            Resource::OutputNodes
        );
        let g = Guard::new(Limits::UNLIMITED.with_max_output_bytes(8));
        g.charge_output_bytes(8).unwrap();
        assert_eq!(
            g.charge_output_bytes(1).unwrap_err().resource,
            Resource::OutputBytes
        );
    }

    #[test]
    fn expired_deadline_trips_promptly() {
        let g = Guard::new(Limits::UNLIMITED.with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        let e = g.check_deadline().unwrap_err();
        assert_eq!(e.resource, Resource::Deadline);
        // The strided charge path sees it too (first charge checks).
        let g2 = Guard::new(Limits::UNLIMITED.with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(g2.charge(1).unwrap_err().resource, Resource::Deadline);
    }

    #[test]
    fn clones_share_budgets() {
        let g = Guard::new(Limits::UNLIMITED.with_fuel(10));
        let h = g.clone();
        h.charge(7).unwrap();
        assert!(g.charge(7).is_err());
        assert_eq!(g.trip().unwrap().resource, Resource::Fuel);
    }

    #[test]
    fn faults_are_one_shot_and_per_point() {
        let g = Guard::unlimited()
            .with_fault(FaultPoint::SqlExec, FaultKind::Error)
            .with_fault(FaultPoint::XQueryExec, FaultKind::Panic);
        assert_eq!(g.take_fault(FaultPoint::VmExec), None);
        assert_eq!(g.take_fault(FaultPoint::SqlExec), Some(FaultKind::Error));
        assert_eq!(g.take_fault(FaultPoint::SqlExec), None, "one-shot");
        assert_eq!(g.take_fault(FaultPoint::XQueryExec), Some(FaultKind::Panic));
    }

    #[test]
    fn rearming_a_point_replaces_kind() {
        let g = Guard::unlimited()
            .with_fault(FaultPoint::SqlExec, FaultKind::Error)
            .with_fault(FaultPoint::SqlExec, FaultKind::Panic);
        assert_eq!(g.take_fault(FaultPoint::SqlExec), Some(FaultKind::Panic));
        assert_eq!(g.take_fault(FaultPoint::SqlExec), None);
    }

    #[test]
    fn clones_charge_from_other_threads() {
        let g = Guard::new(Limits::UNLIMITED.with_fuel(100_000));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        h.charge(1).unwrap();
                        h.charge_output_nodes(1).unwrap();
                        h.charge_output_bytes(2).unwrap();
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        // Relaxed atomics still never lose a charge: totals are exact.
        assert_eq!(g.fuel_spent(), 4_000);
        assert!(g.trip().is_none());
    }

    #[test]
    fn concurrent_trips_report_one_first_violation() {
        let g = Guard::new(Limits::UNLIMITED.with_fuel(10));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = g.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _ = h.charge(1);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let trip = g.trip().expect("400 charges against 10 fuel must trip");
        assert_eq!(trip.resource, Resource::Fuel);
        // Every later observer sees the same sticky first violation.
        assert_eq!(g.charge(1).unwrap_err(), trip);
    }

    #[test]
    fn restart_clock_resets_deadline() {
        let g = Guard::new(Limits::UNLIMITED.with_deadline(Duration::from_secs(3600)));
        g.check_deadline().unwrap();
        g.restart_clock();
        g.check_deadline().unwrap();
    }
}
