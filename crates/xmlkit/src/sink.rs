//! `XmlSink`: the event-based emission boundary between transform engines
//! and result representation.
//!
//! The paper's SQL tier is an iterator pipeline whose whole point is that
//! results *leave* the engine without ever existing as a tree. Engines
//! therefore emit **events** — start/end element, attribute, text — into an
//! [`XmlSink`], and the sink decides what a result *is*:
//!
//! * [`TreeSink`] materialises the events through the existing
//!   [`TreeBuilder`], preserving the arena-[`Document`] API for every caller
//!   that needs a navigable tree (the XQuery and VM tiers, `eval_to_text`
//!   temporaries, tests).
//! * [`StreamWriter`] serializes events straight into any [`io::Write`]
//!   with **zero DOM nodes**, charging [`Guard::charge_output_bytes`] for
//!   every byte *as it is written* — so `max_output_bytes` trips mid-stream,
//!   when the budget is actually pierced, not after a whole result tree has
//!   already been paid for.
//! * [`TextSink`] accumulates only character data, which is exactly the
//!   XPath string-value of the tree the events describe — the cheap path
//!   for attribute-value evaluation.
//!
//! Escaping is applied **at the sink**: producers hand over raw text and
//! attribute values, and `StreamWriter` escapes on the way out while
//! `TreeSink` stores them raw (the serializer escapes later). This is what
//! makes the two implementations byte-equivalent: for any event sequence,
//! `StreamWriter` output == `to_string(TreeSink output)` — property-tested
//! in `tests/prop_sink.rs`.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use std::fmt;
use std::io;

use crate::builder::TreeBuilder;
use crate::escape::{escape_attr, escape_text};
use crate::guard::{Guard, GuardExceeded};
use crate::model::{Document, NodeId, NodeKind};
use crate::qname::QName;

/// Why a sink refused an event.
#[derive(Debug)]
pub enum SinkError {
    /// A guard budget (typically `max_output_bytes`) was exhausted.
    Guard(GuardExceeded),
    /// The underlying writer failed (streaming sinks only).
    Io(io::Error),
    /// The event is invalid at this position (e.g. an attribute after
    /// child content, or `end_element` with nothing open).
    Misplaced(&'static str),
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Guard(g) => g.fmt(f),
            SinkError::Io(e) => write!(f, "sink write failed: {e}"),
            SinkError::Misplaced(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for SinkError {}

impl From<GuardExceeded> for SinkError {
    fn from(g: GuardExceeded) -> SinkError {
        SinkError::Guard(g)
    }
}

impl From<io::Error> for SinkError {
    fn from(e: io::Error) -> SinkError {
        SinkError::Io(e)
    }
}

/// Receiver of XML construction events.
///
/// The contract mirrors [`TreeBuilder`]: attributes must arrive between an
/// element's `start_element` and its first content event; empty text is a
/// no-op (it does not count as content); a repeated attribute name replaces
/// the earlier value in place (last write wins). Implementations apply
/// escaping themselves — callers pass raw text.
pub trait XmlSink {
    /// Open an element.
    fn start_element(&mut self, name: QName) -> Result<(), SinkError>;
    /// Add an attribute to the element opened by the most recent
    /// `start_element`, which must not have received content yet.
    fn attribute(&mut self, name: QName, value: &str) -> Result<(), SinkError>;
    /// Append character data. Empty text is ignored.
    fn text(&mut self, content: &str) -> Result<(), SinkError>;
    /// Append a comment.
    fn comment(&mut self, content: &str) -> Result<(), SinkError>;
    /// Append a processing instruction.
    fn pi(&mut self, target: &str, data: &str) -> Result<(), SinkError>;
    /// Close the most recently opened element.
    fn end_element(&mut self) -> Result<(), SinkError>;
    /// Number of currently open elements (0 at the top level).
    fn depth(&self) -> usize;
}

/// An [`XmlSink`] that materialises events into an arena [`Document`] via
/// [`TreeBuilder`], charging text bytes against the guard as they are
/// buffered (the pre-sink accounting the engines used to do inline).
pub struct TreeSink {
    builder: TreeBuilder,
    guard: Guard,
}

impl TreeSink {
    pub fn new(guard: Guard) -> TreeSink {
        TreeSink { builder: TreeBuilder::new(), guard }
    }

    /// An unguarded tree sink (for tests and unguarded entry points).
    pub fn unguarded() -> TreeSink {
        TreeSink::new(Guard::unlimited())
    }

    /// Finish building, requiring every element to be closed.
    pub fn finish(self) -> Document {
        self.builder.finish()
    }

    /// Finish building, closing any still-open elements first.
    pub fn finish_lenient(self) -> Document {
        self.builder.finish_lenient()
    }
}

impl XmlSink for TreeSink {
    fn start_element(&mut self, name: QName) -> Result<(), SinkError> {
        self.builder.start_element(name);
        Ok(())
    }

    fn attribute(&mut self, name: QName, value: &str) -> Result<(), SinkError> {
        // No byte charge here: attribute values are produced through a
        // `TextSink`, which already charged them.
        self.builder.try_attribute(name, value).map_err(SinkError::Misplaced)
    }

    fn text(&mut self, content: &str) -> Result<(), SinkError> {
        self.guard.charge_output_bytes(content.len() as u64)?;
        self.builder.text(content);
        Ok(())
    }

    fn comment(&mut self, content: &str) -> Result<(), SinkError> {
        self.builder.comment(content);
        Ok(())
    }

    fn pi(&mut self, target: &str, data: &str) -> Result<(), SinkError> {
        self.builder.pi(target, data);
        Ok(())
    }

    fn end_element(&mut self) -> Result<(), SinkError> {
        if self.builder.depth() == 0 {
            return Err(SinkError::Misplaced("end_element without start_element"));
        }
        self.builder.end_element();
        Ok(())
    }

    fn depth(&self) -> usize {
        self.builder.depth()
    }
}

/// An [`XmlSink`] that keeps only character data — the XPath string-value
/// of the tree the events describe. Markup events are accepted and
/// discarded (attribute values and comments are not part of an element's
/// string-value).
pub struct TextSink {
    buf: String,
    guard: Guard,
    depth: usize,
}

impl TextSink {
    pub fn new(guard: Guard) -> TextSink {
        TextSink { buf: String::new(), guard, depth: 0 }
    }

    /// The accumulated character data.
    pub fn into_string(self) -> String {
        self.buf
    }
}

impl XmlSink for TextSink {
    fn start_element(&mut self, _name: QName) -> Result<(), SinkError> {
        self.depth += 1;
        Ok(())
    }

    fn attribute(&mut self, _name: QName, _value: &str) -> Result<(), SinkError> {
        Ok(())
    }

    fn text(&mut self, content: &str) -> Result<(), SinkError> {
        self.guard.charge_output_bytes(content.len() as u64)?;
        self.buf.push_str(content);
        Ok(())
    }

    fn comment(&mut self, _content: &str) -> Result<(), SinkError> {
        Ok(())
    }

    fn pi(&mut self, _target: &str, _data: &str) -> Result<(), SinkError> {
        Ok(())
    }

    fn end_element(&mut self) -> Result<(), SinkError> {
        if self.depth == 0 {
            return Err(SinkError::Misplaced("end_element without start_element"));
        }
        self.depth -= 1;
        Ok(())
    }

    fn depth(&self) -> usize {
        self.depth
    }
}

/// An open start tag whose attributes may still arrive: serialization is
/// deferred until the first content event decides between `>` and `/>`.
struct PendingTag {
    name: QName,
    attrs: Vec<(QName, String)>,
}

/// An [`XmlSink`] that serializes events directly into an [`io::Write`]
/// with zero DOM allocation, byte-identical to
/// [`to_string`](crate::serialize::to_string) of the equivalent tree.
///
/// Every chunk is charged against [`Guard::charge_output_bytes`] *before*
/// it is written, so when `max_output_bytes` trips the bytes already on the
/// wire never exceed the limit — the stream stops mid-result instead of
/// accounting for a tree that was already fully built.
pub struct StreamWriter<W: io::Write> {
    out: W,
    guard: Guard,
    pending: Option<PendingTag>,
    /// Names of flushed-but-unclosed elements, for `</name>`.
    stack: Vec<QName>,
    /// Scratch buffer: each event is assembled here and written in one call.
    scratch: String,
    bytes_written: u64,
}

impl<W: io::Write> StreamWriter<W> {
    pub fn new(out: W, guard: Guard) -> StreamWriter<W> {
        StreamWriter {
            out,
            guard,
            pending: None,
            stack: Vec::new(),
            scratch: String::new(),
            bytes_written: 0,
        }
    }

    /// Total bytes emitted to the writer so far.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Close any still-open elements (the lenient finish) and return the
    /// writer. Call this before dropping the sink — a pending start tag
    /// that was never flushed would otherwise vanish.
    pub fn finish(mut self) -> Result<W, SinkError> {
        while self.pending.is_some() || !self.stack.is_empty() {
            self.end_element()?;
        }
        Ok(self.out)
    }

    /// Charge the guard for `scratch`, then write it. Charging first keeps
    /// the written byte count at or under `max_output_bytes`.
    fn emit_scratch(&mut self) -> Result<(), SinkError> {
        let n = self.scratch.len() as u64;
        self.guard.charge_output_bytes(n)?;
        self.out.write_all(self.scratch.as_bytes())?;
        self.bytes_written += n;
        self.scratch.clear();
        Ok(())
    }

    /// Serialize the pending start tag into `scratch`, terminated with
    /// `">"` (content follows) or `"/>"` (the element is empty).
    fn flush_pending(&mut self, self_close: bool) -> Result<(), SinkError> {
        let Some(tag) = self.pending.take() else {
            return Ok(());
        };
        self.scratch.push('<');
        self.scratch.push_str(&tag.name.lexical());
        for (aname, avalue) in &tag.attrs {
            self.scratch.push(' ');
            self.scratch.push_str(&aname.lexical());
            self.scratch.push_str("=\"");
            self.scratch.push_str(&escape_attr(avalue));
            self.scratch.push('"');
        }
        if self_close {
            self.scratch.push_str("/>");
        } else {
            self.scratch.push('>');
            self.stack.push(tag.name);
        }
        self.emit_scratch()
    }
}

impl<W: io::Write> XmlSink for StreamWriter<W> {
    fn start_element(&mut self, name: QName) -> Result<(), SinkError> {
        self.flush_pending(false)?;
        self.pending = Some(PendingTag { name, attrs: Vec::new() });
        Ok(())
    }

    fn attribute(&mut self, name: QName, value: &str) -> Result<(), SinkError> {
        let Some(tag) = self.pending.as_mut() else {
            // Distinguish the two TreeBuilder rejection shapes: no element
            // at all vs. an element whose content has started.
            return Err(SinkError::Misplaced(if self.stack.is_empty() {
                "attribute outside an element"
            } else {
                "attributes must be added before child content"
            }));
        };
        // Last write wins, in first-occurrence position — matching
        // TreeBuilder's in-place replacement.
        if let Some(slot) = tag.attrs.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value.to_string();
        } else {
            tag.attrs.push((name, value.to_string()));
        }
        Ok(())
    }

    fn text(&mut self, content: &str) -> Result<(), SinkError> {
        // Empty text is not content: it must not force `<x></x>` where the
        // tree path would produce `<x/>`.
        if content.is_empty() {
            return Ok(());
        }
        self.flush_pending(false)?;
        self.scratch.push_str(&escape_text(content));
        self.emit_scratch()
    }

    fn comment(&mut self, content: &str) -> Result<(), SinkError> {
        self.flush_pending(false)?;
        self.scratch.push_str("<!--");
        self.scratch.push_str(content);
        self.scratch.push_str("-->");
        self.emit_scratch()
    }

    fn pi(&mut self, target: &str, data: &str) -> Result<(), SinkError> {
        self.flush_pending(false)?;
        self.scratch.push_str("<?");
        self.scratch.push_str(target);
        if !data.is_empty() {
            self.scratch.push(' ');
            self.scratch.push_str(data);
        }
        self.scratch.push_str("?>");
        self.emit_scratch()
    }

    fn end_element(&mut self) -> Result<(), SinkError> {
        if self.pending.is_some() {
            return self.flush_pending(true);
        }
        let name = self
            .stack
            .pop()
            .ok_or(SinkError::Misplaced("end_element without start_element"))?;
        self.scratch.push_str("</");
        self.scratch.push_str(&name.lexical());
        self.scratch.push('>');
        self.emit_scratch()
    }

    fn depth(&self) -> usize {
        self.stack.len() + usize::from(self.pending.is_some())
    }
}

/// Replay the subtree rooted at `node` as events into `sink` — the event
/// form of [`TreeBuilder::copy_subtree`]. A `Document` node replays its
/// children (so a whole result document replays as a forest); an
/// `Attribute` node replays as a bare attribute event, which the sink
/// rejects as misplaced unless an element tag is still open — the same
/// positions [`TreeBuilder`] accepts.
///
/// Returns the number of nodes visited (elements, attributes, text,
/// comments, PIs — the `Document` wrapper is free), which is exactly the
/// tree size a spilling evaluator materialised to produce this subtree.
pub fn replay_subtree(
    doc: &Document,
    node: NodeId,
    sink: &mut dyn XmlSink,
) -> Result<u64, SinkError> {
    match doc.kind(node) {
        NodeKind::Document => {
            let mut n = 0;
            for child in doc.children(node) {
                n += replay_subtree(doc, child, sink)?;
            }
            Ok(n)
        }
        NodeKind::Element { name, attrs } => {
            sink.start_element(name.clone())?;
            let mut n = 1;
            for &attr in attrs {
                if let NodeKind::Attribute { name, value } = doc.kind(attr) {
                    sink.attribute(name.clone(), value)?;
                    n += 1;
                }
            }
            for child in doc.children(node) {
                n += replay_subtree(doc, child, sink)?;
            }
            sink.end_element()?;
            Ok(n)
        }
        NodeKind::Attribute { name, value } => {
            sink.attribute(name.clone(), value)?;
            Ok(1)
        }
        NodeKind::Text(t) => {
            sink.text(t)?;
            Ok(1)
        }
        NodeKind::Comment(t) => {
            sink.comment(t)?;
            Ok(1)
        }
        NodeKind::Pi { target, data } => {
            sink.pi(target, data)?;
            Ok(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::Limits;
    use crate::serialize::to_string;

    /// Drive the same event sequence into both sinks; assert byte identity.
    fn differential(events: impl Fn(&mut dyn XmlSink) -> Result<(), SinkError>) -> String {
        let mut tree = TreeSink::unguarded();
        events(&mut tree).unwrap();
        let via_tree = to_string(&tree.finish_lenient());

        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        events(&mut sw).unwrap();
        let streamed = String::from_utf8(sw.finish().unwrap()).unwrap();

        assert_eq!(streamed, via_tree);
        via_tree
    }

    #[test]
    fn element_with_attrs_and_text() {
        let s = differential(|s| {
            s.start_element(QName::local("r"))?;
            s.attribute(QName::local("a"), "x<y\"z")?;
            s.text("hi & bye")?;
            s.end_element()
        });
        assert_eq!(s, "<r a=\"x&lt;y&quot;z\">hi &amp; bye</r>");
    }

    #[test]
    fn empty_element_self_closes() {
        let s = differential(|s| {
            s.start_element(QName::local("x"))?;
            s.end_element()
        });
        assert_eq!(s, "<x/>");
    }

    #[test]
    fn empty_text_does_not_force_open_close() {
        let s = differential(|s| {
            s.start_element(QName::local("x"))?;
            s.text("")?;
            s.end_element()
        });
        assert_eq!(s, "<x/>");
    }

    #[test]
    fn duplicate_attribute_last_wins_in_place() {
        let s = differential(|s| {
            s.start_element(QName::local("r"))?;
            s.attribute(QName::local("a"), "1")?;
            s.attribute(QName::local("b"), "2")?;
            s.attribute(QName::local("a"), "3")?;
            s.end_element()
        });
        assert_eq!(s, "<r a=\"3\" b=\"2\"/>");
    }

    #[test]
    fn nested_siblings_and_mixed_content() {
        let s = differential(|s| {
            s.start_element(QName::local("r"))?;
            s.text("pre")?;
            s.start_element(QName::local("a"))?;
            s.end_element()?;
            s.text("mid")?;
            s.start_element(QName::local("b"))?;
            s.text("deep")?;
            s.end_element()?;
            s.end_element()
        });
        assert_eq!(s, "<r>pre<a/>mid<b>deep</b></r>");
    }

    #[test]
    fn comments_and_pis() {
        let s = differential(|s| {
            s.start_element(QName::local("x"))?;
            s.comment("c")?;
            s.pi("t", "d")?;
            s.pi("empty", "")?;
            s.end_element()
        });
        assert_eq!(s, "<x><!--c--><?t d?><?empty?></x>");
    }

    #[test]
    fn multiple_document_children_concatenate() {
        let s = differential(|s| {
            s.start_element(QName::local("a"))?;
            s.end_element()?;
            s.start_element(QName::local("b"))?;
            s.text("t")?;
            s.end_element()
        });
        assert_eq!(s, "<a/><b>t</b>");
    }

    #[test]
    fn carriage_return_streams_escaped() {
        let s = differential(|s| {
            s.start_element(QName::local("x"))?;
            s.attribute(QName::local("a"), "v\r")?;
            s.text("a\rb")?;
            s.end_element()
        });
        assert_eq!(s, "<x a=\"v&#13;\">a&#13;b</x>");
    }

    #[test]
    fn misplaced_attribute_matches_builder_messages() {
        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        match sw.attribute(QName::local("a"), "v") {
            Err(SinkError::Misplaced(m)) => assert_eq!(m, "attribute outside an element"),
            other => panic!("expected Misplaced, got {other:?}"),
        }
        sw.start_element(QName::local("r")).unwrap();
        sw.text("content").unwrap();
        match sw.attribute(QName::local("a"), "v") {
            Err(SinkError::Misplaced(m)) => {
                assert_eq!(m, "attributes must be added before child content")
            }
            other => panic!("expected Misplaced, got {other:?}"),
        }
    }

    #[test]
    fn end_without_start_is_error() {
        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        assert!(matches!(sw.end_element(), Err(SinkError::Misplaced(_))));
        let mut tree = TreeSink::unguarded();
        assert!(matches!(tree.end_element(), Err(SinkError::Misplaced(_))));
    }

    #[test]
    fn finish_closes_open_elements_leniently() {
        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        sw.start_element(QName::local("a")).unwrap();
        sw.text("x").unwrap();
        sw.start_element(QName::local("b")).unwrap();
        let bytes = sw.finish().unwrap();
        assert_eq!(String::from_utf8(bytes).unwrap(), "<a>x<b/></a>");
    }

    #[test]
    fn stream_writer_charges_bytes_and_trips_mid_stream() {
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(10));
        let mut sw = StreamWriter::new(Vec::new(), guard.clone());
        sw.start_element(QName::local("r")).unwrap();
        // "<r>" (3 bytes) flushes fine; a long text chunk pierces the cap.
        let err = sw.text("0123456789ABCDEF").unwrap_err();
        assert!(matches!(err, SinkError::Guard(_)));
        assert!(guard.trip().is_some());
        // The rejected chunk never reached the writer: bytes on the wire
        // stay at or under the limit.
        assert!(sw.bytes_written() <= 10);
    }

    #[test]
    fn tree_sink_charges_text_bytes() {
        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(4));
        let mut tree = TreeSink::new(guard.clone());
        tree.start_element(QName::local("r")).unwrap();
        tree.text("abcd").unwrap();
        assert!(matches!(tree.text("e"), Err(SinkError::Guard(_))));
        assert!(guard.trip().is_some());
    }

    #[test]
    fn text_sink_is_string_value() {
        let mut ts = TextSink::new(Guard::unlimited());
        ts.start_element(QName::local("t")).unwrap();
        ts.text("a").unwrap();
        ts.start_element(QName::local("inner")).unwrap();
        ts.attribute(QName::local("ignored"), "attr").unwrap();
        ts.text("b").unwrap();
        ts.end_element().unwrap();
        ts.comment("not text").unwrap();
        ts.text("c").unwrap();
        ts.end_element().unwrap();
        assert_eq!(ts.into_string(), "abc");
    }

    #[test]
    fn replay_subtree_round_trips_a_document() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.attribute(QName::local("a"), "1<2");
        b.text("pre");
        b.comment("c");
        b.start_element(QName::local("inner"));
        b.end_element();
        b.pi("t", "d");
        b.end_element();
        b.start_element(QName::local("second"));
        b.end_element();
        let doc = b.finish();

        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        let nodes = replay_subtree(&doc, NodeId::DOCUMENT, &mut sw).unwrap();
        let streamed = String::from_utf8(sw.finish().unwrap()).unwrap();
        assert_eq!(streamed, to_string(&doc));
        // r + @a + "pre" + comment + inner + pi + second = 7 nodes.
        assert_eq!(nodes, 7);
    }

    #[test]
    fn replay_attribute_node_at_top_level_is_misplaced_not_a_panic() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("holder"));
        b.attribute(QName::local("k"), "v");
        b.end_element();
        let doc = b.finish();
        let attr = doc.attributes(doc.root_element().unwrap())[0];

        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        match replay_subtree(&doc, attr, &mut sw) {
            Err(SinkError::Misplaced(m)) => assert_eq!(m, "attribute outside an element"),
            other => panic!("expected Misplaced, got {other:?}"),
        }
    }

    #[test]
    fn replay_attribute_into_open_tag_lands_on_the_element() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("holder"));
        b.attribute(QName::local("k"), "v");
        b.end_element();
        let doc = b.finish();
        let attr = doc.attributes(doc.root_element().unwrap())[0];

        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        sw.start_element(QName::local("target")).unwrap();
        assert_eq!(replay_subtree(&doc, attr, &mut sw).unwrap(), 1);
        sw.end_element().unwrap();
        let streamed = String::from_utf8(sw.finish().unwrap()).unwrap();
        assert_eq!(streamed, "<target k=\"v\"/>");
    }

    #[test]
    fn replay_charges_the_sink_guard_mid_stream() {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("r"));
        b.text("0123456789ABCDEF");
        b.end_element();
        let doc = b.finish();

        let guard = Guard::new(Limits::UNLIMITED.with_max_output_bytes(8));
        let mut sw = StreamWriter::new(Vec::new(), guard.clone());
        let err = replay_subtree(&doc, NodeId::DOCUMENT, &mut sw).unwrap_err();
        assert!(matches!(err, SinkError::Guard(_)));
        assert!(guard.trip().is_some());
        assert!(sw.bytes_written() <= 8);
    }

    #[test]
    fn io_errors_surface() {
        struct Broken;
        impl io::Write for Broken {
            fn write(&mut self, _b: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sw = StreamWriter::new(Broken, Guard::unlimited());
        sw.start_element(QName::local("r")).unwrap();
        assert!(matches!(sw.text("x"), Err(SinkError::Io(_))));
    }
}
