//! # xsltdb-xml
//!
//! XML substrate for the `xsltdb` reproduction of *"Efficient XSLT
//! Processing in Relational Database System"* (Liu & Novoselsky, VLDB 2006):
//! an arena-based document model, a non-validating parser, a serializer, and
//! a document builder.
//!
//! Documents are append-only and immutable once built, so node-id order is
//! document order — the property the XPath engine exploits to keep node-sets
//! sorted cheaply.
//!
//! ```
//! use xsltdb_xml::{parse, serialize};
//!
//! let doc = parse::parse("<dept><dname>ACCOUNTING</dname></dept>").unwrap();
//! let root = doc.root_element().unwrap();
//! assert_eq!(doc.string_value(root), "ACCOUNTING");
//! assert_eq!(serialize::to_string(&doc), "<dept><dname>ACCOUNTING</dname></dept>");
//! ```

pub mod builder;
pub mod escape;
pub mod guard;
pub mod ledger;
pub mod model;
pub mod qname;
pub mod serialize;
pub mod sink;

/// Parser module, re-exported under a short name.
pub mod parse {
    pub use crate::parser::*;
}
mod parser;

pub use builder::TreeBuilder;
pub use guard::{FaultKind, FaultPoint, Guard, GuardExceeded, Limits, Resource};
pub use ledger::{LedgerDenied, LedgerLimits, LedgerSnapshot, Reservation, ResourceLedger};
pub use model::{DocRc, Document, Node, NodeId, NodeKind};
pub use parser::{
    parse as parse_xml, parse_trimmed, parse_with_depth_limit, ParseError, DEFAULT_MAX_DEPTH,
};
pub use qname::{QName, XDB_NS, XSL_NS};
pub use serialize::{node_to_string, to_pretty_string, to_string};
pub use sink::{replay_subtree, SinkError, StreamWriter, TextSink, TreeSink, XmlSink};
