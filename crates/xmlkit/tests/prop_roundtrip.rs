//! Property tests: serialize∘parse is the identity on the document model,
//! for randomly generated trees and for randomly escaped text.

use proptest::prelude::*;
use xsltdb_xml::escape::{decode_entities, escape_attr, escape_text};
use xsltdb_xml::{parse_xml, to_string, QName, TreeBuilder};

/// A randomly generated element tree, rendered through the builder.
#[derive(Debug, Clone)]
enum Tree {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<Tree> },
    Text(String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

/// Text without control characters (the parser normalises nothing else).
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~&&[^\u{0}]]{1,12}").expect("valid regex")
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Tree::Text),
        (name_strategy(), proptest::collection::vec((name_strategy(), text_strategy()), 0..3))
            .prop_map(|(name, attrs)| Tree::Element { name, attrs, children: vec![] }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Tree::Element { name, attrs, children })
    })
}

fn build(tree: &Tree, b: &mut TreeBuilder) {
    match tree {
        Tree::Text(t) => b.text(t),
        Tree::Element { name, attrs, children } => {
            b.start_element(QName::local(name));
            let mut seen = Vec::new();
            for (n, v) in attrs {
                if !seen.contains(n) {
                    seen.push(n.clone());
                    b.attribute(QName::local(n), v.clone());
                }
            }
            for c in children {
                build(c, b);
            }
            b.end_element();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_roundtrip(tree in tree_strategy()) {
        // Wrap in a root element so text-only trees remain well-formed.
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("root"));
        build(&tree, &mut b);
        b.end_element();
        let doc = b.finish();
        let text = to_string(&doc);
        let reparsed = parse_xml(&text)
            .unwrap_or_else(|e| panic!("serialized form does not reparse: {text}\n{e}"));
        prop_assert_eq!(to_string(&reparsed), text);
    }

    #[test]
    fn text_escape_decode_roundtrip(s in text_strategy()) {
        prop_assert_eq!(decode_entities(&escape_text(&s)).unwrap(), s.clone());
        prop_assert_eq!(decode_entities(&escape_attr(&s)).unwrap(), s);
    }

    #[test]
    fn string_value_survives_roundtrip(tree in tree_strategy()) {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("root"));
        build(&tree, &mut b);
        b.end_element();
        let doc = b.finish();
        let sv = doc.string_value(xsltdb_xml::NodeId::DOCUMENT);
        let reparsed = parse_xml(&to_string(&doc)).unwrap();
        prop_assert_eq!(reparsed.string_value(xsltdb_xml::NodeId::DOCUMENT), sv);
    }

    #[test]
    fn node_ids_are_document_ordered(tree in tree_strategy()) {
        let mut b = TreeBuilder::new();
        b.start_element(QName::local("root"));
        build(&tree, &mut b);
        b.end_element();
        let doc = b.finish();
        let walk: Vec<_> = doc.descendants_or_self(xsltdb_xml::NodeId::DOCUMENT).collect();
        let mut sorted = walk.clone();
        sorted.sort();
        prop_assert_eq!(walk, sorted);
    }
}
