//! Parser robustness: malformed inputs must fail with positioned errors,
//! and unusual-but-legal inputs must parse.

use xsltdb_xml::parse::{parse, parse_with_doctype};
use xsltdb_xml::to_string;

#[test]
fn error_positions_are_reported() {
    let err = parse("<a><b></a>").unwrap_err();
    assert!(err.offset > 0);
    assert!(err.to_string().contains("mismatched"));
}

#[test]
fn rejects_malformed_inputs() {
    for bad in [
        "",
        "just text",
        "<a",
        "<a href=>",
        "<a href='x>",
        "<a>&unknown;</a>",
        "<a><!-- unterminated</a>",
        "<a><![CDATA[never closed</a>",
        "<?xml version='1.0'",
        "<a/><a/>",
        "<1badname/>",
    ] {
        assert!(parse(bad).is_err(), "accepted: {bad}");
    }
}

#[test]
fn accepts_unusual_but_legal_inputs() {
    for good in [
        "<a.b-c_d/>",
        "<_under/>",
        "<a>&#x1F600;</a>",
        "<a><![CDATA[]]></a>",
        "<a\tb='1'\n/>",
        "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<a/>",
        "<!-- leading --><a/><!-- trailing -->",
        "<?pi-before?><a/>",
    ] {
        assert!(parse(good).is_ok(), "rejected: {good}");
    }
}

#[test]
fn unicode_content_roundtrips() {
    let src = "<msg lang=\"el\">γειά σου — 世界 🌍</msg>";
    let doc = parse(src).unwrap();
    assert_eq!(to_string(&doc), src);
    assert_eq!(
        doc.string_value(xsltdb_xml::NodeId::DOCUMENT),
        "γειά σου — 世界 🌍"
    );
}

#[test]
fn doctype_without_internal_subset() {
    let parsed = parse_with_doctype(r#"<!DOCTYPE html SYSTEM "x.dtd"><html/>"#).unwrap();
    assert_eq!(parsed.doctype_name.as_deref(), Some("html"));
    assert!(parsed.internal_dtd.is_none());
}

#[test]
fn large_flat_document() {
    let mut src = String::from("<r>");
    for i in 0..5000 {
        src.push_str(&format!("<i>{i}</i>"));
    }
    src.push_str("</r>");
    let doc = parse(&src).unwrap();
    let r = doc.root_element().unwrap();
    assert_eq!(doc.children(r).count(), 5000);
    assert_eq!(to_string(&doc), src);
}

#[test]
fn attribute_entity_combinations() {
    let doc = parse(r#"<a x="&amp;&lt;&gt;&quot;&apos;&#10;"/>"#).unwrap();
    let a = doc.root_element().unwrap();
    assert_eq!(doc.attribute(a, "x"), Some("&<>\"'\n"));
}

#[test]
fn crlf_and_tabs_preserved_in_text() {
    let doc = parse("<a>line1\nline2\tend</a>").unwrap();
    assert_eq!(
        doc.string_value(xsltdb_xml::NodeId::DOCUMENT),
        "line1\nline2\tend"
    );
}
