//! Property test: for arbitrary well-nested event sequences,
//! `StreamWriter` output is byte-for-byte identical to serializing the
//! `TreeSink`-built document — the invariant that makes streaming emission
//! a drop-in replacement for materialise-then-serialize.

use proptest::prelude::*;
use xsltdb_xml::{to_string, Guard, QName, SinkError, StreamWriter, TreeSink, XmlSink};

/// One XML construction event tree, replayed identically into both sinks.
#[derive(Debug, Clone)]
enum Ev {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<Ev> },
    Text(String),
    Comment(String),
    Pi(String, String),
}

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}"
}

/// Text including every escaping edge case: the five specials, CR/LF/TAB,
/// quotes, and the empty string (which must not flush a pending tag).
fn text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\r\n\t]{0,12}").expect("valid regex")
}

/// Comment/PI content: no `--` / `?>` validity concerns at the sink level,
/// but keep to benign characters so the serializer comparison is the only
/// thing under test.
fn markup_text_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z0-9 ]{0,8}").expect("valid regex")
}

fn ev_strategy() -> impl Strategy<Value = Ev> {
    let leaf = prop_oneof![
        text_strategy().prop_map(Ev::Text),
        markup_text_strategy().prop_map(Ev::Comment),
        (name_strategy(), markup_text_strategy()).prop_map(|(t, d)| Ev::Pi(t, d)),
        (name_strategy(), proptest::collection::vec((name_strategy(), text_strategy()), 0..3))
            .prop_map(|(name, attrs)| Ev::Element { name, attrs, children: vec![] }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Ev::Element { name, attrs, children })
    })
}

/// Replay an event tree into any sink. Duplicate attribute names are kept
/// deliberately: both sinks must agree on last-write-wins placement.
fn replay(ev: &Ev, sink: &mut dyn XmlSink) -> Result<(), SinkError> {
    match ev {
        Ev::Text(t) => sink.text(t),
        Ev::Comment(c) => sink.comment(c),
        Ev::Pi(t, d) => sink.pi(t, d),
        Ev::Element { name, attrs, children } => {
            sink.start_element(QName::local(name))?;
            for (n, v) in attrs {
                sink.attribute(QName::local(n), v)?;
            }
            for c in children {
                replay(c, sink)?;
            }
            sink.end_element()
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn stream_writer_matches_tree_serialization(events in proptest::collection::vec(ev_strategy(), 0..4)) {
        let mut tree = TreeSink::new(Guard::unlimited());
        for ev in &events {
            replay(ev, &mut tree).expect("tree sink accepts well-nested events");
        }
        let via_tree = to_string(&tree.finish_lenient());

        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        for ev in &events {
            replay(ev, &mut sw).expect("stream writer accepts well-nested events");
        }
        let bytes = sw.finish().expect("finish succeeds");
        let streamed = String::from_utf8(bytes).expect("output is UTF-8");

        prop_assert_eq!(streamed, via_tree);
    }

    #[test]
    fn stream_writer_finish_matches_lenient_tree(
        name in name_strategy(),
        inner in ev_strategy(),
    ) {
        // Leave an element open; finish() must agree with finish_lenient().
        let mut tree = TreeSink::new(Guard::unlimited());
        tree.start_element(QName::local(&name)).unwrap();
        replay(&inner, &mut tree).unwrap();
        let via_tree = to_string(&tree.finish_lenient());

        let mut sw = StreamWriter::new(Vec::new(), Guard::unlimited());
        sw.start_element(QName::local(&name)).unwrap();
        replay(&inner, &mut sw).unwrap();
        let streamed = String::from_utf8(sw.finish().unwrap()).unwrap();

        prop_assert_eq!(streamed, via_tree);
    }
}
