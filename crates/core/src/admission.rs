//! Admission control for the serving front door.
//!
//! Per-call [`Guard`](xsltdb_xml::Guard) budgets bound a single transform;
//! this module bounds the *fleet*. Three cooperating pieces:
//!
//! * [`AdmissionQueue`] — gates requests on a global
//!   [`ResourceLedger`](xsltdb_xml::ResourceLedger). A request that cannot
//!   reserve capacity waits — bounded in depth and in time — and is shed
//!   with a typed [`Rejected`] when either bound is hit. Nothing ever
//!   queues unboundedly.
//! * [`RetryPolicy`] — a failure taxonomy plus jittered exponential
//!   backoff. Only **transient** failures (tier panics, engine errors,
//!   exhausted lattices — things a fresh attempt may not reproduce) are
//!   retryable; **terminal** failures (guard trips, binding errors,
//!   compile errors — deterministic outcomes of the request itself) are
//!   never retried.
//! * [`CircuitBreakerSet`] — per-tier breakers over a rolling outcome
//!   window. A tier whose recent failure rate crosses the threshold is
//!   opened: the pipeline routes straight to the next lattice tier until a
//!   half-open probe succeeds.
//!
//! The jitter source is a deterministic xorshift so chaos runs replay
//! bit-for-bit; no clocks or OS randomness feed the backoff schedule.

use crate::error::PipelineError;
use crate::pipeline::{Tier, TierRouter};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use xsltdb_xml::{LedgerLimits, Reservation, ResourceLedger};

// ---------------------------------------------------------------------------
// Admission queue
// ---------------------------------------------------------------------------

/// Why a request was shed instead of admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The wait queue is already at its depth bound; the request is shed
    /// immediately rather than queued.
    Overloaded {
        /// Waiters already queued when the request arrived.
        queue_depth: usize,
    },
    /// Capacity did not free up before the request's deadline.
    QueueTimeout {
        /// How long the request waited before being shed.
        waited: Duration,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::Overloaded { queue_depth } => {
                write!(f, "rejected: overloaded ({queue_depth} requests already queued)")
            }
            Rejected::QueueTimeout { waited } => {
                write!(f, "rejected: no capacity within deadline (waited {waited:?})")
            }
        }
    }
}

impl std::error::Error for Rejected {}

/// Tuning for an [`AdmissionQueue`].
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum requests allowed to wait for capacity at once. Arrivals
    /// beyond this are shed with [`Rejected::Overloaded`].
    pub max_queue_depth: usize,
    /// Deadline applied when the caller does not supply one.
    pub default_deadline: Duration,
}

impl AdmissionConfig {
    pub fn server_default() -> AdmissionConfig {
        AdmissionConfig { max_queue_depth: 64, default_deadline: Duration::from_millis(250) }
    }
}

/// Counters the front door exports; all monotonically increasing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    pub admitted: u64,
    pub shed_overloaded: u64,
    pub shed_timeout: u64,
}

#[derive(Debug, Default)]
struct QueueSync {
    /// Requests currently blocked waiting for capacity.
    waiters: Mutex<usize>,
    /// Signalled whenever a [`Permit`] returns capacity.
    capacity_freed: Condvar,
}

/// Recover a mutex guard even if a panicking holder poisoned it — the
/// admission queue must keep serving after a contained tier panic.
fn lock_unpoisoned(m: &Mutex<usize>) -> MutexGuard<'_, usize> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Bounded admission over a global [`ResourceLedger`].
///
/// Clones share the same queue and ledger. A request is admitted when it
/// can reserve its declared fuel and output-byte budgets plus one stream
/// slot; otherwise it waits — depth-bounded, deadline-bounded — for a
/// [`Permit`] drop to free capacity.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    ledger: ResourceLedger,
    config: AdmissionConfig,
    sync: Arc<QueueSync>,
    admitted: Arc<AtomicU64>,
    shed_overloaded: Arc<AtomicU64>,
    shed_timeout: Arc<AtomicU64>,
}

impl AdmissionQueue {
    pub fn new(ledger: ResourceLedger, config: AdmissionConfig) -> AdmissionQueue {
        AdmissionQueue {
            ledger,
            config,
            sync: Arc::new(QueueSync::default()),
            admitted: Arc::new(AtomicU64::new(0)),
            shed_overloaded: Arc::new(AtomicU64::new(0)),
            shed_timeout: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A queue over a fresh ledger with the given fleet ceilings.
    pub fn with_limits(limits: LedgerLimits, config: AdmissionConfig) -> AdmissionQueue {
        AdmissionQueue::new(ResourceLedger::new(limits), config)
    }

    pub fn ledger(&self) -> &ResourceLedger {
        &self.ledger
    }

    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            shed_overloaded: self.shed_overloaded.load(Ordering::Relaxed),
            shed_timeout: self.shed_timeout.load(Ordering::Relaxed),
        }
    }

    /// Admit a request wanting `fuel` fuel units and `bytes` output bytes,
    /// waiting up to `deadline` for capacity. The fast path never touches
    /// the queue lock; the slow path re-checks the ledger under the lock,
    /// so a [`Permit`] drop (which takes the lock before signalling) can
    /// never slip between a failed reservation and the wait.
    pub fn admit_within(
        &self,
        fuel: u64,
        bytes: u64,
        deadline: Duration,
    ) -> Result<Permit, Rejected> {
        if let Ok(r) = self.ledger.try_reserve(fuel, bytes) {
            return Ok(self.permit(r));
        }
        let start = Instant::now();
        let mut waiters = lock_unpoisoned(&self.sync.waiters);
        if *waiters >= self.config.max_queue_depth {
            self.shed_overloaded.fetch_add(1, Ordering::Relaxed);
            return Err(Rejected::Overloaded { queue_depth: *waiters });
        }
        *waiters += 1;
        let outcome = loop {
            match self.ledger.try_reserve(fuel, bytes) {
                Ok(r) => break Ok(r),
                Err(_) => {
                    let elapsed = start.elapsed();
                    if elapsed >= deadline {
                        break Err(());
                    }
                    let (g, timeout) = self
                        .sync
                        .capacity_freed
                        .wait_timeout(waiters, deadline - elapsed)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    waiters = g;
                    if timeout.timed_out() {
                        // Deadline passed while blocked: one last look at
                        // the ledger, then shed.
                        break self.ledger.try_reserve(fuel, bytes).map_err(|_| ());
                    }
                }
            }
        };
        *waiters -= 1;
        drop(waiters);
        match outcome {
            Ok(r) => Ok(self.permit(r)),
            Err(()) => {
                self.shed_timeout.fetch_add(1, Ordering::Relaxed);
                Err(Rejected::QueueTimeout { waited: start.elapsed() })
            }
        }
    }

    /// [`Self::admit_within`] with the configured default deadline.
    pub fn admit(&self, fuel: u64, bytes: u64) -> Result<Permit, Rejected> {
        self.admit_within(fuel, bytes, self.config.default_deadline)
    }

    fn permit(&self, reservation: Reservation) -> Permit {
        self.admitted.fetch_add(1, Ordering::Relaxed);
        Permit { reservation: Some(reservation), sync: Arc::clone(&self.sync) }
    }
}

/// An admitted request's hold on ledger capacity. Dropping it — normally
/// or during a panic unwind — returns the reservation and wakes every
/// queued waiter.
#[derive(Debug)]
pub struct Permit {
    reservation: Option<Reservation>,
    sync: Arc<QueueSync>,
}

impl Permit {
    /// The fuel units this permit holds.
    pub fn fuel(&self) -> u64 {
        self.reservation.as_ref().map_or(0, Reservation::fuel)
    }

    /// The output-byte units this permit holds.
    pub fn bytes(&self) -> u64 {
        self.reservation.as_ref().map_or(0, Reservation::bytes)
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        // Return capacity first, then signal under the lock: a waiter that
        // failed its reservation check still holds the lock, so the signal
        // cannot fire in the gap before it starts waiting.
        drop(self.reservation.take());
        let guard = lock_unpoisoned(&self.sync.waiters);
        if *guard > 0 {
            self.sync.capacity_freed.notify_all();
        }
        drop(guard);
    }
}

// ---------------------------------------------------------------------------
// Retry taxonomy + jittered backoff
// ---------------------------------------------------------------------------

/// Whether a failed attempt may be retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureClass {
    /// A fresh attempt may succeed: contained panics, engine errors, an
    /// exhausted lattice (a fault injection or transient corruption).
    Transient,
    /// Deterministic outcome of the request itself — retrying burns budget
    /// to reproduce the same failure. Guard trips especially: re-running a
    /// budget-tripped request is exactly the overload amplification this
    /// layer exists to prevent.
    Terminal,
}

/// Classify a pipeline failure for the retry layer.
pub fn classify(err: &PipelineError) -> FailureClass {
    match err {
        PipelineError::Guard(_)
        | PipelineError::UnboundSlot { .. }
        | PipelineError::BindingMismatch { .. }
        | PipelineError::Xslt(_)
        | PipelineError::Rewrite(_) => FailureClass::Terminal,
        PipelineError::Panic { .. }
        | PipelineError::TiersExhausted { .. }
        | PipelineError::Store(_)
        | PipelineError::XQuery(_)
        | PipelineError::Internal(_) => FailureClass::Transient,
    }
}

/// Bounded retry with deterministic jittered exponential backoff.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts including the first (so `3` = one try + two retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per further retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
}

impl RetryPolicy {
    pub fn server_default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(50),
        }
    }

    /// No retries at all — every failure is final.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// True when attempt number `attempt` (0-based) of a request may be
    /// followed by another after failing with `err`.
    pub fn should_retry(&self, attempt: u32, err: &PipelineError) -> bool {
        attempt + 1 < self.max_attempts && classify(err) == FailureClass::Transient
    }

    /// Backoff before retry number `attempt` (1-based: the sleep after the
    /// `attempt`-th failure). Jitter is drawn from a xorshift stream seeded
    /// by `seed` (e.g. a request id), so two colliding clients with
    /// different seeds decorrelate while a chaos replay stays
    /// deterministic. The jittered value lands in `[half, full]` of the
    /// exponential step, capped at `max_backoff`.
    pub fn backoff(&self, attempt: u32, seed: u64) -> Duration {
        if self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        let step = self
            .base_backoff
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
            .min(self.max_backoff);
        let nanos = step.as_nanos() as u64;
        if nanos < 2 {
            return step;
        }
        let half = nanos / 2;
        let jitter = xorshift(seed.wrapping_add(u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15)) % (half + 1);
        Duration::from_nanos(half + jitter)
    }
}

/// The xorshift64* step: deterministic, seed-sensitive, no OS entropy.
fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

// ---------------------------------------------------------------------------
// Per-tier circuit breaker
// ---------------------------------------------------------------------------

/// Tuning for a [`CircuitBreakerSet`].
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Rolling window of recent outcomes per tier (≤ 64).
    pub window: usize,
    /// Minimum outcomes in the window before the breaker may open.
    pub min_samples: usize,
    /// Failure fraction over the window at which the breaker opens.
    pub failure_threshold: f64,
    /// Time a breaker stays open before a half-open probe is allowed.
    pub cooldown: Duration,
}

impl BreakerConfig {
    pub fn server_default() -> BreakerConfig {
        BreakerConfig {
            window: 16,
            min_samples: 8,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(50),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    Closed,
    Open { since: Instant },
    /// One probe request is (or may be) in flight; its outcome decides
    /// whether the breaker closes or re-opens.
    HalfOpen { probe_in_flight: bool },
}

#[derive(Debug)]
struct BreakerCell {
    state: BreakerState,
    /// Outcome ring as a bitmask: bit set = failure.
    failures: u64,
    filled: usize,
    head: usize,
}

impl BreakerCell {
    fn new() -> BreakerCell {
        BreakerCell { state: BreakerState::Closed, failures: 0, filled: 0, head: 0 }
    }

    fn reset_window(&mut self) {
        self.failures = 0;
        self.filled = 0;
        self.head = 0;
    }

    fn push(&mut self, failed: bool, window: usize) {
        let bit = 1u64 << self.head;
        if failed {
            self.failures |= bit;
        } else {
            self.failures &= !bit;
        }
        self.head = (self.head + 1) % window;
        self.filled = (self.filled + 1).min(window);
    }

    fn failure_rate(&self) -> f64 {
        if self.filled == 0 {
            return 0.0;
        }
        self.failures.count_ones() as f64 / self.filled as f64
    }
}

/// A snapshot of one tier's breaker for stats export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerView {
    Closed,
    Open,
    HalfOpen,
}

/// Per-tier circuit breakers over the degradation lattice. Implements
/// [`TierRouter`], so the pipeline consults it before entering a tier and
/// reports every tier outcome back.
#[derive(Debug)]
pub struct CircuitBreakerSet {
    config: BreakerConfig,
    cells: [Mutex<BreakerCell>; 3],
    opened_total: AtomicU64,
}

impl CircuitBreakerSet {
    pub fn new(config: BreakerConfig) -> CircuitBreakerSet {
        assert!(config.window >= 1 && config.window <= 64, "window must be 1..=64");
        CircuitBreakerSet {
            config,
            cells: [
                Mutex::new(BreakerCell::new()),
                Mutex::new(BreakerCell::new()),
                Mutex::new(BreakerCell::new()),
            ],
            opened_total: AtomicU64::new(0),
        }
    }

    fn cell(&self, tier: Tier) -> MutexGuard<'_, BreakerCell> {
        let idx = match tier {
            Tier::Sql => 0,
            Tier::XQuery => 1,
            Tier::Vm => 2,
        };
        self.cells[idx].lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// How many times any breaker transitioned Closed→Open.
    pub fn opened_total(&self) -> u64 {
        self.opened_total.load(Ordering::Relaxed)
    }

    /// The current state of `tier`'s breaker.
    pub fn view(&self, tier: Tier) -> BreakerView {
        match self.cell(tier).state {
            BreakerState::Closed => BreakerView::Closed,
            BreakerState::Open { .. } => BreakerView::Open,
            BreakerState::HalfOpen { .. } => BreakerView::HalfOpen,
        }
    }
}

impl TierRouter for CircuitBreakerSet {
    fn allow(&self, tier: Tier) -> bool {
        // The lattice's last tier is never breaker-blocked: there is
        // nothing below it to degrade to, so refusing it would turn a
        // tier-health signal into load shedding — the admission queue's
        // job, not the breaker's. Its outcomes are still recorded.
        if tier == Tier::Vm {
            return true;
        }
        let mut cell = self.cell(tier);
        match cell.state {
            BreakerState::Closed => true,
            BreakerState::Open { since } => {
                if since.elapsed() >= self.config.cooldown {
                    cell.state = BreakerState::HalfOpen { probe_in_flight: true };
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen { probe_in_flight } => {
                if probe_in_flight {
                    false
                } else {
                    cell.state = BreakerState::HalfOpen { probe_in_flight: true };
                    true
                }
            }
        }
    }

    fn record(&self, tier: Tier, success: bool) {
        let mut cell = self.cell(tier);
        match cell.state {
            BreakerState::HalfOpen { .. } => {
                if success {
                    cell.state = BreakerState::Closed;
                    cell.reset_window();
                } else {
                    cell.state = BreakerState::Open { since: Instant::now() };
                }
            }
            BreakerState::Closed => {
                cell.push(!success, self.config.window);
                if cell.filled >= self.config.min_samples
                    && cell.failure_rate() >= self.config.failure_threshold
                {
                    cell.state = BreakerState::Open { since: Instant::now() };
                    self.opened_total.fetch_add(1, Ordering::Relaxed);
                }
            }
            // A record can land while open (an in-flight request admitted
            // before the trip): the window restarts when the breaker next
            // closes, so drop it.
            BreakerState::Open { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_queue(streams: u64, depth: usize, deadline_ms: u64) -> AdmissionQueue {
        AdmissionQueue::with_limits(
            LedgerLimits::UNLIMITED.with_max_concurrent_streams(streams),
            AdmissionConfig {
                max_queue_depth: depth,
                default_deadline: Duration::from_millis(deadline_ms),
            },
        )
    }

    #[test]
    fn fast_path_admits_without_waiting() {
        let q = tiny_queue(4, 4, 10);
        let p = q.admit(100, 100).unwrap();
        assert_eq!(p.fuel(), 100);
        assert_eq!(q.stats().admitted, 1);
        drop(p);
        assert!(q.ledger().snapshot().is_quiesced());
    }

    #[test]
    fn deadline_sheds_with_queue_timeout() {
        let q = tiny_queue(1, 4, 15);
        let _held = q.admit(1, 1).unwrap();
        let err = q.admit(1, 1).unwrap_err();
        assert!(matches!(err, Rejected::QueueTimeout { .. }), "{err:?}");
        assert_eq!(q.stats().shed_timeout, 1);
    }

    #[test]
    fn queue_depth_bound_sheds_overloaded() {
        let q = tiny_queue(1, 0, 50);
        let _held = q.admit(1, 1).unwrap();
        // Depth 0: no waiting allowed at all.
        let err = q.admit(1, 1).unwrap_err();
        assert!(matches!(err, Rejected::Overloaded { queue_depth: 0 }), "{err:?}");
        assert_eq!(q.stats().shed_overloaded, 1);
    }

    #[test]
    fn waiter_wakes_when_permit_drops() {
        let q = tiny_queue(1, 4, 2_000);
        let held = q.admit(1, 1).unwrap();
        std::thread::scope(|s| {
            let q2 = q.clone();
            let waiter = s.spawn(move || q2.admit(1, 1));
            std::thread::sleep(Duration::from_millis(20));
            drop(held);
            let got = waiter.join().expect("waiter panicked");
            assert!(got.is_ok(), "{got:?}");
        });
        assert_eq!(q.stats().admitted, 2);
        assert_eq!(q.stats().shed_timeout, 0);
    }

    #[test]
    fn permit_drop_during_unwind_frees_capacity() {
        let q = tiny_queue(1, 4, 20);
        let p = q.admit(5, 5).unwrap();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _held = p;
            panic!("request handler blew up");
        }));
        assert!(q.ledger().snapshot().is_quiesced());
        assert!(q.admit(5, 5).is_ok(), "capacity leaked after panic");
    }

    #[test]
    fn guard_trips_and_binding_errors_are_terminal() {
        let trip = {
            let g = xsltdb_xml::Guard::new(xsltdb_xml::Limits::UNLIMITED.with_fuel(1));
            g.charge(2).unwrap_err();
            g.trip().expect("tripped")
        };
        let terminal: Vec<PipelineError> = vec![
            PipelineError::Guard(trip),
            PipelineError::UnboundSlot { slot: "$t0".into() },
            PipelineError::BindingMismatch { expected: 1, got: 2 },
        ];
        for e in &terminal {
            assert_eq!(classify(e), FailureClass::Terminal, "{e}");
        }
        let transient: Vec<PipelineError> = vec![
            PipelineError::Panic { tier: "sql", message: "boom".into() },
            PipelineError::TiersExhausted { attempts: vec![] },
            PipelineError::internal("odd"),
        ];
        for e in &transient {
            assert_eq!(classify(e), FailureClass::Transient, "{e}");
        }
    }

    #[test]
    fn retry_policy_respects_attempt_bound_and_taxonomy() {
        let p = RetryPolicy::server_default();
        let transient = PipelineError::Panic { tier: "sql", message: "x".into() };
        assert!(p.should_retry(0, &transient));
        assert!(p.should_retry(1, &transient));
        assert!(!p.should_retry(2, &transient), "attempt bound ignored");
        let g = xsltdb_xml::Guard::new(xsltdb_xml::Limits::UNLIMITED.with_fuel(1));
        let _ = g.charge(2);
        let terminal = PipelineError::Guard(g.trip().expect("tripped"));
        assert!(!p.should_retry(0, &terminal), "guard trips must never retry");
    }

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy::server_default();
        let a = p.backoff(1, 42);
        let b = p.backoff(1, 42);
        assert_eq!(a, b, "same seed+attempt must replay identically");
        let c = p.backoff(1, 43);
        // Different seeds should (for these constants) land elsewhere in
        // the jitter interval.
        assert_ne!(a, c, "jitter ignored the seed");
        for attempt in 1..10 {
            for seed in 0..20 {
                let d = p.backoff(attempt, seed);
                assert!(d <= p.max_backoff, "{d:?} pierced the cap");
                assert!(d >= p.base_backoff / 2, "{d:?} under half the base");
            }
        }
        assert_eq!(RetryPolicy::none().backoff(1, 7), Duration::ZERO);
    }

    #[test]
    fn breaker_opens_at_threshold_and_recovers_via_half_open() {
        let cfg = BreakerConfig {
            window: 8,
            min_samples: 4,
            failure_threshold: 0.5,
            cooldown: Duration::from_millis(5),
        };
        let set = CircuitBreakerSet::new(cfg);
        assert!(set.allow(Tier::Sql));
        for _ in 0..4 {
            set.record(Tier::Sql, false);
        }
        assert_eq!(set.view(Tier::Sql), BreakerView::Open);
        assert_eq!(set.opened_total(), 1);
        assert!(!set.allow(Tier::Sql), "open breaker must refuse");
        // Other tiers are independent.
        assert!(set.allow(Tier::XQuery));

        std::thread::sleep(cfg.cooldown + Duration::from_millis(2));
        assert!(set.allow(Tier::Sql), "cooldown elapsed: probe allowed");
        assert_eq!(set.view(Tier::Sql), BreakerView::HalfOpen);
        assert!(!set.allow(Tier::Sql), "only one probe at a time");
        // Probe fails → open again; probe succeeds after next cooldown →
        // closed with a fresh window.
        set.record(Tier::Sql, false);
        assert_eq!(set.view(Tier::Sql), BreakerView::Open);
        std::thread::sleep(cfg.cooldown + Duration::from_millis(2));
        assert!(set.allow(Tier::Sql));
        set.record(Tier::Sql, true);
        assert_eq!(set.view(Tier::Sql), BreakerView::Closed);
        assert!(set.allow(Tier::Sql));
    }

    #[test]
    fn breaker_mixes_success_and_failure_below_threshold() {
        let set = CircuitBreakerSet::new(BreakerConfig::server_default());
        for i in 0..32 {
            set.record(Tier::Vm, i % 4 == 0); // 75% failures → opens
            if set.view(Tier::Vm) == BreakerView::Open {
                break;
            }
        }
        assert_eq!(set.view(Tier::Vm), BreakerView::Open);

        let set = CircuitBreakerSet::new(BreakerConfig::server_default());
        for i in 0..64 {
            set.record(Tier::Sql, i % 4 != 0); // 25% failures → stays closed
        }
        assert_eq!(set.view(Tier::Sql), BreakerView::Closed);
    }

    #[test]
    fn stampede_admissions_conserve_and_shed_typed() {
        let q = tiny_queue(4, 8, 30);
        let shed = Arc::new(AtomicU64::new(0));
        let served = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..16 {
                let q = q.clone();
                let shed = Arc::clone(&shed);
                let served = Arc::clone(&served);
                s.spawn(move || {
                    for _ in 0..20 {
                        match q.admit(10, 10) {
                            Ok(p) => {
                                served.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                                drop(p);
                            }
                            Err(Rejected::Overloaded { .. })
                            | Err(Rejected::QueueTimeout { .. }) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let stats = q.stats();
        assert_eq!(stats.admitted, served.load(Ordering::Relaxed));
        assert_eq!(
            stats.shed_overloaded + stats.shed_timeout,
            shed.load(Ordering::Relaxed)
        );
        assert_eq!(stats.admitted + stats.shed_overloaded + stats.shed_timeout, 16 * 20);
        assert!(q.ledger().snapshot().is_quiesced(), "{:?}", q.ledger().snapshot());
    }
}
