//! XPath 1.0 → XQuery expression translation.
//!
//! XSLT and XQuery "share the same XPath and many functions and operators
//! as a common core" (paper §3), so this mapping is mostly structural. The
//! interesting parts are context handling (the XSLT current node becomes an
//! explicit XQuery variable) and the small set of constructs that cannot be
//! translated (body-level `position()`/`last()`), which surface as
//! [`RewriteError`] and send the transformation to a fallback tier.

use crate::error::RewriteError;
use xsltdb_xpath::{Axis, BinOp, Expr, LocationPath, NodeTest};
use xsltdb_xquery::{CompOp, ArithOp, PathStart, XqExpr, XqStep};

/// What a relative path is resolved against.
#[derive(Debug, Clone)]
pub enum CtxRef {
    /// A named variable holding the current node (`$var002`).
    Var(String),
    /// The dynamic context item (used inside predicates).
    ContextItem,
}

impl CtxRef {
    pub fn var(name: &str) -> CtxRef {
        CtxRef::Var(name.to_string())
    }

    fn to_expr(&self) -> XqExpr {
        match self {
            CtxRef::Var(v) => XqExpr::VarRef(v.clone()),
            CtxRef::ContextItem => XqExpr::ContextItem,
        }
    }

    fn to_path_start(&self) -> PathStart {
        match self {
            CtxRef::Var(v) => PathStart::Expr(Box::new(XqExpr::VarRef(v.clone()))),
            CtxRef::ContextItem => PathStart::Context,
        }
    }
}

/// Translation environment: the current-node binding and the variable
/// holding the whole input document (for absolute paths).
#[derive(Debug, Clone)]
pub struct XlatCtx {
    /// What relative paths resolve against (changes inside predicates).
    pub current: CtxRef,
    /// The XSLT `current()` node — stable across predicate nesting.
    pub xslt_current: CtxRef,
    /// Name of the variable bound to the input document (`var000`).
    pub root_var: String,
    /// Variable holding the 1-based position of the current node in the
    /// enclosing iteration (`for … at $p`), when the generator bound one.
    /// Body-level `position()` translates to it; without it translation
    /// fails and the pipeline falls back.
    pub pos_var: Option<String>,
    /// Variable holding the size of the enclosing iteration's node list
    /// (`let $l := fn:count(…)`). Body-level `last()` translates to it.
    pub last_var: Option<String>,
}

impl XlatCtx {
    pub fn new(current: CtxRef, root_var: &str) -> Self {
        XlatCtx {
            current: current.clone(),
            xslt_current: current,
            root_var: root_var.to_string(),
            pos_var: None,
            last_var: None,
        }
    }

    /// Attach position/size variables for body-level `position()`/`last()`.
    pub fn with_position(mut self, pos_var: Option<String>, last_var: Option<String>) -> Self {
        self.pos_var = pos_var;
        self.last_var = last_var;
        self
    }

    fn inside_predicate(&self) -> Self {
        XlatCtx {
            current: CtxRef::ContextItem,
            xslt_current: self.xslt_current.clone(),
            root_var: self.root_var.clone(),
            // Predicates get the evaluator's own focus; the loop variables
            // belong to the body outside.
            pos_var: None,
            last_var: None,
        }
    }
}

/// Translate an XPath expression into an XQuery expression.
pub fn xpath_to_xq(e: &Expr, cx: &XlatCtx) -> Result<XqExpr, RewriteError> {
    match e {
        Expr::Number(n) => Ok(XqExpr::NumLit(*n)),
        Expr::Literal(s) => Ok(XqExpr::StrLit(s.clone())),
        Expr::Var(v) => Ok(XqExpr::VarRef(v.clone())),
        Expr::Neg(inner) => Ok(XqExpr::Neg(Box::new(xpath_to_xq(inner, cx)?))),
        Expr::Binary(op, a, b) => {
            let l = Box::new(xpath_to_xq(a, cx)?);
            let r = Box::new(xpath_to_xq(b, cx)?);
            Ok(match op {
                BinOp::Or => XqExpr::Or(l, r),
                BinOp::And => XqExpr::And(l, r),
                BinOp::Union => XqExpr::Union(l, r),
                BinOp::Eq => XqExpr::Compare(CompOp::Eq, l, r),
                BinOp::Ne => XqExpr::Compare(CompOp::Ne, l, r),
                BinOp::Lt => XqExpr::Compare(CompOp::Lt, l, r),
                BinOp::Le => XqExpr::Compare(CompOp::Le, l, r),
                BinOp::Gt => XqExpr::Compare(CompOp::Gt, l, r),
                BinOp::Ge => XqExpr::Compare(CompOp::Ge, l, r),
                BinOp::Add => XqExpr::Arith(ArithOp::Add, l, r),
                BinOp::Sub => XqExpr::Arith(ArithOp::Sub, l, r),
                BinOp::Mul => XqExpr::Arith(ArithOp::Mul, l, r),
                BinOp::Div => XqExpr::Arith(ArithOp::Div, l, r),
                BinOp::Mod => XqExpr::Arith(ArithOp::Mod, l, r),
            })
        }
        Expr::Path(p) => translate_path(p, cx),
        Expr::Filter { primary, predicates, steps } => {
            let base = xpath_to_xq(primary, cx)?;
            let filtered = if predicates.is_empty() {
                base
            } else {
                let pcx = cx.inside_predicate();
                XqExpr::Filter {
                    base: Box::new(base),
                    predicates: predicates
                        .iter()
                        .map(|p| xpath_to_xq(p, &pcx))
                        .collect::<Result<_, _>>()?,
                }
            };
            if steps.is_empty() {
                Ok(filtered)
            } else {
                Ok(XqExpr::Path {
                    start: PathStart::Expr(Box::new(filtered)),
                    steps: translate_steps(steps, cx)?,
                })
            }
        }
        Expr::Call(name, args) => translate_call(name, args, cx),
    }
}

fn translate_path(p: &LocationPath, cx: &XlatCtx) -> Result<XqExpr, RewriteError> {
    let steps = translate_steps(&p.steps, cx)?;
    if p.absolute {
        // Absolute paths in a stylesheet address the *input document* root,
        // which in the generated query is `$var000` (bound to the input).
        return Ok(XqExpr::Path {
            start: PathStart::Expr(Box::new(XqExpr::VarRef(cx.root_var.clone()))),
            steps,
        });
    }
    if steps.len() == 1
        && steps[0].axis == Axis::SelfAxis
        && steps[0].test == NodeTest::Node
        && steps[0].predicates.is_empty()
    {
        // A bare `.`.
        return Ok(cx.current.to_expr());
    }
    Ok(XqExpr::Path { start: cx.current.to_path_start(), steps })
}

fn translate_steps(
    steps: &[xsltdb_xpath::Step],
    cx: &XlatCtx,
) -> Result<Vec<XqStep>, RewriteError> {
    let pcx = cx.inside_predicate();
    steps
        .iter()
        .map(|s| {
            Ok(XqStep {
                axis: s.axis,
                test: s.test.clone(),
                predicates: s
                    .predicates
                    .iter()
                    .map(|p| xpath_to_xq(p, &pcx))
                    .collect::<Result<_, _>>()?,
            })
        })
        .collect()
}

fn translate_call(name: &str, args: &[Expr], cx: &XlatCtx) -> Result<XqExpr, RewriteError> {
    let mut xq_args: Vec<XqExpr> = args
        .iter()
        .map(|a| xpath_to_xq(a, cx))
        .collect::<Result<_, _>>()?;
    // XPath's context-dependent functions default to the current node when
    // called without arguments; the generated FLWOR has no dynamic focus,
    // so the current-node binding must be passed explicitly.
    if xq_args.is_empty()
        && matches!(
            name,
            "name" | "local-name" | "string" | "string-length" | "normalize-space" | "number"
        )
    {
        xq_args.push(cx.current.to_expr());
    }
    match name {
        // `current()` is the statically known current node of the template.
        "current" => Ok(cx.xslt_current.to_expr()),
        // Positional context functions: inside predicates the XQuery
        // evaluator provides a focus; in loop bodies the generator binds
        // explicit `at`/count variables. With neither, the generated FLWOR
        // has no focus, so translation must fail and the pipeline falls
        // back.
        "position" | "last" if matches!(cx.current, CtxRef::ContextItem) => {
            Ok(XqExpr::call(&format!("fn:{name}"), xq_args))
        }
        "position" if cx.pos_var.is_some() => Ok(XqExpr::VarRef(
            cx.pos_var.clone().expect("checked above"),
        )),
        "last" if cx.last_var.is_some() => Ok(XqExpr::VarRef(
            cx.last_var.clone().expect("checked above"),
        )),
        "position" | "last" => Err(RewriteError::new(format!(
            "{name}() outside a predicate has no XQuery equivalent in the generated FLWOR"
        ))),
        "document" | "key" | "id" => Err(RewriteError::new(format!(
            "{name}() is not supported by the rewrite"
        ))),
        // The shared core library maps 1:1 onto fn:*.
        "string" | "concat" | "contains" | "starts-with" | "substring"
        | "substring-before" | "substring-after" | "string-length" | "normalize-space"
        | "translate" | "count" | "sum" | "not" | "boolean" | "number" | "floor"
        | "ceiling" | "round" | "true" | "false" | "name" | "local-name" => {
            Ok(XqExpr::call(&format!("fn:{name}"), xq_args))
        }
        "generate-id" => Err(RewriteError::new(
            "generate-id() is not supported by the rewrite",
        )),
        "format-number" => Err(RewriteError::new(
            "format-number() is not supported by the rewrite",
        )),
        other => Err(RewriteError::new(format!("unknown function {other}()"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xpath::parse_expr;
    use xsltdb_xquery::pretty;

    fn tr(src: &str) -> String {
        let e = parse_expr(src).unwrap();
        let cx = XlatCtx::new(CtxRef::var("var002"), "var000");
        pretty(&xpath_to_xq(&e, &cx).unwrap())
    }

    #[test]
    fn relative_path() {
        assert_eq!(tr("dname"), "$var002/dname");
        assert_eq!(tr("employees/emp"), "$var002/employees/emp");
    }

    #[test]
    fn dot_becomes_var() {
        assert_eq!(tr("."), "$var002");
    }

    #[test]
    fn absolute_path_uses_root_var() {
        assert_eq!(tr("/dept/dname"), "$var000/dept/dname");
    }

    #[test]
    fn predicate_context_is_context_item() {
        assert_eq!(tr("emp[sal > 2000]"), "$var002/emp[sal > 2000]");
        // `.` inside a predicate is the context item, not $var002.
        assert_eq!(tr("empno[. = 3456]"), "$var002/empno[. = 3456]");
    }

    #[test]
    fn functions_map_to_fn() {
        assert_eq!(tr("string(.)"), "fn:string($var002)");
        assert_eq!(tr("concat('a', name())"), "fn:concat(\"a\", fn:name($var002))");
        assert_eq!(tr("count(emp)"), "fn:count($var002/emp)");
    }

    #[test]
    fn current_becomes_current_var() {
        assert_eq!(tr("current()"), "$var002");
        assert_eq!(tr("emp[empno = current()]"), "$var002/emp[empno = $var002]");
    }

    #[test]
    fn union_translates() {
        assert_eq!(tr("@* | node()"), "$var002/@* | $var002/node()");
    }

    #[test]
    fn position_in_predicate_ok_outside_fails() {
        assert_eq!(tr("emp[position() = 1]"), "$var002/emp[fn:position() = 1]");
        let e = parse_expr("position()").unwrap();
        let cx = XlatCtx::new(CtxRef::var("v"), "var000");
        assert!(xpath_to_xq(&e, &cx).is_err());
    }

    #[test]
    fn unsupported_functions_error() {
        let cx = XlatCtx::new(CtxRef::var("v"), "var000");
        for src in ["document('x')", "key('k', 'v')", "generate-id()"] {
            let e = parse_expr(src).unwrap();
            assert!(xpath_to_xq(&e, &cx).is_err(), "{src} should fail");
        }
    }

    #[test]
    fn operators_translate() {
        // The pretty-printer parenthesises nested operands.
        assert_eq!(tr("1 + 2 * 3"), "1 + (2 * 3)");
        assert_eq!(
            tr("sal > 2000 and sal < 9000"),
            "($var002/sal > 2000) and ($var002/sal < 9000)"
        );
    }
}
