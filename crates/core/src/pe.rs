//! Partial evaluation (paper §4): run the XSLTVM over the structure's
//! sample document with trace instructions and conservative predicate
//! handling, and build the *template execution graph* whose states are
//! `(template, structural position)` pairs and whose transitions record
//! which templates each `<xsl:apply-templates>` site instantiates.

use crate::error::RewriteError;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use xsltdb_structinfo::{SampleDoc, SampleNode, StructInfo};
use xsltdb_xml::NodeId;
use xsltdb_xslt::trace::{TraceSink, Via};
use xsltdb_xslt::{transform_with, SiteId, Stylesheet, TemplateId, TransformOptions};

/// Index of a state in the execution graph.
pub type StateId = usize;

/// A graph state: a template (or the built-in rule) instantiated at a
/// structural position.
#[derive(Debug, Clone)]
pub struct State {
    /// `None` is the built-in template rule.
    pub template: Option<TemplateId>,
    pub node: SampleNode,
    /// Per call-site, the ordered list of `(matched node, target state)`
    /// transitions — the paper's trace-call-list.
    pub transitions: BTreeMap<SiteId, Vec<Transition>>,
}

/// One traced template activation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    pub node: SampleNode,
    pub target: StateId,
}

/// The template execution graph (paper §4.3).
#[derive(Debug, Clone)]
pub struct ExecGraph {
    pub states: Vec<State>,
    /// The state entered at the document root.
    pub root: StateId,
    /// A state re-entered while still active — inline mode is impossible.
    pub recursive: bool,
    /// Every user template that was instantiated at least once; the
    /// complement is removed by §3.7.
    pub instantiated: BTreeSet<TemplateId>,
}

impl ExecGraph {
    pub fn state(&self, id: StateId) -> &State {
        &self.states[id]
    }

    /// True when no user template ever ran — the §3.6 built-in-only case.
    pub fn builtin_only(&self) -> bool {
        self.instantiated.is_empty()
    }
}

/// Result of partial evaluation.
pub struct PeResult {
    pub graph: ExecGraph,
    pub sample: SampleDoc,
}

/// Run partial evaluation of a stylesheet against structural information.
pub fn partial_evaluate(
    sheet: &Stylesheet,
    info: &StructInfo,
) -> Result<PeResult, RewriteError> {
    let sample = SampleDoc::generate(info);
    let mut builder = GraphBuilder {
        sample: &sample,
        states: Vec::new(),
        index: HashMap::new(),
        stack: Vec::new(),
        root: None,
        recursive: false,
        instantiated: BTreeSet::new(),
    };
    let opts = TransformOptions { assume_predicates: true, max_depth: 96, ..Default::default() };
    transform_with(sheet, &sample.doc, &opts, &mut builder).map_err(|e| {
        RewriteError::new(format!(
            "partial evaluation failed (falling back to straightforward translation): {e}"
        ))
    })?;
    let root = builder
        .root
        .ok_or_else(|| RewriteError::new("partial evaluation produced no root state"))?;
    Ok(PeResult {
        graph: ExecGraph {
            states: builder.states,
            root,
            recursive: builder.recursive,
            instantiated: builder.instantiated,
        },
        sample,
    })
}

struct GraphBuilder<'a> {
    sample: &'a SampleDoc,
    states: Vec<State>,
    index: HashMap<(Option<TemplateId>, SampleNode), StateId>,
    stack: Vec<StateId>,
    root: Option<StateId>,
    recursive: bool,
    instantiated: BTreeSet<TemplateId>,
}

impl GraphBuilder<'_> {
    fn state_for(&mut self, template: Option<TemplateId>, node: SampleNode) -> StateId {
        if let Some(&id) = self.index.get(&(template, node.clone())) {
            return id;
        }
        let id = self.states.len();
        self.states.push(State { template, node: node.clone(), transitions: BTreeMap::new() });
        self.index.insert((template, node), id);
        id
    }
}

impl TraceSink for GraphBuilder<'_> {
    fn enter_template(&mut self, template: Option<TemplateId>, node: NodeId, via: Via) {
        let sn = self
            .sample
            .locate(node)
            .cloned()
            .unwrap_or(SampleNode::Root);
        let sid = self.state_for(template, sn.clone());
        if self.stack.contains(&sid) {
            self.recursive = true;
        }
        if let Some(t) = template {
            self.instantiated.insert(t);
        }
        match via {
            Via::Root => self.root = Some(sid),
            Via::Apply(site) | Via::Call(site) => {
                if let Some(&top) = self.stack.last() {
                    let t = Transition { node: sn, target: sid };
                    let list = self.states[top].transitions.entry(site).or_default();
                    if !list.contains(&t) {
                        list.push(t);
                    }
                }
            }
        }
        self.stack.push(sid);
    }

    fn leave_template(&mut self) {
        self.stack.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_structinfo::{Cardinality, ChildDecl, ElemDecl};
    use xsltdb_xslt::compile_str;

    fn dept_info() -> StructInfo {
        StructInfo::manual(ElemDecl::parent(
            "dept",
            vec![
                ChildDecl { decl: ElemDecl::leaf("dname"), card: Cardinality::One },
                ChildDecl { decl: ElemDecl::leaf("loc"), card: Cardinality::One },
                ChildDecl {
                    decl: ElemDecl::parent(
                        "employees",
                        vec![ChildDecl {
                            decl: ElemDecl::parent(
                                "emp",
                                vec![
                                    ChildDecl {
                                        decl: ElemDecl::leaf("empno"),
                                        card: Cardinality::One,
                                    },
                                    ChildDecl {
                                        decl: ElemDecl::leaf("sal"),
                                        card: Cardinality::One,
                                    },
                                ],
                            ),
                            card: Cardinality::Many,
                        }],
                    ),
                    card: Cardinality::One,
                },
            ],
        ))
    }

    fn wrap(body: &str) -> String {
        format!(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
        )
    }

    #[test]
    fn paper_stylesheet_graph_is_acyclic() {
        let sheet = compile_str(&wrap(
            r#"<xsl:template match="dept"><H1/><xsl:apply-templates/></xsl:template>
               <xsl:template match="dname"><H2><xsl:value-of select="."/></H2></xsl:template>
               <xsl:template match="loc"><H2><xsl:value-of select="."/></H2></xsl:template>
               <xsl:template match="employees">
                 <xsl:apply-templates select="emp[sal &gt; 2000]"/>
               </xsl:template>
               <xsl:template match="emp"><tr/></xsl:template>
               <xsl:template match="text()"><xsl:value-of select="."/></xsl:template>"#,
        ))
        .unwrap();
        let pe = partial_evaluate(&sheet, &dept_info()).unwrap();
        assert!(!pe.graph.recursive);
        // Root state is the built-in rule at the document node.
        let root = pe.graph.state(pe.graph.root);
        assert_eq!(root.template, None);
        assert_eq!(root.node, SampleNode::Root);
        // The dept template ran, and its single apply site saw dname, loc
        // and employees (plus nothing else — `emp` is below employees).
        let dept_state = pe
            .graph
            .states
            .iter()
            .find(|s| s.template.is_some() && s.node == SampleNode::Element(vec![]))
            .expect("dept template state");
        let (_, trans) = dept_state.transitions.iter().next().expect("one apply site");
        let names: Vec<_> = trans.iter().map(|t| t.node.clone()).collect();
        assert_eq!(
            names,
            vec![
                SampleNode::Element(vec![0]),
                SampleNode::Element(vec![1]),
                SampleNode::Element(vec![2])
            ]
        );
        // Five templates instantiated: the text() template is dead in this
        // structure (no apply-templates ever selects a text node — the leaf
        // elements are handled by their own templates, not recursed into).
        assert_eq!(pe.graph.instantiated.len(), 5);
    }

    #[test]
    fn empty_stylesheet_is_builtin_only() {
        let sheet = compile_str(&wrap("")).unwrap();
        let pe = partial_evaluate(&sheet, &dept_info()).unwrap();
        assert!(pe.graph.builtin_only());
        assert!(!pe.graph.recursive);
    }

    #[test]
    fn value_predicate_assumed_true_in_trace() {
        // Without assume_predicates the emp[sal > 9999] select would match
        // nothing on the sample (sal sentinel is "0"); the trace must still
        // instantiate the emp template.
        let sheet = compile_str(&wrap(
            r#"<xsl:template match="dept">
                 <xsl:apply-templates select="employees/emp[sal &gt; 9999]"/>
               </xsl:template>
               <xsl:template match="emp"><hit/></xsl:template>"#,
        ))
        .unwrap();
        let pe = partial_evaluate(&sheet, &dept_info()).unwrap();
        assert_eq!(pe.graph.instantiated.len(), 2);
    }

    #[test]
    fn recursion_detected() {
        // A template that re-applies itself on the same node.
        let sheet = compile_str(&wrap(
            r#"<xsl:template match="dname">
                 <xsl:apply-templates select="."/>
               </xsl:template>"#,
        ))
        .unwrap();
        // The VM itself diverges on this (depth error) — PE reports failure.
        let r = partial_evaluate(&sheet, &dept_info());
        assert!(r.is_err());
    }

    #[test]
    fn dead_templates_not_instantiated() {
        let sheet = compile_str(&wrap(
            r#"<xsl:template match="dept"><d/></xsl:template>
               <xsl:template match="never-matches"><n/></xsl:template>"#,
        ))
        .unwrap();
        let pe = partial_evaluate(&sheet, &dept_info()).unwrap();
        assert_eq!(pe.graph.instantiated.len(), 1);
    }

    #[test]
    fn conditional_pattern_traces_all_candidates() {
        let sheet = compile_str(&wrap(
            r#"<xsl:template match="emp/empno[. = 3456]" priority="1"><special/></xsl:template>
               <xsl:template match="emp/empno"><normal/></xsl:template>"#,
        ))
        .unwrap();
        let pe = partial_evaluate(&sheet, &dept_info()).unwrap();
        // Both templates traced: the predicated one is residual.
        assert_eq!(pe.graph.instantiated.len(), 2);
    }
}
