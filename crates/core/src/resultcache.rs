//! ResultCache: a byte-bounded, lock-striped cache of **serialized
//! transform output** with read-set invalidation.
//!
//! The paper's publishing views make a transform's output a pure function
//! of (stylesheet × structure × data). The plan caches amortise the first
//! two factors; this module amortises the third: once a request has
//! streamed its bytes, an identical request can be served from memory
//! without re-entering the degradation lattice at all — *as long as no
//! table the plan reads has changed*.
//!
//! * **Key** — the exact quadruple the output is a function of: stylesheet
//!   text, **canonical** structure fingerprint, rewrite options, and the
//!   concrete tables the plan was bound to (in slot order). Equality is
//!   full content comparison, so distinct requests can never collide into
//!   one entry. Views whose structure cannot be derived carry an
//!   error-salted fingerprint that names the view, so they key per view.
//! * **Freshness** — every entry snapshots the [`TableVersion`] (per-table
//!   DDL stamp + DML data generation) of its read-set at fill time. A
//!   lookup revalidates the snapshot against the probing catalog
//!   ([`Catalog::versions_current`]): any DML *or* DDL on any read table
//!   since the fill drops the entry (counted as an invalidation) and the
//!   request falls through to a fresh execution. Writes to tables outside
//!   the read-set are invisible — that is the point.
//! * **Budgeting** — byte-bounded LRU per shard, like the plan caches; the
//!   dominant cost is the output bytes themselves. An output larger than a
//!   shard's slice is not admitted (counted `uncacheable`).
//! * **What is never cached** — errors and guard trips produce no bytes to
//!   cache: only complete, successful outputs are admitted, so a trip or a
//!   fault can never be replayed from memory. Hits still pass through the
//!   caller's guard and ledger accounting (see
//!   `serve::FrontDoor`), so a cached byte is charged like a fresh one.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// serving layer would have to contain. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::pipeline::Tier;
use crate::plancache::fnv64;
use crate::xqgen::RewriteOptions;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use xsltdb_relstore::{CacheSnapshot, CacheStats, Catalog, TableVersion};

// The serving layer shares one cache across every worker thread.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ResultKey>();
    assert_send_sync::<CachedResult>();
    assert_send_sync::<ResultCache>();
    assert_send_sync::<SharedResultCache>();
};

/// The cache key: everything the serialized output is a function of,
/// except the data itself (which the entry's read-set snapshot covers).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// The full stylesheet source text.
    pub stylesheet: String,
    /// Canonical structure fingerprint of the view
    /// ([`canonicalize_view`](xsltdb_structinfo::canonicalize_view)).
    pub struct_fp: u64,
    /// Canonical rendering of the [`RewriteOptions`] flags.
    pub options: String,
    /// The concrete tables the plan was bound to, in slot order — two
    /// same-shaped views share a plan but must *not* share results.
    pub tables: Vec<String>,
}

impl ResultKey {
    pub fn new(
        struct_fp: u64,
        stylesheet_src: &str,
        opts: &RewriteOptions,
        tables: Vec<String>,
    ) -> ResultKey {
        ResultKey {
            stylesheet: stylesheet_src.to_string(),
            struct_fp,
            options: format!("{opts:?}"),
            tables,
        }
    }

    /// Content digest (shard routing, reports).
    pub fn digest(&self) -> u64 {
        let mut h = fnv64(self.stylesheet.as_bytes());
        h ^= self.struct_fp.rotate_left(17);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^= fnv64(self.options.as_bytes());
        for t in &self.tables {
            h = h.rotate_left(13) ^ fnv64(t.as_bytes());
        }
        h
    }

    /// Bytes this key holds on to while cached.
    fn cost(&self) -> usize {
        self.stylesheet.len()
            + self.options.len()
            + self.tables.iter().map(String::len).sum::<usize>()
            + std::mem::size_of::<u64>()
    }
}

/// A served cache hit: the shared output bytes plus the tier that
/// originally produced them (for stats/reporting parity with fresh runs).
#[derive(Debug, Clone)]
pub struct CachedResult {
    pub bytes: Arc<[u8]>,
    pub tier: Tier,
}

struct Entry {
    bytes: Arc<[u8]>,
    tier: Tier,
    /// Version coordinates of every table the producing plan read, at the
    /// instant the bytes were computed.
    reads: Vec<TableVersion>,
    cost: usize,
    last_used: u64,
}

/// Default capacity for the serving layer: roomy enough for the whole
/// XSLTMark suite's outputs at bench sizes, small enough that eviction is
/// a tested code path.
pub const DEFAULT_RESULT_CACHE_BYTES: usize = 32 * 1024 * 1024;

/// One shard: a byte-bounded LRU of serialized outputs with read-set
/// revalidation on every lookup. Use [`SharedResultCache`] for concurrent
/// sessions.
pub struct ResultCache {
    capacity: usize,
    entries: HashMap<ResultKey, Entry>,
    bytes: usize,
    clock: u64,
    stats: Arc<CacheStats>,
}

impl Default for ResultCache {
    fn default() -> Self {
        ResultCache::new(DEFAULT_RESULT_CACHE_BYTES)
    }
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_stats(capacity, Arc::new(CacheStats::new()))
    }

    /// A cache charging externally owned counters — the shard constructor
    /// used by [`SharedResultCache`].
    pub fn with_stats(capacity: usize, stats: Arc<CacheStats>) -> ResultCache {
        ResultCache { capacity, entries: HashMap::new(), bytes: 0, clock: 0, stats }
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    pub fn bytes_in_use(&self) -> usize {
        self.bytes
    }

    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    pub fn stats(&self) -> CacheSnapshot {
        self.stats.snapshot()
    }

    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    pub fn clear(&mut self) {
        self.entries.clear();
        self.bytes = 0;
    }

    /// Look up the memoised output for `key`, revalidating its read-set
    /// against `catalog`. Counts exactly one hit or one miss; an entry
    /// whose read-set moved additionally counts an invalidation and is
    /// dropped before returning, so no later lookup can observe it.
    pub fn lookup(&mut self, key: &ResultKey, catalog: &Catalog) -> Option<CachedResult> {
        match self.entries.get_mut(key) {
            Some(entry) if catalog.versions_current(&entry.reads) => {
                self.clock += 1;
                entry.last_used = self.clock;
                self.stats.add_hit();
                Some(CachedResult { bytes: Arc::clone(&entry.bytes), tier: entry.tier })
            }
            Some(_) => {
                let stale = self
                    .entries
                    .remove(key)
                    .expect("entry present under the same borrow");
                self.bytes -= stale.cost;
                self.stats.add_invalidation();
                self.stats.add_miss();
                None
            }
            None => {
                self.stats.add_miss();
                None
            }
        }
    }

    /// Admit a complete, successful output together with the read-set
    /// snapshot it was computed under. Evicts LRU entries until the budget
    /// fits; an output that alone exceeds the capacity is not admitted.
    ///
    /// The caller must snapshot `reads` from the same catalog borrow the
    /// execution ran against — the catalog is immutable for the duration
    /// of a request, so the snapshot and the bytes are mutually consistent
    /// by construction.
    pub fn insert(
        &mut self,
        key: ResultKey,
        bytes: Arc<[u8]>,
        tier: Tier,
        reads: Vec<TableVersion>,
    ) {
        let cost = key.cost()
            + bytes.len()
            + reads
                .iter()
                .map(|v| v.table.len() + 2 * std::mem::size_of::<u64>())
                .sum::<usize>();
        if cost > self.capacity {
            self.stats.add_uncacheable();
            return;
        }
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.cost;
        }
        while self.bytes + cost > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies at least one entry");
            let evicted = self.entries.remove(&victim).expect("victim present");
            self.bytes -= evicted.cost;
            self.stats.add_eviction();
        }
        self.clock += 1;
        self.entries
            .insert(key, Entry { bytes, tier, reads, cost, last_used: self.clock });
        self.bytes += cost;
    }
}

/// Default shard count, matching the plan cache's striping.
pub const DEFAULT_RESULT_CACHE_SHARDS: usize = 8;

/// See `plancache::lock`: a poisoned shard's inner state is still coherent
/// (all mutations happen without intervening panics) and is used as-is.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A thread-safe, lock-striped [`ResultCache`]: N independent shards, each
/// a byte-bounded LRU guarded by its own mutex, all charging one shared
/// [`CacheStats`] (so `hits + misses == lookups` holds in every snapshot).
///
/// A key's [content digest](ResultKey::digest) picks its shard; the
/// freshness check runs under the shard lock against the catalog borrow
/// the caller holds, so a stale entry is dropped before any thread can be
/// served from it. Capacity 0 disables the cache: every insert is
/// uncacheable and every lookup is a miss.
pub struct SharedResultCache {
    shards: Box<[Mutex<ResultCache>]>,
    stats: Arc<CacheStats>,
    capacity: usize,
}

impl Default for SharedResultCache {
    fn default() -> Self {
        SharedResultCache::new(DEFAULT_RESULT_CACHE_BYTES)
    }
}

impl SharedResultCache {
    pub fn new(capacity: usize) -> SharedResultCache {
        SharedResultCache::with_shards(capacity, DEFAULT_RESULT_CACHE_SHARDS)
    }

    /// `capacity` estimated bytes over exactly `shards` lock stripes
    /// (≥ 1); each shard enforces `capacity / shards` independently.
    pub fn with_shards(capacity: usize, shards: usize) -> SharedResultCache {
        assert!(shards >= 1, "a cache needs at least one shard");
        let stats = Arc::new(CacheStats::new());
        let per_shard = capacity / shards;
        let shards: Vec<Mutex<ResultCache>> = (0..shards)
            .map(|_| Mutex::new(ResultCache::with_stats(per_shard, Arc::clone(&stats))))
            .collect();
        SharedResultCache { shards: shards.into_boxed_slice(), stats, capacity }
    }

    fn shard(&self, key: &ResultKey) -> &Mutex<ResultCache> {
        &self.shards[(key.digest() as usize) % self.shards.len()]
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Is the cache able to hold anything at all? Capacity 0 is the
    /// "disabled" configuration.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    pub fn bytes_in_use(&self) -> usize {
        self.shards.iter().map(|s| lock(s).bytes_in_use()).sum()
    }

    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entry_count()).sum()
    }

    /// Point-in-time copy of the shared counters; `hits + misses ==
    /// lookups` holds in every snapshot even while other threads charge.
    pub fn stats(&self) -> CacheSnapshot {
        self.stats.snapshot()
    }

    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    pub fn clear(&self) {
        for s in self.shards.iter() {
            lock(s).clear();
        }
    }

    /// [`ResultCache::lookup`] under the key's shard lock.
    pub fn lookup(&self, key: &ResultKey, catalog: &Catalog) -> Option<CachedResult> {
        lock(self.shard(key)).lookup(key, catalog)
    }

    /// [`ResultCache::insert`] under the key's shard lock.
    pub fn insert(
        &self,
        key: ResultKey,
        bytes: Arc<[u8]>,
        tier: Tier,
        reads: Vec<TableVersion>,
    ) {
        let shard = self.shard(&key);
        lock(shard).insert(key, bytes, tier, reads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_relstore::{ColType, Datum, Table};

    fn catalog_ab() -> Catalog {
        let mut c = Catalog::new();
        for name in ["a", "b"] {
            let mut t = Table::new(name, &[("x", ColType::Int)]);
            t.insert(vec![Datum::Int(1)]).unwrap();
            c.add_table(t);
        }
        c
    }

    fn key(sheet: &str, tables: &[&str]) -> ResultKey {
        ResultKey::new(
            0xBEEF,
            sheet,
            &RewriteOptions::default(),
            tables.iter().map(|t| t.to_string()).collect(),
        )
    }

    fn bytes(s: &str) -> Arc<[u8]> {
        Arc::from(s.as_bytes().to_vec().into_boxed_slice())
    }

    #[test]
    fn round_trip_hits_while_reads_unchanged() {
        let c = catalog_ab();
        let mut cache = ResultCache::new(1 << 16);
        let k = key("sheet", &["a"]);
        assert!(cache.lookup(&k, &c).is_none());
        cache.insert(k.clone(), bytes("<r/>"), Tier::Sql, c.versions_of(["a"]));
        let hit = cache.lookup(&k, &c).expect("hit");
        assert_eq!(&*hit.bytes, b"<r/>");
        assert_eq!(hit.tier, Tier::Sql);
        let snap = cache.stats();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert_eq!(snap.lookups(), 2);
    }

    #[test]
    fn dml_on_a_read_table_invalidates() {
        let mut c = catalog_ab();
        let mut cache = ResultCache::new(1 << 16);
        let k = key("sheet", &["a"]);
        cache.insert(k.clone(), bytes("<r/>"), Tier::Sql, c.versions_of(["a"]));
        c.table_mut("a").unwrap().insert(vec![Datum::Int(2)]).unwrap();
        assert!(cache.lookup(&k, &c).is_none(), "stale bytes must not be served");
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.entry_count(), 0, "stale entry dropped eagerly");
    }

    #[test]
    fn dml_outside_the_read_set_does_not_invalidate() {
        let mut c = catalog_ab();
        let mut cache = ResultCache::new(1 << 16);
        let k = key("sheet", &["a"]);
        cache.insert(k.clone(), bytes("<r/>"), Tier::Sql, c.versions_of(["a"]));
        // DML on b and DDL on b: both invisible to a read-set of {a}.
        c.table_mut("b").unwrap().insert(vec![Datum::Int(9)]).unwrap();
        c.create_index("b", "x").unwrap();
        assert!(cache.lookup(&k, &c).is_some());
        let snap = cache.stats();
        assert_eq!(snap.invalidations, 0);
        assert_eq!(snap.evictions, 0);
    }

    #[test]
    fn ddl_on_a_read_table_invalidates() {
        let mut c = catalog_ab();
        let mut cache = ResultCache::new(1 << 16);
        let k = key("sheet", &["a"]);
        cache.insert(k.clone(), bytes("<r/>"), Tier::Sql, c.versions_of(["a"]));
        c.create_index("a", "x").unwrap();
        assert!(cache.lookup(&k, &c).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn same_shape_different_bindings_do_not_share_results() {
        let c = catalog_ab();
        let mut cache = ResultCache::new(1 << 16);
        let ka = key("sheet", &["a"]);
        let kb = key("sheet", &["b"]);
        assert_ne!(ka, kb);
        cache.insert(ka.clone(), bytes("<a/>"), Tier::Sql, c.versions_of(["a"]));
        cache.insert(kb.clone(), bytes("<b/>"), Tier::Sql, c.versions_of(["b"]));
        assert_eq!(&*cache.lookup(&ka, &c).expect("a").bytes, b"<a/>");
        assert_eq!(&*cache.lookup(&kb, &c).expect("b").bytes, b"<b/>");
    }

    #[test]
    fn byte_budget_evicts_lru_and_rejects_oversize() {
        let c = catalog_ab();
        let payload = "x".repeat(256);
        let one = key("s0", &["a"]).cost() + payload.len();
        let mut cache = ResultCache::new(one * 2 + one / 2);
        for i in 0..3 {
            cache.insert(
                key(&format!("s{i}"), &["a"]),
                bytes(&payload),
                Tier::Sql,
                c.versions_of(["a"]),
            );
            assert!(cache.bytes_in_use() <= cache.capacity_bytes());
        }
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&key("s0", &["a"]), &c).is_none(), "LRU victim gone");
        assert!(cache.lookup(&key("s2", &["a"]), &c).is_some());
        // An output alone larger than the capacity is not admitted.
        let huge = "y".repeat(one * 4);
        cache.insert(key("huge", &["a"]), bytes(&huge), Tier::Sql, c.versions_of(["a"]));
        assert_eq!(cache.stats().uncacheable, 1);
    }

    #[test]
    fn capacity_zero_disables() {
        let c = catalog_ab();
        let shared = SharedResultCache::with_shards(0, 2);
        assert!(!shared.enabled());
        let k = key("sheet", &["a"]);
        shared.insert(k.clone(), bytes("<r/>"), Tier::Sql, c.versions_of(["a"]));
        assert!(shared.lookup(&k, &c).is_none());
        assert_eq!(shared.entry_count(), 0);
    }

    #[test]
    fn shared_cache_concurrent_lookups_agree_and_count() {
        let c = std::sync::Arc::new(catalog_ab());
        let shared = std::sync::Arc::new(SharedResultCache::new(1 << 20));
        for i in 0..8 {
            shared.insert(
                key(&format!("s{i}"), &["a"]),
                bytes(&format!("<r{i}/>")),
                Tier::Sql,
                c.versions_of(["a"]),
            );
        }
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let shared = std::sync::Arc::clone(&shared);
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for round in 0..40 {
                        let i = (t + round) % 8;
                        let hit = shared
                            .lookup(&key(&format!("s{i}"), &["a"]), &c)
                            .expect("warm entry");
                        assert_eq!(&*hit.bytes, format!("<r{i}/>").as_bytes());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no panics");
        }
        let snap = shared.stats();
        assert_eq!(snap.lookups(), 160);
        assert_eq!(snap.hits, 160);
        assert_eq!(snap.hits + snap.misses, snap.lookups());
    }
}
