//! Combined cross-language optimisation (paper §2.2, Example 2): a user
//! XQuery over the *result* of an XSLT transformation (an "XSLT view") is
//! composed with the stylesheet's rewritten XQuery, then the composed query
//! is rewritten to SQL/XML — yielding the Table 11 plan that touches only
//! the base tables.
//!
//! The key step is *constructor projection*: a path like `./table/tr` over
//! a query that constructs its result is answered statically by selecting
//! the construction sites of the matching elements.

use crate::error::RewriteError;
use xsltdb_xquery::{Clause, PathStart, XQuery, XqExpr};
use xsltdb_xpath::{Axis, NodeTest};

/// Compose `user_query` (whose context item is the XSLT result) with the
/// rewritten stylesheet query `xslt_query` (whose context item is the view
/// row document). The result reads the view row directly.
pub fn compose_over_xslt_view(
    user_query: &XQuery,
    xslt_query: &XQuery,
) -> Result<XQuery, RewriteError> {
    if !user_query.functions.is_empty() || !xslt_query.functions.is_empty() {
        return Err(RewriteError::new(
            "composition requires fully inlined queries",
        ));
    }
    if !user_query.variables.is_empty() {
        return Err(RewriteError::new(
            "user query prolog variables are not supported in composition",
        ));
    }
    let body = simplify(substitute(&user_query.body, &xslt_query.body)?);
    Ok(XQuery {
        variables: xslt_query.variables.clone(),
        functions: Vec::new(),
        body,
    })
}

/// Post-composition simplification: `for $v in E return $v` over a
/// constructing expression is just `E` (the classic identity-FLWOR
/// elimination that makes the Table 11 plan emerge).
fn simplify(e: XqExpr) -> XqExpr {
    match e {
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            let ret = simplify(*ret);
            if where_clause.is_none() && order_by.is_empty() && clauses.len() == 1 {
                if let Clause::For { var, at: None, source } = &clauses[0] {
                    if ret == XqExpr::VarRef(var.clone()) {
                        return simplify(source.clone());
                    }
                }
            }
            XqExpr::Flwor {
                clauses: clauses
                    .into_iter()
                    .map(|c| match c {
                        Clause::For { var, at, source } => {
                            Clause::For { var, at, source: simplify(source) }
                        }
                        Clause::Let { var, value } => {
                            Clause::Let { var, value: simplify(value) }
                        }
                    })
                    .collect(),
                where_clause,
                order_by,
                ret: Box::new(ret),
            }
        }
        XqExpr::Seq(es) => XqExpr::Seq(es.into_iter().map(simplify).collect()),
        XqExpr::Annotated { comment, expr } => {
            XqExpr::Annotated { comment, expr: Box::new(simplify(*expr)) }
        }
        XqExpr::If { cond, then, els } => XqExpr::If {
            cond,
            then: Box::new(simplify(*then)),
            els: Box::new(simplify(*els)),
        },
        other => other,
    }
}

/// Replace context-based paths in the user expression with projections of
/// the XSLT result constructor.
fn substitute(e: &XqExpr, result: &XqExpr) -> Result<XqExpr, RewriteError> {
    match e {
        XqExpr::Path { start, steps }
            if matches!(start, PathStart::Context | PathStart::Root)
                || matches!(start, PathStart::Expr(b) if **b == XqExpr::ContextItem) =>
        {
            let mut names = Vec::with_capacity(steps.len());
            for s in steps {
                if s.axis == Axis::SelfAxis && s.test == NodeTest::Node {
                    continue; // a leading `.`
                }
                if s.axis != Axis::Child || !s.predicates.is_empty() {
                    return Err(RewriteError::new(
                        "only simple child paths can be projected through a constructor",
                    ));
                }
                match &s.test {
                    NodeTest::Name { local, .. } => names.push(local.clone()),
                    other => {
                        return Err(RewriteError::new(format!(
                            "cannot project node test {other} through a constructor"
                        )))
                    }
                }
            }
            project(result, &names)
        }
        XqExpr::ContextItem => Ok(result.clone()),
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            let clauses = clauses
                .iter()
                .map(|c| {
                    Ok(match c {
                        Clause::For { var, at, source } => Clause::For {
                            var: var.clone(),
                            at: at.clone(),
                            source: substitute(source, result)?,
                        },
                        Clause::Let { var, value } => Clause::Let {
                            var: var.clone(),
                            value: substitute(value, result)?,
                        },
                    })
                })
                .collect::<Result<_, RewriteError>>()?;
            Ok(XqExpr::Flwor {
                clauses,
                where_clause: match where_clause {
                    Some(w) => Some(Box::new(substitute(w, result)?)),
                    None => None,
                },
                order_by: order_by.clone(),
                ret: Box::new(substitute(ret, result)?),
            })
        }
        XqExpr::Seq(es) => Ok(XqExpr::Seq(
            es.iter().map(|x| substitute(x, result)).collect::<Result<_, _>>()?,
        )),
        XqExpr::Call { name, args } => Ok(XqExpr::Call {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| substitute(a, result))
                .collect::<Result<_, _>>()?,
        }),
        // Variables bound by the user's own FLWOR refer to projected nodes;
        // leave them (and literals) untouched.
        other => Ok(other.clone()),
    }
}

/// Select the construction sites of elements at `path` inside a
/// constructing expression.
pub fn project(e: &XqExpr, path: &[String]) -> Result<XqExpr, RewriteError> {
    if path.is_empty() {
        return Ok(e.clone());
    }
    let projected = match e {
        XqExpr::Annotated { expr, .. } => project(expr, path)?,
        XqExpr::Seq(es) => {
            let parts: Vec<XqExpr> = es
                .iter()
                .map(|x| project(x, path))
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .filter(|x| *x != XqExpr::Empty)
                .collect();
            match parts.len() {
                0 => XqExpr::Empty,
                1 => parts.into_iter().next().expect("one element"),
                _ => XqExpr::Seq(parts),
            }
        }
        XqExpr::DirectElem { name, content, .. } => {
            if *name.local == path[0] {
                if path.len() == 1 {
                    e.clone()
                } else {
                    project(&XqExpr::Seq(content.clone()), &path[1..])?
                }
            } else {
                XqExpr::Empty
            }
        }
        XqExpr::CompElem { name, content } => match name.as_ref() {
            XqExpr::StrLit(n) if n == &path[0] => {
                if path.len() == 1 {
                    e.clone()
                } else {
                    project(content, &path[1..])?
                }
            }
            _ => XqExpr::Empty,
        },
        XqExpr::Flwor { clauses, where_clause, order_by, ret } => {
            let inner = project(ret, path)?;
            if inner == XqExpr::Empty {
                XqExpr::Empty
            } else {
                XqExpr::Flwor {
                    clauses: clauses.clone(),
                    where_clause: where_clause.clone(),
                    order_by: order_by.clone(),
                    ret: Box::new(inner),
                }
            }
        }
        XqExpr::If { cond, then, els } => {
            let t = project(then, path)?;
            let f = project(els, path)?;
            if t == XqExpr::Empty && f == XqExpr::Empty {
                XqExpr::Empty
            } else {
                XqExpr::If {
                    cond: cond.clone(),
                    then: Box::new(t),
                    els: Box::new(f),
                }
            }
        }
        // Text never contains elements.
        XqExpr::TextContent(_)
        | XqExpr::StrLit(_)
        | XqExpr::NumLit(_)
        | XqExpr::CompText(_)
        | XqExpr::CompAttr { .. }
        | XqExpr::Empty => XqExpr::Empty,
        // fn:string and friends produce atomics.
        XqExpr::Call { name, .. }
            if matches!(
                name.strip_prefix("fn:").unwrap_or(name),
                "string" | "concat" | "string-join" | "count" | "sum" | "number"
            ) =>
        {
            XqExpr::Empty
        }
        other => {
            return Err(RewriteError::new(format!(
                "cannot see through {other:?} to project constructed elements"
            )))
        }
    };
    Ok(projected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_xquery::{parse_query, parse_xq_expr, pretty};

    #[test]
    fn projects_through_constructors_and_flwor() {
        let result = parse_xq_expr(
            r#"(<H1>x</H1>,
                <table border="2">{
                  (<td>head</td>,
                   for $e in $v/emp return <tr><td>{fn:string($e/empno)}</td></tr>)
                }</table>)"#,
        )
        .unwrap();
        let p = project(&result, &["table".into(), "tr".into()]).unwrap();
        let printed = pretty(&p);
        assert!(printed.contains("for $e in $v/emp"), "{printed}");
        assert!(printed.contains("<tr>"), "{printed}");
        assert!(!printed.contains("H1"), "{printed}");
        assert!(!printed.contains("head"), "{printed}");
    }

    #[test]
    fn composes_table10_query() {
        let user = parse_query("for $tr in ./table/tr return $tr").unwrap();
        let xslt = parse_query(
            r#"declare variable $var000 := .;
               (<H1>t</H1>,
                <table>{for $e in $var000/dept/emp return <tr>{fn:string($e)}</tr>}</table>)"#,
        )
        .unwrap();
        let composed = compose_over_xslt_view(&user, &xslt).unwrap();
        let printed = xsltdb_xquery::pretty_query(&composed);
        assert!(printed.contains("for $e in $var000/dept/emp"), "{printed}");
        assert!(!printed.contains("H1"), "{printed}");
    }

    #[test]
    fn projection_failure_reported() {
        // Cannot see through an opaque path.
        let result = parse_xq_expr("$v/something").unwrap();
        assert!(project(&result, &["x".into()]).is_err());
    }

    #[test]
    fn empty_path_returns_whole() {
        let e = parse_xq_expr("<a/>").unwrap();
        assert_eq!(project(&e, &[]).unwrap(), e);
    }
}

#[cfg(test)]
mod simplify_tests {
    use super::*;
    use xsltdb_xquery::{parse_xq_expr, pretty};

    #[test]
    fn identity_for_elimination() {
        let user = xsltdb_xquery::parse_query("for $x in ./a return $x").unwrap();
        let xslt = xsltdb_xquery::parse_query(
            "declare variable $var000 := .; <a>{fn:string($var000)}</a>",
        )
        .unwrap();
        let composed = compose_over_xslt_view(&user, &xslt).unwrap();
        // The identity FLWOR dissolves; the constructor remains directly.
        assert!(matches!(composed.body, XqExpr::DirectElem { .. }), "{:?}", composed.body);
    }

    #[test]
    fn non_identity_for_is_kept() {
        let user =
            xsltdb_xquery::parse_query("for $x in ./a return fn:string($x)").unwrap();
        let xslt = xsltdb_xquery::parse_query(
            "declare variable $var000 := .; <a>1</a>",
        )
        .unwrap();
        let composed = compose_over_xslt_view(&user, &xslt).unwrap();
        let p = pretty(&composed.body);
        assert!(p.contains("for $x in"), "{p}");
        assert!(p.contains("fn:string($x)"), "{p}");
    }

    #[test]
    fn projection_through_if_branches() {
        let result = parse_xq_expr(
            "if ($c) then <t><r>1</r></t> else <t><r>2</r></t>",
        )
        .unwrap();
        let p = project(&result, &["t".into(), "r".into()]).unwrap();
        let printed = pretty(&p);
        assert!(printed.contains("if ("), "{printed}");
        assert!(printed.contains("<r>1</r>") && printed.contains("<r>2</r>"), "{printed}");
    }

    #[test]
    fn projection_misses_yield_empty() {
        let result = parse_xq_expr("<t><a/></t>").unwrap();
        assert_eq!(project(&result, &["t".into(), "zzz".into()]).unwrap(), XqExpr::Empty);
        assert_eq!(project(&result, &["nope".into()]).unwrap(), XqExpr::Empty);
    }

    #[test]
    fn user_prolog_variables_rejected() {
        let user = xsltdb_xquery::parse_query("declare variable $u := 1; $u").unwrap();
        let xslt = xsltdb_xquery::parse_query("declare variable $var000 := .; <a/>").unwrap();
        assert!(compose_over_xslt_view(&user, &xslt).is_err());
    }
}
