//! ExecGuard: unified resource governance for the transformation pipeline.
//!
//! The mechanism lives in the XML substrate crate (`xsltdb_xml::guard`) so
//! every engine can charge the same handle without a dependency cycle; this
//! module re-exports it as the pipeline-facing surface and adds the
//! pipeline-level policy knobs.
//!
//! One [`Guard`] is cloned into all three tiers of a transformation, so the
//! fuel, recursion-depth, output-size and wall-clock budgets accumulate
//! *globally*: a query that burns half its fuel on a failed SQL-tier
//! attempt has only the other half left for the VM fallback.

pub use xsltdb_xml::guard::{
    FaultKind, FaultPoint, Guard, GuardExceeded, Limits, Resource,
};

/// How the pipeline reacts to a tier failing at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Fall back to the next slower tier on an engine error or a contained
    /// panic. Guard trips never fall back — the budget is shared, so the
    /// lower tier would only burn the remainder before tripping again.
    #[default]
    Fallback,
    /// Fail fast: surface the first tier's error without trying another.
    Strict,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reexport_is_the_substrate_type() {
        // A guard built here trips exactly like the substrate's.
        let g = Guard::new(Limits::UNLIMITED.with_fuel(1));
        assert!(g.charge(2).is_err());
        assert_eq!(g.trip().unwrap().resource, Resource::Fuel);
    }

    #[test]
    fn default_policy_is_fallback() {
        assert_eq!(DegradePolicy::default(), DegradePolicy::Fallback);
    }
}
