//! Index-assisted execution of rewritten queries over stored documents —
//! the §7.4 study subject: "CLOB or BLOB storage with path/value index,
//! tree storage with path/value index".
//!
//! Given a rewritten (inline) XQuery, [`index_assist`] finds the first
//! `for $v in path[child = literal]` iteration whose path is statically
//! rooted at the input document, replaces its source with a probe variable,
//! and returns the probe specification. [`execute_indexed`] runs the probe
//! against an [`XmlDocStore`]'s path/value index and evaluates the residual
//! query with the probed nodes pre-bound — so the value predicate costs one
//! index probe instead of a document scan, under either storage model.

use crate::error::PipelineError;
use crate::xqgen::ROOT_VAR;
use std::collections::HashMap;
use std::rc::Rc;
use xsltdb_relstore::{Datum, ExecStats, XmlDocStore};
use xsltdb_xml::{Document, NodeId};
use xsltdb_xpath::{Axis, NodeTest};
use xsltdb_xquery::{
    evaluate_query, evaluate_query_with_vars, sequence_to_document, Clause, CompOp, Item,
    NodeHandle, PathStart, XQuery, XqExpr,
};

/// The variable the assisted query iterates instead of its original path.
pub const INDEXED_VAR: &str = "xdb-indexed";

/// What to probe in the path/value index.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeSpec {
    /// Path of the indexed leaf, e.g. `/table/row/id`.
    pub leaf_path: String,
    pub value: Datum,
    /// Steps to ascend from the leaf hit to the node the query iterates
    /// (1 for a `child = literal` predicate, 0 for `. = literal`).
    pub ascend: usize,
}

/// Try to turn a query into an index-assisted form. Returns the modified
/// query plus the probe, or `None` when no iteration is indexable.
pub fn index_assist(query: &XQuery) -> Option<(XQuery, ProbeSpec)> {
    // The generated prolog binds the document variable to the context item.
    let mut paths: HashMap<String, Vec<String>> = HashMap::new();
    for v in &query.variables {
        if v.value == XqExpr::ContextItem {
            paths.insert(v.name.clone(), Vec::new());
        }
    }
    if !paths.contains_key(ROOT_VAR) {
        return None;
    }
    let mut body = query.body.clone();
    let spec = assist(&mut body, &paths)?;
    Some((
        XQuery {
            variables: query.variables.clone(),
            functions: query.functions.clone(),
            body,
        },
        spec,
    ))
}

fn assist(e: &mut XqExpr, paths: &HashMap<String, Vec<String>>) -> Option<ProbeSpec> {
    match e {
        XqExpr::Annotated { expr, .. } => assist(expr, paths),
        XqExpr::Seq(es) => es.iter_mut().find_map(|x| assist(x, paths)),
        XqExpr::DirectElem { content, .. } => {
            content.iter_mut().find_map(|x| assist(x, paths))
        }
        XqExpr::If { then, els, .. } => {
            assist(then, paths).or_else(|| assist(els, paths))
        }
        XqExpr::Flwor { clauses, ret, .. } => {
            let mut local = paths.clone();
            for c in clauses.iter_mut() {
                match c {
                    Clause::Let { var, value } => {
                        if let Some(p) = simple_doc_path(value, &local) {
                            local.insert(var.clone(), p);
                        }
                    }
                    Clause::For { source, .. } => {
                        if let Some(spec) = indexable(source, &local) {
                            *source = XqExpr::VarRef(INDEXED_VAR.to_string());
                            return Some(spec);
                        }
                    }
                }
            }
            assist(ret, &local)
        }
        _ => None,
    }
}

/// A path of plain child steps rooted (transitively) at the document var.
fn simple_doc_path(
    e: &XqExpr,
    paths: &HashMap<String, Vec<String>>,
) -> Option<Vec<String>> {
    match e {
        XqExpr::VarRef(v) => paths.get(v).cloned(),
        XqExpr::Path { start, steps } => {
            let mut base = match start {
                PathStart::Expr(b) => match b.as_ref() {
                    XqExpr::VarRef(v) => paths.get(v).cloned()?,
                    _ => return None,
                },
                _ => return None,
            };
            for s in steps {
                if s.axis != Axis::Child || !s.predicates.is_empty() {
                    return None;
                }
                match &s.test {
                    NodeTest::Name { local, .. } => base.push(local.clone()),
                    _ => return None,
                }
            }
            Some(base)
        }
        _ => None,
    }
}

/// `path/elem[child = literal]` (or `[. = literal]`) over a document-rooted
/// path.
fn indexable(
    source: &XqExpr,
    paths: &HashMap<String, Vec<String>>,
) -> Option<ProbeSpec> {
    let XqExpr::Path { start, steps } = source else {
        return None;
    };
    let base = match start {
        PathStart::Expr(b) => match b.as_ref() {
            XqExpr::VarRef(v) => paths.get(v).cloned()?,
            _ => return None,
        },
        _ => return None,
    };
    let (last, init) = steps.split_last()?;
    let mut full = base;
    for s in init {
        if s.axis != Axis::Child || !s.predicates.is_empty() {
            return None;
        }
        match &s.test {
            NodeTest::Name { local, .. } => full.push(local.clone()),
            _ => return None,
        }
    }
    if last.axis != Axis::Child || last.predicates.len() != 1 {
        return None;
    }
    let NodeTest::Name { local: target, .. } = &last.test else {
        return None;
    };
    full.push(target.clone());

    let XqExpr::Compare(CompOp::Eq, l, r) = &last.predicates[0] else {
        return None;
    };
    let (lhs, lit) = match (l.as_ref(), r.as_ref()) {
        (p, XqExpr::NumLit(_) | XqExpr::StrLit(_)) => (p, r.as_ref()),
        (XqExpr::NumLit(_) | XqExpr::StrLit(_), p) => (p, l.as_ref()),
        _ => return None,
    };
    let value = match lit {
        XqExpr::NumLit(n) => Datum::Num(*n),
        XqExpr::StrLit(s) => Datum::Text(s.clone()),
        _ => return None,
    };
    let ascend = match lhs {
        XqExpr::ContextItem => 0,
        XqExpr::Path { start: PathStart::Context, steps } if steps.len() == 1 => {
            let s = &steps[0];
            if s.axis != Axis::Child || !s.predicates.is_empty() {
                return None;
            }
            match &s.test {
                NodeTest::Name { local, .. } => {
                    full.push(local.clone());
                    1
                }
                _ => return None,
            }
        }
        _ => return None,
    };
    Some(ProbeSpec { leaf_path: format!("/{}", full.join("/")), value, ascend })
}

/// Execute a rewritten query over one stored document, using the path/value
/// index when the query shape allows it; falls back to plain evaluation
/// otherwise. Under CLOB storage the fetch re-parses (the storage model's
/// materialisation cost); under tree storage it is free.
pub fn execute_indexed(
    query: &XQuery,
    store: &XmlDocStore,
    doc: usize,
    stats: &ExecStats,
) -> Result<Document, PipelineError> {
    let assisted = if store.is_indexed() { index_assist(query) } else { None };
    match assisted {
        Some((q2, spec)) => {
            let hits = store.lookup(&spec.leaf_path, &spec.value, stats)?;
            let tree = store.fetch(doc)?;
            let mut nodes = Vec::new();
            for h in hits.into_iter().filter(|h| h.doc == doc) {
                let mut n = h.node;
                for _ in 0..spec.ascend {
                    n = tree.parent(n).ok_or_else(|| {
                        PipelineError::internal("index hit above the document root")
                    })?;
                }
                nodes.push(Item::Node(NodeHandle::new(Rc::clone(&tree), n)));
            }
            let input = NodeHandle::new(tree, NodeId::DOCUMENT);
            let seq = evaluate_query_with_vars(
                &q2,
                Some(input),
                vec![(INDEXED_VAR.to_string(), nodes)],
            )?;
            Ok(sequence_to_document(&seq))
        }
        None => {
            let tree = store.fetch(doc)?;
            let input = NodeHandle::new(tree, NodeId::DOCUMENT);
            let seq = evaluate_query(query, Some(input))?;
            Ok(sequence_to_document(&seq))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xqgen::{rewrite, RewriteOptions};
    use xsltdb_relstore::DocStorageModel;
    use xsltdb_structinfo::struct_of_dtd;
    use xsltdb_xquery::parse_query;
    use xsltdb_xslt::{compile_str, transform};

    const DTD: &str = "<!ELEMENT table (row*)> <!ELEMENT row (id, name)> \
                       <!ELEMENT id (#PCDATA)> <!ELEMENT name (#PCDATA)>";
    const DOC: &str = "<table><row><id>41</id><name>Ann</name></row>\
                       <row><id>7</id><name>Bo</name></row></table>";

    fn onerow_sheet() -> String {
        r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
           <xsl:template match="table"><out><xsl:apply-templates select="row[id = 41]"/></out></xsl:template>
           <xsl:template match="row"><hit><xsl:value-of select="name"/></hit></xsl:template>
           </xsl:stylesheet>"#
            .to_string()
    }

    #[test]
    fn index_assist_extracts_probe() {
        let sheet = compile_str(&onerow_sheet()).unwrap();
        let info = struct_of_dtd(DTD, "table").unwrap();
        let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
        let (q2, spec) = index_assist(&outcome.query).expect("indexable");
        assert_eq!(spec.leaf_path, "/table/row/id");
        assert_eq!(spec.value, Datum::Num(41.0));
        assert_eq!(spec.ascend, 1);
        let printed = xsltdb_xquery::pretty_query(&q2);
        assert!(printed.contains("$xdb-indexed"), "{printed}");
        assert!(!printed.contains("id = 41"), "{printed}");
    }

    #[test]
    fn indexed_execution_matches_vm_on_both_models() {
        let sheet = compile_str(&onerow_sheet()).unwrap();
        let info = struct_of_dtd(DTD, "table").unwrap();
        let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
        let parsed = xsltdb_xml::parse::parse(DOC).unwrap();
        let expected = xsltdb_xml::to_string(&transform(&sheet, &parsed).unwrap());

        for model in [DocStorageModel::Tree, DocStorageModel::Clob] {
            let mut store = XmlDocStore::new(model, true);
            let idx = store.insert(DOC).unwrap();
            let stats = ExecStats::new();
            let out = execute_indexed(&outcome.query, &store, idx, &stats).unwrap();
            assert_eq!(xsltdb_xml::to_string(&out), expected, "{model:?}");
            assert_eq!(stats.snapshot().index_probes, 1, "{model:?}");
            if model == DocStorageModel::Clob {
                assert_eq!(store.reparses.get(), 1);
            }
        }
    }

    #[test]
    fn unindexed_store_falls_back_to_plain_evaluation() {
        let sheet = compile_str(&onerow_sheet()).unwrap();
        let info = struct_of_dtd(DTD, "table").unwrap();
        let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
        let mut store = XmlDocStore::new(DocStorageModel::Tree, false);
        let idx = store.insert(DOC).unwrap();
        let stats = ExecStats::new();
        let out = execute_indexed(&outcome.query, &store, idx, &stats).unwrap();
        assert!(xsltdb_xml::to_string(&out).contains("Ann"));
        assert_eq!(stats.snapshot().index_probes, 0);
    }

    #[test]
    fn string_predicate_probes_text_key() {
        let q = parse_query(
            "declare variable $var000 := .; \
             for $r in $var000/table/row[name = \"Bo\"] return <f>{fn:string($r/id)}</f>",
        )
        .unwrap();
        let (_, spec) = index_assist(&q).expect("indexable");
        assert_eq!(spec.leaf_path, "/table/row/name");
        assert_eq!(spec.value, Datum::Text("Bo".into()));

        let mut store = XmlDocStore::new(DocStorageModel::Tree, true);
        let idx = store.insert(DOC).unwrap();
        let stats = ExecStats::new();
        let out = execute_indexed(&q, &store, idx, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&out), "<f>7</f>");
    }

    #[test]
    fn self_predicate_ascend_zero() {
        let q = parse_query(
            "declare variable $var000 := .; \
             for $i in $var000/table/row/id[. = 7] return <f>{fn:string($i)}</f>",
        )
        .unwrap();
        let (_, spec) = index_assist(&q).expect("indexable");
        assert_eq!(spec.leaf_path, "/table/row/id");
        assert_eq!(spec.ascend, 0);
    }

    #[test]
    fn non_indexable_query_returns_none() {
        // Range predicates are not equality probes.
        let q = parse_query(
            "declare variable $var000 := .; \
             for $r in $var000/table/row[id > 5] return $r",
        )
        .unwrap();
        assert!(index_assist(&q).is_none());
    }
}
