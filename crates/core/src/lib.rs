//! # xsltdb
//!
//! Reproduction of *"Efficient XSLT Processing in Relational Database
//! System"* (Liu & Novoselsky, VLDB 2006): XSLT stylesheets are rewritten
//! into XQuery by **partially evaluating** them over the input XMLType's
//! structural information, and the XQuery is rewritten further into a
//! SQL/XML query over the underlying relational storage — where B-tree
//! indexes and aggregation do the work the functional XSLT evaluation
//! would have done by materialising documents and walking DOM trees.
//!
//! * [`pe`] — partial evaluation: sample-document tracing and the template
//!   execution graph (paper §4);
//! * [`xqgen`] — XQuery generation: inline / non-inline / straightforward
//!   modes with the §3.3–3.7 optimisations;
//! * [`sqlrewrite`] — XQuery → SQL/XML over publishing views (Tables 7/11);
//! * [`pipeline`] — the tiered execution engine and the no-rewrite
//!   baseline used throughout the evaluation;
//! * [`combined`] — cross-language composition of XQuery over XSLT views
//!   (paper §2.2, Example 2);
//! * [`docexec`] — index-assisted execution over stored documents (the
//!   §7.4 storage-model study).
//!
//! ```
//! use xsltdb::xqgen::{rewrite, RewriteOptions};
//! use xsltdb_structinfo::struct_of_dtd;
//! use xsltdb_xquery::{evaluate_query, sequence_to_document, NodeHandle};
//!
//! // Structural information from a DTD (paper §3.2, bullet 1)…
//! let info = struct_of_dtd(
//!     "<!ELEMENT emp (ename, sal)> <!ELEMENT ename (#PCDATA)> <!ELEMENT sal (#PCDATA)>",
//!     "emp",
//! ).unwrap();
//! // …drives partial evaluation of a stylesheet into an inlined XQuery…
//! let sheet = xsltdb_xslt::compile_str(
//!     r#"<xsl:stylesheet version="1.0"
//!          xmlns:xsl="http://www.w3.org/1999/XSL/Transform">
//!          <xsl:template match="emp"><p><xsl:value-of select="ename"/></p></xsl:template>
//!        </xsl:stylesheet>"#,
//! ).unwrap();
//! let outcome = rewrite(&sheet, &info, &RewriteOptions::default()).unwrap();
//! assert!(outcome.fully_inlined());
//! // …whose output equals the functional evaluation.
//! let doc = xsltdb_xml::parse_xml("<emp><ename>CLARK</ename><sal>2450</sal></emp>").unwrap();
//! let input = NodeHandle::document(doc);
//! let seq = evaluate_query(&outcome.query, Some(input)).unwrap();
//! assert_eq!(xsltdb_xml::to_string(&sequence_to_document(&seq)), "<p>CLARK</p>");
//! ```

pub mod admission;
pub mod combined;
pub mod docexec;
pub mod error;
pub mod guard;
pub mod pe;
pub mod pipeline;
pub mod plancache;
pub mod resultcache;
pub mod sqlrewrite;
pub mod translate;
pub mod xqgen;

pub use admission::{
    classify, AdmissionConfig, AdmissionQueue, AdmissionStats, BreakerConfig, BreakerView,
    CircuitBreakerSet, FailureClass, Permit, Rejected, RetryPolicy,
};
pub use error::{PipelineError, RewriteError, TierFailure};
pub use guard::{
    DegradePolicy, FaultKind, FaultPoint, Guard, GuardExceeded, Limits, Resource,
};
pub use docexec::{execute_indexed, index_assist, ProbeSpec, INDEXED_VAR};
pub use pe::{partial_evaluate, ExecGraph, PeResult};
pub use pipeline::{
    no_rewrite_transform, no_rewrite_transform_guarded, plan_bound, plan_cached,
    plan_cached_shared, plan_transform, AllowAllTiers, BaselineRun, BoundPlan, GuardedRun,
    StreamRun, Tier, TierRouter, TransformPlan,
};
pub use plancache::{
    fnv64, plan_cost, struct_fingerprint, PlanCache, PlanKey, SharedPlanCache,
    DEFAULT_PLAN_CACHE_BYTES, DEFAULT_PLAN_CACHE_SHARDS,
};
pub use resultcache::{
    CachedResult, ResultCache, ResultKey, SharedResultCache, DEFAULT_RESULT_CACHE_BYTES,
    DEFAULT_RESULT_CACHE_SHARDS,
};
pub use sqlrewrite::rewrite_to_sql;
pub use xqgen::{rewrite, rewrite_straightforward, RewriteMode, RewriteOptions, RewriteOutcome};
