//! PlanCache: a byte-bounded LRU cache of prepared [`TransformPlan`]s.
//!
//! The paper's production setting (`XMLTransform()` inside Oracle XML DB)
//! assumes the same stylesheet is applied over and over to documents of the
//! same shape: the compile → partial-evaluate → rewrite pipeline is meant
//! to be paid **once per (stylesheet, structure) pair**, not once per call.
//! This module provides that amortisation for the in-process engine.
//!
//! * **Key** — a content digest of the triple that planning actually
//!   consumes: the stylesheet text, the **canonical** fingerprint of the
//!   view's structural information
//!   ([`canonicalize_view`](xsltdb_structinfo::canonicalize_view) — table
//!   names replaced by slots, so same-shaped views share entries), and the
//!   [`RewriteOptions`]. Equality is exact (the full stylesheet text is
//!   compared, not just its hash), so distinct triples can never collide
//!   to the same entry.
//! * **Invalidation** — every entry records the global DDL clock
//!   ([`Catalog::generation`](xsltdb_relstore::Catalog::generation))
//!   observed at planning time (`planned_at`). A lookup passes a *validity
//!   floor* (`valid_at`): the entry is served iff it was planned at or
//!   after that floor, and dropped otherwise. Callers that pass
//!   `catalog.generation()` get the old nuke-on-any-DDL protocol;
//!   [`plan_cached`](crate::pipeline::plan_cached) passes the newest
//!   per-table DDL stamp
//!   ([`Catalog::max_ddl_stamp`](xsltdb_relstore::Catalog::max_ddl_stamp))
//!   over the tables the plan actually binds, so DDL on unrelated tables
//!   leaves same-shaped siblings cached (plan-aware invalidation). Either
//!   way a stale entry is dropped under the lock and replanned: the tier
//!   chosen may change, the output must not.
//! * **Budgeting** — the cache is bounded in (estimated) bytes, not entry
//!   count, and evicts least-recently-used entries. A plan larger than the
//!   whole capacity is simply not admitted.
//! * **Guard composition** — cached plans are immutable; executions arm a
//!   *fresh* [`Guard`](crate::guard::Guard) per call (see
//!   [`BoundPlan::execute_with_limits`](crate::pipeline::BoundPlan::execute_with_limits)),
//!   so a budget trip in one call never poisons the entry for the next.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// The cache hands one Arc'd plan to every caller; a stray clone of the
// plan would silently undo the sharing the cache exists to provide.
#![cfg_attr(not(test), deny(clippy::redundant_clone))]

use crate::pipeline::{BoundPlan, TransformPlan};
use crate::xqgen::RewriteOptions;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use xsltdb_relstore::{CacheSnapshot, CacheStats, XmlView};
use xsltdb_structinfo::{canonicalize_view, ViewCanon};

// Re-exported from their home crates (the digest primitive lives with the
// slot model in `relstore::binding`; the fingerprint with the
// canonicaliser in `structinfo::canonical`) so existing callers of
// `plancache::{fnv64, struct_fingerprint}` keep working.
pub use xsltdb_relstore::fnv64;
pub use xsltdb_structinfo::struct_fingerprint;

// The contract the whole concurrent engine rests on: a prepared plan is
// immutable after build and crosses threads freely, as do the cache and
// guard that serve it. Enforced at compile time so an `Rc`, `Cell` or
// raw-pointer regression anywhere in the plan's transitive ownership
// breaks the build here, with a readable error, rather than at a distant
// `thread::spawn`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TransformPlan>();
    assert_send_sync::<Arc<TransformPlan>>();
    assert_send_sync::<BoundPlan>();
    assert_send_sync::<PlanKey>();
    assert_send_sync::<PlanCache>();
    assert_send_sync::<SharedPlanCache>();
    assert_send_sync::<crate::guard::Guard>();
};

/// The cache key: the exact triple planning consumes. Hashing uses the
/// derived `Hash`; equality compares the full contents, so the property
/// "distinct triples never collide" holds by construction rather than by
/// the absence of 64-bit hash collisions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// The full stylesheet source text.
    pub stylesheet: String,
    /// **Canonical** structure fingerprint
    /// ([`canonicalize_view`](xsltdb_structinfo::canonicalize_view)): equal
    /// for every view publishing the same shape, whatever its table names —
    /// so same-shaped views share one entry. Views whose structure cannot
    /// be derived fingerprint their derivation error (which names the
    /// view), still plan (to the VM tier), and still cache — per view.
    pub struct_fp: u64,
    /// Canonical rendering of the [`RewriteOptions`] flags.
    pub options: String,
}

impl PlanKey {
    /// Build the key for planning `stylesheet_src` against `view`,
    /// canonicalising the view's structure on the spot. On the lookup hot
    /// path prefer [`PlanCache::view_canon`] + [`PlanKey::with_fingerprint`],
    /// which memoises the canonicalisation.
    pub fn new(view: &XmlView, stylesheet_src: &str, opts: &RewriteOptions) -> PlanKey {
        PlanKey::with_fingerprint(canonicalize_view(view).fingerprint, stylesheet_src, opts)
    }

    /// Build the key from an already-computed structure fingerprint.
    pub fn with_fingerprint(
        struct_fp: u64,
        stylesheet_src: &str,
        opts: &RewriteOptions,
    ) -> PlanKey {
        PlanKey {
            stylesheet: stylesheet_src.to_string(),
            struct_fp,
            options: format!("{opts:?}"),
        }
    }

    /// Content digest of the whole key (reports, debugging).
    pub fn digest(&self) -> u64 {
        let mut h = fnv64(self.stylesheet.as_bytes());
        h ^= self.struct_fp.rotate_left(17);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
        h ^ fnv64(self.options.as_bytes())
    }

    /// Bytes this key holds on to while cached.
    fn cost(&self) -> usize {
        self.stylesheet.len() + self.options.len() + std::mem::size_of::<u64>()
    }
}

/// Memo of view-name → (stamp, canonicalisation) shared — as a value, not
/// a pointer — by both cache flavours. Canonicalising derives and walks the
/// whole view definition, which would dominate a warm lookup. The stamp is
/// whatever clock value the caller keys the view's *definition* by: the
/// pipeline passes [`Catalog::view_stamp`](xsltdb_relstore::Catalog::view_stamp)
/// (the registration instant — only re-registering the view moves it, so
/// unrelated DDL keeps the memo warm); callers without per-view stamps can
/// still pass the global generation and get the old, coarser protocol.
#[derive(Default)]
struct CanonMemo {
    entries: HashMap<String, (u64, Arc<ViewCanon>)>,
}

impl CanonMemo {
    /// The memoised canonicalisation of `name` at exactly `stamp`.
    fn probe(&self, name: &str, stamp: u64) -> Option<Arc<ViewCanon>> {
        match self.entries.get(name) {
            Some((g, canon)) if *g == stamp => Some(Arc::clone(canon)),
            _ => None,
        }
    }

    fn store(&mut self, name: &str, stamp: u64, canon: Arc<ViewCanon>) {
        self.entries.insert(name.to_string(), (stamp, canon));
    }

    /// Probe-or-derive for callers holding exclusive access.
    fn get_or_derive(&mut self, view: &XmlView, stamp: u64) -> Arc<ViewCanon> {
        if let Some(canon) = self.probe(&view.name, stamp) {
            return canon;
        }
        let canon = Arc::new(canonicalize_view(view));
        self.store(&view.name, stamp, Arc::clone(&canon));
        canon
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Estimated resident size of a prepared plan: the dominant owned text
/// (pretty-printed rewrite query and SQL) plus a fixed overhead for the
/// compiled stylesheet and view structures. An estimate is all the LRU
/// budget needs — it has to rank plans by size, not account allocator
/// bytes.
pub fn plan_cost(plan: &TransformPlan) -> usize {
    const FIXED_OVERHEAD: usize = 512;
    let rewrite = plan
        .rewrite
        .as_ref()
        .map(|o| xsltdb_xquery::pretty_query(&o.query).len())
        .unwrap_or(0);
    let sql = plan
        .sql
        .as_ref()
        .map(|q| xsltdb_relstore::sql_text(q).len())
        .unwrap_or(0);
    let fallback = plan.fallback_reason.as_ref().map(String::len).unwrap_or(0);
    FIXED_OVERHEAD + rewrite + sql + fallback
}

struct Entry {
    plan: Arc<TransformPlan>,
    /// [`Catalog::generation`](xsltdb_relstore::Catalog::generation) at
    /// planning time — compared against the validity floor a lookup passes.
    planned_at: u64,
    /// Estimated bytes this entry pins (key + plan).
    cost: usize,
    /// LRU clock value of the last hit (or the insert).
    last_used: u64,
}

/// A byte-bounded LRU cache of prepared transform plans with DDL-generation
/// invalidation. See the module docs for the design; see
/// [`plan_cached`](crate::pipeline::plan_cached) for the front door.
pub struct PlanCache {
    capacity: usize,
    entries: HashMap<PlanKey, Entry>,
    bytes: usize,
    clock: u64,
    /// Shared handle so a [`SharedPlanCache`] can point every shard at one
    /// set of counters; a standalone cache owns its own.
    stats: Arc<CacheStats>,
    /// Per-(view, generation) canonicalisation memo (see [`CanonMemo`]).
    canon: CanonMemo,
}

/// Default capacity: enough for every stylesheet of the XSLTMark suite with
/// room to spare, small enough that eviction is exercised in real use.
pub const DEFAULT_PLAN_CACHE_BYTES: usize = 4 * 1024 * 1024;

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_BYTES)
    }
}

impl PlanCache {
    /// A cache bounded at `capacity` estimated bytes.
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache::with_stats(capacity, Arc::new(CacheStats::new()))
    }

    /// A cache charging an externally owned set of counters — the shard
    /// constructor used by [`SharedPlanCache`], whose shards all report
    /// into one [`CacheStats`].
    pub fn with_stats(capacity: usize, stats: Arc<CacheStats>) -> PlanCache {
        PlanCache {
            capacity,
            entries: HashMap::new(),
            bytes: 0,
            clock: 0,
            stats,
            canon: CanonMemo::default(),
        }
    }

    /// `view`'s canonicalisation (family fingerprint + slot bindings),
    /// memoised per view name at DDL `generation`: it runs once per
    /// (view, generation) and every later lookup at the same generation is
    /// a map probe.
    pub fn view_canon(&mut self, view: &XmlView, generation: u64) -> Arc<ViewCanon> {
        self.canon.get_or_derive(view, generation)
    }

    /// The canonical structure fingerprint of `view`, through the same
    /// memo as [`Self::view_canon`].
    pub fn view_fingerprint(&mut self, view: &XmlView, generation: u64) -> u64 {
        self.view_canon(view, generation).fingerprint
    }

    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Estimated bytes currently pinned by cached entries. Never exceeds
    /// [`capacity_bytes`](Self::capacity_bytes).
    pub fn bytes_in_use(&self) -> usize {
        self.bytes
    }

    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Point-in-time copy of the hit/miss/eviction/invalidation counters.
    pub fn stats(&self) -> CacheSnapshot {
        self.stats.snapshot()
    }

    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Drop every entry and canonicalisation memo (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.canon.clear();
        self.bytes = 0;
    }

    /// Look up a plan for `key` whose planning instant is at or after the
    /// validity floor `valid_at`. Passing `catalog.generation()` demands a
    /// plan from the current instant (any DDL invalidates — the coarse
    /// protocol); passing `catalog.max_ddl_stamp(bound tables)` accepts any
    /// plan newer than the last DDL that could have affected it (the
    /// plan-aware protocol of [`plan_cached`](crate::pipeline::plan_cached)).
    /// Counts exactly one hit or one miss; a stale entry additionally
    /// counts an invalidation and is dropped.
    pub fn lookup(&mut self, key: &PlanKey, valid_at: u64) -> Option<Arc<TransformPlan>> {
        match self.entries.get_mut(key) {
            Some(entry) if entry.planned_at >= valid_at => {
                self.clock += 1;
                entry.last_used = self.clock;
                self.stats.add_hit();
                Some(Arc::clone(&entry.plan))
            }
            Some(_) => {
                let stale = self
                    .entries
                    .remove(key)
                    .expect("entry present under the same borrow");
                self.bytes -= stale.cost;
                self.stats.add_invalidation();
                self.stats.add_miss();
                None
            }
            None => {
                self.stats.add_miss();
                None
            }
        }
    }

    /// Admit a freshly prepared plan, stamped with the global DDL clock
    /// value `planned_at` observed when planning ran. Evicts LRU entries
    /// until the budget fits; a plan that alone exceeds the capacity is not
    /// admitted (the caller still gets its `Arc`, it just will not be
    /// shared).
    pub fn insert(&mut self, key: PlanKey, plan: Arc<TransformPlan>, planned_at: u64) {
        let cost = key.cost() + plan_cost(&plan);
        if cost > self.capacity {
            self.stats.add_uncacheable();
            return;
        }
        // Replacing an entry (e.g. after a generation bump raced the
        // invalidating lookup) releases the old bytes first.
        if let Some(old) = self.entries.remove(&key) {
            self.bytes -= old.cost;
        }
        while self.bytes + cost > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("bytes > 0 implies at least one entry");
            let evicted = self.entries.remove(&victim).expect("victim present");
            self.bytes -= evicted.cost;
            self.stats.add_eviction();
        }
        self.clock += 1;
        self.entries.insert(key, Entry { plan, planned_at, cost, last_used: self.clock });
        self.bytes += cost;
    }
}

/// Default shard count for [`SharedPlanCache`]: enough stripes that eight
/// concurrent sessions rarely collide on a shard lock, few enough that the
/// per-shard byte budget stays meaningful at the default capacity.
pub const DEFAULT_PLAN_CACHE_SHARDS: usize = 8;

/// Lock a shard (or the fingerprint memo). A panic while holding a shard
/// lock can only come from an engine bug below `insert`/`lookup`; the
/// cache's own state is updated without intervening panics, so a poisoned
/// lock's inner state is still coherent and is used as-is.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A thread-safe, lock-striped [`PlanCache`]: N independent shards, each a
/// byte-bounded LRU guarded by its own mutex, all charging one shared
/// [`CacheStats`].
///
/// * **Routing** — a key's [content digest](PlanKey::digest) picks its
///   shard, so all operations on one key serialize on one lock while
///   distinct keys mostly proceed in parallel.
/// * **Budget** — the global byte capacity is apportioned evenly across
///   shards; each shard enforces its slice independently, so the global
///   bound `bytes_in_use ≤ capacity` holds at every instant without any
///   global lock. (A skewed key population can evict from a full shard
///   while another sits empty — the classic striping trade-off.)
/// * **Invalidation** — the same validity-floor protocol as
///   [`PlanCache`]: every entry records the global DDL clock at planning
///   time and a lookup whose floor exceeds that stamp drops it. The check
///   happens under the shard lock, so a stale plan is never returned, no
///   matter how lookups and DDL bumps interleave across threads.
/// * **Miss races** — two threads missing on the same key both plan and
///   both insert (the second insert replaces the first). That wastes one
///   planning pass, never correctness: planning is deterministic, so both
///   plans are equivalent, and each caller gets a valid `Arc`.
///
/// See [`plan_cached_shared`](crate::pipeline::plan_cached_shared) for the
/// front door.
pub struct SharedPlanCache {
    shards: Box<[Mutex<PlanCache>]>,
    stats: Arc<CacheStats>,
    /// Per-(view, generation) canonicalisation memo, shared across shards:
    /// the fingerprint is needed *before* a key (and thus a shard) exists.
    /// See [`PlanCache::view_canon`] for the protocol.
    canon: Mutex<CanonMemo>,
    capacity: usize,
}

impl Default for SharedPlanCache {
    fn default() -> Self {
        SharedPlanCache::new(DEFAULT_PLAN_CACHE_BYTES)
    }
}

impl SharedPlanCache {
    /// A cache bounded at `capacity` estimated bytes, striped over
    /// [`DEFAULT_PLAN_CACHE_SHARDS`] shards.
    pub fn new(capacity: usize) -> SharedPlanCache {
        SharedPlanCache::with_shards(capacity, DEFAULT_PLAN_CACHE_SHARDS)
    }

    /// A cache bounded at `capacity` estimated bytes over exactly `shards`
    /// lock stripes (≥ 1). Each shard is budgeted `capacity / shards`
    /// bytes, so the global bound holds shard-locally.
    pub fn with_shards(capacity: usize, shards: usize) -> SharedPlanCache {
        assert!(shards >= 1, "a cache needs at least one shard");
        let stats = Arc::new(CacheStats::new());
        let per_shard = capacity / shards;
        let shards: Vec<Mutex<PlanCache>> = (0..shards)
            .map(|_| Mutex::new(PlanCache::with_stats(per_shard, Arc::clone(&stats))))
            .collect();
        SharedPlanCache {
            shards: shards.into_boxed_slice(),
            stats,
            canon: Mutex::new(CanonMemo::default()),
            capacity,
        }
    }

    fn shard(&self, key: &PlanKey) -> &Mutex<PlanCache> {
        &self.shards[(key.digest() as usize) % self.shards.len()]
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The requested global capacity. The enforced bound is the sum of the
    /// per-shard slices (`capacity / shards × shards`), which never exceeds
    /// this.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity
    }

    /// Estimated bytes currently pinned across all shards. Each addend is
    /// read under its shard lock; the sum is a consistent upper-bounded
    /// estimate (every shard individually respects its slice at all times).
    pub fn bytes_in_use(&self) -> usize {
        self.shards.iter().map(|s| lock(s).bytes_in_use()).sum()
    }

    pub fn entry_count(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entry_count()).sum()
    }

    /// Point-in-time copy of the shared hit/miss/eviction/invalidation
    /// counters. `hits + misses == lookups` holds in every snapshot even
    /// while other threads are charging (see
    /// [`CacheStats`](xsltdb_relstore::CacheStats)).
    pub fn stats(&self) -> CacheSnapshot {
        self.stats.snapshot()
    }

    pub fn reset_stats(&self) {
        self.stats.reset();
    }

    /// Drop every entry and canonicalisation memo (counters are kept).
    pub fn clear(&self) {
        for s in self.shards.iter() {
            lock(s).clear();
        }
        lock(&self.canon).clear();
    }

    /// `view`'s canonicalisation, memoised per view name at DDL
    /// `generation` — the cross-shard analogue of [`PlanCache::view_canon`].
    /// The canonicalisation (a full walk of the view definition) runs
    /// outside the memo lock, so a cold entry never stalls other sessions'
    /// memo probes; concurrent cold calls for the same view derive twice
    /// and agree (the derivation is pure).
    pub fn view_canon(&self, view: &XmlView, generation: u64) -> Arc<ViewCanon> {
        if let Some(canon) = lock(&self.canon).probe(&view.name, generation) {
            return canon;
        }
        let canon = Arc::new(canonicalize_view(view));
        lock(&self.canon).store(&view.name, generation, Arc::clone(&canon));
        canon
    }

    /// The canonical structure fingerprint of `view`, through the same
    /// memo as [`Self::view_canon`].
    pub fn view_fingerprint(&self, view: &XmlView, generation: u64) -> u64 {
        self.view_canon(view, generation).fingerprint
    }

    /// Look up a plan for `key` whose planning instant is at or after the
    /// validity floor `valid_at` (see [`PlanCache::lookup`]), under the
    /// key's shard lock. Counts exactly one hit or one miss; a stale entry
    /// additionally counts an invalidation and is dropped before the lock
    /// is released, so no later lookup — on any thread — can observe it.
    pub fn lookup(&self, key: &PlanKey, valid_at: u64) -> Option<Arc<TransformPlan>> {
        lock(self.shard(key)).lookup(key, valid_at)
    }

    /// Admit a freshly prepared plan stamped `planned_at` into its key's
    /// shard (evicting that shard's LRU entries to fit its byte slice).
    pub fn insert(&self, key: PlanKey, plan: Arc<TransformPlan>, planned_at: u64) {
        let shard = self.shard(&key);
        lock(shard).insert(key, plan, planned_at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{plan_transform, Tier};
    use xsltdb_relstore::exec::Conjunction;
    use xsltdb_relstore::pubexpr::{PubExpr, SqlXmlQuery};
    use xsltdb_relstore::{Catalog, ColType, Datum, Table};

    fn setup() -> (Catalog, XmlView) {
        let mut t = Table::new("t", &[("v", ColType::Int)]);
        t.insert(vec![Datum::Int(7)]).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_table(t);
        let view = XmlView::new(
            "vu",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem("r", vec![PubExpr::elem("v", vec![PubExpr::col("t", "v")])]),
            },
        );
        catalog.add_view(view.clone());
        (catalog, view)
    }

    fn sheet(body: &str) -> String {
        format!(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
        )
    }

    fn plan(view: &XmlView, src: &str) -> Arc<TransformPlan> {
        Arc::new(plan_transform(view, src, &RewriteOptions::default()).unwrap())
    }

    #[test]
    fn fnv64_is_stable_and_spreads() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"a"), fnv64(b"b"));
        assert_ne!(fnv64(b"ab"), fnv64(b"ba"));
    }

    #[test]
    fn key_separates_all_three_components() {
        let (_c, view) = setup();
        let opts = RewriteOptions::default();
        let s1 = sheet(r#"<xsl:template match="r"><a/></xsl:template>"#);
        let s2 = sheet(r#"<xsl:template match="r"><b/></xsl:template>"#);
        let k1 = PlanKey::new(&view, &s1, &opts);
        assert_ne!(k1, PlanKey::new(&view, &s2, &opts));
        let no_inline = RewriteOptions { inline: false, ..RewriteOptions::default() };
        assert_ne!(k1, PlanKey::new(&view, &s1, &no_inline));
        // Same triple, same key and digest.
        let again = PlanKey::new(&view, &s1, &opts);
        assert_eq!(k1, again);
        assert_eq!(k1.digest(), again.digest());
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let (catalog, view) = setup();
        let mut cache = PlanCache::default();
        let src = sheet(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#);
        let key = PlanKey::new(&view, &src, &RewriteOptions::default());
        assert!(cache.lookup(&key, catalog.generation()).is_none());
        cache.insert(key.clone(), plan(&view, &src), catalog.generation());
        let hit = cache.lookup(&key, catalog.generation()).expect("hit");
        assert_eq!(hit.tier, Tier::Sql);
        let snap = cache.stats();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        assert_eq!(snap.lookups(), 2);
    }

    #[test]
    fn stale_generation_invalidates_on_lookup() {
        let (mut catalog, view) = setup();
        let mut cache = PlanCache::default();
        let src = sheet(r#"<xsl:template match="r"><o/></xsl:template>"#);
        let key = PlanKey::new(&view, &src, &RewriteOptions::default());
        cache.insert(key.clone(), plan(&view, &src), catalog.generation());
        catalog.create_index("t", "v").unwrap();
        assert!(cache.lookup(&key, catalog.generation()).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.entry_count(), 0, "stale entry is dropped eagerly");
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        let (catalog, view) = setup();
        let srcs: Vec<String> = (0..4)
            .map(|i| sheet(&format!(r#"<xsl:template match="r"><o{i}/></xsl:template>"#)))
            .collect();
        let keys: Vec<PlanKey> =
            srcs.iter().map(|s| PlanKey::new(&view, s, &RewriteOptions::default())).collect();
        let one = keys[0].cost() + plan_cost(&plan(&view, &srcs[0]));
        // Room for roughly two entries.
        let mut cache = PlanCache::new(one * 2 + one / 2);
        for (k, s) in keys.iter().zip(&srcs).take(3) {
            cache.insert(k.clone(), plan(&view, s), catalog.generation());
            assert!(cache.bytes_in_use() <= cache.capacity_bytes());
        }
        assert_eq!(cache.stats().evictions, 1);
        // keys[0] was least recently used and is gone; keys[2] survives.
        assert!(cache.lookup(&keys[2], catalog.generation()).is_some());
        assert!(cache.lookup(&keys[0], catalog.generation()).is_none());
        // Touch keys[1] so keys[2] becomes the LRU victim of the next insert.
        assert!(cache.lookup(&keys[1], catalog.generation()).is_some());
        cache.insert(keys[3].clone(), plan(&view, &srcs[3]), catalog.generation());
        assert!(cache.lookup(&keys[1], catalog.generation()).is_some());
        assert!(cache.lookup(&keys[2], catalog.generation()).is_none());
    }

    #[test]
    fn oversized_plan_is_not_admitted() {
        let (catalog, view) = setup();
        let src = sheet(r#"<xsl:template match="r"><o/></xsl:template>"#);
        let key = PlanKey::new(&view, &src, &RewriteOptions::default());
        let mut cache = PlanCache::new(16);
        cache.insert(key.clone(), plan(&view, &src), catalog.generation());
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.bytes_in_use(), 0);
        assert_eq!(cache.stats().uncacheable, 1);
    }

    #[test]
    fn view_fingerprint_memo_respects_generation() {
        let (mut catalog, view) = setup();
        let mut cache = PlanCache::default();
        let g0 = catalog.generation();
        let fp = cache.view_fingerprint(&view, g0);
        assert_eq!(fp, PlanKey::new(&view, "x", &RewriteOptions::default()).struct_fp);
        assert_eq!(cache.view_fingerprint(&view, g0), fp, "memo hit is stable");
        // DDL bumps the generation; a view replaced under the same name
        // must re-fingerprint rather than serve the memo.
        catalog.create_index("t", "v").unwrap();
        let replaced = XmlView::new(
            "vu",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                order_by: Vec::new(),
                select: PubExpr::elem("other", vec![PubExpr::col("t", "v")]),
            },
        );
        catalog.add_view(replaced.clone());
        let fp2 = cache.view_fingerprint(&replaced, catalog.generation());
        assert_ne!(fp, fp2, "replaced structure gets a fresh fingerprint");
    }

    #[test]
    fn clear_keeps_counters() {
        let (catalog, view) = setup();
        let src = sheet(r#"<xsl:template match="r"><o/></xsl:template>"#);
        let key = PlanKey::new(&view, &src, &RewriteOptions::default());
        let mut cache = PlanCache::default();
        cache.insert(key.clone(), plan(&view, &src), catalog.generation());
        assert!(cache.lookup(&key, catalog.generation()).is_some());
        cache.clear();
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.bytes_in_use(), 0);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn shared_cache_round_trips_and_counts() {
        let (catalog, view) = setup();
        let cache = SharedPlanCache::default();
        assert_eq!(cache.shard_count(), DEFAULT_PLAN_CACHE_SHARDS);
        let src = sheet(r#"<xsl:template match="r"><o/></xsl:template>"#);
        let key = PlanKey::new(&view, &src, &RewriteOptions::default());
        assert!(cache.lookup(&key, catalog.generation()).is_none());
        cache.insert(key.clone(), plan(&view, &src), catalog.generation());
        let hit = cache.lookup(&key, catalog.generation()).expect("hit");
        assert_eq!(hit.tier, Tier::Sql);
        let snap = cache.stats();
        assert_eq!((snap.hits, snap.misses), (1, 1));
    }

    #[test]
    fn shared_cache_invalidates_stale_generations() {
        let (mut catalog, view) = setup();
        let cache = SharedPlanCache::default();
        let src = sheet(r#"<xsl:template match="r"><n/></xsl:template>"#);
        let key = PlanKey::new(&view, &src, &RewriteOptions::default());
        cache.insert(key.clone(), plan(&view, &src), catalog.generation());
        catalog.create_index("t", "v").unwrap();
        assert!(cache.lookup(&key, catalog.generation()).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert_eq!(cache.entry_count(), 0);
    }

    #[test]
    fn shared_cache_apportions_budget_per_shard() {
        let (catalog, view) = setup();
        let srcs: Vec<String> = (0..16)
            .map(|i| sheet(&format!(r#"<xsl:template match="r"><o{i}/></xsl:template>"#)))
            .collect();
        let keys: Vec<PlanKey> =
            srcs.iter().map(|s| PlanKey::new(&view, s, &RewriteOptions::default())).collect();
        let one = keys[0].cost() + plan_cost(&plan(&view, &srcs[0]));
        // Four shards of ~one entry each: inserts must stay under the
        // global budget whichever shards the digests land on.
        let cache = SharedPlanCache::with_shards(one * 4 + one / 2, 4);
        for (k, s) in keys.iter().zip(&srcs) {
            cache.insert(k.clone(), plan(&view, s), catalog.generation());
            assert!(cache.bytes_in_use() <= cache.capacity_bytes());
        }
        assert!(cache.entry_count() <= 4);
        assert!(cache.stats().evictions + cache.stats().uncacheable > 0);
    }

    #[test]
    fn shared_cache_serves_threads_concurrently() {
        let (catalog, view) = setup();
        let cache = std::sync::Arc::new(SharedPlanCache::default());
        let srcs: Vec<String> = (0..4)
            .map(|i| sheet(&format!(r#"<xsl:template match="r"><t{i}/></xsl:template>"#)))
            .collect();
        let generation = catalog.generation();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let cache = std::sync::Arc::clone(&cache);
                let view = view.clone();
                let srcs = srcs.clone();
                std::thread::spawn(move || {
                    for round in 0..20 {
                        let src = &srcs[(t + round) % srcs.len()];
                        let key = PlanKey::new(&view, src, &RewriteOptions::default());
                        match cache.lookup(&key, generation) {
                            Some(p) => assert_eq!(p.tier, Tier::Sql),
                            None => cache.insert(key, plan(&view, src), generation),
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("no thread panics");
        }
        let snap = cache.stats();
        assert_eq!(snap.lookups(), 80);
        assert_eq!(cache.entry_count(), srcs.len());
        // Worst case every thread races the cold miss on every key: 4×4
        // misses. Any more means a hit was lost or an entry was dropped.
        assert!(snap.hits >= 64, "only {} hits in 80 lookups", snap.hits);
    }
}
