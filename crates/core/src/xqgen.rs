//! XQuery generation from the template execution graph (paper §4.4) with
//! the optimisations of §3.3–3.7, plus the *straightforward* translation of
//! Fokoue et al. \[9\] used when no structural information is available (and
//! as an ablation baseline).
//!
//! Three modes:
//!
//! * **Inline** (§4.4 "inline mode"): the execution graph is acyclic; every
//!   activated template body is inlined at its call sites. Uses model-group
//!   specialisation (§3.4), FOR/LET cardinality selection (§3.4), residual
//!   pattern predicates (Tables 18/19), dead-template removal (§3.7) and
//!   built-in-only compaction (§3.6).
//! * **Functions** (§4.4 "non-inline mode"): the graph is recursive; one
//!   XQuery function per *instantiated* template, dispatch limited to the
//!   traced candidates.
//! * **Straightforward** (\[9\]): no structural information; one function per
//!   template and a full runtime pattern-matching conditional chain at every
//!   apply site — including the backward parent-axis tests that §3.5
//!   eliminates when structure is known.

use crate::error::RewriteError;
use crate::pe::{partial_evaluate, PeResult, StateId, Transition};
use crate::translate::{xpath_to_xq, CtxRef, XlatCtx};
use xsltdb_structinfo::{Cardinality, ElemDecl, ModelGroup, SampleDoc, SampleNode, StructInfo};
use xsltdb_xpath::pattern::{Link, PathPattern};
use xsltdb_xpath::{Axis, NodeTest};
use xsltdb_xquery::{
    Clause, FunctionDecl, OrderSpec, PathStart, SeqType, VarDecl, XQuery, XqExpr, XqStep,
};
use xsltdb_xslt::ast::{Op, SiteId, SortKey, Template, TemplateId, VarValueSource, WithParam};
use xsltdb_xslt::avt::{Avt, AvtPart};
use xsltdb_xslt::{Stylesheet, BUILTIN_SITE};

/// The variable bound to the input document in generated queries.
pub const ROOT_VAR: &str = "var000";
/// RTF variables are wrapped in this synthetic element so both
/// `xsl:value-of` (string value) and `xsl:copy-of` (children) work.
pub const RTF_WRAPPER: &str = "xdb-rtf";

/// Rewrite options — each flag corresponds to one optimisation from the
/// paper, so ablation benchmarks can disable them individually.
#[derive(Debug, Clone)]
pub struct RewriteOptions {
    /// §3.3 template instantiation inlining (off ⇒ function mode even for
    /// acyclic graphs).
    pub inline: bool,
    /// §3.4 children instantiation specialised by model group (off ⇒ the
    /// Table 12 `for … instance of` dispatch everywhere).
    pub use_model_groups: bool,
    /// §3.4 FOR/LET selection from cardinality (off ⇒ always FOR).
    pub use_cardinality: bool,
    /// §3.5 removal of backward-axis pattern tests (only observable in the
    /// function/straightforward modes, where patterns are tested at run
    /// time).
    pub remove_backward_steps: bool,
    /// §3.6 compact query when only built-in templates run.
    pub builtin_compaction: bool,
    /// §3.7 drop templates the trace never instantiates.
    pub remove_dead_templates: bool,
    /// Emit `(: <xsl:template …> :)` comments as in Table 8.
    pub annotate: bool,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            inline: true,
            use_model_groups: true,
            use_cardinality: true,
            remove_backward_steps: true,
            builtin_compaction: true,
            remove_dead_templates: true,
            annotate: true,
        }
    }
}

/// Which generation strategy produced the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteMode {
    Inline,
    Functions,
    Straightforward,
}

/// The result of an XSLT→XQuery rewrite.
#[derive(Debug, Clone)]
pub struct RewriteOutcome {
    pub query: XQuery,
    pub mode: RewriteMode,
    /// Templates dropped by §3.7 (declared but never instantiated).
    pub removed_templates: usize,
    /// The execution graph contained a cycle.
    pub recursive: bool,
}

impl RewriteOutcome {
    /// The paper's §5 "inline" metric: a query with no function calls.
    pub fn fully_inlined(&self) -> bool {
        self.query.functions.is_empty()
    }
}

/// Rewrite a stylesheet into XQuery using structural information.
pub fn rewrite(
    sheet: &Stylesheet,
    info: &StructInfo,
    opts: &RewriteOptions,
) -> Result<RewriteOutcome, RewriteError> {
    match partial_evaluate(sheet, info) {
        Ok(pe) if !pe.graph.recursive && opts.inline => {
            // Inline generation can still hit constructs the trace cannot
            // cover soundly (sibling-axis selects); degrade to functions.
            inline_generate(sheet, info, &pe, opts)
                .or_else(|_| functions_generate(sheet, Some(&pe), opts))
        }
        Ok(pe) => functions_generate(sheet, Some(&pe), opts),
        Err(_) => functions_generate(sheet, None, opts),
    }
}

/// Does an XPath expression navigate upward or sideways? The sample
/// document carries a single instance per repeated element, so the trace
/// cannot soundly cover sibling/ancestor selections — inline mode must
/// refuse them (function mode dispatches at run time and stays correct).
fn uses_untraceable_axes(e: &xsltdb_xpath::Expr) -> bool {
    use xsltdb_xpath::Expr as XE;
    fn steps_bad(steps: &[xsltdb_xpath::Step]) -> bool {
        steps.iter().any(|s| {
            matches!(
                s.axis,
                Axis::Parent
                    | Axis::Ancestor
                    | Axis::AncestorOrSelf
                    | Axis::PrecedingSibling
                    | Axis::FollowingSibling
                    | Axis::Preceding
                    | Axis::Following
            ) || s.predicates.iter().any(uses_untraceable_axes)
        })
    }
    match e {
        XE::Path(p) => steps_bad(&p.steps),
        XE::Filter { primary, predicates, steps } => {
            uses_untraceable_axes(primary)
                || predicates.iter().any(uses_untraceable_axes)
                || steps_bad(steps)
        }
        XE::Binary(_, a, b) => uses_untraceable_axes(a) || uses_untraceable_axes(b),
        XE::Neg(a) => uses_untraceable_axes(a),
        XE::Call(_, args) => args.iter().any(uses_untraceable_axes),
        _ => false,
    }
}

/// The straightforward translation of \[9\]: no structural information, full
/// runtime dispatch.
pub fn rewrite_straightforward(sheet: &Stylesheet) -> Result<RewriteOutcome, RewriteError> {
    functions_generate(sheet, None, &RewriteOptions::default())
}

// --------------------------------------------------------------------------
// Shared helpers
// --------------------------------------------------------------------------

fn seq_of(items: Vec<XqExpr>) -> XqExpr {
    let mut items = finalize_sequence(items);
    match items.len() {
        0 => XqExpr::Empty,
        1 => items.pop().expect("one element"),
        _ => XqExpr::Seq(items),
    }
}

/// At sequence level (outside a direct constructor), literal text must be a
/// text *node*, not an atomic — adjacent atomics would be space-joined.
fn finalize_sequence(items: Vec<XqExpr>) -> Vec<XqExpr> {
    items
        .into_iter()
        .map(|i| match i {
            XqExpr::TextContent(t) => XqExpr::CompText(Box::new(XqExpr::StrLit(t))),
            other => other,
        })
        .collect()
}

fn avt_to_attr_parts(
    avt: &Avt,
    cx: &XlatCtx,
) -> Result<Vec<xsltdb_xquery::AttrValuePart>, RewriteError> {
    avt.0
        .iter()
        .map(|p| {
            Ok(match p {
                AvtPart::Text(t) => xsltdb_xquery::AttrValuePart::Text(t.clone()),
                AvtPart::Expr(e) => {
                    xsltdb_xquery::AttrValuePart::Expr(XqExpr::string_of(xpath_to_xq(e, cx)?))
                }
            })
        })
        .collect()
}

fn avt_to_string_expr(avt: &Avt, cx: &XlatCtx) -> Result<XqExpr, RewriteError> {
    if let Some(c) = avt.as_constant() {
        return Ok(XqExpr::StrLit(c));
    }
    let mut parts = Vec::new();
    for p in &avt.0 {
        parts.push(match p {
            AvtPart::Text(t) => XqExpr::StrLit(t.clone()),
            AvtPart::Expr(e) => XqExpr::string_of(xpath_to_xq(e, cx)?),
        });
    }
    if parts.len() == 1 {
        Ok(XqExpr::string_of(parts.pop().expect("one element")))
    } else {
        Ok(XqExpr::call("fn:concat", parts))
    }
}

/// Turn generated content items into a single string-valued expression (for
/// `xsl:attribute` content).
fn items_to_string_expr(items: Vec<XqExpr>) -> XqExpr {
    let mut parts: Vec<XqExpr> = items
        .into_iter()
        .map(|i| match i {
            XqExpr::TextContent(t) => XqExpr::StrLit(t),
            XqExpr::CompText(inner) => *inner,
            other => XqExpr::string_of(other),
        })
        .collect();
    match parts.len() {
        0 => XqExpr::StrLit(String::new()),
        1 => parts.pop().expect("one element"),
        _ => XqExpr::call("fn:concat", parts),
    }
}

fn sorts_to_order_by(
    sorts: &[SortKey],
    var: &str,
    root_var: &str,
) -> Result<Vec<OrderSpec>, RewriteError> {
    sorts
        .iter()
        .map(|k| {
            let cx = XlatCtx::new(CtxRef::var(var), root_var);
            Ok(OrderSpec {
                key: xpath_to_xq(&k.select, &cx)?,
                descending: k.descending,
                numeric: k.data_type_number,
            })
        })
        .collect()
}

/// Build the clause list for one iteration that may need positional
/// context: a `let` counting the node list first (so `last()` is evaluated
/// once per loop, not per row), then the `for`, with an `at` variable when
/// `position()` is used. XQuery `at` numbers the *input* sequence while
/// XSLT positions are post-sort, so a sorted positional loop wraps the
/// source in its own ordered FLWOR instead of using `order by` here.
/// Returns (clauses, order-by, position variable, count variable).
#[allow(clippy::type_complexity)]
fn iteration_clauses(
    fresh: &mut dyn FnMut() -> String,
    var: String,
    source: XqExpr,
    sorts: &[SortKey],
    uses_pos: bool,
    uses_last: bool,
) -> Result<(Vec<Clause>, Vec<OrderSpec>, Option<String>, Option<String>), RewriteError> {
    let mut clauses = Vec::new();
    let last_var = if uses_last {
        let lv = fresh();
        clauses.push(Clause::Let {
            var: lv.clone(),
            value: XqExpr::call("fn:count", vec![source.clone()]),
        });
        Some(lv)
    } else {
        None
    };
    let (source, order_by) = if uses_pos && !sorts.is_empty() {
        let sv = fresh();
        let ob = sorts_to_order_by(sorts, &sv, ROOT_VAR)?;
        (
            XqExpr::Flwor {
                clauses: vec![Clause::For { var: sv.clone(), at: None, source }],
                where_clause: None,
                order_by: ob,
                ret: Box::new(XqExpr::var(&sv)),
            },
            Vec::new(),
        )
    } else {
        let ob = sorts_to_order_by(sorts, &var, ROOT_VAR)?;
        (source, ob)
    };
    let pos_var = if uses_pos { Some(fresh()) } else { None };
    clauses.push(Clause::For { var, at: pos_var.clone(), source });
    Ok((clauses, order_by, pos_var, last_var))
}

/// Body-level `position()` / `last()` usage scan: decides whether an
/// iteration must bind `at`/count variables. Path-step and filter
/// predicates are skipped (predicates get the evaluator's own focus), and
/// so are `xsl:for-each` bodies (they rebind the position) — but for-each
/// *select* expressions count, as do call-template targets, which keep the
/// caller's position context.
fn ops_use_position(sheet: &Stylesheet, ops: &[Op]) -> (bool, bool) {
    let mut pos = false;
    let mut last = false;
    scan_ops(sheet, ops, 16, &mut pos, &mut last);
    (pos, last)
}

fn scan_ops(sheet: &Stylesheet, ops: &[Op], depth: usize, pos: &mut bool, last: &mut bool) {
    if depth == 0 {
        // Deep call-template chains: assume the worst — a spurious `at`
        // binding is harmless, a missing one is wrong.
        *pos = true;
        *last = true;
    }
    for op in ops {
        if *pos && *last {
            return;
        }
        match op {
            Op::Text(_) => {}
            Op::ValueOf(e) | Op::CopyOf(e) => scan_expr(e, pos, last),
            Op::LiteralElement { attrs, body, .. } => {
                for (_, avt) in attrs {
                    scan_avt(avt, pos, last);
                }
                scan_ops(sheet, body, depth, pos, last);
            }
            Op::Element { name, body } | Op::Pi { name, body } => {
                scan_avt(name, pos, last);
                scan_ops(sheet, body, depth, pos, last);
            }
            Op::Attribute { name, body } => {
                scan_avt(name, pos, last);
                scan_ops(sheet, body, depth, pos, last);
            }
            Op::Comment { body } | Op::Copy { body } | Op::Message { body } => {
                scan_ops(sheet, body, depth, pos, last);
            }
            Op::If { test, body } => {
                scan_expr(test, pos, last);
                scan_ops(sheet, body, depth, pos, last);
            }
            Op::Choose { whens, otherwise } => {
                for (t, b) in whens {
                    scan_expr(t, pos, last);
                    scan_ops(sheet, b, depth, pos, last);
                }
                scan_ops(sheet, otherwise, depth, pos, last);
            }
            Op::Variable { value, .. } => scan_var_source(sheet, value, depth, pos, last),
            Op::ForEach { select, .. } => scan_expr(select, pos, last),
            Op::ApplyTemplates { select, with_params, .. } => {
                if let Some(e) = select {
                    scan_expr(e, pos, last);
                }
                for wp in with_params {
                    scan_var_source(sheet, &wp.value, depth, pos, last);
                }
            }
            Op::CallTemplate { name, with_params, .. } => {
                for wp in with_params {
                    scan_var_source(sheet, &wp.value, depth, pos, last);
                }
                if let Some(tid) = sheet.named_template(name) {
                    let t = sheet.template(tid);
                    for (_, default) in &t.params {
                        scan_var_source(sheet, default, depth, pos, last);
                    }
                    scan_ops(sheet, &t.body, depth.saturating_sub(1), pos, last);
                }
            }
        }
    }
}

fn scan_expr(e: &xsltdb_xpath::Expr, pos: &mut bool, last: &mut bool) {
    use xsltdb_xpath::Expr as XE;
    match e {
        XE::Call(name, args) => {
            match name.as_str() {
                "position" => *pos = true,
                "last" => *last = true,
                _ => {}
            }
            for a in args {
                scan_expr(a, pos, last);
            }
        }
        XE::Binary(_, a, b) => {
            scan_expr(a, pos, last);
            scan_expr(b, pos, last);
        }
        XE::Neg(a) => scan_expr(a, pos, last),
        XE::Filter { primary, .. } => scan_expr(primary, pos, last),
        // Path-step predicates get the evaluator's own focus.
        _ => {}
    }
}

fn scan_avt(avt: &Avt, pos: &mut bool, last: &mut bool) {
    for p in &avt.0 {
        if let AvtPart::Expr(e) = p {
            scan_expr(e, pos, last);
        }
    }
}

fn scan_var_source(
    sheet: &Stylesheet,
    src: &VarValueSource,
    depth: usize,
    pos: &mut bool,
    last: &mut bool,
) {
    match src {
        VarValueSource::Select(e) => scan_expr(e, pos, last),
        VarValueSource::Body(ops) => scan_ops(sheet, ops, depth, pos, last),
        VarValueSource::Empty => {}
    }
}

/// The `instance of` test for one kind of sample node / pattern step test.
fn kind_test(var: &str, test: &NodeTest) -> Result<XqExpr, RewriteError> {
    let v = Box::new(XqExpr::var(var));
    Ok(match test {
        NodeTest::Name { prefix: _, local } => {
            XqExpr::InstanceOf(v, SeqType::Element(Some(local.clone())))
        }
        NodeTest::Star => XqExpr::InstanceOf(v, SeqType::Element(None)),
        NodeTest::Text => XqExpr::InstanceOf(v, SeqType::Text),
        NodeTest::Node => XqExpr::call("fn:true", vec![]),
        NodeTest::Comment | NodeTest::Pi(_) => {
            return Err(RewriteError::new(
                "comment()/processing-instruction() dispatch is not supported",
            ))
        }
        NodeTest::PrefixStar(_) => {
            return Err(RewriteError::new("prefix:* dispatch is not supported"))
        }
    })
}

/// Residual predicates of the pattern alternative that matches `node_name`
/// (`None` for text nodes). Predicates are only supported on the final step.
fn residual_predicates<'p>(
    t: &'p Template,
    node: &SampleNode,
) -> Result<Vec<&'p xsltdb_xpath::Expr>, RewriteError> {
    let Some(pattern) = &t.pattern else {
        return Ok(Vec::new());
    };
    for alt in &pattern.alternatives {
        if !alt_matches_kind(alt, node) {
            continue;
        }
        let mut preds = Vec::new();
        for (i, step) in alt.steps.iter().enumerate() {
            if step.predicates.is_empty() {
                continue;
            }
            if i + 1 != alt.steps.len() {
                return Err(RewriteError::new(format!(
                    "pattern `{pattern}` has predicates on a non-final step"
                )));
            }
            preds.extend(step.predicates.iter());
        }
        return Ok(preds);
    }
    Ok(Vec::new())
}

/// Does a pattern alternative's final step test match a sample-node kind?
fn alt_matches_kind(alt: &PathPattern, node: &SampleNode) -> bool {
    let Some(last) = alt.steps.last() else {
        return matches!(node, SampleNode::Root);
    };
    match node {
        SampleNode::Element(_) | SampleNode::Root => matches!(
            (&last.test, last.axis),
            (NodeTest::Name { .. }, Axis::Child)
                | (NodeTest::Star, Axis::Child)
                | (NodeTest::Node, Axis::Child)
        ),
        SampleNode::Text(_) => {
            matches!(last.test, NodeTest::Text | NodeTest::Node) && last.axis == Axis::Child
        }
        SampleNode::Attribute(..) => last.axis == Axis::Attribute,
    }
}

fn and_all(mut conds: Vec<XqExpr>) -> XqExpr {
    match conds.len() {
        0 => XqExpr::call("fn:true", vec![]),
        1 => conds.pop().expect("one element"),
        _ => {
            let mut it = conds.into_iter();
            let first = it.next().expect("non-empty");
            it.fold(first, |acc, c| XqExpr::And(Box::new(acc), Box::new(c)))
        }
    }
}

/// The dynamic `xsl:copy` translation (shallow copy of the current node).
fn dynamic_copy(ctx: &CtxRef, content: Vec<XqExpr>) -> XqExpr {
    let v = match ctx {
        CtxRef::Var(v) => XqExpr::var(v),
        CtxRef::ContextItem => XqExpr::ContextItem,
    };
    let name_of = XqExpr::call("fn:name", vec![v.clone()]);
    XqExpr::If {
        cond: Box::new(XqExpr::InstanceOf(Box::new(v.clone()), SeqType::Element(None))),
        then: Box::new(XqExpr::CompElem {
            name: Box::new(name_of.clone()),
            content: Box::new(seq_of(content)),
        }),
        els: Box::new(XqExpr::If {
            cond: Box::new(XqExpr::InstanceOf(
                Box::new(v.clone()),
                SeqType::Attribute(None),
            )),
            then: Box::new(XqExpr::CompAttr {
                name: Box::new(name_of),
                value: Box::new(XqExpr::string_of(v.clone())),
            }),
            els: Box::new(XqExpr::CompText(Box::new(XqExpr::string_of(v)))),
        }),
    }
}

// --------------------------------------------------------------------------
// Inline mode
// --------------------------------------------------------------------------

#[derive(Clone)]
struct Env {
    state: StateId,
    ctx: CtxRef,
    /// Variables bound to RTF wrapper elements (for `copy-of`).
    rtf_vars: Vec<String>,
    /// `at` variable of the enclosing iteration, when the generator bound
    /// one — the translation of body-level `position()`.
    pos_var: Option<String>,
    /// Count variable of the enclosing iteration's node list, when bound —
    /// the translation of body-level `last()`.
    last_var: Option<String>,
}

impl Env {
    fn xlat(&self) -> XlatCtx {
        XlatCtx::new(self.ctx.clone(), ROOT_VAR)
            .with_position(self.pos_var.clone(), self.last_var.clone())
    }
}

struct InlineGen<'a> {
    sheet: &'a Stylesheet,
    info: &'a StructInfo,
    pe: &'a PeResult,
    opts: &'a RewriteOptions,
    next_var: u32,
    depth: usize,
}

const MAX_INLINE_DEPTH: usize = 64;

fn inline_generate(
    sheet: &Stylesheet,
    info: &StructInfo,
    pe: &PeResult,
    opts: &RewriteOptions,
) -> Result<RewriteOutcome, RewriteError> {
    let match_template_count = sheet.match_templates().count();
    let removed = match_template_count.saturating_sub(pe.graph.instantiated.len());

    let body = if opts.builtin_compaction && pe.graph.builtin_only() {
        // §3.6 / Table 21: the whole document uses built-in templates.
        let inner = XqExpr::Flwor {
            clauses: vec![Clause::For {
                var: "var001".into(),
                at: None,
                source: XqExpr::Path {
                    start: PathStart::Expr(Box::new(XqExpr::var(ROOT_VAR))),
                    steps: vec![
                        XqStep {
                            axis: Axis::DescendantOrSelf,
                            test: NodeTest::Node,
                            predicates: Vec::new(),
                        },
                        XqStep { axis: Axis::Child, test: NodeTest::Text, predicates: Vec::new() },
                    ],
                },
            }],
            where_clause: None,
            order_by: Vec::new(),
            ret: Box::new(XqExpr::string_of(XqExpr::var("var001"))),
        };
        let joined = XqExpr::call(
            "fn:string-join",
            vec![inner, XqExpr::StrLit(String::new())],
        );
        if opts.annotate {
            XqExpr::Annotated { comment: "builtin template".into(), expr: Box::new(joined) }
        } else {
            joined
        }
    } else {
        let mut g = InlineGen { sheet, info, pe, opts, next_var: 1, depth: 0 };
        g.gen_state(pe.graph.root, CtxRef::var(ROOT_VAR), Vec::new(), None, None)?
    };

    Ok(RewriteOutcome {
        query: XQuery {
            variables: vec![VarDecl { name: ROOT_VAR.into(), value: XqExpr::ContextItem }],
            functions: Vec::new(),
            body,
        },
        mode: RewriteMode::Inline,
        removed_templates: removed,
        recursive: false,
    })
}

impl<'a> InlineGen<'a> {
    fn fresh_var(&mut self) -> String {
        self.next_var += 1;
        format!("var{:03}", self.next_var)
    }

    fn decl_of(&self, node: &SampleNode) -> Option<&'a ElemDecl> {
        match node {
            SampleNode::Element(path) => Some(SampleDoc::decl_at(self.info, path)),
            SampleNode::Root => None,
            _ => None,
        }
    }

    /// Generate the inlined expression for a state with the given context
    /// binding, parameter lets, and positional context (the `at`/count
    /// variables of the iteration that bound this node, if any).
    fn gen_state(
        &mut self,
        state: StateId,
        ctx: CtxRef,
        param_lets: Vec<(String, XqExpr)>,
        pos_var: Option<String>,
        last_var: Option<String>,
    ) -> Result<XqExpr, RewriteError> {
        self.depth += 1;
        if self.depth > MAX_INLINE_DEPTH {
            self.depth -= 1;
            return Err(RewriteError::new("inline expansion too deep"));
        }
        let r = self.gen_state_inner(state, ctx, param_lets, pos_var, last_var);
        self.depth -= 1;
        r
    }

    fn gen_state_inner(
        &mut self,
        state: StateId,
        ctx: CtxRef,
        mut param_lets: Vec<(String, XqExpr)>,
        pos_var: Option<String>,
        last_var: Option<String>,
    ) -> Result<XqExpr, RewriteError> {
        let st = self.pe.graph.state(state).clone();
        match st.template {
            None => {
                // Built-in rule.
                match &st.node {
                    SampleNode::Text(_) | SampleNode::Attribute(..) => Ok(XqExpr::CompText(
                        Box::new(XqExpr::string_of(ctx_expr(&ctx))),
                    )),
                    SampleNode::Element(_) | SampleNode::Root => {
                        let env = Env { state, ctx, rtf_vars: Vec::new(), pos_var, last_var };
                        self.gen_apply_site(&env, BUILTIN_SITE, None, &[], &[])
                    }
                }
            }
            Some(tid) => {
                let t = self.sheet.template(tid);
                // Defaults for parameters not passed.
                for (pname, default) in &t.params {
                    if param_lets.iter().any(|(n, _)| n == pname) {
                        continue;
                    }
                    let env = Env {
                        state,
                        ctx: ctx.clone(),
                        rtf_vars: Vec::new(),
                        pos_var: pos_var.clone(),
                        last_var: last_var.clone(),
                    };
                    let v = self.var_source_expr(default, &env)?;
                    param_lets.push((pname.clone(), v));
                }
                let env = Env {
                    state,
                    ctx: ctx.clone(),
                    rtf_vars: Vec::new(),
                    pos_var,
                    last_var,
                };
                let items = self.gen_ops(&t.body, &env)?;
                let mut body = seq_of(items);
                if !param_lets.is_empty() {
                    body = XqExpr::Flwor {
                        clauses: param_lets
                            .into_iter()
                            .map(|(var, value)| Clause::Let { var, value })
                            .collect(),
                        where_clause: None,
                        order_by: Vec::new(),
                        ret: Box::new(body),
                    };
                }
                if self.opts.annotate {
                    let label = match (&t.pattern, &t.name) {
                        (Some(p), _) => format!("<xsl:template match=\"{p}\">"),
                        (None, Some(n)) => format!("<xsl:template name=\"{n}\">"),
                        _ => "<xsl:template>".to_string(),
                    };
                    body = XqExpr::Annotated { comment: label, expr: Box::new(body) };
                }
                Ok(body)
            }
        }
    }

    fn var_source_expr(
        &mut self,
        src: &VarValueSource,
        env: &Env,
    ) -> Result<XqExpr, RewriteError> {
        match src {
            VarValueSource::Select(e) => xpath_to_xq(e, &env.xlat()),
            VarValueSource::Empty => Ok(XqExpr::StrLit(String::new())),
            VarValueSource::Body(body) => {
                let items = self.gen_ops(body, env)?;
                Ok(XqExpr::DirectElem {
                    name: xsltdb_xml::QName::local(RTF_WRAPPER),
                    attrs: Vec::new(),
                    content: items,
                })
            }
        }
    }

    fn gen_ops(&mut self, ops: &[Op], env: &Env) -> Result<Vec<XqExpr>, RewriteError> {
        let mut out = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Variable { name, value } => {
                    // The rest of the body sees the binding: nest it.
                    let is_rtf = matches!(value, VarValueSource::Body(_));
                    let val = self.var_source_expr(value, env)?;
                    let mut env2 = env.clone();
                    if is_rtf {
                        env2.rtf_vars.push(name.clone());
                    }
                    let rest = self.gen_ops(&ops[i + 1..], &env2)?;
                    out.push(XqExpr::Flwor {
                        clauses: vec![Clause::Let { var: name.clone(), value: val }],
                        where_clause: None,
                        order_by: Vec::new(),
                        ret: Box::new(seq_of(rest)),
                    });
                    return Ok(out);
                }
                other => out.push(self.gen_op(other, env)?),
            }
        }
        Ok(out)
    }

    fn gen_op(&mut self, op: &Op, env: &Env) -> Result<XqExpr, RewriteError> {
        let cx = env.xlat();
        match op {
            Op::Text(t) => Ok(XqExpr::TextContent(t.clone())),
            Op::ValueOf(e) => Ok(XqExpr::CompText(Box::new(XqExpr::string_of(
                xpath_to_xq(e, &cx)?,
            )))),
            Op::LiteralElement { name, attrs, body } => {
                let mut aparts = Vec::with_capacity(attrs.len());
                for (aname, avt) in attrs {
                    aparts.push((aname.clone(), avt_to_attr_parts(avt, &cx)?));
                }
                Ok(XqExpr::DirectElem {
                    name: name.clone(),
                    attrs: aparts,
                    content: self.gen_ops(body, env)?,
                })
            }
            Op::Element { name, body } => Ok(XqExpr::CompElem {
                name: Box::new(avt_to_string_expr(name, &cx)?),
                content: Box::new(seq_of(self.gen_ops(body, env)?)),
            }),
            Op::Attribute { name, body } => {
                let items = self.gen_ops(body, env)?;
                Ok(XqExpr::CompAttr {
                    name: Box::new(avt_to_string_expr(name, &cx)?),
                    value: Box::new(items_to_string_expr(items)),
                })
            }
            Op::If { test, body } => Ok(XqExpr::If {
                cond: Box::new(xpath_to_xq(test, &cx)?),
                then: Box::new(seq_of(self.gen_ops(body, env)?)),
                els: Box::new(XqExpr::Empty),
            }),
            Op::Choose { whens, otherwise } => {
                let mut expr = seq_of(self.gen_ops(otherwise, env)?);
                for (test, body) in whens.iter().rev() {
                    expr = XqExpr::If {
                        cond: Box::new(xpath_to_xq(test, &cx)?),
                        then: Box::new(seq_of(self.gen_ops(body, env)?)),
                        els: Box::new(expr),
                    };
                }
                Ok(expr)
            }
            Op::ForEach { select, sorts, body } => {
                let var = self.fresh_var();
                let source = xpath_to_xq(select, &cx)?;
                let (uses_pos, uses_last) = ops_use_position(self.sheet, body);
                let (clauses, order_by, pos_var, last_var) = {
                    let mut fresh = || self.fresh_var();
                    iteration_clauses(&mut fresh, var.clone(), source, sorts, uses_pos, uses_last)?
                };
                let mut env2 = env.clone();
                env2.ctx = CtxRef::var(&var);
                env2.pos_var = pos_var;
                env2.last_var = last_var;
                let items = self.gen_ops(body, &env2)?;
                Ok(XqExpr::Flwor {
                    clauses,
                    where_clause: None,
                    order_by,
                    ret: Box::new(seq_of(items)),
                })
            }
            Op::ApplyTemplates { site, select, mode: _, sorts, with_params } => {
                self.gen_apply_site(env, *site, select.as_ref(), sorts, with_params)
            }
            Op::CallTemplate { site, name, with_params } => {
                let st = self.pe.graph.state(env.state);
                let trans = st
                    .transitions
                    .get(site)
                    .and_then(|v| v.first())
                    .cloned()
                    .ok_or_else(|| {
                        RewriteError::new(format!(
                            "no trace for call-template `{name}` (site {site:?})"
                        ))
                    })?;
                let lets = self.with_param_lets(with_params, env)?;
                // call-template keeps the caller's current node *and*
                // position context.
                self.gen_state(
                    trans.target,
                    env.ctx.clone(),
                    lets,
                    env.pos_var.clone(),
                    env.last_var.clone(),
                )
            }
            Op::Copy { body } => {
                let content = self.gen_ops(body, env)?;
                Ok(dynamic_copy(&env.ctx, content))
            }
            Op::CopyOf(e) => {
                if let xsltdb_xpath::Expr::Var(v) = e {
                    if env.rtf_vars.contains(v) {
                        // Copy the RTF wrapper's children.
                        return Ok(XqExpr::Path {
                            start: PathStart::Expr(Box::new(XqExpr::var(v))),
                            steps: vec![XqStep {
                                axis: Axis::Child,
                                test: NodeTest::Node,
                                predicates: Vec::new(),
                            }],
                        });
                    }
                }
                xpath_to_xq(e, &cx)
            }
            Op::Comment { body } => {
                let items = self.gen_ops(body, env)?;
                Ok(XqExpr::CompComment(Box::new(items_to_string_expr(items))))
            }
            Op::Pi { name, body } => {
                let target = name.as_constant().ok_or_else(|| {
                    RewriteError::new(
                        "computed processing-instruction targets are not supported by the rewrite",
                    )
                })?;
                let items = self.gen_ops(body, env)?;
                Ok(XqExpr::CompPi { target, content: Box::new(items_to_string_expr(items)) })
            }
            Op::Message { .. } => Ok(XqExpr::Empty),
            Op::Variable { .. } => unreachable!("handled in gen_ops"),
        }
    }

    fn with_param_lets(
        &mut self,
        with_params: &[WithParam],
        env: &Env,
    ) -> Result<Vec<(String, XqExpr)>, RewriteError> {
        with_params
            .iter()
            .map(|wp| Ok((wp.name.clone(), self.var_source_expr(&wp.value, env)?)))
            .collect()
    }

    /// Generate the expansion of one `<xsl:apply-templates>` site (or the
    /// built-in rule's implicit one).
    fn gen_apply_site(
        &mut self,
        env: &Env,
        site: SiteId,
        select: Option<&xsltdb_xpath::Expr>,
        sorts: &[SortKey],
        with_params: &[WithParam],
    ) -> Result<XqExpr, RewriteError> {
        // Reject selects the single-instance sample cannot cover, even when
        // the trace happens to be empty (a sibling select traces nothing on
        // the sample but selects real nodes at run time).
        if let Some(sel) = select {
            if uses_untraceable_axes(sel) {
                return Err(RewriteError::new(
                    "apply-templates over sibling/ancestor axes cannot be inlined                      from a single-instance sample",
                ));
            }
        }
        let st = self.pe.graph.state(env.state);
        let trans: Vec<Transition> =
            st.transitions.get(&site).cloned().unwrap_or_default();
        if trans.is_empty() {
            return Ok(XqExpr::Empty);
        }
        // Group consecutive transitions by matched node: each node's group
        // is its candidate chain (best first).
        let mut groups: Vec<(SampleNode, Vec<StateId>)> = Vec::new();
        for t in &trans {
            match groups.last_mut() {
                Some((n, targets)) if *n == t.node => targets.push(t.target),
                _ => groups.push((t.node.clone(), vec![t.target])),
            }
        }

        let param_lets = self.with_param_lets(with_params, env)?;
        let cx = env.xlat();

        match select {
            Some(sel) => {
                if uses_untraceable_axes(sel) {
                    return Err(RewriteError::new(
                        "apply-templates over sibling/ancestor axes cannot be inlined                          from a single-instance sample",
                    ));
                }
                let source = xpath_to_xq(sel, &cx)?;
                if groups.len() == 1 {
                    let (node, targets) = groups.pop().expect("one group");
                    let card = self.cardinality_of(&node);
                    self.gen_binding(env, &node, &targets, source, card, sorts, &param_lets)
                } else {
                    self.gen_dispatch_loop(env, source, &groups, sorts, &param_lets)
                }
            }
            None => {
                // Default select: `child::node()` — specialise by the model
                // group of the current declaration (§3.4).
                let decl = self.decl_of(&st.node.clone());
                let group = decl.map(|d| d.group).unwrap_or(ModelGroup::Sequence);
                // Mixed content (text plus element children): per-child
                // bindings would reorder text relative to elements, so the
                // document-order dispatch loop is the only correct shape.
                let mixed = decl.is_some_and(|d| d.has_text && !d.children.is_empty());
                let use_groups = self.opts.use_model_groups && !mixed;
                match group {
                    _ if !use_groups => {
                        let source = child_node_path(&env.ctx);
                        self.gen_dispatch_loop(env, source, &groups, sorts, &param_lets)
                    }
                    ModelGroup::All => {
                        let source = child_node_path(&env.ctx);
                        self.gen_dispatch_loop(env, source, &groups, sorts, &param_lets)
                    }
                    ModelGroup::Sequence => {
                        let mut items = Vec::with_capacity(groups.len());
                        for (node, targets) in &groups {
                            let path = self.child_path(&env.ctx, node)?;
                            let card = self.cardinality_of(node);
                            items.push(self.gen_binding(
                                env, node, targets, path, card, sorts, &param_lets,
                            )?);
                        }
                        Ok(seq_of(items))
                    }
                    ModelGroup::Choice => {
                        // Table 13: existence-tested chain; exactly one child
                        // is present.
                        let mut expr = XqExpr::Empty;
                        for (node, targets) in groups.iter().rev() {
                            let path = self.child_path(&env.ctx, node)?;
                            let binding = self.gen_binding(
                                env,
                                node,
                                targets,
                                path.clone(),
                                Cardinality::One,
                                sorts,
                                &param_lets,
                            )?;
                            expr = XqExpr::If {
                                cond: Box::new(path),
                                then: Box::new(binding),
                                els: Box::new(expr),
                            };
                        }
                        Ok(expr)
                    }
                }
            }
        }
    }

    /// The path from the context to one child sample node.
    fn child_path(&self, ctx: &CtxRef, node: &SampleNode) -> Result<XqExpr, RewriteError> {
        let step = match node {
            SampleNode::Element(path) => {
                let name = path
                    .last()
                    .map(|_| SampleDoc::decl_at(self.info, path).name.clone())
                    .unwrap_or_else(|| self.info.root.name.clone());
                XqStep {
                    axis: Axis::Child,
                    test: NodeTest::Name { prefix: None, local: name },
                    predicates: Vec::new(),
                }
            }
            SampleNode::Text(_) => XqStep {
                axis: Axis::Child,
                test: NodeTest::Text,
                predicates: Vec::new(),
            },
            SampleNode::Attribute(_, name) => XqStep {
                axis: Axis::Attribute,
                test: NodeTest::Name { prefix: None, local: name.clone() },
                predicates: Vec::new(),
            },
            SampleNode::Root => {
                return Err(RewriteError::new("cannot navigate to the root as a child"))
            }
        };
        Ok(XqExpr::Path {
            start: match ctx {
                CtxRef::Var(v) => PathStart::Expr(Box::new(XqExpr::var(v))),
                CtxRef::ContextItem => PathStart::Context,
            },
            steps: vec![step],
        })
    }

    /// The cardinality of a child sample node within its parent.
    fn cardinality_of(&self, node: &SampleNode) -> Cardinality {
        match node {
            SampleNode::Element(path) if !path.is_empty() => {
                let parent = SampleDoc::decl_at(self.info, &path[..path.len() - 1]);
                parent.children[*path.last().expect("non-empty")].card
            }
            // The root element occurs exactly once; text/attributes are
            // single within their position.
            _ => Cardinality::One,
        }
    }

    /// Whether any candidate template body for these targets uses
    /// body-level `position()` / `last()` (so the binding must carry
    /// loop variables).
    fn targets_use_position(&self, targets: &[StateId]) -> (bool, bool) {
        let mut pos = false;
        let mut last = false;
        for &t in targets {
            if let Some(tid) = self.pe.graph.state(t).template {
                let (p, l) = ops_use_position(self.sheet, &self.sheet.template(tid).body);
                pos |= p;
                last |= l;
            }
        }
        (pos, last)
    }

    /// Bind the nodes of one group to a fresh variable (FOR or LET per
    /// cardinality, §3.4) and inline the candidate chain.
    #[allow(clippy::too_many_arguments)]
    fn gen_binding(
        &mut self,
        env: &Env,
        node: &SampleNode,
        targets: &[StateId],
        source: XqExpr,
        card: Cardinality,
        sorts: &[SortKey],
        param_lets: &[(String, XqExpr)],
    ) -> Result<XqExpr, RewriteError> {
        let var = self.fresh_var();
        let (uses_pos, uses_last) = self.targets_use_position(targets);
        let use_let = self.opts.use_cardinality
            && card == Cardinality::One
            && sorts.is_empty()
            && !uses_pos
            && !uses_last;
        if use_let {
            let inner =
                self.gen_candidate_chain(env, &var, node, targets, param_lets, &None, &None)?;
            return Ok(XqExpr::Flwor {
                clauses: vec![Clause::Let { var, value: source }],
                where_clause: None,
                order_by: Vec::new(),
                ret: Box::new(inner),
            });
        }
        let (clauses, order_by, pos_var, last_var) = {
            let mut fresh = || self.fresh_var();
            iteration_clauses(&mut fresh, var.clone(), source, sorts, uses_pos, uses_last)?
        };
        let inner =
            self.gen_candidate_chain(env, &var, node, targets, param_lets, &pos_var, &last_var)?;
        Ok(XqExpr::Flwor {
            clauses,
            where_clause: None,
            order_by,
            ret: Box::new(inner),
        })
    }

    /// The conditional chain over a node's candidate templates (Tables
    /// 18/19): residual pattern predicates become runtime tests.
    #[allow(clippy::too_many_arguments)]
    fn gen_candidate_chain(
        &mut self,
        _env: &Env,
        var: &str,
        node: &SampleNode,
        targets: &[StateId],
        param_lets: &[(String, XqExpr)],
        pos_var: &Option<String>,
        last_var: &Option<String>,
    ) -> Result<XqExpr, RewriteError> {
        let mut expr = XqExpr::Empty;
        for &target in targets.iter().rev() {
            let st = self.pe.graph.state(target).clone();
            let inlined = self.gen_state(
                target,
                CtxRef::var(var),
                param_lets.to_vec(),
                pos_var.clone(),
                last_var.clone(),
            )?;
            match st.template {
                None => {
                    expr = inlined; // built-in: unconditional terminal
                }
                Some(tid) => {
                    let t = self.sheet.template(tid);
                    let preds = residual_predicates(t, node)?;
                    if preds.is_empty() {
                        expr = inlined;
                    } else {
                        let pcx = XlatCtx::new(CtxRef::var(var), ROOT_VAR);
                        let conds: Vec<XqExpr> = preds
                            .iter()
                            .map(|p| xpath_to_xq(p, &pcx))
                            .collect::<Result<_, _>>()?;
                        expr = XqExpr::If {
                            cond: Box::new(and_all(conds)),
                            then: Box::new(inlined),
                            els: Box::new(expr),
                        };
                    }
                }
            }
        }
        Ok(expr)
    }

    /// The Table 12 shape: iterate `source` and dispatch on node kind.
    fn gen_dispatch_loop(
        &mut self,
        env: &Env,
        source: XqExpr,
        groups: &[(SampleNode, Vec<StateId>)],
        sorts: &[SortKey],
        param_lets: &[(String, XqExpr)],
    ) -> Result<XqExpr, RewriteError> {
        let var = self.fresh_var();
        let (mut uses_pos, mut uses_last) = (false, false);
        for (_, targets) in groups {
            let (p, l) = self.targets_use_position(targets);
            uses_pos |= p;
            uses_last |= l;
        }
        let (clauses, order_by, pos_var, last_var) = {
            let mut fresh = || self.fresh_var();
            iteration_clauses(&mut fresh, var.clone(), source, sorts, uses_pos, uses_last)?
        };
        let mut expr = XqExpr::Empty;
        for (node, targets) in groups.iter().rev() {
            let chain =
                self.gen_candidate_chain(env, &var, node, targets, param_lets, &pos_var, &last_var)?;
            let cond = match node {
                SampleNode::Element(path) => {
                    let name = SampleDoc::decl_at(self.info, path).name.clone();
                    XqExpr::InstanceOf(
                        Box::new(XqExpr::var(&var)),
                        SeqType::Element(Some(name)),
                    )
                }
                SampleNode::Text(_) => {
                    XqExpr::InstanceOf(Box::new(XqExpr::var(&var)), SeqType::Text)
                }
                SampleNode::Attribute(_, name) => XqExpr::InstanceOf(
                    Box::new(XqExpr::var(&var)),
                    SeqType::Attribute(Some(name.clone())),
                ),
                SampleNode::Root => continue,
            };
            expr = XqExpr::If { cond: Box::new(cond), then: Box::new(chain), els: Box::new(expr) };
        }
        Ok(XqExpr::Flwor {
            clauses,
            where_clause: None,
            order_by,
            ret: Box::new(expr),
        })
    }
}

fn ctx_expr(ctx: &CtxRef) -> XqExpr {
    match ctx {
        CtxRef::Var(v) => XqExpr::var(v),
        CtxRef::ContextItem => XqExpr::ContextItem,
    }
}

fn child_node_path(ctx: &CtxRef) -> XqExpr {
    XqExpr::Path {
        start: match ctx {
            CtxRef::Var(v) => PathStart::Expr(Box::new(XqExpr::var(v))),
            CtxRef::ContextItem => PathStart::Context,
        },
        steps: vec![XqStep { axis: Axis::Child, test: NodeTest::Node, predicates: Vec::new() }],
    }
}

// --------------------------------------------------------------------------
// Function mode (non-inline §4.4) and the straightforward translation [9]
// --------------------------------------------------------------------------

struct FuncGen<'a> {
    sheet: &'a Stylesheet,
    pe: Option<&'a PeResult>,
    opts: &'a RewriteOptions,
    next_var: u32,
}

/// The node parameter of generated template functions.
const NODE_PARAM: &str = "xdbn";

fn functions_generate(
    sheet: &Stylesheet,
    pe: Option<&PeResult>,
    opts: &RewriteOptions,
) -> Result<RewriteOutcome, RewriteError> {
    let mut g = FuncGen { sheet, pe, opts, next_var: 1 };

    let included: Vec<TemplateId> = sheet
        .templates
        .iter()
        .enumerate()
        .map(|(i, _)| TemplateId(i as u32))
        .filter(|tid| {
            if !opts.remove_dead_templates {
                return true;
            }
            match pe {
                Some(p) => p.graph.instantiated.contains(tid),
                None => true,
            }
        })
        .collect();

    let mut functions = Vec::new();
    for &tid in &included {
        let t = sheet.template(tid);
        let mut params = vec![NODE_PARAM.to_string()];
        params.extend(t.params.iter().map(|(n, _)| n.clone()));
        let env = Env {
            state: 0,
            ctx: CtxRef::var(NODE_PARAM),
            rtf_vars: Vec::new(),
            pos_var: None,
            last_var: None,
        };
        let body = seq_of(g.gen_ops(&t.body, &env, &included)?);
        functions.push(FunctionDecl { name: func_name(tid), params, body });
    }

    // One built-in dispatcher per mode that occurs in the stylesheet.
    let mut modes: Vec<Option<String>> = vec![None];
    for t in &sheet.templates {
        if !modes.contains(&t.mode) {
            modes.push(t.mode.clone());
        }
    }
    for mode in &modes {
        functions.push(g.builtin_function(mode.as_deref(), &included)?);
    }

    let root_chain = g.dispatch_chain(
        XqExpr::var(ROOT_VAR),
        None,
        &included,
        &[],
    )?;

    let removed = sheet.templates.len() - included.len();
    Ok(RewriteOutcome {
        query: XQuery {
            variables: vec![VarDecl { name: ROOT_VAR.into(), value: XqExpr::ContextItem }],
            functions,
            body: root_chain,
        },
        mode: if pe.is_some() { RewriteMode::Functions } else { RewriteMode::Straightforward },
        removed_templates: removed,
        recursive: pe.map(|p| p.graph.recursive).unwrap_or(false),
    })
}

fn func_name(tid: TemplateId) -> String {
    format!("local:tmpl{:03}", tid.0)
}

fn builtin_name(mode: Option<&str>) -> String {
    match mode {
        None => "local:xdb-builtin".to_string(),
        Some(m) => format!("local:xdb-builtin-{m}"),
    }
}

impl<'a> FuncGen<'a> {
    fn fresh_var(&mut self) -> String {
        self.next_var += 1;
        format!("var{:03}", self.next_var)
    }

    fn gen_ops(
        &mut self,
        ops: &[Op],
        env: &Env,
        included: &[TemplateId],
    ) -> Result<Vec<XqExpr>, RewriteError> {
        let mut out = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Variable { name, value } => {
                    let is_rtf = matches!(value, VarValueSource::Body(_));
                    let val = self.var_source_expr(value, env, included)?;
                    let mut env2 = env.clone();
                    if is_rtf {
                        env2.rtf_vars.push(name.clone());
                    }
                    let rest = self.gen_ops(&ops[i + 1..], &env2, included)?;
                    out.push(XqExpr::Flwor {
                        clauses: vec![Clause::Let { var: name.clone(), value: val }],
                        where_clause: None,
                        order_by: Vec::new(),
                        ret: Box::new(seq_of(rest)),
                    });
                    return Ok(out);
                }
                other => out.push(self.gen_op(other, env, included)?),
            }
        }
        Ok(out)
    }

    fn var_source_expr(
        &mut self,
        src: &VarValueSource,
        env: &Env,
        included: &[TemplateId],
    ) -> Result<XqExpr, RewriteError> {
        match src {
            VarValueSource::Select(e) => xpath_to_xq(e, &env.xlat()),
            VarValueSource::Empty => Ok(XqExpr::StrLit(String::new())),
            VarValueSource::Body(body) => {
                let items = self.gen_ops(body, env, included)?;
                Ok(XqExpr::DirectElem {
                    name: xsltdb_xml::QName::local(RTF_WRAPPER),
                    attrs: Vec::new(),
                    content: items,
                })
            }
        }
    }

    fn gen_op(
        &mut self,
        op: &Op,
        env: &Env,
        included: &[TemplateId],
    ) -> Result<XqExpr, RewriteError> {
        let cx = env.xlat();
        match op {
            Op::Text(t) => Ok(XqExpr::TextContent(t.clone())),
            Op::ValueOf(e) => Ok(XqExpr::CompText(Box::new(XqExpr::string_of(
                xpath_to_xq(e, &cx)?,
            )))),
            Op::LiteralElement { name, attrs, body } => {
                let mut aparts = Vec::with_capacity(attrs.len());
                for (aname, avt) in attrs {
                    aparts.push((aname.clone(), avt_to_attr_parts(avt, &cx)?));
                }
                Ok(XqExpr::DirectElem {
                    name: name.clone(),
                    attrs: aparts,
                    content: self.gen_ops(body, env, included)?,
                })
            }
            Op::Element { name, body } => Ok(XqExpr::CompElem {
                name: Box::new(avt_to_string_expr(name, &cx)?),
                content: Box::new(seq_of(self.gen_ops(body, env, included)?)),
            }),
            Op::Attribute { name, body } => {
                let items = self.gen_ops(body, env, included)?;
                Ok(XqExpr::CompAttr {
                    name: Box::new(avt_to_string_expr(name, &cx)?),
                    value: Box::new(items_to_string_expr(items)),
                })
            }
            Op::If { test, body } => Ok(XqExpr::If {
                cond: Box::new(xpath_to_xq(test, &cx)?),
                then: Box::new(seq_of(self.gen_ops(body, env, included)?)),
                els: Box::new(XqExpr::Empty),
            }),
            Op::Choose { whens, otherwise } => {
                let mut expr = seq_of(self.gen_ops(otherwise, env, included)?);
                for (test, body) in whens.iter().rev() {
                    expr = XqExpr::If {
                        cond: Box::new(xpath_to_xq(test, &cx)?),
                        then: Box::new(seq_of(self.gen_ops(body, env, included)?)),
                        els: Box::new(expr),
                    };
                }
                Ok(expr)
            }
            Op::ForEach { select, sorts, body } => {
                let var = self.fresh_var();
                let source = xpath_to_xq(select, &cx)?;
                let (uses_pos, uses_last) = ops_use_position(self.sheet, body);
                let (clauses, order_by, pos_var, last_var) = {
                    let mut fresh = || self.fresh_var();
                    iteration_clauses(&mut fresh, var.clone(), source, sorts, uses_pos, uses_last)?
                };
                let mut env2 = env.clone();
                env2.ctx = CtxRef::var(&var);
                env2.pos_var = pos_var;
                env2.last_var = last_var;
                let items = self.gen_ops(body, &env2, included)?;
                Ok(XqExpr::Flwor {
                    clauses,
                    where_clause: None,
                    order_by,
                    ret: Box::new(seq_of(items)),
                })
            }
            Op::ApplyTemplates { site: _, select, mode, sorts, with_params } => {
                let source = match select {
                    Some(e) => xpath_to_xq(e, &cx)?,
                    None => child_node_path(&env.ctx),
                };
                let var = self.fresh_var();
                let chain = self.dispatch_chain(
                    XqExpr::var(&var),
                    mode.as_deref(),
                    included,
                    with_params,
                )?;
                // `with_params` values reference the caller context and are
                // evaluated per call inside the chain (see dispatch_chain).
                Ok(XqExpr::Flwor {
                    clauses: vec![Clause::For { var: var.clone(), at: None, source }],
                    where_clause: None,
                    order_by: sorts_to_order_by(sorts, &var, ROOT_VAR)?,
                    ret: Box::new(chain),
                })
            }
            Op::CallTemplate { site: _, name, with_params } => {
                let tid = self
                    .sheet
                    .named_template(name)
                    .ok_or_else(|| RewriteError::new(format!("no template named {name}")))?;
                self.call_expr(tid, ctx_expr(&env.ctx), with_params, env, included)
            }
            Op::Copy { body } => {
                let content = self.gen_ops(body, env, included)?;
                Ok(dynamic_copy(&env.ctx, content))
            }
            Op::CopyOf(e) => {
                if let xsltdb_xpath::Expr::Var(v) = e {
                    if env.rtf_vars.contains(v) {
                        return Ok(XqExpr::Path {
                            start: PathStart::Expr(Box::new(XqExpr::var(v))),
                            steps: vec![XqStep {
                                axis: Axis::Child,
                                test: NodeTest::Node,
                                predicates: Vec::new(),
                            }],
                        });
                    }
                }
                xpath_to_xq(e, &cx)
            }
            Op::Comment { body } => {
                let items = self.gen_ops(body, env, included)?;
                Ok(XqExpr::CompComment(Box::new(items_to_string_expr(items))))
            }
            Op::Pi { name, body } => {
                let target = name.as_constant().ok_or_else(|| {
                    RewriteError::new(
                        "computed processing-instruction targets are not supported by the rewrite",
                    )
                })?;
                let items = self.gen_ops(body, env, included)?;
                Ok(XqExpr::CompPi { target, content: Box::new(items_to_string_expr(items)) })
            }
            Op::Message { .. } => Ok(XqExpr::Empty),
            Op::Variable { .. } => unreachable!("handled in gen_ops"),
        }
    }

    /// A call `local:tmplNNN($node, params…)`; missing parameters get their
    /// declared defaults (evaluated against the callee node).
    fn call_expr(
        &mut self,
        tid: TemplateId,
        node: XqExpr,
        with_params: &[WithParam],
        env: &Env,
        included: &[TemplateId],
    ) -> Result<XqExpr, RewriteError> {
        let t = self.sheet.template(tid);
        let mut args = vec![node.clone()];
        for (pname, default) in &t.params {
            let arg = match with_params.iter().find(|wp| &wp.name == pname) {
                Some(wp) => self.var_source_expr(&wp.value, env, included)?,
                None => {
                    // Defaults see the callee's context node.
                    let callee_env = Env {
                        state: 0,
                        ctx: match &node {
                            XqExpr::VarRef(v) => CtxRef::var(v),
                            _ => env.ctx.clone(),
                        },
                        rtf_vars: Vec::new(),
                        pos_var: None,
                        last_var: None,
                    };
                    self.var_source_expr(default, &callee_env, included)?
                }
            };
            args.push(arg);
        }
        Ok(XqExpr::Call { name: func_name(tid), args })
    }

    /// The runtime template-dispatch conditional chain for one node
    /// expression (which must be a variable reference).
    fn dispatch_chain(
        &mut self,
        node: XqExpr,
        mode: Option<&str>,
        included: &[TemplateId],
        with_params: &[WithParam],
    ) -> Result<XqExpr, RewriteError> {
        let var = match &node {
            XqExpr::VarRef(v) => v.clone(),
            _ => return Err(RewriteError::new("dispatch target must be a variable")),
        };
        // Candidates: templates of this mode, best first.
        let mut cands: Vec<(f64, u32, TemplateId)> = self
            .sheet
            .match_templates()
            .filter(|(tid, t)| {
                t.mode.as_deref() == mode && included.contains(tid)
            })
            .map(|(tid, t)| (t.priority, tid.0, tid))
            .collect();
        cands.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.1.cmp(&a.1))
        });

        let env = Env {
            state: 0,
            ctx: CtxRef::var(&var),
            rtf_vars: Vec::new(),
            pos_var: None,
            last_var: None,
        };
        let mut expr = XqExpr::Call {
            name: builtin_name(mode),
            args: vec![XqExpr::var(&var)],
        };
        for (_, _, tid) in cands.into_iter().rev() {
            let t = self.sheet.template(tid);
            let pattern = t.pattern.as_ref().expect("match template");
            let mut alt_conds = Vec::new();
            for alt in &pattern.alternatives {
                alt_conds.push(self.pattern_condition(alt, &var)?);
            }
            let cond = alt_conds
                .into_iter()
                .reduce(|a, b| XqExpr::Or(Box::new(a), Box::new(b)))
                .unwrap_or_else(|| XqExpr::call("fn:false", vec![]));
            let call = self.call_expr(tid, XqExpr::var(&var), with_params, &env, included)?;
            expr = XqExpr::If { cond: Box::new(cond), then: Box::new(call), els: Box::new(expr) };
        }
        Ok(expr)
    }

    /// Translate one pattern alternative into a runtime boolean test over
    /// `$var` — the [9]-style test, including backward parent/ancestor
    /// checks unless §3.5 removes them.
    fn pattern_condition(
        &mut self,
        alt: &PathPattern,
        var: &str,
    ) -> Result<XqExpr, RewriteError> {
        if alt.steps.is_empty() {
            // The `/` pattern: the document node has no parent.
            return Ok(XqExpr::call(
                "fn:empty",
                vec![XqExpr::Path {
                    start: PathStart::Expr(Box::new(XqExpr::var(var))),
                    steps: vec![XqStep {
                        axis: Axis::Parent,
                        test: NodeTest::Node,
                        predicates: Vec::new(),
                    }],
                }],
            ));
        }
        let last = alt.steps.last().expect("non-empty");
        let mut conds = vec![match last.axis {
            Axis::Attribute => match &last.test {
                NodeTest::Name { local, .. } => XqExpr::InstanceOf(
                    Box::new(XqExpr::var(var)),
                    SeqType::Attribute(Some(local.clone())),
                ),
                NodeTest::Star | NodeTest::Node => XqExpr::InstanceOf(
                    Box::new(XqExpr::var(var)),
                    SeqType::Attribute(None),
                ),
                other => {
                    return Err(RewriteError::new(format!(
                        "unsupported attribute pattern test {other}"
                    )))
                }
            },
            _ => kind_test(var, &last.test)?,
        }];
        // Residual predicates on the last step.
        let pcx = XlatCtx::new(CtxRef::var(var), ROOT_VAR);
        for p in &last.predicates {
            conds.push(xpath_to_xq(p, &pcx)?);
        }
        // Backward steps (§3.5): parent/ancestor chain tests.
        if alt.steps.len() > 1 || alt.absolute {
            if self.opts.remove_backward_steps && self.pe.is_some() {
                // With structural information the parents are known; drop
                // the tests (Table 17 → Table 19 simplification).
            } else {
                let mut steps = Vec::new();
                for (i, s) in alt.steps.iter().enumerate().rev() {
                    if i == alt.steps.len() - 1 {
                        continue;
                    }
                    if !s.predicates.is_empty() {
                        return Err(RewriteError::new(
                            "pattern predicates on non-final steps are not supported",
                        ));
                    }
                    // The link of the step to our right tells how we relate.
                    let link = alt.steps[i + 1].link;
                    let axis = match link {
                        Link::Child => Axis::Parent,
                        Link::Descendant => Axis::Ancestor,
                    };
                    steps.push(XqStep { axis, test: s.test.clone(), predicates: Vec::new() });
                }
                if alt.absolute {
                    // The topmost step must hang off the document node.
                    steps.push(XqStep {
                        axis: Axis::Parent,
                        test: NodeTest::Node,
                        predicates: Vec::new(),
                    });
                    steps.push(XqStep {
                        axis: Axis::Parent,
                        test: NodeTest::Node,
                        predicates: Vec::new(),
                    });
                    let path = XqExpr::Path {
                        start: PathStart::Expr(Box::new(XqExpr::var(var))),
                        steps,
                    };
                    conds.push(XqExpr::call("fn:empty", vec![path]));
                } else if !steps.is_empty() {
                    let path = XqExpr::Path {
                        start: PathStart::Expr(Box::new(XqExpr::var(var))),
                        steps,
                    };
                    conds.push(XqExpr::call("fn:exists", vec![path]));
                }
            }
        }
        Ok(and_all(conds))
    }

    /// `local:xdb-builtin($n)`: the built-in rules as a recursive function.
    fn builtin_function(
        &mut self,
        mode: Option<&str>,
        included: &[TemplateId],
    ) -> Result<FunctionDecl, RewriteError> {
        let n = || XqExpr::var(NODE_PARAM);
        let var = self.fresh_var();
        let chain = self.dispatch_chain(XqExpr::var(&var), mode, included, &[])?;
        let recurse = XqExpr::Flwor {
            clauses: vec![Clause::For {
                var: var.clone(),
                at: None,
                source: child_node_path(&CtxRef::var(NODE_PARAM)),
            }],
            where_clause: None,
            order_by: Vec::new(),
            ret: Box::new(chain),
        };
        let body = XqExpr::If {
            cond: Box::new(XqExpr::Or(
                Box::new(XqExpr::InstanceOf(Box::new(n()), SeqType::Text)),
                Box::new(XqExpr::InstanceOf(Box::new(n()), SeqType::Attribute(None))),
            )),
            then: Box::new(XqExpr::CompText(Box::new(XqExpr::string_of(n())))),
            els: Box::new(recurse),
        };
        Ok(FunctionDecl {
            name: builtin_name(mode),
            params: vec![NODE_PARAM.to_string()],
            body,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_structinfo::{struct_of_dtd, StructInfo};
    use xsltdb_xquery::pretty_query;
    use xsltdb_xslt::compile_str;

    const DTD: &str = r#"
        <!ELEMENT dept (dname, loc, employees)>
        <!ELEMENT dname (#PCDATA)>
        <!ELEMENT loc (#PCDATA)>
        <!ELEMENT employees (emp*)>
        <!ELEMENT emp (empno, sal)>
        <!ELEMENT empno (#PCDATA)>
        <!ELEMENT sal (#PCDATA)>
    "#;

    fn info() -> StructInfo {
        struct_of_dtd(DTD, "dept").unwrap()
    }

    fn wrap(body: &str) -> String {
        format!(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
        )
    }

    fn gen(body: &str, opts: &RewriteOptions) -> RewriteOutcome {
        let sheet = compile_str(&wrap(body)).unwrap();
        rewrite(&sheet, &info(), opts).unwrap()
    }

    #[test]
    fn builtin_only_compaction_produces_string_join() {
        let out = gen("", &RewriteOptions::default());
        let p = pretty_query(&out.query);
        assert!(p.contains("fn:string-join"), "{p}");
        assert!(p.contains("//text()"), "{p}");
        assert!(out.fully_inlined());
    }

    #[test]
    fn builtin_compaction_can_be_disabled() {
        let opts = RewriteOptions { builtin_compaction: false, ..Default::default() };
        let out = gen("", &opts);
        let p = pretty_query(&out.query);
        assert!(!p.contains("fn:string-join"), "{p}");
    }

    #[test]
    fn cardinality_selects_let_for_single_children() {
        // dname occurs exactly once: LET; emp repeats: FOR (Table 15).
        let out = gen(
            r#"<xsl:template match="dept"><xsl:apply-templates/></xsl:template>
               <xsl:template match="dname"><n/></xsl:template>
               <xsl:template match="loc"><l/></xsl:template>
               <xsl:template match="employees"><xsl:apply-templates select="emp"/></xsl:template>
               <xsl:template match="emp"><e/></xsl:template>"#,
            &RewriteOptions::default(),
        );
        let p = pretty_query(&out.query);
        assert!(p.contains("let $"), "expected LET bindings in {p}");
        assert!(p.contains("for $"), "expected FOR over emp in {p}");
    }

    #[test]
    fn cardinality_off_uses_for_everywhere() {
        let opts = RewriteOptions { use_cardinality: false, ..Default::default() };
        let out = gen(
            r#"<xsl:template match="dept"><xsl:apply-templates select="dname"/></xsl:template>
               <xsl:template match="dname"><n/></xsl:template>"#,
            &opts,
        );
        let p = pretty_query(&out.query);
        assert!(!p.contains("let $var"), "{p}");
    }

    #[test]
    fn model_groups_off_generates_instance_dispatch() {
        let opts = RewriteOptions { use_model_groups: false, ..Default::default() };
        let out = gen(
            r#"<xsl:template match="dept"><xsl:apply-templates/></xsl:template>
               <xsl:template match="dname"><n/></xsl:template>"#,
            &opts,
        );
        let p = pretty_query(&out.query);
        // Table 12 shape: iterate node() and test kinds.
        assert!(p.contains("node()"), "{p}");
        assert!(p.contains("instance of element(dname)"), "{p}");
    }

    #[test]
    fn residual_pattern_predicates_generate_conditionals() {
        let out = gen(
            r#"<xsl:template match="dept"><xsl:apply-templates select="employees/emp"/></xsl:template>
               <xsl:template match="emp[sal &gt; 100]" priority="1"><rich/></xsl:template>
               <xsl:template match="emp"><poor/></xsl:template>"#,
            &RewriteOptions::default(),
        );
        let p = pretty_query(&out.query);
        assert!(p.contains("sal > 100"), "{p}");
        assert!(p.contains("if ("), "{p}");
        assert!(p.contains("<rich/>") && p.contains("<poor/>"), "{p}");
    }

    #[test]
    fn dead_template_removal_counts() {
        let out = gen(
            r#"<xsl:template match="dept"><d/></xsl:template>
               <xsl:template match="never1"><n/></xsl:template>
               <xsl:template match="never2"><n/></xsl:template>"#,
            &RewriteOptions::default(),
        );
        assert_eq!(out.removed_templates, 2);
        let p = pretty_query(&out.query);
        assert!(!p.contains("never"), "{p}");
    }

    #[test]
    fn annotations_emit_template_comments() {
        let out = gen(
            r#"<xsl:template match="dept"><d/></xsl:template>"#,
            &RewriteOptions::default(),
        );
        let p = pretty_query(&out.query);
        assert!(p.contains(r#"(: <xsl:template match="dept"> :)"#), "{p}");
        let no_annot = RewriteOptions { annotate: false, ..Default::default() };
        let out = gen(r#"<xsl:template match="dept"><d/></xsl:template>"#, &no_annot);
        assert!(!pretty_query(&out.query).contains("(:"));
    }

    #[test]
    fn inline_disabled_forces_function_mode() {
        let opts = RewriteOptions { inline: false, ..Default::default() };
        let out = gen(
            r#"<xsl:template match="dept"><d/></xsl:template>"#,
            &opts,
        );
        assert_eq!(out.mode, RewriteMode::Functions);
        assert!(!out.fully_inlined());
    }

    #[test]
    fn straightforward_keeps_backward_tests_inline_removes_them() {
        let sheet = compile_str(&wrap(
            r#"<xsl:template match="dept"><xsl:apply-templates select="employees/emp/empno"/></xsl:template>
               <xsl:template match="emp/empno"><e><xsl:value-of select="."/></e></xsl:template>"#,
        ))
        .unwrap();
        // Straightforward ([9] / Table 17): parent-axis existence test.
        let sf = rewrite_straightforward(&sheet).unwrap();
        let p = pretty_query(&sf.query);
        assert!(p.contains("parent::emp"), "{p}");
        // Inline with structure (Table 19): no backward test at all.
        let inline = rewrite(&sheet, &info(), &RewriteOptions::default()).unwrap();
        assert_eq!(inline.mode, RewriteMode::Inline);
        let p = pretty_query(&inline.query);
        assert!(!p.contains("parent::"), "{p}");
    }

    #[test]
    fn generated_query_always_reparses() {
        for body in [
            "",
            r#"<xsl:template match="dept"><d><xsl:apply-templates/></d></xsl:template>"#,
            r#"<xsl:template match="emp"><e a="{empno}"/></xsl:template>"#,
            r#"<xsl:template match="dept">
                 <xsl:for-each select="employees/emp"><xsl:sort select="sal"/><s/></xsl:for-each>
               </xsl:template>"#,
        ] {
            let out = gen(body, &RewriteOptions::default());
            let printed = pretty_query(&out.query);
            xsltdb_xquery::parse_query(&printed)
                .unwrap_or_else(|e| panic!("generated query does not reparse:\n{printed}\n{e}"));
        }
    }

    #[test]
    fn straightforward_mode_reports() {
        let sheet = compile_str(&wrap(
            r#"<xsl:template match="dept"><d/></xsl:template>"#,
        ))
        .unwrap();
        let out = rewrite_straightforward(&sheet).unwrap();
        assert_eq!(out.mode, RewriteMode::Straightforward);
        assert!(out.query.function_count() >= 2); // template + builtin
    }
}
