//! Error types for the rewrite pipeline.
//!
//! [`PipelineError`] is a typed enum whose variants keep the originating
//! engine error intact (`source()` walks to it), instead of flattening
//! everything to a string at the tier boundary. [`RewriteError`] stays a
//! lightweight newtype — rewrite failures are expected and non-fatal (the
//! pipeline degrades to the next tier), so all they need to carry is the
//! reason used for `fallback_reason` reporting.

use std::fmt;
use xsltdb_xml::GuardExceeded;

/// An error during XSLT→XQuery or XQuery→SQL/XML rewriting. Rewrite errors
/// are not fatal to a transformation: the pipeline falls back to the next
/// slower tier (see `pipeline`).
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteError(pub String);

impl RewriteError {
    pub fn new(msg: impl Into<String>) -> Self {
        RewriteError(msg.into())
    }
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite error: {}", self.0)
    }
}

impl std::error::Error for RewriteError {}

/// One failed execution attempt in the fallback lattice: which tier ran
/// and why it gave up.
#[derive(Debug, Clone, PartialEq)]
pub struct TierFailure {
    /// `"sql"`, `"xquery"` or `"vm"`.
    pub tier: &'static str,
    /// The failure as reported at that tier boundary.
    pub reason: String,
    /// True when the tier died by panic (contained with `catch_unwind`)
    /// rather than by returning an error.
    pub panicked: bool,
}

impl fmt::Display for TierFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.panicked {
            write!(f, "{} tier panicked: {}", self.tier, self.reason)
        } else {
            write!(f, "{} tier failed: {}", self.tier, self.reason)
        }
    }
}

/// A pipeline error. Variants preserve the source error of the layer that
/// raised them; `source()` exposes it for error-chain walking.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// Stylesheet compilation or VM-tier execution failed.
    Xslt(xsltdb_xslt::XsltError),
    /// The relational storage layer / SQL tier failed.
    Store(xsltdb_relstore::StoreError),
    /// The XQuery tier failed.
    XQuery(xsltdb_xquery::XqError),
    /// A rewrite step failed where no lower tier was available.
    Rewrite(RewriteError),
    /// A resource budget tripped. Guard trips are terminal: the work would
    /// exhaust the same shared budget on any tier, so there is no fallback.
    Guard(GuardExceeded),
    /// An engine panicked and the panic was contained at the tier
    /// boundary, with no lower tier left to fall back to.
    Panic {
        /// `"sql"`, `"xquery"` or `"vm"`.
        tier: &'static str,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// Every tier in the fallback lattice failed; `attempts` records the
    /// whole chain in the order it was tried.
    TiersExhausted { attempts: Vec<TierFailure> },
    /// A canonical plan referenced a table slot the execute-time bindings
    /// do not cover — the plan was bound incompletely, or not at all.
    UnboundSlot {
        /// The symbolic slot (`$t0`, `$t1`, …) with no concrete table.
        slot: String,
    },
    /// A view was bound to a plan prepared for a different canonical shape.
    /// Binding validates fingerprints so a plan can never silently execute
    /// against a view of the wrong structure.
    BindingMismatch {
        /// Canonical fingerprint the plan was prepared for.
        expected: u64,
        /// Canonical fingerprint of the view being bound.
        got: u64,
    },
    /// Pipeline-internal invariant violations (index probes out of range,
    /// malformed plans, …).
    Internal(String),
}

impl PipelineError {
    /// Shorthand for [`PipelineError::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        PipelineError::Internal(msg.into())
    }

    /// True when this error is a resource-budget trip ([`Guard`]
    /// variant). Callers holding cached plans branch on this: a trip is an
    /// outcome of one execution's budget, not evidence the plan is bad, so
    /// the cached entry stays valid and the call can be retried with a
    /// bigger budget.
    pub fn is_guard_trip(&self) -> bool {
        matches!(self, PipelineError::Guard(_))
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Xslt(e) => write!(f, "pipeline error: {e}"),
            PipelineError::Store(e) => write!(f, "pipeline error: {e}"),
            PipelineError::XQuery(e) => write!(f, "pipeline error: {e}"),
            PipelineError::Rewrite(e) => write!(f, "pipeline error: {e}"),
            PipelineError::Guard(e) => write!(f, "pipeline error: {e}"),
            PipelineError::Panic { tier, message } => {
                write!(f, "pipeline error: {tier} tier panicked: {message}")
            }
            PipelineError::TiersExhausted { attempts } => {
                write!(f, "pipeline error: every tier failed (")?;
                for (i, a) in attempts.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            PipelineError::UnboundSlot { slot } => {
                write!(f, "pipeline error: unbound table slot {slot}")
            }
            PipelineError::BindingMismatch { expected, got } => write!(
                f,
                "pipeline error: binding mismatch: plan is for shape \
                 {expected:#018x}, view has shape {got:#018x}"
            ),
            PipelineError::Internal(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Xslt(e) => Some(e),
            PipelineError::Store(e) => Some(e),
            PipelineError::XQuery(e) => Some(e),
            PipelineError::Rewrite(e) => Some(e),
            PipelineError::Guard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xsltdb_xslt::XsltError> for PipelineError {
    fn from(e: xsltdb_xslt::XsltError) -> Self {
        PipelineError::Xslt(e)
    }
}

impl From<xsltdb_relstore::StoreError> for PipelineError {
    fn from(e: xsltdb_relstore::StoreError) -> Self {
        // A store error that is really a guard trip (a streaming sink or a
        // scan ran out of budget mid-execution) classifies as `Guard`: the
        // admission/retry layer must treat it as terminal, not transient.
        match e.trip() {
            Some(trip) => PipelineError::Guard(trip),
            None => PipelineError::Store(e),
        }
    }
}

impl From<xsltdb_xquery::XqError> for PipelineError {
    fn from(e: xsltdb_xquery::XqError) -> Self {
        PipelineError::XQuery(e)
    }
}

impl From<RewriteError> for PipelineError {
    fn from(e: RewriteError) -> Self {
        PipelineError::Rewrite(e)
    }
}

impl From<GuardExceeded> for PipelineError {
    fn from(e: GuardExceeded) -> Self {
        PipelineError::Guard(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn source_preserved_through_conversion() {
        let e: PipelineError = xsltdb_xslt::XsltError::new("boom").into();
        assert!(matches!(&e, PipelineError::Xslt(inner) if inner.0 == "boom"));
        assert_eq!(e.source().unwrap().to_string(), "XSLT error: boom");
    }

    #[test]
    fn tiers_exhausted_formats_chain_in_order() {
        let e = PipelineError::TiersExhausted {
            attempts: vec![
                TierFailure { tier: "sql", reason: "scan failed".into(), panicked: false },
                TierFailure { tier: "vm", reason: "oops".into(), panicked: true },
            ],
        };
        let s = e.to_string();
        let sql = s.find("sql tier failed").unwrap();
        let vm = s.find("vm tier panicked").unwrap();
        assert!(sql < vm, "{s}");
    }

    #[test]
    fn binding_errors_name_the_evidence() {
        let e = PipelineError::UnboundSlot { slot: "$t1".into() };
        assert!(e.to_string().contains("unbound table slot $t1"));
        let e = PipelineError::BindingMismatch { expected: 0xABCD, got: 0x1234 };
        let s = e.to_string();
        assert!(s.contains("0x000000000000abcd") && s.contains("0x0000000000001234"), "{s}");
        assert!(!e.is_guard_trip());
    }

    #[test]
    fn guard_trip_converts_with_evidence_intact() {
        use xsltdb_xml::{Guard, Limits};
        let g = Guard::new(Limits::UNLIMITED.with_fuel(1));
        let trip = g.charge(5).unwrap_err();
        let e: PipelineError = trip.into();
        assert!(e.is_guard_trip());
        assert!(!PipelineError::internal("x").is_guard_trip());
        match e {
            PipelineError::Guard(t) => {
                assert_eq!(t.limit, 1);
                assert_eq!(t.spent, 5);
            }
            other => panic!("expected Guard variant, got {other:?}"),
        }
    }
}
