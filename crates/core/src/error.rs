//! Error types for the rewrite pipeline.

use std::fmt;

/// An error during XSLT→XQuery or XQuery→SQL/XML rewriting. Rewrite errors
/// are not fatal to a transformation: the pipeline falls back to the next
/// slower tier (see `pipeline`).
#[derive(Debug, Clone, PartialEq)]
pub struct RewriteError(pub String);

impl RewriteError {
    pub fn new(msg: impl Into<String>) -> Self {
        RewriteError(msg.into())
    }
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rewrite error: {}", self.0)
    }
}

impl std::error::Error for RewriteError {}

/// A fatal pipeline error (storage failures, malformed stylesheets, …).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineError(pub String);

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pipeline error: {}", self.0)
    }
}

impl std::error::Error for PipelineError {}

impl From<xsltdb_xslt::XsltError> for PipelineError {
    fn from(e: xsltdb_xslt::XsltError) -> Self {
        PipelineError(e.to_string())
    }
}

impl From<xsltdb_relstore::StoreError> for PipelineError {
    fn from(e: xsltdb_relstore::StoreError) -> Self {
        PipelineError(e.to_string())
    }
}

impl From<xsltdb_xquery::XqError> for PipelineError {
    fn from(e: xsltdb_xquery::XqError) -> Self {
        PipelineError(e.to_string())
    }
}

impl From<RewriteError> for PipelineError {
    fn from(e: RewriteError) -> Self {
        PipelineError(e.to_string())
    }
}
