//! The tiered transformation pipeline and the no-rewrite baseline.
//!
//! Planning tries the tiers in order of the paper's architecture diagram
//! (Figure 1):
//!
//! 1. **SQL tier** — XSLT → XQuery → SQL/XML over the view's base tables
//!    (Table 7): no XML materialisation at all, value predicates through
//!    B-tree indexes;
//! 2. **XQuery tier** — XSLT → XQuery evaluated over the materialised view
//!    documents: still no template dispatch or pattern matching at run
//!    time;
//! 3. **VM tier** — the functional evaluation (materialise + XSLTVM), which
//!    is also the *no-rewrite baseline* of the paper's Figures 2 and 3.

// Guard-bearing hot path: a stray unwrap here is a latent panic the
// pipeline would have to contain at a tier boundary. Keep it impossible.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use crate::error::{PipelineError, TierFailure};
use crate::guard::{DegradePolicy, Guard, Limits};
use crate::plancache::{PlanCache, PlanKey, SharedPlanCache};
use std::sync::Arc;
use crate::sqlrewrite::rewrite_to_sql;
use crate::xqgen::{rewrite, RewriteOptions, RewriteOutcome};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use xsltdb_relstore::pubexpr::SqlXmlQuery;
use xsltdb_relstore::{Catalog, ExecStats, XmlView};
use xsltdb_structinfo::{struct_of_view, StructInfo};
use xsltdb_xml::Document;
use xsltdb_xquery::{
    evaluate_query, evaluate_query_guarded, sequence_to_document, NodeHandle,
};
use xsltdb_xslt::{compile_str, transform, transform_with, Stylesheet, TransformOptions};

/// Which execution strategy a plan uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Pure SQL/XML over base tables.
    Sql,
    /// Rewritten XQuery over materialised view documents.
    XQuery,
    /// Functional evaluation (materialise + XSLTVM) — the no-rewrite path.
    Vm,
}

/// A planned transformation of an XMLType view by a stylesheet.
pub struct TransformPlan {
    pub tier: Tier,
    pub sheet: Stylesheet,
    pub view: XmlView,
    /// Present on the SQL and XQuery tiers.
    pub rewrite: Option<RewriteOutcome>,
    /// Present on the SQL tier.
    pub sql: Option<SqlXmlQuery>,
    /// Why the plan fell back below the SQL tier, if it did.
    pub fallback_reason: Option<String>,
}

/// Plan the transformation of every row of `view` by `stylesheet_src`.
pub fn plan_transform(
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<TransformPlan, PipelineError> {
    let sheet = compile_str(stylesheet_src)?;
    plan_compiled(view, sheet, opts)
}

/// The front door for repeated transforms: plan through a [`PlanCache`].
///
/// A lookup hit returns the shared prepared plan without touching the
/// compile → partial-evaluate → rewrite pipeline at all; a miss plans from
/// scratch and admits the result. Entries are keyed by the content of
/// (stylesheet text × structural-information fingerprint × options) and
/// validated against `catalog`'s DDL [generation](Catalog::generation), so
/// `create_index` / table / view changes transparently force a replan.
///
/// Cached plans are immutable — execute them with a fresh [`Guard`] per
/// call ([`TransformPlan::execute_with_limits`]); a budget trip in one
/// execution never poisons the cached entry.
pub fn plan_cached(
    cache: &mut PlanCache,
    catalog: &Catalog,
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<Arc<TransformPlan>, PipelineError> {
    let generation = catalog.generation();
    let struct_fp = cache.view_fingerprint(view, generation);
    let key = PlanKey::with_fingerprint(struct_fp, stylesheet_src, opts);
    if let Some(plan) = cache.lookup(&key, generation) {
        return Ok(plan);
    }
    let plan = Arc::new(plan_transform(view, stylesheet_src, opts)?);
    cache.insert(key, Arc::clone(&plan), generation);
    Ok(plan)
}

/// [`plan_cached`] against a [`SharedPlanCache`]: the front door for
/// concurrent sessions. Takes `&self` — any number of threads plan through
/// one cache simultaneously; distinct keys mostly proceed on distinct
/// shard locks, and the same key serializes on one.
///
/// Two threads racing a cold miss on the same key both plan and both
/// insert (last write stays cached). Planning is deterministic, so the two
/// plans are equivalent — the race costs one redundant planning pass,
/// never correctness. Stale entries are invalidated under the shard lock,
/// so a plan built at an older DDL generation is never returned.
pub fn plan_cached_shared(
    cache: &SharedPlanCache,
    catalog: &Catalog,
    view: &XmlView,
    stylesheet_src: &str,
    opts: &RewriteOptions,
) -> Result<Arc<TransformPlan>, PipelineError> {
    let generation = catalog.generation();
    let struct_fp = cache.view_fingerprint(view, generation);
    let key = PlanKey::with_fingerprint(struct_fp, stylesheet_src, opts);
    if let Some(plan) = cache.lookup(&key, generation) {
        return Ok(plan);
    }
    let plan = Arc::new(plan_transform(view, stylesheet_src, opts)?);
    cache.insert(key, Arc::clone(&plan), generation);
    Ok(plan)
}

/// Plan with a pre-compiled stylesheet.
pub fn plan_compiled(
    view: &XmlView,
    sheet: Stylesheet,
    opts: &RewriteOptions,
) -> Result<TransformPlan, PipelineError> {
    let info: StructInfo = match struct_of_view(view) {
        Ok(i) => i,
        Err(e) => {
            return Ok(TransformPlan {
                tier: Tier::Vm,
                sheet,
                view: view.clone(),
                rewrite: None,
                sql: None,
                fallback_reason: Some(e.to_string()),
            })
        }
    };
    match rewrite(&sheet, &info, opts) {
        Ok(outcome) => match rewrite_to_sql(&outcome.query, &info) {
            Ok(sql) => Ok(TransformPlan {
                tier: Tier::Sql,
                sheet,
                view: view.clone(),
                rewrite: Some(outcome),
                sql: Some(sql),
                fallback_reason: None,
            }),
            Err(e) => Ok(TransformPlan {
                tier: Tier::XQuery,
                sheet,
                view: view.clone(),
                rewrite: Some(outcome),
                sql: None,
                fallback_reason: Some(e.to_string()),
            }),
        },
        Err(e) => Ok(TransformPlan {
            tier: Tier::Vm,
            sheet,
            view: view.clone(),
            rewrite: None,
            sql: None,
            fallback_reason: Some(e.to_string()),
        }),
    }
}

/// Result of a guarded execution: the documents plus a record of which
/// tier produced them and every tier that failed on the way down.
#[derive(Debug)]
pub struct GuardedRun {
    pub documents: Vec<Document>,
    /// The tier that actually produced the result (≤ the planned tier).
    pub tier: Tier,
    /// Failed attempts before the successful tier, in lattice order.
    pub fallbacks: Vec<TierFailure>,
}

impl Tier {
    fn name(self) -> &'static str {
        match self {
            Tier::Sql => "sql",
            Tier::XQuery => "xquery",
            Tier::Vm => "vm",
        }
    }
}

/// One failed tier attempt: the reporting shape plus the original typed
/// error (absent when the tier died by panic).
struct Attempt {
    failure: TierFailure,
    error: Option<PipelineError>,
}

/// Run a tier body with panic containment. A panic inside an engine is an
/// engine bug, not a reason to poison the whole session: it is caught at
/// the tier boundary and converted into a failed attempt.
fn run_tier<T>(
    tier: Tier,
    body: impl FnOnce() -> Result<T, PipelineError>,
) -> Result<T, Attempt> {
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(Attempt {
            failure: TierFailure {
                tier: tier.name(),
                reason: e.to_string(),
                panicked: false,
            },
            error: Some(e),
        }),
        Err(payload) => {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(Attempt {
                failure: TierFailure { tier: tier.name(), reason: message, panicked: true },
                error: None,
            })
        }
    }
}

impl TransformPlan {
    /// Run the plan: one result document per view row.
    pub fn execute(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
    ) -> Result<Vec<Document>, PipelineError> {
        match self.tier {
            Tier::Sql => {
                let sql = self.sql.as_ref().expect("SQL tier carries a query");
                Ok(sql.execute(catalog, stats)?)
            }
            Tier::XQuery => {
                let outcome = self.rewrite.as_ref().expect("XQuery tier carries a rewrite");
                let docs = self.view.materialize(catalog, stats)?;
                let mut out = Vec::with_capacity(docs.len());
                for d in docs {
                    let input = NodeHandle::document(d);
                    let seq = evaluate_query(&outcome.query, Some(input))?;
                    out.push(sequence_to_document(&seq));
                }
                Ok(out)
            }
            Tier::Vm => no_rewrite_transform(catalog, &self.view, &self.sheet, stats)
                .map(|r| r.documents),
        }
    }

    /// Run the plan under a [`Guard`] with graceful degradation: a tier
    /// that errors or panics at execution time falls back to the next
    /// slower tier (SQL → XQuery → VM), and the chain of failed attempts
    /// is reported in the result. Guard trips are terminal — the budgets
    /// are shared across tiers, so a lower tier would only burn the
    /// remaining budget before tripping on the same limit.
    pub fn execute_guarded(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
    ) -> Result<GuardedRun, PipelineError> {
        self.execute_with_policy(catalog, stats, guard, DegradePolicy::Fallback)
    }

    /// Run the plan under a **fresh** [`Guard`] armed with `limits` — the
    /// execution mode for cached plans, where one plan serves many calls:
    /// every call gets the full budget, and a trip is an outcome of that
    /// call alone (the plan itself holds no guard state, so the cache
    /// entry stays reusable afterwards).
    pub fn execute_with_limits(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        limits: Limits,
    ) -> Result<GuardedRun, PipelineError> {
        self.execute_guarded(catalog, stats, &Guard::new(limits))
    }

    /// [`Self::execute_guarded`] with an explicit [`DegradePolicy`].
    pub fn execute_with_policy(
        &self,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
        policy: DegradePolicy,
    ) -> Result<GuardedRun, PipelineError> {
        let mut attempts: Vec<Attempt> = Vec::new();

        let tiers: &[Tier] = match self.tier {
            Tier::Sql => &[Tier::Sql, Tier::XQuery, Tier::Vm],
            Tier::XQuery => &[Tier::XQuery, Tier::Vm],
            Tier::Vm => &[Tier::Vm],
        };

        for &tier in tiers {
            let result = run_tier(tier, || self.run_single_tier(tier, catalog, stats, guard));
            match result {
                Ok(documents) => {
                    return Ok(GuardedRun {
                        documents,
                        tier,
                        fallbacks: attempts.into_iter().map(|a| a.failure).collect(),
                    })
                }
                Err(attempt) => {
                    // A trip is terminal regardless of policy: report the
                    // structured evidence, not the stringly engine error.
                    if let Some(trip) = guard.trip() {
                        return Err(PipelineError::Guard(trip));
                    }
                    let strict = policy == DegradePolicy::Strict;
                    attempts.push(attempt);
                    if strict {
                        break;
                    }
                }
            }
        }

        // Everything failed. A single attempt surfaces its own typed error
        // (preserving pre-ExecGuard `execute` semantics); a traversed
        // lattice reports the whole chain.
        if attempts.len() == 1 {
            let a = attempts.pop().expect("one attempt");
            return Err(match a.error {
                Some(e) => e,
                None => PipelineError::Panic { tier: a.failure.tier, message: a.failure.reason },
            });
        }
        Err(PipelineError::TiersExhausted {
            attempts: attempts.into_iter().map(|a| a.failure).collect(),
        })
    }

    /// Execute exactly one tier of the plan under `guard`, no fallback.
    fn run_single_tier(
        &self,
        tier: Tier,
        catalog: &Catalog,
        stats: &ExecStats,
        guard: &Guard,
    ) -> Result<Vec<Document>, PipelineError> {
        match tier {
            Tier::Sql => {
                let sql = self
                    .sql
                    .as_ref()
                    .ok_or_else(|| PipelineError::internal("no SQL query in plan"))?;
                Ok(sql.execute_guarded(catalog, stats, guard)?)
            }
            Tier::XQuery => {
                let outcome = self
                    .rewrite
                    .as_ref()
                    .ok_or_else(|| PipelineError::internal("no rewrite outcome in plan"))?;
                let docs = self.view.materialize_guarded(catalog, stats, guard)?;
                let mut out = Vec::with_capacity(docs.len());
                for d in docs {
                    let input = NodeHandle::document(d);
                    let seq =
                        evaluate_query_guarded(&outcome.query, Some(input), guard.clone())?;
                    out.push(sequence_to_document(&seq));
                }
                Ok(out)
            }
            Tier::Vm => {
                no_rewrite_transform_guarded(catalog, &self.view, &self.sheet, stats, guard)
                    .map(|r| r.documents)
            }
        }
    }
}

/// Result of the no-rewrite baseline.
pub struct BaselineRun {
    pub documents: Vec<Document>,
    /// Total nodes materialised before the XSLT processor could start — the
    /// cost the rewrite avoids.
    pub materialized_nodes: usize,
}

/// The paper's no-rewrite baseline: materialise every view row as a DOM and
/// run the XSLTVM over it.
pub fn no_rewrite_transform(
    catalog: &Catalog,
    view: &XmlView,
    sheet: &Stylesheet,
    stats: &ExecStats,
) -> Result<BaselineRun, PipelineError> {
    let docs = view.materialize(catalog, stats)?;
    let materialized_nodes = docs.iter().map(Document::node_count).sum();
    let mut out = Vec::with_capacity(docs.len());
    for d in &docs {
        out.push(transform(sheet, d)?);
    }
    Ok(BaselineRun { documents: out, materialized_nodes })
}

/// [`no_rewrite_transform`] under a [`Guard`]: materialisation and the VM
/// both charge the same budgets.
pub fn no_rewrite_transform_guarded(
    catalog: &Catalog,
    view: &XmlView,
    sheet: &Stylesheet,
    stats: &ExecStats,
    guard: &Guard,
) -> Result<BaselineRun, PipelineError> {
    let docs = view.materialize_guarded(catalog, stats, guard)?;
    let materialized_nodes = docs.iter().map(Document::node_count).sum();
    let opts = TransformOptions { guard: guard.clone(), ..Default::default() };
    let mut out = Vec::with_capacity(docs.len());
    for d in &docs {
        out.push(transform_with(sheet, d, &opts, &mut xsltdb_xslt::NoTrace)?);
    }
    Ok(BaselineRun { documents: out, materialized_nodes })
}

/// Rewrite-and-run over a plain document (DTD/XSD-derived structure): the
/// XQuery tier for inputs that do not come from a view. Falls back to the
/// VM when the rewrite fails.
pub fn transform_document(
    sheet: &Stylesheet,
    info: &StructInfo,
    doc: &Document,
    opts: &RewriteOptions,
) -> Result<(Document, Option<RewriteOutcome>), PipelineError> {
    match rewrite(sheet, info, opts) {
        Ok(outcome) => {
            let input = NodeHandle::new(Rc::new(doc.clone()), xsltdb_xml::NodeId::DOCUMENT);
            let seq = evaluate_query(&outcome.query, Some(input))?;
            Ok((sequence_to_document(&seq), Some(outcome)))
        }
        Err(_) => Ok((transform(sheet, doc)?, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsltdb_relstore::exec::Conjunction;
    use xsltdb_relstore::pubexpr::PubExpr;
    use xsltdb_relstore::{ColType, Datum, Table};

    fn setup() -> (Catalog, XmlView) {
        let mut t = Table::new("t", &[("v", ColType::Int)]);
        t.insert(vec![Datum::Int(7)]).unwrap();
        let mut catalog = Catalog::new();
        catalog.add_table(t);
        let view = XmlView::new(
            "vu",
            SqlXmlQuery {
                base_table: "t".into(),
                where_clause: Conjunction::default(),
                select: PubExpr::elem("r", vec![PubExpr::elem("v", vec![PubExpr::col("t", "v")])]),
            },
        );
        catalog.add_view(view.clone());
        (catalog, view)
    }

    fn wrap(body: &str) -> String {
        format!(
            r#"<xsl:stylesheet version="1.0" xmlns:xsl="http://www.w3.org/1999/XSL/Transform">{body}</xsl:stylesheet>"#
        )
    }

    #[test]
    fn simple_stylesheet_plans_to_sql_tier() {
        let (catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier, Tier::Sql);
        let stats = ExecStats::new();
        let docs = plan.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn untranslatable_sql_shape_falls_to_xquery_tier() {
        // substring() has no SQL translation but is fine in XQuery.
        let (catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(
                r#"<xsl:template match="r"><o><xsl:value-of select="substring(v, 1, 1)"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier, Tier::XQuery, "{:?}", plan.fallback_reason);
        assert!(plan.fallback_reason.is_some());
        let stats = ExecStats::new();
        let docs = plan.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn unrewritable_stylesheet_falls_to_vm_tier() {
        let (catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(
                r#"<xsl:template match="r"><o id="{generate-id(.)}"><xsl:value-of select="v"/></o></xsl:template>"#,
            ),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert_eq!(plan.tier, Tier::Vm, "{:?}", plan.fallback_reason);
        let stats = ExecStats::new();
        let docs = plan.execute(&catalog, &stats).unwrap();
        assert!(xsltdb_xml::to_string(&docs[0]).contains("<o id="));
    }

    #[test]
    fn bad_stylesheet_is_a_hard_error() {
        let (_c, view) = setup();
        assert!(plan_transform(&view, "<not-xslt/>", &RewriteOptions::default()).is_err());
    }

    #[test]
    fn transform_document_uses_rewrite_when_possible() {
        let info = xsltdb_structinfo::struct_of_dtd(
            "<!ELEMENT r (v)> <!ELEMENT v (#PCDATA)>",
            "r",
        )
        .unwrap();
        let doc = xsltdb_xml::parse::parse("<r><v>9</v></r>").unwrap();
        let sheet = xsltdb_xslt::compile_str(&wrap(
            r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#,
        ))
        .unwrap();
        let (out, outcome) =
            transform_document(&sheet, &info, &doc, &RewriteOptions::default()).unwrap();
        assert!(outcome.is_some());
        assert_eq!(xsltdb_xml::to_string(&out), "<o>9</o>");
    }

    #[test]
    fn plan_cached_shares_one_prepared_plan() {
        let (catalog, view) = setup();
        let mut cache = crate::plancache::PlanCache::default();
        let src = wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#);
        let first =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        let second =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit must return the same prepared plan");
        let snap = cache.stats();
        assert_eq!((snap.hits, snap.misses), (1, 1));
        let stats = ExecStats::new();
        let docs = second.execute(&catalog, &stats).unwrap();
        assert_eq!(xsltdb_xml::to_string(&docs[0]), "<o>7</o>");
    }

    #[test]
    fn plan_cached_replans_after_ddl() {
        let (mut catalog, view) = setup();
        let mut cache = crate::plancache::PlanCache::default();
        let src = wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#);
        let first =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        catalog.create_index("t", "v").unwrap();
        let second =
            plan_cached(&mut cache, &catalog, &view, &src, &RewriteOptions::default()).unwrap();
        assert!(!Arc::ptr_eq(&first, &second), "DDL must force a replan");
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let (catalog, view) = setup();
        let mut cache = crate::plancache::PlanCache::default();
        for _ in 0..2 {
            assert!(plan_cached(
                &mut cache,
                &catalog,
                &view,
                "<not-xslt/>",
                &RewriteOptions::default()
            )
            .is_err());
        }
        assert_eq!(cache.entry_count(), 0);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn fresh_guard_per_execution_trips_independently() {
        let (catalog, view) = setup();
        let plan = plan_transform(
            &view,
            &wrap(r#"<xsl:template match="r"><o><xsl:value-of select="v"/></o></xsl:template>"#),
            &RewriteOptions::default(),
        )
        .unwrap();
        let stats = ExecStats::new();
        let tripped = plan
            .execute_with_limits(&catalog, &stats, Limits::UNLIMITED.with_fuel(1))
            .unwrap_err();
        assert!(tripped.is_guard_trip(), "got {tripped:?}");
        // The same immutable plan runs to completion on the next call.
        let run = plan
            .execute_with_limits(&catalog, &stats, Limits::UNLIMITED)
            .unwrap();
        assert_eq!(xsltdb_xml::to_string(&run.documents[0]), "<o>7</o>");
    }

    #[test]
    fn baseline_reports_materialized_nodes() {
        let (catalog, view) = setup();
        let sheet = xsltdb_xslt::compile_str(&wrap("")).unwrap();
        let stats = ExecStats::new();
        let run = no_rewrite_transform(&catalog, &view, &sheet, &stats).unwrap();
        // <r><v>7</v></r>: document + r + v + text = 4 nodes.
        assert_eq!(run.materialized_nodes, 4);
    }
}
